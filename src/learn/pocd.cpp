#include "dollymp/learn/pocd.h"

#include <cmath>
#include <stdexcept>

#include "dollymp/job/dag.h"

namespace dollymp {

namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

double task_pocd_cloning(double theta, double sigma, int copies,
                         double deadline_seconds) {
  require(theta > 0.0, "pocd: theta must be > 0");
  require(sigma >= 0.0, "pocd: sigma must be >= 0");
  require(copies >= 1, "pocd: copies must be >= 1");
  if (deadline_seconds <= 0.0) return 0.0;
  if (sigma == 0.0) {
    return deadline_seconds >= theta ? 1.0 : 0.0;
  }
  const ParetoDist dist = ParetoDist::fit(theta, sigma / theta);
  if (deadline_seconds <= dist.scale()) return 0.0;
  // min of r i.i.d. Pareto(x_m, alpha) ~ Pareto(x_m, r*alpha).
  return 1.0 - std::pow(dist.scale() / deadline_seconds,
                        static_cast<double>(copies) * dist.shape());
}

double task_pocd_speculation(double theta, double sigma, double speculate_at_seconds,
                             double deadline_seconds) {
  require(theta > 0.0, "pocd: theta must be > 0");
  require(sigma >= 0.0, "pocd: sigma must be >= 0");
  require(speculate_at_seconds >= 0.0, "pocd: speculation time must be >= 0");
  if (deadline_seconds <= 0.0) return 0.0;
  if (sigma == 0.0) {
    return deadline_seconds >= theta ? 1.0 : 0.0;
  }
  const ParetoDist dist = ParetoDist::fit(theta, sigma / theta);
  const double xm = dist.scale();
  const double alpha = dist.shape();
  if (deadline_seconds <= xm) return 0.0;

  const double p_original_late = std::pow(xm / deadline_seconds, alpha);
  if (speculate_at_seconds >= deadline_seconds) {
    // Backup cannot help inside the deadline.
    return 1.0 - p_original_late;
  }
  const double backup_window = deadline_seconds - speculate_at_seconds;
  // Miss the deadline iff the original misses it AND the backup (launched
  // at s, running for deadline - s) misses it too.  When the window is
  // shorter than x_m the backup cannot finish at all.
  const double p_backup_late =
      backup_window <= xm ? 1.0 : std::pow(xm / backup_window, alpha);
  // The backup only exists if the original survived past s; for s >= x_m
  // that probability is (x_m/s)^alpha, but conditioning on it also implies
  // the original is late-ish.  Chronos's renewal approximation treats the
  // two copies as independent once the backup launches:
  return 1.0 - p_original_late * p_backup_late;
}

double phase_pocd_cloning(const PhaseSpec& phase, int copies, double deadline_seconds) {
  const double per_task = task_pocd_cloning(phase.theta_seconds, phase.sigma_seconds,
                                            copies, deadline_seconds);
  return std::pow(per_task, static_cast<double>(phase.task_count));
}

double job_pocd_cloning(const JobSpec& job, int copies, double deadline_seconds) {
  job.validate();
  // Chain check: every phase after the first depends exactly on its
  // predecessor.
  for (std::size_t k = 0; k < job.phases.size(); ++k) {
    const auto& parents = job.phases[k].parents;
    const bool ok = (k == 0 && parents.empty()) ||
                    (k > 0 && parents.size() == 1 &&
                     parents[0] == static_cast<PhaseIndex>(k - 1));
    if (!ok) {
      throw std::invalid_argument("job_pocd_cloning: job DAG must be a chain");
    }
  }
  double theta_total = 0.0;
  for (const auto& p : job.phases) theta_total += p.theta_seconds;
  if (theta_total <= 0.0) return 0.0;

  double pocd = 1.0;
  for (const auto& p : job.phases) {
    const double share = p.theta_seconds / theta_total;
    pocd *= phase_pocd_cloning(p, copies, deadline_seconds * share);
  }
  return pocd;
}

int copies_for_target_pocd(const PhaseSpec& phase, double target, double deadline_seconds,
                           int max_copies) {
  require(target > 0.0 && target <= 1.0, "pocd: target must be in (0, 1]");
  require(max_copies >= 1, "pocd: max_copies must be >= 1");
  for (int r = 1; r <= max_copies; ++r) {
    if (phase_pocd_cloning(phase, r, deadline_seconds) >= target) return r;
  }
  return 0;
}

}  // namespace dollymp
