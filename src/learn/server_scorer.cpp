#include "dollymp/learn/server_scorer.h"

#include <algorithm>
#include <stdexcept>

#include "dollymp/common/state_io.h"

namespace dollymp {

ServerScorer::ServerScorer(std::size_t num_servers, ServerScorerConfig config)
    : config_(config), states_(num_servers) {
  if (!(config_.ewma_alpha > 0.0) || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument("ServerScorer: ewma_alpha must be in (0, 1]");
  }
  if (config_.max_slowdown < 1.0) {
    throw std::invalid_argument("ServerScorer: max_slowdown must be >= 1");
  }
}

void ServerScorer::observe(ServerId server, double expected_seconds,
                           double actual_seconds) {
  if (server < 0 || static_cast<std::size_t>(server) >= states_.size()) {
    throw std::out_of_range("ServerScorer: server id out of range");
  }
  if (!(expected_seconds > 0.0) || !(actual_seconds > 0.0)) return;  // ignore junk
  const double ratio = std::clamp(actual_seconds / expected_seconds,
                                  1.0 / config_.max_slowdown, config_.max_slowdown);
  State& s = states_[static_cast<std::size_t>(server)];
  if (s.weight == 0.0) {
    // Seed the estimate with the prior as `prior_weight` pseudo-samples.
    s.ewma = config_.prior_slowdown;
    s.weight = config_.prior_weight;
  }
  // Adaptive step: behaves like a plain running mean while the effective
  // sample mass is below 1/alpha (fast burn-in that washes the prior out),
  // then settles into a forgetting EWMA so contention changes are tracked.
  const double step = std::max(config_.ewma_alpha, 1.0 / (s.weight + 1.0));
  s.ewma += step * (ratio - s.ewma);
  s.weight = std::min(s.weight + 1.0, 1.0 / config_.ewma_alpha);
  ++s.count;
}

double ServerScorer::estimated_slowdown(ServerId server) const {
  if (server < 0 || static_cast<std::size_t>(server) >= states_.size()) {
    throw std::out_of_range("ServerScorer: server id out of range");
  }
  const State& s = states_[static_cast<std::size_t>(server)];
  if (s.count == 0) return config_.prior_slowdown;
  return std::clamp(s.ewma, 1.0 / config_.max_slowdown, config_.max_slowdown);
}

std::size_t ServerScorer::samples(ServerId server) const {
  if (server < 0 || static_cast<std::size_t>(server) >= states_.size()) {
    throw std::out_of_range("ServerScorer: server id out of range");
  }
  return states_[static_cast<std::size_t>(server)].count;
}

void ServerScorer::reset() {
  for (auto& s : states_) s = State{};
}

void ServerScorer::save_state(StateWriter& w) const {
  w.u64(states_.size());
  for (const State& s : states_) {
    w.f64(s.ewma);
    w.f64(s.weight);
    w.u64(s.count);
  }
}

void ServerScorer::load_state(StateReader& r) {
  states_.assign(r.u64(), State{});
  for (State& s : states_) {
    s.ewma = r.f64();
    s.weight = r.f64();
    s.count = static_cast<std::size_t>(r.u64());
  }
}

}  // namespace dollymp
