#include "dollymp/metrics/slo_window.h"

#include <algorithm>
#include <stdexcept>

#include "dollymp/common/state_io.h"

namespace dollymp {

SloWindow::SloWindow(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("SloWindow: capacity must be > 0");
  ring_.resize(capacity, 0.0);
}

void SloWindow::observe(double response_seconds) {
  ring_[next_] = response_seconds;
  next_ = (next_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
  ++observed_;
}

double SloWindow::quantile(double q) const {
  if (size_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  scratch_.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(size_));
  // Nearest-rank: the smallest sample with at least q*size samples <= it.
  std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(size_));
  if (rank >= size_) rank = size_ - 1;
  std::nth_element(scratch_.begin(), scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch_.end());
  return scratch_[rank];
}

void SloWindow::save_state(StateWriter& w) const {
  w.u64(ring_.size());
  w.u64(size_);
  w.u64(next_);
  w.i64(observed_);
  for (std::size_t i = 0; i < size_; ++i) w.f64(ring_[i]);
}

void SloWindow::load_state(StateReader& r) {
  const std::uint64_t capacity = r.u64();
  if (capacity != ring_.size()) {
    throw std::runtime_error("snapshot: SLO window capacity mismatch (snapshot " +
                             std::to_string(capacity) + ", session " +
                             std::to_string(ring_.size()) + ")");
  }
  size_ = static_cast<std::size_t>(r.u64());
  next_ = static_cast<std::size_t>(r.u64());
  if (size_ > ring_.size() || next_ >= ring_.size()) {
    throw std::runtime_error("snapshot: SLO window cursor out of range");
  }
  observed_ = r.i64();
  std::fill(ring_.begin(), ring_.end(), 0.0);
  for (std::size_t i = 0; i < size_; ++i) ring_[i] = r.f64();
}

}  // namespace dollymp
