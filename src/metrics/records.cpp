#include "dollymp/metrics/records.h"

#include <stdexcept>

namespace dollymp {

const char* to_string(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kJobArrival: return "job-arrival";
    case SimEventKind::kCopyPlaced: return "copy-placed";
    case SimEventKind::kClonePlaced: return "clone-placed";
    case SimEventKind::kSpeculativePlaced: return "speculative-placed";
    case SimEventKind::kCopyFinished: return "copy-finished";
    case SimEventKind::kCopyKilled: return "copy-killed";
    case SimEventKind::kTaskCompleted: return "task-completed";
    case SimEventKind::kPhaseCompleted: return "phase-completed";
    case SimEventKind::kJobCompleted: return "job-completed";
    case SimEventKind::kServerFailed: return "server-failed";
    case SimEventKind::kServerRepaired: return "server-repaired";
  }
  return "?";
}

double SimResult::total_flowtime() const {
  double total = 0.0;
  for (const auto& j : jobs) total += j.flowtime();
  return total;
}

double SimResult::mean_flowtime() const {
  return jobs.empty() ? 0.0 : total_flowtime() / static_cast<double>(jobs.size());
}

double SimResult::total_running_time() const {
  double total = 0.0;
  for (const auto& j : jobs) total += j.running_time();
  return total;
}

double SimResult::total_resource_seconds() const {
  double total = 0.0;
  for (const auto& j : jobs) total += j.resource_seconds;
  return total;
}

double SimResult::cloned_task_fraction() const {
  long long tasks_total = 0;
  long long with_clones = 0;
  for (const auto& j : jobs) {
    tasks_total += j.total_tasks;
    with_clones += j.tasks_with_clones;
  }
  return tasks_total == 0 ? 0.0
                          : static_cast<double>(with_clones) / static_cast<double>(tasks_total);
}

const JobRecord& SimResult::job(JobId id) const {
  for (const auto& j : jobs) {
    if (j.id == id) return j;
  }
  throw std::out_of_range("SimResult: no job with id " + std::to_string(id));
}

}  // namespace dollymp
