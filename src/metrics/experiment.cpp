#include "dollymp/metrics/experiment.h"

#include <stdexcept>

#include "dollymp/sim/simulator.h"

namespace dollymp {

namespace {

SimResult one_run(const ComparisonSpec& spec, const ComparisonEntry& entry,
                  std::uint64_t seed) {
  SimConfig config = spec.config;
  config.seed = seed;
  auto scheduler = entry.factory();
  if (!scheduler) throw std::invalid_argument("run_comparison: factory returned null");
  SimResult result = simulate(spec.cluster, config, spec.jobs, *scheduler);
  result.scheduler = entry.name;
  return result;
}

}  // namespace

std::vector<SimResult> run_comparison(const ComparisonSpec& spec,
                                      const std::vector<ComparisonEntry>& entries,
                                      ThreadPool* pool) {
  if (pool == nullptr) {
    std::vector<SimResult> results;
    results.reserve(entries.size());
    for (const auto& entry : entries) {
      results.push_back(one_run(spec, entry, spec.config.seed));
    }
    return results;
  }
  return parallel_map(*pool, entries.size(), [&](std::size_t i) {
    return one_run(spec, entries[i], spec.config.seed);
  });
}

std::vector<ReplicatedStats> run_replicated(const ComparisonSpec& spec,
                                            const std::vector<ComparisonEntry>& entries,
                                            const std::vector<std::uint64_t>& seeds,
                                            ThreadPool* pool) {
  // Flatten (entry, seed) into one task list so the pool stays saturated.
  const std::size_t total = entries.size() * seeds.size();
  std::vector<SimResult> flat;
  if (pool == nullptr) {
    flat.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
      flat.push_back(one_run(spec, entries[i / seeds.size()], seeds[i % seeds.size()]));
    }
  } else {
    flat = parallel_map(*pool, total, [&](std::size_t i) {
      return one_run(spec, entries[i / seeds.size()], seeds[i % seeds.size()]);
    });
  }

  std::vector<ReplicatedStats> stats(entries.size());
  for (std::size_t e = 0; e < entries.size(); ++e) {
    stats[e].name = entries[e].name;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const SimResult& r = flat[e * seeds.size() + s];
      stats[e].total_flowtime.add(r.total_flowtime());
      stats[e].mean_flowtime.add(r.mean_flowtime());
      stats[e].makespan.add(r.makespan_seconds);
      stats[e].cloned_task_fraction.add(r.cloned_task_fraction());
    }
  }
  return stats;
}

}  // namespace dollymp
