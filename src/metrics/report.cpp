#include "dollymp/metrics/report.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "dollymp/common/csv.h"
#include "dollymp/common/table.h"

namespace dollymp {

RunSummary summarize(const SimResult& result) {
  RunSummary s;
  s.scheduler = result.scheduler;
  s.jobs = result.jobs.size();
  s.total_flowtime = result.total_flowtime();
  s.mean_flowtime = result.mean_flowtime();
  s.makespan = result.makespan_seconds;
  s.total_resource_seconds = result.total_resource_seconds();
  s.cloned_task_fraction = result.cloned_task_fraction();
  RunningStats run;
  for (const auto& j : result.jobs) {
    run.add(j.running_time());
    s.clones_launched += j.clones_launched;
  }
  s.mean_running_time = run.mean();
  if (!result.jobs.empty()) {
    s.p95_flowtime = flowtime_cdf(result).quantile(0.95);
    s.p95_running_time = running_time_cdf(result).quantile(0.95);
  }
  s.stats = result.stats;
  return s;
}

Cdf flowtime_cdf(const SimResult& result) {
  std::vector<double> samples;
  samples.reserve(result.jobs.size());
  for (const auto& j : result.jobs) samples.push_back(j.flowtime());
  return Cdf(std::move(samples));
}

Cdf running_time_cdf(const SimResult& result) {
  std::vector<double> samples;
  samples.reserve(result.jobs.size());
  for (const auto& j : result.jobs) samples.push_back(j.running_time());
  return Cdf(std::move(samples));
}

std::vector<std::pair<double, double>> cumulative_flowtime_series(const SimResult& result) {
  std::vector<const JobRecord*> by_arrival;
  by_arrival.reserve(result.jobs.size());
  for (const auto& j : result.jobs) by_arrival.push_back(&j);
  std::stable_sort(by_arrival.begin(), by_arrival.end(),
                   [](const JobRecord* a, const JobRecord* b) {
                     return a->arrival_seconds < b->arrival_seconds;
                   });
  std::vector<std::pair<double, double>> series;
  series.reserve(by_arrival.size());
  double cumulative = 0.0;
  for (const auto* j : by_arrival) {
    cumulative += j->flowtime();
    series.emplace_back(j->arrival_seconds, cumulative);
  }
  return series;
}

PairedRatios paired_ratios(const SimResult& numerator, const SimResult& denominator) {
  std::unordered_map<JobId, const JobRecord*> base;
  base.reserve(denominator.jobs.size());
  for (const auto& j : denominator.jobs) base.emplace(j.id, &j);

  PairedRatios ratios;
  for (const auto& j : numerator.jobs) {
    const auto it = base.find(j.id);
    if (it == base.end()) {
      throw std::invalid_argument("paired_ratios: job sets differ (id " +
                                  std::to_string(j.id) + ")");
    }
    const JobRecord& b = *it->second;
    if (b.flowtime() > 0.0) ratios.flowtime_ratio.add(j.flowtime() / b.flowtime());
    if (b.running_time() > 0.0) {
      ratios.running_time_ratio.add(j.running_time() / b.running_time());
    }
    if (b.resource_seconds > 0.0) {
      ratios.resource_ratio.add(j.resource_seconds / b.resource_seconds);
    }
  }
  return ratios;
}

double PairedRatios::fraction_flowtime_reduced_by(double cut) const {
  return flowtime_ratio.fraction_at_most(1.0 - cut);
}

double mean_flowtime_reduction(const SimResult& candidate, const SimResult& baseline) {
  const double base = baseline.mean_flowtime();
  if (base <= 0.0) return 0.0;
  return 1.0 - candidate.mean_flowtime() / base;
}

std::string render_summaries(const std::vector<RunSummary>& summaries) {
  ConsoleTable table({"scheduler", "jobs", "total_flow_s", "mean_flow_s", "p95_flow_s",
                      "mean_run_s", "p95_run_s", "makespan_s", "resource_s",
                      "cloned_frac", "clones"});
  for (const auto& s : summaries) {
    table.add_row({s.scheduler, std::to_string(s.jobs),
                   ConsoleTable::format_double(s.total_flowtime, 0),
                   ConsoleTable::format_double(s.mean_flowtime, 1),
                   ConsoleTable::format_double(s.p95_flowtime, 1),
                   ConsoleTable::format_double(s.mean_running_time, 1),
                   ConsoleTable::format_double(s.p95_running_time, 1),
                   ConsoleTable::format_double(s.makespan, 0),
                   ConsoleTable::format_double(s.total_resource_seconds, 0),
                   ConsoleTable::format_double(s.cloned_task_fraction, 3),
                   std::to_string(s.clones_launched)});
  }
  return table.render();
}

namespace {

// "-" when no recorder ran; otherwise the stream hash as compact hex — the
// run's replay fingerprint (obs/replay.h), eyeball-comparable across runs.
std::string format_recorder_hash(const SimStats& st) {
  if (st.recorder_records == 0) return "-";
  std::ostringstream os;
  os << "0x" << std::hex << st.recorder_hash;
  return os.str();
}

}  // namespace

std::string render_control_plane(const std::vector<RunSummary>& summaries) {
  ConsoleTable table({"scheduler", "invocations", "slots", "ff_slots", "timers",
                      "events", "arrive", "finish", "fail", "fault_kill",
                      "work_lost_s", "retries", "quarantine", "clone_degr",
                      "shed", "ovl_level", "attempts", "placed",
                      "gangs", "gang_rb", "rack_split",
                      "rej_cap", "rej_full", "rej_other", "idx_query", "idx_scan",
                      "idx_update", "idx_batch", "threads", "par_sect", "par_shards",
                      "par_widest", "arena", "rec",
                      "rec_evict", "rec_hash", "slab_acq", "slab_reuse",
                      "slab_blk", "B/server", "rss_mb", "wall_ms"});
  for (const auto& s : summaries) {
    const SimStats& st = s.stats;
    table.add_row({s.scheduler, std::to_string(st.scheduler_invocations),
                   std::to_string(st.slots_visited),
                   std::to_string(st.slots_fast_forwarded),
                   std::to_string(st.events_timer),
                   std::to_string(st.events_processed()),
                   std::to_string(st.events_job_arrival),
                   std::to_string(st.events_copy_finish + st.events_work_finish),
                   // All machine-loss churn: independent crashes, their
                   // repairs, and rack-correlated outages.
                   std::to_string(st.events_server_failure + st.events_server_repair +
                                  st.events_rack_failure + st.events_rack_repair),
                   std::to_string(st.copies_killed_by_faults),
                   ConsoleTable::format_double(st.work_seconds_lost, 0),
                   std::to_string(st.retries_issued),
                   // entries/exits: "3/2" reads as one server still serving.
                   std::to_string(st.servers_quarantined) + "/" +
                       std::to_string(st.quarantine_exits),
                   std::to_string(st.clone_budget_degradations),
                   // bucket/watermark/level-3: which protection layer shed,
                   // all zero unless the service-mode gate is on.
                   std::to_string(st.arrivals_shed_admission) + "/" +
                       std::to_string(st.arrivals_shed_watermark) + "/" +
                       std::to_string(st.arrivals_shed_overload),
                   // transitions>peak: "4>2" reads as four ladder moves,
                   // worst level 2.
                   std::to_string(st.overload_transitions) + ">" +
                       std::to_string(st.overload_level_max),
                   std::to_string(st.placement_attempts),
                   std::to_string(st.placements_accepted),
                   // waves/tasks: a healthy gang run reads as
                   // "64/512" with tasks == waves * world_size.
                   std::to_string(st.gangs_placed) + "/" +
                       std::to_string(st.gang_tasks_placed),
                   std::to_string(st.gang_rollbacks),
                   std::to_string(st.gangs_split_across_racks),
                   std::to_string(st.rejected_copy_cap),
                   std::to_string(st.rejected_no_capacity),
                   std::to_string(st.rejected_job_not_ready + st.rejected_phase_not_runnable +
                                  st.rejected_invalid_server),
                   std::to_string(st.index_queries),
                   std::to_string(st.index_servers_scanned),
                   std::to_string(st.index_updates),
                   // hits/rebuilds: a healthy batched run is hit-dominated.
                   std::to_string(st.index_batch_hits) + "/" +
                       std::to_string(st.index_batch_rebuilds),
                   // configured->resolved: "0>4" says threads=0 picked up 4
                   // hardware workers; "1>1" is the serial default.
                   std::to_string(st.threads_configured) + ">" +
                       std::to_string(st.threads_resolved),
                   std::to_string(st.parallel_sections),
                   std::to_string(st.parallel_shards),
                   std::to_string(st.parallel_max_shard_items),
                   // scratch-arena reuses/grows: steady state must be all
                   // reuses (the zero-allocation claim).
                   std::to_string(st.parallel_arena_reuses) + "/" +
                       std::to_string(st.parallel_arena_grows),
                   std::to_string(st.recorder_records),
                   std::to_string(st.recorder_evictions),
                   format_recorder_hash(st),
                   std::to_string(st.copy_slab_acquires),
                   std::to_string(st.copy_slab_reuses),
                   std::to_string(st.copy_slab_blocks),
                   ConsoleTable::format_double(st.bytes_per_server, 0),
                   ConsoleTable::format_double(
                       static_cast<double>(st.peak_rss_bytes) / (1024.0 * 1024.0), 0),
                   ConsoleTable::format_double(st.wall_clock_seconds * 1e3, 1)});
  }
  return table.render();
}

double jain_fairness_of_slowdowns(const SimResult& result) {
  if (result.jobs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;
  for (const auto& j : result.jobs) {
    const double run = j.running_time();
    if (run <= 0.0) continue;
    const double slowdown = j.flowtime() / run;
    sum += slowdown;
    sum_sq += slowdown * slowdown;
    ++n;
  }
  if (n == 0 || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

Cdf slowdown_cdf(const SimResult& result) {
  std::vector<double> samples;
  samples.reserve(result.jobs.size());
  for (const auto& j : result.jobs) {
    const double run = j.running_time();
    if (run > 0.0) samples.push_back(j.flowtime() / run);
  }
  return Cdf(std::move(samples));
}

std::string results_to_csv(const SimResult& result) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_header({"job_id", "name", "app", "arrival_s", "first_start_s", "finish_s",
                       "flowtime_s", "running_s", "tasks", "clones", "speculative",
                       "tasks_with_clones", "resource_s"});
  for (const auto& j : result.jobs) {
    writer.write_row(static_cast<long long>(j.id), j.name, j.app, j.arrival_seconds,
                     j.first_start_seconds, j.finish_seconds, j.flowtime(),
                     j.running_time(), static_cast<long long>(j.total_tasks),
                     static_cast<long long>(j.clones_launched),
                     static_cast<long long>(j.speculative_launched),
                     static_cast<long long>(j.tasks_with_clones), j.resource_seconds);
  }
  return os.str();
}

void save_results(const SimResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_results: cannot write " + path);
  out << results_to_csv(result);
}

std::string render_cdf_rows(const std::string& label, const Cdf& cdf) {
  std::ostringstream os;
  os << label << ":";
  for (const auto& [q, v] : cdf.curve(10)) {
    os << "  p" << static_cast<int>(q * 100) << "=" << ConsoleTable::format_double(v, 1);
  }
  os << '\n';
  return os.str();
}

}  // namespace dollymp
