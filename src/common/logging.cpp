#include "dollymp/common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dollymp {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::clog << "[" << log_level_name(level) << "] " << message << '\n';
}

}  // namespace dollymp
