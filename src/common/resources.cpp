#include "dollymp/common/resources.h"

#include <ostream>
#include <sstream>

namespace dollymp {

double Resources::dominant_share(const Resources& total) const {
  double share = 0.0;
  if (total.cpu > 0.0) share = std::max(share, cpu / total.cpu);
  if (total.mem > 0.0) share = std::max(share, mem / total.mem);
  return share;
}

std::string Resources::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Resources& r) {
  return os << "(" << r.cpu << " cores, " << r.mem << " GB)";
}

double normalized_sum(const Resources& r, const Resources& total) {
  double sum = 0.0;
  if (total.cpu > 0.0) sum += r.cpu / total.cpu;
  if (total.mem > 0.0) sum += r.mem / total.mem;
  return sum;
}

}  // namespace dollymp
