#include "dollymp/common/resources.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace dollymp {

double Resources::dominant_share(const Resources& total) const {
  double share = 0.0;
  for (std::size_t d = 0; d < kMaxDims; ++d) {
    if (total.dims[d] > 0.0) share = std::max(share, dims[d] / total.dims[d]);
  }
  return share;
}

std::string Resources::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Resources& r) {
  // The historical two-dimensional rendering, with populated extra axes
  // appended — so two-dimensional output (and every test pinned to it) is
  // byte-identical.
  os << "(" << r.cpu() << " cores, " << r.mem() << " GB";
  if (r.gpu() != 0.0) os << ", " << r.gpu() << " gpu";
  for (std::size_t d = Resources::kGpuDim + 1; d < Resources::kMaxDims; ++d) {
    if (r[d] != 0.0) os << ", " << r[d] << " r" << d;
  }
  return os << ")";
}

double normalized_sum(const Resources& r, const Resources& total) {
  double sum = 0.0;
  for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
    if (total[d] > 0.0) sum += r[d] / total[d];
  }
  return sum;
}

double min_free_fraction(const Resources& free, const Resources& total) {
  double fraction = 0.0;
  bool any = false;
  for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
    if (total[d] <= 0.0) continue;
    const double f = free[d] / total[d];
    fraction = any ? std::min(fraction, f) : f;
    any = true;
  }
  return any ? fraction : 0.0;
}

}  // namespace dollymp
