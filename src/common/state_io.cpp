#include "dollymp/common/state_io.h"

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <utility>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace dollymp {

namespace {

constexpr std::size_t kMagicLen = 9;  // "DMPCKPT01" without the NUL

[[nodiscard]] std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = kStateHashSeed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kStateHashPrime;
  }
  return h;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> StateWriter::finish() {
  std::vector<std::uint8_t> out;
  out.reserve(kMagicLen + 4 + 8 + buf_.size() + 8);
  out.insert(out.end(), kStateMagic, kStateMagic + kMagicLen);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(kStateVersion >> (8 * i)));
  }
  put_u64(out, buf_.size());
  out.insert(out.end(), buf_.begin(), buf_.end());
  put_u64(out, fnv1a(buf_.data(), buf_.size()));
  buf_.clear();
  return out;
}

StateReader::StateReader(const std::uint8_t* data, std::size_t size) : data_(data) {
  const std::size_t header = kMagicLen + 4 + 8;
  if (size < header + 8) {
    throw std::runtime_error("snapshot: truncated (shorter than the DMPCKPT01 envelope)");
  }
  if (std::memcmp(data, kStateMagic, kMagicLen) != 0) {
    throw std::runtime_error("snapshot: bad magic (not a DMPCKPT01 snapshot)");
  }
  const std::uint32_t version = get_u32(data + kMagicLen);
  if (version != kStateVersion) {
    throw std::runtime_error("snapshot: unsupported DMPCKPT01 version " +
                             std::to_string(version));
  }
  const std::uint64_t payload = get_u64(data + kMagicLen + 4);
  if (header + payload + 8 != size) {
    throw std::runtime_error("snapshot: truncated or trailing bytes (payload length " +
                             std::to_string(payload) + " does not match file size " +
                             std::to_string(size) + ")");
  }
  const std::uint64_t stored = get_u64(data + header + payload);
  const std::uint64_t computed = fnv1a(data + header, payload);
  if (stored != computed) {
    throw std::runtime_error("snapshot: payload hash mismatch (corrupted snapshot)");
  }
  pos_ = header;
  end_ = header + payload;
}

std::string StateReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

void StateReader::section(std::uint32_t tag) {
  const std::uint32_t got = u32();
  if (got != (0x5EC70000u ^ tag)) {
    throw std::runtime_error("snapshot: expected section tag " + std::to_string(tag) +
                             ", stream is out of sync");
  }
}

void StateReader::expect_done() const {
  if (pos_ != end_) {
    throw std::runtime_error("snapshot: " + std::to_string(end_ - pos_) +
                             " unread payload byte(s) after the last field");
  }
}

void StateReader::need(std::size_t n) const {
  if (end_ - pos_ < n) {
    throw std::runtime_error("snapshot: truncated payload (field overruns the envelope)");
  }
}

void StateReader::check_record_size(std::uint32_t stored, std::size_t expected) {
  if (stored != expected) {
    throw std::runtime_error("snapshot: record size " + std::to_string(stored) +
                             " does not match this build's layout (" +
                             std::to_string(expected) + ")");
  }
}

namespace {

/// The current errno rendered for an exception message ("No space left on
/// device" and friends) — captured immediately, before cleanup syscalls can
/// clobber it.
[[nodiscard]] std::string errno_text() {
  const int err = errno;
  return err != 0 ? std::string(std::strerror(err)) : std::string("unknown error");
}

/// Durability barrier on a stdio stream: flush userspace buffers, then ask
/// the kernel to push the file to stable storage.  Both failures matter for
/// a checkpoint — a short fflush is how a full disk usually surfaces.
void flush_and_sync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    const std::string why = errno_text();
    std::fclose(f);
    throw std::runtime_error("snapshot: short write to " + path +
                             " (disk full?): " + why);
  }
#if defined(_WIN32)
  if (_commit(_fileno(f)) != 0) {
#else
  if (fsync(fileno(f)) != 0) {
#endif
    const std::string why = errno_text();
    std::fclose(f);
    throw std::runtime_error("snapshot: fsync of " + path + " failed: " + why);
  }
}

}  // namespace

void write_state_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  // Atomic publish: write the bytes to a sibling temp file, fsync, then
  // rename over the target.  A crash (or SIGKILL) at any instant leaves
  // either the previous complete file or the new complete file — the
  // supervisor's recovery path depends on never seeing a torn snapshot.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("snapshot: cannot open " + tmp +
                             " for write: " + errno_text());
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (written != bytes.size()) {
    const std::string why = errno_text();
    std::fclose(f);
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: short write to " + tmp + " (" +
                             std::to_string(written) + " of " +
                             std::to_string(bytes.size()) +
                             " bytes, disk full?): " + why);
  }
  flush_and_sync(f, tmp);
  if (std::fclose(f) != 0) {
    const std::string why = errno_text();
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: close of " + tmp + " failed: " + why);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: rename " + tmp + " -> " + path +
                             " failed: " + why);
  }
}

std::vector<std::uint8_t> read_state_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("snapshot: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) throw std::runtime_error("snapshot: short read from " + path);
  return bytes;
}

SnapshotRotation::SnapshotRotation(std::string base_path) : base_(std::move(base_path)) {
  if (base_.empty()) {
    throw std::invalid_argument("SnapshotRotation: empty base path");
  }
}

void SnapshotRotation::write(const std::vector<std::uint8_t>& bytes) {
  // Stage the new snapshot as a complete sibling file first, then demote
  // the current latest and promote the stage — two renames, each atomic.
  // The worst crash window (after the demote, before the promote) leaves no
  // `.latest` but a complete `.prev`, which newest_valid() falls back to.
  const std::string staging = base_ + ".staging";
  write_state_file(staging, bytes);
  // ENOENT is fine on the first write; any other rename failure is real.
  if (std::rename(latest_path().c_str(), previous_path().c_str()) != 0 &&
      errno != ENOENT) {
    throw std::runtime_error("snapshot: rotate " + latest_path() + " -> " +
                             previous_path() + " failed: " + errno_text());
  }
  if (std::rename(staging.c_str(), latest_path().c_str()) != 0) {
    throw std::runtime_error("snapshot: publish " + staging + " -> " +
                             latest_path() + " failed: " + errno_text());
  }
}

std::string SnapshotRotation::newest_valid() {
  for (const std::string& candidate : {latest_path(), previous_path()}) {
    std::FILE* probe = std::fopen(candidate.c_str(), "rb");
    if (probe == nullptr) continue;  // generation not written yet
    std::fclose(probe);
    try {
      const std::vector<std::uint8_t> bytes = read_state_file(candidate);
      StateReader r(bytes);  // envelope check: magic, version, length, hash
      return candidate;
    } catch (const std::runtime_error&) {
      // Corrupted: move it out of the rotation under a fresh quarantine
      // name (kept for forensics, never re-picked) and fall through to the
      // older generation.
      for (int n = 0;; ++n) {
        const std::string jail = candidate + ".quarantined." + std::to_string(n);
        std::FILE* taken = std::fopen(jail.c_str(), "rb");
        if (taken != nullptr) {
          std::fclose(taken);
          continue;
        }
        if (std::rename(candidate.c_str(), jail.c_str()) != 0) {
          throw std::runtime_error("snapshot: quarantine " + candidate + " -> " +
                                   jail + " failed: " + errno_text());
        }
        break;
      }
      ++quarantined_;
    }
  }
  return "";
}

bool SnapshotRotation::is_quarantined_path(const std::string& path) {
  return path.find(".quarantined.") != std::string::npos;
}

}  // namespace dollymp
