#include "dollymp/common/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dollymp {

namespace {

// RFC 4180-ish tokenizer: returns rows of fields.
std::vector<std::vector<std::string>> tokenize(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) throw std::runtime_error("CSV: quote inside unquoted field");
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the next field exists even if empty
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted field");
  if (field_started || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace

CsvTable CsvTable::parse(std::string_view text) {
  auto rows = tokenize(text);
  CsvTable table;
  if (rows.empty()) return table;
  table.header_ = std::move(rows.front());
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() != table.header_.size()) {
      throw std::runtime_error("CSV: row " + std::to_string(i) + " has " +
                               std::to_string(rows[i].size()) + " fields, expected " +
                               std::to_string(table.header_.size()));
    }
    table.rows_.push_back(std::move(rows[i]));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CSV: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

const std::string& CsvTable::cell(std::size_t row, std::string_view col_name) const {
  const auto col = column(col_name);
  if (!col) throw std::out_of_range("CSV: no column named " + std::string(col_name));
  return cell(row, *col);
}

double CsvTable::cell_double(std::size_t row, std::string_view col_name) const {
  const std::string& s = cell(row, col_name);
  try {
    return std::stod(s);
  } catch (const std::exception&) {
    throw std::runtime_error("CSV: cell '" + s + "' is not a number");
  }
}

long long CsvTable::cell_int(std::size_t row, std::string_view col_name) const {
  const std::string& s = cell(row, col_name);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("CSV: cell '" + s + "' is not an integer");
  }
  return value;
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("CSV: add_row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string CsvTable::to_string() const {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_strings(header_);
  for (const auto& row : rows_) writer.write_strings(row);
  return os.str();
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("CSV: cannot write " + path);
  out << to_string();
}

void CsvWriter::write_strings(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) os_ << ',';
    os_ << csv_escape(fields[i]);
  }
  os_ << '\n';
}

std::string CsvWriter::field_to_string(double v) {
  std::ostringstream os;
  // max_digits10 so doubles survive a write/parse round trip bit-exactly.
  os.precision(17);
  os << v;
  return os.str();
}

std::string csv_escape(std::string_view field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace dollymp
