#include "dollymp/common/thread_pool.h"

#include <algorithm>

namespace dollymp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;  // already shut down
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for(&pool, n, fn);
}

}  // namespace dollymp
