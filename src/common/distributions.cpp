#include "dollymp/common/distributions.h"

#include <algorithm>
#include <limits>

namespace dollymp {

namespace {
void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}
}  // namespace

// ---------------------------------------------------------------- Pareto ---

ParetoDist::ParetoDist(double scale, double shape) : scale_(scale), shape_(shape) {
  require(scale > 0.0, "ParetoDist: scale must be > 0");
  require(shape > 0.0, "ParetoDist: shape must be > 0");
}

double ParetoDist::mean() const {
  if (shape_ <= 1.0) throw std::domain_error("ParetoDist::mean: requires alpha > 1");
  return shape_ * scale_ / (shape_ - 1.0);
}

double ParetoDist::variance() const {
  if (shape_ <= 2.0) throw std::domain_error("ParetoDist::variance: requires alpha > 2");
  const double am1 = shape_ - 1.0;
  return scale_ * scale_ * shape_ / (am1 * am1 * (shape_ - 2.0));
}

double ParetoDist::tail(double x) const {
  if (x <= scale_) return 1.0;
  return std::pow(scale_ / x, shape_);
}

double ParetoDist::quantile(double u) const {
  u = std::clamp(u, 0.0, std::nextafter(1.0, 0.0));
  return scale_ * std::pow(1.0 - u, -1.0 / shape_);
}

ParetoDist ParetoDist::fit(double mean, double cv) {
  require(mean > 0.0, "ParetoDist::fit: mean must be > 0");
  require(cv > 0.0, "ParetoDist::fit: cv must be > 0");
  const double alpha = 1.0 + std::sqrt(1.0 + 1.0 / (cv * cv));
  const double scale = mean * (alpha - 1.0) / alpha;
  return {scale, alpha};
}

// -------------------------------------------------------- bounded Pareto ---

BoundedParetoDist::BoundedParetoDist(double scale, double shape, double upper)
    : scale_(scale), shape_(shape), upper_(upper) {
  require(scale > 0.0, "BoundedParetoDist: scale must be > 0");
  require(shape > 0.0, "BoundedParetoDist: shape must be > 0");
  require(upper > scale, "BoundedParetoDist: upper must exceed scale");
}

double BoundedParetoDist::quantile(double u) const {
  u = std::clamp(u, 0.0, std::nextafter(1.0, 0.0));
  const double la = std::pow(scale_, shape_);
  const double ha = std::pow(upper_, shape_);
  // Inverse CDF of the truncated Pareto.
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(x, -1.0 / shape_);
}

double BoundedParetoDist::mean() const {
  if (shape_ == 1.0) {
    return scale_ * upper_ / (upper_ - scale_) * std::log(upper_ / scale_);
  }
  const double la = std::pow(scale_, shape_);
  const double ha = std::pow(upper_, shape_);
  return la / (1.0 - la / ha) * (shape_ / (shape_ - 1.0)) *
         (1.0 / std::pow(scale_, shape_ - 1.0) - 1.0 / std::pow(upper_, shape_ - 1.0));
}

// ------------------------------------------------------------- lognormal ---

LognormalDist::LognormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  require(sigma >= 0.0, "LognormalDist: sigma must be >= 0");
}

double LognormalDist::sample(Rng& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

LognormalDist LognormalDist::fit(double mean, double cv) {
  require(mean > 0.0, "LognormalDist::fit: mean must be > 0");
  require(cv >= 0.0, "LognormalDist::fit: cv must be >= 0");
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return {mu, std::sqrt(sigma2)};
}

// ----------------------------------------------------------- exponential ---

ExponentialDist::ExponentialDist(double mean) : mean_(mean) {
  require(mean > 0.0, "ExponentialDist: mean must be > 0");
}

double ExponentialDist::sample(Rng& rng) const {
  // -log(1-U) with U in [0,1): argument stays in (0,1], no log(0).
  return -mean_ * std::log1p(-rng.uniform());
}

WeibullDist::WeibullDist(double mean, double shape) : mean_(mean), shape_(shape) {
  require(mean > 0.0, "WeibullDist: mean must be > 0");
  require(shape > 0.0, "WeibullDist: shape must be > 0");
  scale_ = mean / std::tgamma(1.0 + 1.0 / shape);
}

double WeibullDist::quantile(double u) const {
  // -log1p(-u) keeps the argument in (0,1] like the exponential sampler.
  return scale_ * std::pow(-std::log1p(-u), 1.0 / shape_);
}

double sample_standard_normal(Rng& rng) {
  // Marsaglia polar method; rejection loop terminates with probability 1.
  for (;;) {
    const double u = 2.0 * rng.uniform() - 1.0;
    const double v = 2.0 * rng.uniform() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

// ----------------------------------------------------- speedup function  ---

SpeedupFunction::SpeedupFunction(double alpha) : alpha_(alpha) {
  if (std::isfinite(alpha)) {
    require(alpha > 1.0, "SpeedupFunction: alpha must be > 1");
  }
}

SpeedupFunction SpeedupFunction::from_stats(double mean, double stddev) {
  require(mean > 0.0, "SpeedupFunction::from_stats: mean must be > 0");
  require(stddev >= 0.0, "SpeedupFunction::from_stats: stddev must be >= 0");
  if (stddev == 0.0) {
    return SpeedupFunction(std::numeric_limits<double>::infinity());
  }
  return SpeedupFunction(ParetoDist::fit(mean, stddev / mean).shape());
}

double SpeedupFunction::operator()(double x) const {
  if (x < 1.0) throw std::invalid_argument("SpeedupFunction: x must be >= 1");
  if (degenerate()) return 1.0;
  return 1.0 + (1.0 - 1.0 / x) / (alpha_ - 1.0);
}

double SpeedupFunction::upper_bound() const {
  if (degenerate()) return 1.0;
  return alpha_ / (alpha_ - 1.0);
}

int SpeedupFunction::min_copies_for(double theta, double budget) const {
  if (budget <= 0.0) return 0;
  if (budget >= theta) return 1;
  if (degenerate()) return 0;  // h == 1 forever; no number of copies helps.
  // Need h(r) >= theta/budget, i.e. 1 + (1-1/r)/(alpha-1) >= theta/budget.
  const double target = theta / budget;
  if (target >= upper_bound()) return 0;
  // Solve (1 - 1/r) >= (target - 1)(alpha - 1)  =>  r >= 1 / (1 - rhs).
  const double rhs = (target - 1.0) * (alpha_ - 1.0);
  const double r = 1.0 / (1.0 - rhs);
  return static_cast<int>(std::ceil(r - 1e-12));
}

}  // namespace dollymp
