#include "dollymp/common/rng.h"

namespace dollymp {

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire's nearly-divisionless method: multiply-shift with a rejection
  // step that removes modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace dollymp
