#include "dollymp/common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dollymp {

ConsoleTable::ConsoleTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("ConsoleTable: empty header");
}

void ConsoleTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("ConsoleTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void ConsoleTable::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (const double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void ConsoleTable::add_labeled_row(std::string label, const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(std::move(label));
  for (const double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string ConsoleTable::format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string ConsoleTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  return os.str();
}

std::string ConsoleTable::render(const std::string& caption) const {
  return banner(caption) + render();
}

std::string banner(const std::string& title) {
  std::ostringstream os;
  os << "\n== " << title << " " << std::string(title.size() < 66 ? 66 - title.size() : 2, '=')
     << '\n';
  return os.str();
}

}  // namespace dollymp
