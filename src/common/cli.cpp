#include "dollymp/common/cli.h"

#include <algorithm>
#include <sstream>

namespace dollymp::cli {

std::vector<std::string> normalize_args(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  return args;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, sep)) parts.push_back(token);
  return parts;
}

std::size_t edit_distance(const std::string& a, const std::string& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  // Two-row dynamic program; flags are short so this is plenty.
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, subst});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

std::string closest_flag(const std::string& flag,
                         const std::vector<std::string>& known) {
  const std::size_t budget = std::max<std::size_t>(2, flag.size() / 3);
  std::string best;
  std::size_t best_distance = budget + 1;
  for (const std::string& candidate : known) {
    const std::size_t d = edit_distance(flag, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

std::string unknown_flag_message(const std::string& flag,
                                 const std::vector<std::string>& known) {
  std::string message = "unknown option " + flag;
  const std::string suggestion = closest_flag(flag, known);
  if (!suggestion.empty()) message += " (did you mean " + suggestion + "?)";
  return message;
}

}  // namespace dollymp::cli
