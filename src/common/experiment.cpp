#include "dollymp/common/experiment.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "dollymp/sim/simulator.h"

namespace dollymp {

namespace {

/// Everything one replication contributes to its cell, extracted on the
/// worker so the (potentially large) SimResult dies there.
struct ReplicationSample {
  double total_flowtime = 0.0;
  double mean_flowtime = 0.0;
  double makespan = 0.0;
  double cloned_task_fraction = 0.0;
  std::vector<double> flowtimes;      ///< per job, job order
  std::vector<double> running_times;  ///< per job, job order
};

ReplicationSample run_one(const SweepSpec& spec, std::size_t policy,
                          const SweepFaultPreset& preset, std::uint64_t seed) {
  SimConfig config = spec.base;
  config.seed = seed;
  config.failures = preset.failures;
  config.faults = preset.faults;
  config.recorder = nullptr;  // replications must not share a recorder
  const auto scheduler = spec.policies[policy].factory();
  const SimResult result = simulate(spec.cluster, config, spec.jobs, *scheduler);

  ReplicationSample sample;
  sample.makespan = result.makespan_seconds;
  sample.flowtimes.reserve(result.jobs.size());
  sample.running_times.reserve(result.jobs.size());
  long long tasks = 0;
  long long cloned = 0;
  for (const auto& job : result.jobs) {
    const double flow = job.finish_seconds - job.arrival_seconds;
    sample.flowtimes.push_back(flow);
    sample.running_times.push_back(job.finish_seconds - job.first_start_seconds);
    sample.total_flowtime += flow;
    tasks += job.total_tasks;
    cloned += job.tasks_with_clones;
  }
  if (!result.jobs.empty()) {
    sample.mean_flowtime = sample.total_flowtime / static_cast<double>(result.jobs.size());
  }
  if (tasks > 0) {
    sample.cloned_task_fraction = static_cast<double>(cloned) / static_cast<double>(tasks);
  }
  return sample;
}

/// Shortest round-trip-exact decimal form; deterministic for equal doubles,
/// so equal sweeps render equal JSON bytes.
std::string fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

void append_stats(std::string& out, const char* name, const RunningStats& stats) {
  const MeanCi ci = mean_ci95(stats);
  out += "\"";
  out += name;
  out += "\":{\"n\":" + std::to_string(ci.n) + ",\"mean\":" + fmt(ci.mean) +
         ",\"sd\":" + fmt(ci.sd) + ",\"ci95_lo\":" + fmt(ci.lo) +
         ",\"ci95_hi\":" + fmt(ci.hi) + "}";
}

void append_cdf(std::string& out, const char* name, const Cdf& cdf) {
  out += "\"";
  out += name;
  out += "\":{\"count\":" + std::to_string(cdf.count()) + ",\"quantiles\":[";
  bool first = true;
  for (const auto& [q, v] : cdf.curve(20)) {
    if (!first) out += ",";
    first = false;
    out += "[" + fmt(q) + "," + fmt(v) + "]";
  }
  out += "]}";
}

}  // namespace

SweepFaultPreset make_fault_preset(const std::string& name) {
  // Rates mirror the chaos harness's classes (tools/dollymp_chaos.cpp):
  // aggressive relative to typical task durations so every preset actually
  // exercises its class.
  SweepFaultPreset preset;
  preset.name = name;
  if (name == "healthy") return preset;
  bool known = false;
  if (name == "crash" || name == "all") {
    preset.failures.enabled = true;
    preset.failures.mean_time_to_failure_seconds = 600.0;
    preset.failures.mean_repair_seconds = 120.0;
    known = true;
  }
  if (name == "rack" || name == "all") {
    preset.faults.rack.enabled = true;
    preset.faults.rack.time_to_failure.mean_seconds = 1500.0;
    preset.faults.rack.repair.mean_seconds = 200.0;
    known = true;
  }
  if (name == "failslow" || name == "all") {
    preset.faults.fail_slow.enabled = true;
    preset.faults.fail_slow.slowdown_factor = 3.0;
    preset.faults.fail_slow.time_to_onset.mean_seconds = 600.0;
    preset.faults.fail_slow.recovery.mean_seconds = 300.0;
    known = true;
  }
  if (name == "copyfault" || name == "all") {
    preset.faults.copy.enabled = true;
    preset.faults.copy.inter_fault.mean_seconds = 120.0;
    known = true;
  }
  if (!known) {
    throw std::invalid_argument(
        "make_fault_preset: unknown preset '" + name +
        "' (known: healthy, crash, rack, failslow, copyfault, all)");
  }
  return preset;
}

MeanCi mean_ci95(const RunningStats& stats) {
  MeanCi ci;
  ci.n = stats.count();
  ci.mean = stats.mean();
  ci.sd = stats.stddev();
  if (ci.n >= 2) {
    const double half = 1.96 * ci.sd / std::sqrt(static_cast<double>(ci.n));
    ci.lo = ci.mean - half;
    ci.hi = ci.mean + half;
  } else {
    ci.lo = ci.mean;
    ci.hi = ci.mean;
  }
  return ci;
}

SweepResult run_sweep(const SweepSpec& spec, ThreadPool* pool) {
  if (spec.policies.empty()) {
    throw std::invalid_argument("run_sweep: spec.policies must be non-empty");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed} : spec.seeds;
  std::vector<SweepFaultPreset> presets = spec.fault_presets;
  if (presets.empty()) {
    // Pass-through preset: keep whatever the base config already enables.
    presets.push_back(SweepFaultPreset{"base", spec.base.failures, spec.base.faults});
  }

  // Grid order is the determinism anchor: replication r is
  // (policy, preset, seed) in policy-major / preset-middle / seed-minor
  // order, and every aggregate below folds samples in exactly this order
  // whatever the execution interleaving was.
  const std::size_t total = spec.policies.size() * presets.size() * seeds.size();
  const auto cell_of = [&](std::size_t r) {
    return std::pair<std::size_t, std::size_t>{r / seeds.size(), r % seeds.size()};
  };
  const auto run_index = [&](std::size_t r) {
    const auto [cell, seed_idx] = cell_of(r);
    return run_one(spec, cell / presets.size(), presets[cell % presets.size()],
                   seeds[seed_idx]);
  };

  std::vector<ReplicationSample> samples;
  if (pool != nullptr && pool->size() >= 2) {
    samples = parallel_map(*pool, total, run_index);
  } else {
    samples.reserve(total);
    for (std::size_t r = 0; r < total; ++r) samples.push_back(run_index(r));
  }

  SweepResult result;
  result.replications = total;
  result.cells.resize(spec.policies.size() * presets.size());
  for (std::size_t r = 0; r < total; ++r) {
    const auto [cell_idx, seed_idx] = cell_of(r);
    (void)seed_idx;
    SweepCell& cell = result.cells[cell_idx];
    if (cell.replications == 0) {
      cell.policy = spec.policies[cell_idx / presets.size()].name;
      cell.fault = presets[cell_idx % presets.size()].name;
    }
    const ReplicationSample& sample = samples[r];
    ++cell.replications;
    cell.total_flowtime_seconds.add(sample.total_flowtime);
    cell.mean_flowtime_seconds.add(sample.mean_flowtime);
    cell.makespan_seconds.add(sample.makespan);
    cell.cloned_task_fraction.add(sample.cloned_task_fraction);
    for (const double flow : sample.flowtimes) cell.flowtime_seconds.add(flow);
    for (const double run : sample.running_times) cell.running_time_seconds.add(run);
  }
  result.wall_clock_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

std::string render_sweep_json(const SweepResult& result) {
  std::string out = "{\"schema\":\"dollymp-sweep-v1\",\"replications\":" +
                    std::to_string(result.replications) + ",\"cells\":[";
  bool first_cell = true;
  for (const auto& cell : result.cells) {
    if (!first_cell) out += ",";
    first_cell = false;
    out += "{\"policy\":\"" + cell.policy + "\",\"fault\":\"" + cell.fault +
           "\",\"replications\":" + std::to_string(cell.replications) + ",";
    append_stats(out, "total_flowtime_seconds", cell.total_flowtime_seconds);
    out += ",";
    append_stats(out, "mean_flowtime_seconds", cell.mean_flowtime_seconds);
    out += ",";
    append_stats(out, "makespan_seconds", cell.makespan_seconds);
    out += ",";
    append_stats(out, "cloned_task_fraction", cell.cloned_task_fraction);
    out += ",";
    append_cdf(out, "flowtime_cdf", cell.flowtime_seconds);
    out += ",";
    append_cdf(out, "running_time_cdf", cell.running_time_seconds);
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace dollymp
