#include "dollymp/common/stats.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace dollymp {

// ---------------------------------------------------------- RunningStats ---

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const { return mean_ == 0.0 ? 0.0 : stddev() / std::abs(mean_); }

// ------------------------------------------------------------------- Cdf ---

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)), sorted_(false) {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

std::size_t Cdf::count() const { return samples_.size(); }

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::fraction_at_most(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  const auto n = static_cast<double>(samples_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Cdf::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Cdf::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(q, quantile(q));
  }
  return out;
}

const std::vector<double>& Cdf::sorted_samples() const {
  ensure_sorted();
  return samples_;
}

// ------------------------------------------------------------- Histogram ---

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (buckets == 0) throw std::invalid_argument("Histogram: needs >= 1 bucket");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_high(std::size_t i) const { return bucket_low(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bars = counts_[i] * width / peak;
    os << "[" << bucket_low(i) << ", " << bucket_high(i) << ") "
       << std::string(bars, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double quantile_of(std::vector<double> samples, double q) {
  return Cdf(std::move(samples)).quantile(q);
}

long long process_peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    long long kb = 0;
    std::istringstream fields(line.substr(6));
    fields >> kb;
    return kb * 1024;
  }
#endif
  return 0;
}

}  // namespace dollymp
