// Classic priority-based baselines of Section 4.2: SRPT and SVF.
//
// SRPT orders jobs by remaining (effective) processing time; SVF by
// remaining volume (processing time x dominant resource share).  Both place
// greedily in that order with best-fit servers.  An optional clone budget
// lets leftover resources be spent on clones in the same order, so the
// cloning-policy ablation can separate the effect of the priority rule
// from the effect of cloning.
#pragma once

#include "dollymp/sched/scheduler.h"

namespace dollymp {

enum class SimplePriorityRule { kSrpt, kSvf };

struct SimplePriorityConfig {
  SimplePriorityRule rule = SimplePriorityRule::kSrpt;
  double sigma_factor = 1.5;
  /// Extra copies per task spent on leftover resources (0 = pure baseline).
  int clone_budget = 0;
};

class SimplePriorityScheduler final : public Scheduler {
 public:
  explicit SimplePriorityScheduler(SimplePriorityConfig config = {});

  [[nodiscard]] std::string name() const override;
  void schedule(SchedulerContext& ctx) override;

 private:
  SimplePriorityConfig config_;
};

}  // namespace dollymp
