// Knapsack oracles for Algorithm 1, step 6:
//
//     max  sum_{j in B_l} x_j    s.t.  sum_{j in B_l} v_j x_j <= 2^l
//
// All profits are 1, so the greedy rule "take items by increasing weight
// until the budget is exhausted" is exactly optimal (the paper notes the
// oracle "can be solved efficiently by selecting items with the smallest
// weights since the profits of all items are the same").  A dynamic-
// programming 0/1 solver for general profits is included for validation
// and for experimentation with weighted-job variants.
#pragma once

#include <cstddef>
#include <vector>

namespace dollymp {

/// Result of a knapsack solve: chosen item indices (into the input arrays)
/// and the total weight taken.
struct KnapsackPick {
  std::vector<std::size_t> chosen;
  double total_weight = 0.0;
  double total_profit = 0.0;
};

/// Unit-profit oracle: maximize the number of chosen items subject to the
/// weight budget.  Optimal; O(n log n).  Negative weights are rejected.
[[nodiscard]] KnapsackPick knapsack_unit_profit(const std::vector<double>& weights,
                                                double budget);

/// General 0/1 knapsack via DP over a discretized weight grid.
/// `resolution` is the number of grid cells the budget is split into
/// (weights are conservatively rounded up, so the budget is never
/// violated; more cells = closer to optimal).  O(n * resolution).
[[nodiscard]] KnapsackPick knapsack_dp(const std::vector<double>& weights,
                                       const std::vector<double>& profits, double budget,
                                       std::size_t resolution = 4096);

/// Exhaustive solver for tests (n <= 24).
[[nodiscard]] KnapsackPick knapsack_brute_force(const std::vector<double>& weights,
                                                const std::vector<double>& profits,
                                                double budget);

/// Exact branch-and-bound 0/1 solver with the fractional (Dantzig) upper
/// bound.  Exponential worst case but fast in practice for the moderate
/// instance sizes of weighted-priority experiments; exact unlike the DP
/// (which discretizes weights).  Used to validate both other solvers and
/// to support weighted-job variants of the priority oracle.
[[nodiscard]] KnapsackPick knapsack_branch_and_bound(const std::vector<double>& weights,
                                                     const std::vector<double>& profits,
                                                     double budget);

}  // namespace dollymp
