// The Capacity Scheduler baseline (Hadoop YARN's default, Section 6.1).
//
// With a single queue the Capacity Scheduler serves applications in FIFO
// arrival order, granting each job's outstanding container requests before
// moving to the next job (head-of-line behaviour is what makes its
// flowtimes balloon under load in Figs. 6-7).  Hadoop's speculative
// execution runs on top: slow tasks get one backup copy each when spare
// resources exist (sim/speculation.h) — reproducing the paper's Fig. 1
// observation that backups launch too late to rescue small jobs.
#pragma once

#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/speculation.h"

namespace dollymp {

struct CapacityConfig {
  SpeculationConfig speculation;
};

class CapacityScheduler final : public Scheduler {
 public:
  explicit CapacityScheduler(CapacityConfig config = {});

  [[nodiscard]] std::string name() const override { return "capacity"; }
  void schedule(SchedulerContext& ctx) override;

 private:
  CapacityConfig config_;
  /// Persistent arena for the speculation sweep's shard-merge buffers
  /// (SpeculationScratch): steady-state passes reuse retained capacity.
  SpeculationScratch spec_scratch_;
};

}  // namespace dollymp
