// The scheduler interface and shared placement helpers.
//
// A Scheduler is a pure policy: at each decision point the simulator hands
// it a SchedulerContext through which it observes the cluster and the
// runtime state of active jobs and requests copy placements.  The simulator
// (the only implementer of SchedulerContext) validates every request —
// capacity (Eq. 5), precedence (Eq. 7), the per-task copy cap — so no
// policy can cheat.
//
// The control plane is event-driven: the simulator invokes the scheduler
// only at slots where something happened (arrival, completion, failure,
// repair) or where the policy asked to be woken via
// SchedulerContext::request_wakeup.  Time-triggered policies (speculative
// execution, Hopper) schedule their next straggler-check deadline instead
// of being polled every slot, which lets the simulator fast-forward across
// empty slots unconditionally.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/rng.h"
#include "dollymp/sim/runtime_state.h"
#include "dollymp/sim/types.h"

namespace dollymp {

class PlacementIndex;
class Recorder;
class StateReader;
class StateWriter;
class ThreadPool;
struct ShardStats;

class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual double slot_seconds() const = 0;
  [[nodiscard]] virtual const Cluster& cluster() const = 0;
  [[nodiscard]] virtual const SimConfig& config() const = 0;

  /// Jobs that have arrived and not yet finished, in arrival order.
  /// Pointers remain valid for the duration of the simulation run.
  [[nodiscard]] virtual const std::vector<JobRuntime*>& active_jobs() = 0;

  /// Launch a copy of `task` on `server`.  Returns false (placing nothing)
  /// if the phase is not runnable, the task already finished, the per-task
  /// copy cap is reached, or the server lacks free capacity.
  virtual bool place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                          ServerId server) = 0;

  /// Mark a placement as a speculative backup (for accounting); must be
  /// called instead of place_copy by speculation policies.
  virtual bool place_speculative_copy(JobRuntime& job, PhaseRuntime& phase,
                                      TaskRuntime& task, ServerId server) = 0;

  /// All-or-nothing placement of a gang phase (PhaseSpec::gang): either
  /// every needs-placement task of `phase` receives a copy in this call
  /// (returns true) or none does and the cluster is left untouched
  /// (returns false).  Per-task placement of gang phases is refused by
  /// next_unscheduled_task, so this is the only way a gang starts.  The
  /// default keeps lightweight contexts (tests, dry runs) compiling: gang
  /// phases simply stay pending under them.
  virtual bool place_gang(JobRuntime& /*job*/, PhaseRuntime& /*phase*/) { return false; }

  /// Ask to be invoked again at `slot` even if no arrival, completion or
  /// failure lands there.  This is the timer half of the event-driven
  /// control plane: a time-triggered policy computes the next slot at
  /// which its decision could change (e.g. the earliest straggler-threshold
  /// crossing) and registers it here; the simulator fast-forwards to
  /// min(next arrival, next completion, next failure, next wakeup).
  /// Requests for slots at or before now() are clamped to now() + 1.
  /// Multiple requests are merged; a wakeup fires at most one scheduler
  /// invocation per slot.
  virtual void request_wakeup(SimTime slot) = 0;

  /// RNG stream reserved for scheduler-side randomness (never shared with
  /// the workload/execution streams, so policies do not perturb the
  /// environment's realization).
  [[nodiscard]] virtual Rng& policy_rng() = 0;

  /// Incremental free-capacity index over cluster(), maintained by the
  /// simulator across every allocation/release/failure/repair when
  /// SimConfig::use_placement_index is set; nullptr when running against
  /// the linear-scan baseline (or under a context that keeps none).  The
  /// context-taking placement helpers below consult it and fall back to the
  /// linear scan — both paths produce bit-identical decisions.
  [[nodiscard]] virtual PlacementIndex* placement_index() { return nullptr; }

  /// Worker pool of the deterministic parallel scheduling core, or nullptr
  /// when the run is sequential (SimConfig::threads <= 1, or a context that
  /// keeps no pool).  Policies shard hot scans across it via run_shards /
  /// parallel_for (common/thread_pool.h); every sharded site must reduce in
  /// fixed shard order so its decisions are bit-identical to the
  /// sequential path — the contract the parallel equivalence suite locks
  /// down.
  [[nodiscard]] virtual ThreadPool* worker_pool() { return nullptr; }

  /// Accumulator for shard-count/imbalance instrumentation of the parallel
  /// core (surfaced as SimStats::parallel_*), or nullptr when nothing
  /// collects it.  Only the scheduling thread may note() into it.
  [[nodiscard]] virtual ShardStats* shard_stats() { return nullptr; }

  /// The run's flight recorder (obs/recorder.h), or nullptr when recording
  /// is off.  Scheduler-side decision points (the placement helpers below,
  /// DollyMP's weighted pick, the speculation pass) append their chosen
  /// server + score here so a trace shows *why* a copy landed where it did.
  [[nodiscard]] virtual Recorder* recorder() { return nullptr; }

  // Resilience-policy channel (sched/resilience.h).  Default no-ops so
  // lightweight contexts (tests, dry runs) need not implement them.

  /// Quarantine or release a server: a quarantined server stays up (its
  /// running copies continue) but is excluded from placement — can_fit
  /// returns false and the simulator removes it from the PlacementIndex
  /// candidate groups until released.  Idempotent.
  virtual void set_server_quarantined(ServerId /*server*/, bool /*quarantined*/) {}

  /// Tell the control plane that placement of at least one task was
  /// deliberately deferred (retry backoff) and the policy wants to run
  /// again at `release_slot`.  Distinguishes "waiting on purpose" from a
  /// genuine stall so the simulator's no-progress detector does not fire.
  virtual void defer_retry(SimTime release_slot) { request_wakeup(release_slot); }

  /// Availability accounting: a retry with `backoff_slots` of backoff was
  /// registered (surfaced in SimStats).
  virtual void note_retry_issued(long long /*backoff_slots*/) {}

  /// Availability accounting: a scheduler pass ran with its clone budget
  /// shrunk from `configured` to `effective` under low live capacity.
  virtual void note_clone_budget_degraded(int /*effective*/, int /*configured*/) {}

  /// Current rung of the service-mode degradation ladder (0 = healthy).
  /// Policies consult it to shed redundancy under overload: level 1
  /// throttles clone budgets, level >= 2 also disables speculation.  Always
  /// 0 outside service mode, so batch runs are untouched.
  [[nodiscard]] virtual int overload_level() const { return 0; }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once when a simulation starts (clear any per-run state).
  virtual void reset() {}

  /// Called after one or more jobs arrive, before schedule() in that slot.
  virtual void on_job_arrival(SchedulerContext& /*ctx*/) {}

  /// Make placement decisions for the current slot.
  virtual void schedule(SchedulerContext& ctx) = 0;

  /// Called when a copy finishes naturally (not killed): the feedback
  /// channel for online learning (learn/server_scorer.h).  Implementations
  /// should only record observations here, not place copies.
  virtual void on_copy_finished(SchedulerContext& /*ctx*/, const JobRuntime& /*job*/,
                                const PhaseRuntime& /*phase*/,
                                const TaskRuntime& /*task*/,
                                const CopyRuntime& /*copy*/) {}

  // Typed event notifications.  All fire while the simulator is draining
  // the event heap, before the schedule() invocation of the same slot, so
  // a policy can update incremental state (dirty flags, learned scores)
  // instead of rescanning every active job on each invocation.  Like
  // on_copy_finished, these are observation channels: implementations must
  // not place copies from them.

  /// A phase finished its last task (Eq. 6); child phases just unlocked.
  virtual void on_phase_completed(SchedulerContext& /*ctx*/, const JobRuntime& /*job*/,
                                  const PhaseRuntime& /*phase*/) {}

  /// A job finished its last phase (Eq. 8).  The job is still present in
  /// active_jobs() during this call and is removed before schedule().
  virtual void on_job_completed(SchedulerContext& /*ctx*/, const JobRuntime& /*job*/) {}

  /// A server crashed; every copy it hosted has already been killed and
  /// the orphaned tasks are back in the needs-placement pool.
  virtual void on_server_failed(SchedulerContext& /*ctx*/, ServerId /*server*/) {}

  /// A failed server came back and accepts placements again.
  virtual void on_server_repaired(SchedulerContext& /*ctx*/, ServerId /*server*/) {}

  /// A fault killed one copy of `task` on `server` without the machine
  /// going down (transient copy fault), or as part of a machine loss (one
  /// call per killed copy).  Fires before on_server_failed for the same
  /// event.  Resilience policies register retry backoff / server strikes
  /// here.
  virtual void on_copy_fault(SchedulerContext& /*ctx*/, const JobRuntime& /*job*/,
                             const PhaseRuntime& /*phase*/, const TaskRuntime& /*task*/,
                             ServerId /*server*/) {}

  /// A server entered the fail-slow state: it stays up but new copies run
  /// `factor` times longer until on_server_restored.
  virtual void on_server_degraded(SchedulerContext& /*ctx*/, ServerId /*server*/,
                                  double /*factor*/) {}

  /// A fail-slow server recovered to full speed.
  virtual void on_server_restored(SchedulerContext& /*ctx*/, ServerId /*server*/) {}

  /// Checkpoint/restore: serialize any policy state that influences future
  /// decisions (priority caches, learned scores, backoff/quarantine
  /// bookkeeping) so a restored run replays bit-identically.  The defaults
  /// are correct for stateless policies — everything they decide is a pure
  /// function of the observable runtime state.  Stateful policies override
  /// both; load_state is called after reset() on a freshly constructed
  /// instance of the same policy/configuration.
  virtual void save_state(StateWriter& /*w*/) const {}
  virtual void load_state(StateReader& /*r*/) {}
};

// ---- shared helpers used by several policies -------------------------------

/// Server with the largest free-resource inner product with `demand` among
/// those that can fit it; kInvalidServer when none fits.  This is the
/// alignment placement of Tetris and the resource-fit tie break of
/// Algorithm 2 step 12.
[[nodiscard]] ServerId best_fit_server(const Cluster& cluster, const Resources& demand);

/// First server (by index) that can fit `demand`; kInvalidServer when none.
[[nodiscard]] ServerId first_fit_server(const Cluster& cluster, const Resources& demand);

/// Prefer a server holding a replica of `task`'s input block, then a
/// rack-local one, then best fit (the paper's locality-aware container
/// placement).
[[nodiscard]] ServerId locality_aware_server(const Cluster& cluster,
                                             const LocalityModel& locality,
                                             const TaskRuntime& task);

// Context-taking variants of the placement helpers: answered by the
// context's PlacementIndex when one is maintained (sub-linear at trace
// scale), by the linear scan above otherwise.  Results are identical.
[[nodiscard]] ServerId best_fit_server(SchedulerContext& ctx, const Resources& demand);
[[nodiscard]] ServerId first_fit_server(SchedulerContext& ctx, const Resources& demand);
[[nodiscard]] ServerId locality_aware_server(SchedulerContext& ctx,
                                             const LocalityModel& locality,
                                             const TaskRuntime& task);

/// Next task of `phase` that has no copy yet, using the phase's monotone
/// cursor (O(1) amortized); nullptr when all tasks are scheduled.  Gang
/// phases always answer nullptr: their tasks may only start through
/// SchedulerContext::place_gang, so no per-task greedy path can ever place
/// a partial gang.
[[nodiscard]] TaskRuntime* next_unscheduled_task(PhaseRuntime& phase);

/// Offer every runnable gang phase of `job` with pending tasks to the
/// context's all-or-nothing placer, in phase order.  Returns the number of
/// tasks placed (0 when nothing committed).  Shared by every policy's
/// schedule() so gang jobs run under all of them.
int place_gang_phases(SchedulerContext& ctx, JobRuntime& job);

/// Greedily place unscheduled runnable tasks of `job` (in phase order) on
/// best-fit servers until nothing more fits; returns number placed.  Gang
/// phases are offered atomically via place_gang_phases first.
int place_job_greedy(SchedulerContext& ctx, JobRuntime& job);

/// Total demand-weighted allocation of a job's currently active copies
/// (the DRF "currently allocated" vector).  O(#phases): tasks of a phase
/// share one demand vector, so the sum is demand * active_copies per phase
/// using the incrementally maintained per-phase counter — exact because
/// demands are the same value the per-task scan would multiply.
[[nodiscard]] Resources job_active_allocation(const JobRuntime& job);

/// Brute-force per-task rescan of the same quantity (test/validation
/// reference for the O(#phases) read above).
[[nodiscard]] Resources job_active_allocation_scan(const JobRuntime& job);

}  // namespace dollymp
