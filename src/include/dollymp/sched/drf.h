// Dominant Resource Fairness (Ghodsi et al., NSDI'11) — baseline of
// Section 6.1.
//
// Progressive filling: repeatedly offer resources to the active job whose
// dominant share (max over dimensions of its allocated/total) is furthest
// below the others', placing one runnable task per offer, until no job can
// place anything.
#pragma once

#include "dollymp/sched/scheduler.h"

namespace dollymp {

class DrfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "drf"; }
  void schedule(SchedulerContext& ctx) override;
};

}  // namespace dollymp
