// Resilience policies layered under a scheduler: retry backoff, server
// quarantine, and graceful clone degradation.
//
// A scheduler that merely re-places fault-killed tasks immediately makes
// two mistakes real resource managers learned to avoid: it hammers a
// crash-looping task back onto the cluster every slot (wasting capacity on
// work that keeps dying), and it keeps trusting machines that repeatedly
// eat copies.  This module packages the three standard counter-measures as
// a policy object any Scheduler can embed (DollyMP does — see
// DollyMPConfig::resilience):
//
//   * Per-task retry budgets with exponential backoff: after a fault kills
//     the last copy of a task, its re-placement is deferred by an
//     exponentially growing hold (initial << attempts, capped).  Backoff
//     delays but never refuses placement, so the every-job-completes
//     invariant is untouched.
//   * Server quarantine with probation: servers accumulate exponentially
//     decaying "strikes" on each fault they cause; past a threshold the
//     server is quarantined (excluded from can_fit and the PlacementIndex
//     via SchedulerContext::set_server_quarantined) for a fixed term, then
//     released on probation with half its strikes — a prompt re-offense
//     re-quarantines it quickly.  A fraction cap prevents the policy from
//     blacklisting the whole fleet.
//   * Graceful degradation: when the live (up, unquarantined) share of the
//     fleet drops below a watermark, the effective clone budget shrinks
//     proportionally — redundancy is the first thing to give up when
//     capacity is scarce.
//
// All state is deterministic (no RNG): decisions depend only on the event
// sequence, so replay determinism is preserved.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dollymp/sched/scheduler.h"

namespace dollymp {

struct ResilienceConfig {
  bool enabled = false;

  // ---- retry backoff -------------------------------------------------------
  /// Number of backoff doublings before the hold saturates; attempts past
  /// the budget keep the maximum hold (placement is delayed, never denied).
  int retry_budget = 4;
  SimTime backoff_initial_slots = 2;
  SimTime backoff_max_slots = 64;

  // ---- server quarantine ---------------------------------------------------
  bool quarantine = true;
  /// Strikes (decayed) at which a server is quarantined.
  double flap_threshold = 3.0;
  /// Strike half-life in slots (exponential decay between events).
  double strike_half_life_slots = 600.0;
  /// Quarantine term in slots.
  SimTime quarantine_slots = 240;
  /// Never quarantine more than this fraction of the fleet at once.
  double max_quarantined_fraction = 0.2;

  // ---- graceful clone degradation -----------------------------------------
  bool degrade_clones = true;
  /// Live-capacity fraction below which the clone budget starts shrinking.
  double capacity_watermark = 0.75;
};

/// Deterministic resilience state machine.  The owning scheduler forwards
/// its fault hooks here and brackets each schedule() pass with
/// begin_invocation / finish_invocation.
class ResiliencePolicy {
 public:
  ResiliencePolicy(ResilienceConfig config, std::size_t cluster_size);

  [[nodiscard]] const ResilienceConfig& config() const { return config_; }

  // ---- event hooks (forwarded by the scheduler) ---------------------------

  /// A fault killed a copy of `task` on `server`: register a strike against
  /// the server (possibly quarantining it) and, if the task lost its last
  /// copy, start its next backoff hold.
  void on_copy_fault(SchedulerContext& ctx, const TaskRuntime& task, ServerId server);
  void on_server_failed(SchedulerContext& ctx, ServerId server);
  void on_server_repaired(SchedulerContext& ctx, ServerId server);

  // ---- per-invocation bracket ---------------------------------------------

  /// Release quarantines whose term expired (on probation: strikes halved,
  /// not cleared).  Call at the top of schedule().
  void begin_invocation(SchedulerContext& ctx);

  /// True when `task`'s re-placement is under a backoff hold at `now`.
  /// Records the earliest pending release for finish_invocation.
  [[nodiscard]] bool should_defer(const TaskRuntime& task, SimTime now);

  /// If any task was held this invocation, tell the context (defer_retry
  /// registers the wakeup and excuses the idle slot from stall detection).
  /// Call after the placement loops.
  void finish_invocation(SchedulerContext& ctx);

  // ---- graceful degradation -----------------------------------------------

  /// Effective clone budget given the configured one: shrinks
  /// proportionally once live capacity falls below the watermark.
  [[nodiscard]] int degraded_clone_budget(const SchedulerContext& ctx,
                                          int configured) const;

  // ---- checkpoint/restore --------------------------------------------------
  /// Serialize backoff holds, strike ledgers and quarantine terms so a
  /// restored run replays identically.  load_state resizes the per-server
  /// vectors to the serialized fleet size.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // ---- introspection (tests) ----------------------------------------------
  [[nodiscard]] int quarantined_count() const { return quarantined_count_; }
  [[nodiscard]] int down_count() const { return down_count_; }
  [[nodiscard]] double strikes(ServerId server) const {
    return strikes_[static_cast<std::size_t>(server)];
  }
  [[nodiscard]] bool is_quarantined(ServerId server) const {
    return quarantine_release_[static_cast<std::size_t>(server)] != kNever;
  }

 private:
  struct TaskRefHash {
    std::size_t operator()(const TaskRef& ref) const {
      auto h = static_cast<std::uint64_t>(ref.job);
      h = h * 0x9E3779B97F4A7C15ULL + static_cast<std::uint32_t>(ref.phase);
      h = h * 0x9E3779B97F4A7C15ULL + static_cast<std::uint32_t>(ref.task);
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct Backoff {
    int attempts = 0;
    SimTime release = kNever;  ///< hold until this slot
  };

  void add_strike(SchedulerContext& ctx, ServerId server);
  [[nodiscard]] double decayed_strikes(ServerId server, SimTime now) const;

  ResilienceConfig config_;
  std::unordered_map<TaskRef, Backoff, TaskRefHash> backoff_;
  std::vector<double> strikes_;
  std::vector<SimTime> strike_updated_;
  /// Release slot per server; kNever when not quarantined.
  std::vector<SimTime> quarantine_release_;
  int quarantined_count_ = 0;
  int down_count_ = 0;
  /// Earliest backoff release observed by should_defer this invocation.
  SimTime earliest_release_ = kNever;
};

}  // namespace dollymp
