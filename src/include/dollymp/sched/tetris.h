// Tetris (Grandl et al., SIGCOMM'14) — multi-resource packing baseline.
//
// For every free server, Tetris scores each pending task as
//     score = alignment + delta * shortness
// where alignment is the inner product of the task's demand vector with the
// server's free-resource vector (packing efficiency) and shortness is an
// SRPT-flavoured term favouring jobs with the least remaining work; the
// highest-scoring task is placed and the process repeats until nothing
// fits.  This is the "a + eps * p" combination the paper's Fig. 2
// walkthrough describes, with delta as the published default weight.
#pragma once

#include "dollymp/sched/scheduler.h"

namespace dollymp {

struct TetrisConfig {
  /// Weight of the SRPT term against alignment.  Tetris deliberately keeps
  /// this small so that packing dominates and the SRPT preference "barely
  /// affects packing" (Grandl et al.); the ICPP paper's Fig. 2 walkthrough
  /// relies on exactly that (the full-server job has the highest combined
  /// score and is scheduled first).
  double delta = 0.1;
};

class TetrisScheduler final : public Scheduler {
 public:
  explicit TetrisScheduler(TetrisConfig config = {});

  [[nodiscard]] std::string name() const override { return "tetris"; }
  void schedule(SchedulerContext& ctx) override;

 private:
  TetrisConfig config_;
};

}  // namespace dollymp
