// The DollyMP online scheduler (Section 5, Algorithm 2).
//
// On every job arrival the scheduler recomputes each active job's remaining
// effective volume v_j(t) (Eq. 16) and remaining critical-path length
// e_j(t) (Eq. 17), feeds them to Algorithm 1's knapsack priority oracle
// (sched/priority.h) and caches the resulting priority classes ("to reduce
// the overhead, the scheduling order of all jobs in the cluster won't be
// updated until the next job arrival").
//
// At each decision slot it then:
//   1. places new tasks in priority order — within a class the task/server
//      pair with the best resource fit (inner product of demand and free
//      capacity, Algorithm 2 step 12) wins, honoring data locality;
//   2. once no new task fits anywhere, spends leftover resources on clones
//      of running tasks, again smallest-priority jobs first (the Section
//      4.1 rule: clone small jobs), up to `clone_budget` extra copies per
//      task (DollyMP^0/1/2/3 of the evaluation).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dollymp/learn/server_scorer.h"
#include "dollymp/sched/priority.h"
#include "dollymp/sched/resilience.h"
#include "dollymp/sched/scheduler.h"

namespace dollymp {

struct DollyMPConfig {
  /// Maximum extra copies per task: 0 disables cloning (DollyMP^0), the
  /// paper's default is 2 (DollyMP^2).  Clamped by SimConfig's hard cap.
  int clone_budget = 2;
  /// Sigma weighting r in e_j^k = theta + r*sigma (Section 6.1: r = 1.5).
  double sigma_factor = 1.5;
  /// Weight of the shortness term when breaking ties between equally
  /// aligned placements (the delta = 0.3 of Section 6.1).
  double delta = 0.3;
  /// Prefer replica / rack-local servers when placing copies.
  bool locality_aware = true;
  /// Clone in priority (smallest-job-first) order per Section 4.1; false
  /// reverses the order — the naive-cloning ablation of DESIGN.md.
  bool smallest_first_clones = true;
  /// Also refresh priorities when jobs complete (the paper refreshes only
  /// on arrivals; enabling this is an ablation knob).
  bool recompute_on_completion = false;
  /// Online straggler-aware placement (the paper's Section 8 future work):
  /// learn per-server slowdown from completed copies and weight placement
  /// scores by the reciprocal estimate, steering copies and clones away
  /// from currently slow machines.
  bool straggler_aware = false;
  /// Clone budgeting per Corollary 4.1: cap a task's copies at
  /// r_j = min{ r : 2^l h(r) >= theta } for its job's priority class l, so
  /// no task gets more clones than needed to finish inside its class
  /// window.  Off by default (the paper's deployed system uses the flat
  /// budget).
  bool corollary_clone_counts = false;
  /// Resilience policies under fault injection (sched/resilience.h): retry
  /// backoff, server quarantine, clone degradation.  Disabled by default —
  /// and with it disabled the scheduler's decision stream is bit-identical
  /// to the pre-resilience implementation.
  ResilienceConfig resilience;
};

class DollyMPScheduler final : public Scheduler {
 public:
  explicit DollyMPScheduler(DollyMPConfig config = {});

  [[nodiscard]] std::string name() const override;
  void reset() override;
  void on_job_arrival(SchedulerContext& ctx) override;
  void schedule(SchedulerContext& ctx) override;
  void on_copy_finished(SchedulerContext& ctx, const JobRuntime& job,
                        const PhaseRuntime& phase, const TaskRuntime& task,
                        const CopyRuntime& copy) override;
  void on_job_completed(SchedulerContext& ctx, const JobRuntime& job) override;
  void on_copy_fault(SchedulerContext& ctx, const JobRuntime& job,
                     const PhaseRuntime& phase, const TaskRuntime& task,
                     ServerId server) override;
  void on_server_failed(SchedulerContext& ctx, ServerId server) override;
  void on_server_repaired(SchedulerContext& ctx, ServerId server) override;

  /// Checkpoint the decision-relevant state: the cached priority classes
  /// (refreshed only on arrivals, so they cannot be recomputed after a
  /// restore without changing decisions), the learned server scores and
  /// the resilience ledgers.  load_state expects a fresh instance of the
  /// same config after reset().
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

  /// The embedded resilience policy (null unless config().resilience.enabled).
  [[nodiscard]] const ResiliencePolicy* resilience() const {
    return resilience_ ? &*resilience_ : nullptr;
  }

  /// Learned per-server slowdown estimates (only populated when
  /// config().straggler_aware is set).
  [[nodiscard]] const ServerScorer* scorer() const {
    return scorer_ ? &*scorer_ : nullptr;
  }

  [[nodiscard]] const DollyMPConfig& config() const { return config_; }

  /// Exposed for the overhead bench (Section 6.3.3): one full priority
  /// recomputation over the current active set.
  void recompute_priorities(SchedulerContext& ctx);

 private:
  struct JobOrder {
    JobRuntime* job;
    int priority;
    double volume;
    /// Whether the priority store had a fresh entry for this job.  Jobs
    /// that arrived after the last recompute have none: they sort last
    /// (the 1 << 20 sentinel) and are exempt from the Corollary 4.1 clone
    /// cap, exactly as a hash-map lookup miss used to behave.
    bool has_priority;
  };

  /// True when the dense priority store holds a current-epoch entry for
  /// `id` (see `epoch_` below).
  [[nodiscard]] bool priority_known(JobId id) const;
  /// Grow the dense per-job arrays to cover `id`.  Only ever allocates on
  /// arrival of a job with a new maximum id — never in the steady-state
  /// schedule() path.
  void ensure_slot(JobId id);
  void rebuild_order(SchedulerContext& ctx);
  int place_new_tasks(SchedulerContext& ctx);
  /// Resilient variant of place_new_tasks: identical placement order but
  /// skips (and defers) tasks held under retry backoff — used only when the
  /// resilience policy is live, so the default path keeps the monotone
  /// cursor fast path.
  int place_new_tasks_resilient(SchedulerContext& ctx);
  int place_clones(SchedulerContext& ctx, int clone_budget);
  [[nodiscard]] ServerId pick_server(SchedulerContext& ctx, const TaskRuntime& task) const;
  /// The resilience policy, created lazily on first use (reset() drops it;
  /// hooks can fire before the first schedule(), so every entry point
  /// funnels through here).  Null when resilience is disabled.
  [[nodiscard]] ResiliencePolicy* live_resilience(SchedulerContext& ctx);

  DollyMPConfig config_;
  /// Dense per-job priority store, indexed by JobId (ids are small and
  /// sequential).  An entry is valid iff prio_epoch_[id] == epoch_; each
  /// recompute (and each reset) bumps epoch_, which invalidates every
  /// stale entry in O(1) without deallocating or clearing — the hot loop
  /// never touches a hash map and schedule() stays allocation-free once
  /// the buffers are warm.
  std::vector<std::int64_t> prio_epoch_;
  std::vector<int> prio_value_;
  std::vector<double> vol_value_;
  std::int64_t epoch_ = 0;
  /// Reused scratch buffers: cleared, never shrunk, between invocations.
  std::vector<PriorityJobInput> inputs_;
  std::vector<JobOrder> order_;
  std::vector<TaskRuntime*> candidates_;
  /// Persistent arena for the priority oracle's shard-merge buffers — the
  /// recompute path's zero-steady-state-allocation story (see
  /// PriorityScratch); kept across reset() like the buffers above.
  PriorityScratch prio_scratch_;
  /// Set by on_job_completed when recompute_on_completion is enabled;
  /// schedule() refreshes priorities and clears it.
  bool priorities_dirty_ = false;
  std::optional<ServerScorer> scorer_;
  /// Live only when config_.resilience.enabled; rebuilt on reset().
  std::optional<ResiliencePolicy> resilience_;
};

}  // namespace dollymp
