// Carbyne (Grandl et al., OSDI'16) — altruistic scheduling baseline.
//
// Carbyne lets each job claim only the resources it needs to preserve the
// completion time it would get under inter-job fairness, and donates the
// leftover to a secondary packer that helps other jobs finish earlier.
// Faithful Carbyne requires per-job completion-time estimators over full
// DAG plans; following DESIGN.md's substitution note we implement its
// documented structure in two passes:
//   pass 1 (fair share): DRF progressive filling, with each job capped at
//     its fair dominant share — the allocation Carbyne guarantees;
//   pass 2 (altruism/leftover): remaining resources are redistributed to
//     pending tasks in SRPT order with best-fit packing — Carbyne's
//     leftover re-distribution that "adopts ideas from DRF and Tetris"
//     (the paper's own characterization in Section 6.3.2).
#pragma once

#include "dollymp/sched/scheduler.h"

namespace dollymp {

class CarbyneScheduler final : public Scheduler {
 public:
  explicit CarbyneScheduler(double sigma_factor = 1.5) : sigma_factor_(sigma_factor) {}

  [[nodiscard]] std::string name() const override { return "carbyne"; }
  void schedule(SchedulerContext& ctx) override;

 private:
  double sigma_factor_;
};

}  // namespace dollymp
