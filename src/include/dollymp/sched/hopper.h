// Hopper-style speculation-aware scheduling (Ren et al., SIGCOMM'15) —
// the closest prior art the paper discusses (Section 7).
//
// Hopper's idea: budget speculation *into* the job-level allocation.  Each
// job is sized by its "virtual size" — its task count inflated by a
// speculation factor derived from the straggler distribution — and jobs
// are served smallest-virtual-size first.  Crucially, Hopper is
// *non-work-conserving*: it reserves a slice of capacity for future
// speculative copies of the jobs at the head of the queue instead of
// handing every free slot to the next waiting task.  The paper calls this
// out as Hopper's weakness ("it is possible to keep a computing slot idle
// as a reservation for a future straggler while other jobs/tasks already
// queue up"), and this implementation reproduces exactly that behaviour so
// the trade-off is measurable.
#pragma once

#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/speculation.h"

namespace dollymp {

struct HopperConfig {
  /// Virtual-size inflation: fraction of extra capacity budgeted per job
  /// for speculation (Hopper derives ~10-20% from the straggler tail).
  double speculation_budget = 0.15;
  /// Speculation trigger shared with the LATE-style module.
  SpeculationConfig speculation;

  HopperConfig() {
    speculation.slow_factor = 1.8;  // Hopper speculates earlier than stock Hadoop
    speculation.min_finished_fraction = 0.2;
  }
};

class HopperScheduler final : public Scheduler {
 public:
  explicit HopperScheduler(HopperConfig config = {});

  [[nodiscard]] std::string name() const override { return "hopper"; }
  void schedule(SchedulerContext& ctx) override;

 private:
  HopperConfig config_;
  /// Persistent arena for the speculation sweep's shard-merge buffers
  /// (SpeculationScratch): steady-state passes reuse retained capacity.
  SpeculationScratch spec_scratch_;
};

}  // namespace dollymp
