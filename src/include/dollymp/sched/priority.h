// Algorithm 1: the transient scheduling priority oracle.
//
// Given the active jobs' effective volumes v_j, effective lengths e_j and
// dominant shares d_j, Proc() buckets jobs into doubling categories: for
// l = 1, 2, ..., g it considers B_l = { j : e_j <= 2^l } and solves the
// unit-profit knapsack  max sum x_j  s.t.  sum v_j x_j <= 2^l.  A job's
// priority p_j is the first l at which the oracle selects it; smaller is
// scheduled earlier.  g = ceil(log2( sum_j v_j / (1 - max_j d_j) )),
// extended as needed so every job eventually receives a class.
//
// The combination is the paper's SRPT/SVF balance: the e_j <= 2^l filter is
// SRPT-like (short jobs enter early rounds), while the knapsack over
// volumes is SVF-like but packs as many jobs as fit instead of strictly
// ordering by volume.
#pragma once

#include <cstddef>
#include <vector>

namespace dollymp {

class ThreadPool;
struct ShardStats;

struct PriorityJobInput {
  double volume = 0.0;    ///< v_j (Eq. 10 / 14 / 16), in slots
  double length = 0.0;    ///< e_j (Eq. 14 / 17), in slots
  double dominant = 0.0;  ///< d_j = max dominant share over phases (Eq. 9/15)
};

struct PriorityResult {
  /// Priority class per input job, 1-based; smaller = scheduled earlier.
  std::vector<int> priority;
  /// Number of doubling rounds actually used.
  int rounds = 0;
};

[[nodiscard]] PriorityResult compute_transient_priorities(
    const std::vector<PriorityJobInput>& jobs);

/// Parallel-core overload: with a non-null `pool`, each doubling round's
/// membership filter (e_j <= 2^l over all jobs) is sharded across the pool
/// into per-shard candidate lists that are concatenated in ascending shard
/// order — i.e. ascending job index, exactly the serial scan's order — before
/// the (serial) knapsack solve.  The pre-pass reductions (total volume, max
/// dominant/length) stay serial so floating-point summation order is
/// untouched.  Bit-identical to the serial overload for any pool size; a
/// null pool delegates to it outright.
[[nodiscard]] PriorityResult compute_transient_priorities(
    const std::vector<PriorityJobInput>& jobs, ThreadPool* pool,
    ShardStats* shard_stats = nullptr);

/// Persistent scratch arena for compute_transient_priorities: the per-shard
/// filter lists and the merged candidate vectors the doubling rounds fill.
/// Owned by the calling scheduler (one instance per scheduler object) and
/// handed to every recompute, so steady-state passes run entirely inside
/// retained capacity — no shard-merge allocation churn.  The overload below
/// reports each acquisition to ShardStats::note_arena with whether any
/// backing buffer had to grow; the steady-state test asserts growth stops
/// after warm-up.
struct PriorityScratch {
  std::vector<std::vector<double>> shard_weights;
  std::vector<std::vector<std::size_t>> shard_members;
  std::vector<double> weights;
  std::vector<std::size_t> members;

  /// Total retained capacity in bytes across every backing buffer —
  /// compared before/after a pass to detect growth.
  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Arena-taking overload: identical bits to the overloads above (the scratch
/// only changes where the temporaries live, never what they contain).  A
/// null `scratch` falls back to function-local buffers.
[[nodiscard]] PriorityResult compute_transient_priorities(
    const std::vector<PriorityJobInput>& jobs, ThreadPool* pool,
    ShardStats* shard_stats, PriorityScratch* scratch);

/// Weighted-flowtime variant (the objective of the capacity-augmentation
/// literature the paper builds on, Fox & Korupolu [16]): jobs carry
/// priorities/weights w_j and each round's knapsack maximizes the total
/// *weight* packed instead of the count, solved exactly by branch and
/// bound.  With all weights equal this reduces to the unit-profit oracle
/// (asserted by the test suite).
struct WeightedPriorityJobInput {
  double volume = 0.0;
  double length = 0.0;
  double dominant = 0.0;
  double weight = 1.0;  ///< w_j > 0; larger = more important
};

[[nodiscard]] PriorityResult compute_weighted_transient_priorities(
    const std::vector<WeightedPriorityJobInput>& jobs);

}  // namespace dollymp
