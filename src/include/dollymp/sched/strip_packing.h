// 2D strip packing — the combinatorial core behind Theorem 1.
//
// The proof of Theorem 1 invokes the classical strip-packing result [40]
// (Steinberg 1997): jobs selected by the knapsack oracle for window 2^l
// (total volume <= 2^l, each length <= 2^l) can be scheduled to finish
// within a constant factor of the window.  This module provides the
// packing primitive: items are (width, height) = (resource share, running
// time) rectangles packed into a strip of width 1 (the normalized cluster
// capacity); the strip height is the schedule makespan.
//
// We implement NFDH (Next-Fit Decreasing Height), whose packed height H
// satisfies the classical guarantee
//
//     H  <=  2 * AREA + h_max
//
// where AREA (total item area) and h_max (tallest item) are both lower
// bounds on the optimal height — so H <= 3 * OPT, the 3R * 2^l step used
// in the Theorem 1 argument (R enters through the stochastic speedup).
// The test suite verifies both feasibility (no overlap, strip width
// respected) and the bound on randomized instances.
#pragma once

#include <cstddef>
#include <vector>

namespace dollymp {

/// One rectangle to pack: width in (0, 1], height > 0.
struct StripItem {
  double width = 0.0;
  double height = 0.0;
};

/// Placement of one item inside the strip (axis-aligned, no rotation).
struct StripPlacement {
  std::size_t item = 0;  ///< index into the input vector
  double x = 0.0;        ///< left edge, in [0, 1 - width]
  double y = 0.0;        ///< bottom edge (time the item starts)
};

struct StripPacking {
  std::vector<StripPlacement> placements;
  double height = 0.0;  ///< strip height used (schedule makespan)
};

/// Pack items into a strip of width 1 with NFDH.  Throws
/// std::invalid_argument if any item has width outside (0, 1] or
/// non-positive height.
[[nodiscard]] StripPacking nfdh_pack(const std::vector<StripItem>& items);

/// Lower bounds on the optimal strip height: total area and tallest item.
[[nodiscard]] double strip_area_lower_bound(const std::vector<StripItem>& items);
[[nodiscard]] double strip_height_lower_bound(const std::vector<StripItem>& items);

/// Feasibility check used by tests: every placement within the strip, no
/// two rectangles overlapping.
[[nodiscard]] bool strip_packing_is_feasible(const std::vector<StripItem>& items,
                                             const StripPacking& packing);

}  // namespace dollymp
