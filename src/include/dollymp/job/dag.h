// DAG utilities over a job's phase graph: children, terminals, critical
// paths (the L_j of Section 5) and structural queries used by the
// schedulers and the effective-volume computation.
#pragma once

#include <vector>

#include "dollymp/job/job.h"

namespace dollymp {

/// Children adjacency (inverse of PhaseSpec::parents).
[[nodiscard]] std::vector<std::vector<PhaseIndex>> phase_children(const JobSpec& job);

/// Phases with no children — the job completes when all of them do (the
/// paper's phi_j^{pi_j}; general DAGs may have several sinks).
[[nodiscard]] std::vector<PhaseIndex> terminal_phases(const JobSpec& job);

/// Phases with no parents — runnable at arrival.
[[nodiscard]] std::vector<PhaseIndex> source_phases(const JobSpec& job);

/// Length of the longest path ending at each phase, where a phase's weight
/// is its effective per-task length e_j^k = theta + r*sigma.  Index k gives
/// the critical-path length from any source through phase k inclusive.
[[nodiscard]] std::vector<double> longest_path_through(const JobSpec& job,
                                                       double sigma_factor);

/// Critical-path length of the whole job: e_j of Eq. (14).
[[nodiscard]] double critical_path_length(const JobSpec& job, double sigma_factor);

/// Critical-path length restricted to the not-yet-finished phases (Eq. 17):
/// finished phases contribute zero weight but still carry precedence.
/// `finished[k]` marks phase k complete.
[[nodiscard]] double remaining_critical_path_length(const JobSpec& job,
                                                    const std::vector<bool>& finished,
                                                    double sigma_factor);

/// The phase indices on one critical path (ties broken toward lower index).
[[nodiscard]] std::vector<PhaseIndex> critical_path(const JobSpec& job, double sigma_factor);

}  // namespace dollymp
