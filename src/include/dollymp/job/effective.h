// Effective volume and effective length of DAG jobs — Eqs. (9), (10),
// (14)-(17).
//
// These are the two scalars DollyMP's priority oracle consumes:
//   d_j^k = max(c_j^k / sum C_i, m_j^k / sum M_i)          (Eq. 15)
//   v_j   = sum_k n_j^k * e_j^k * d_j^k                    (Eq. 14, volume)
//   e_j   = sum over the critical path of e_j^k            (Eq. 14, length)
// and their remaining-work versions at time t (Eqs. 16-17), where finished
// phases drop out and partially-finished phases count only unfinished tasks.
#pragma once

#include <vector>

#include "dollymp/common/resources.h"
#include "dollymp/job/job.h"

namespace dollymp {

/// Defaults from Section 6.1 ("DollyMP with delta = 0.3, r = 1.5").
inline constexpr double kDefaultSigmaFactor = 1.5;

/// Dominant share of one phase's per-task demand (Eq. 15).
[[nodiscard]] double phase_dominant_share(const PhaseSpec& phase,
                                          const Resources& cluster_total);

/// Effective volume of the whole job (Eq. 14 left).
[[nodiscard]] double job_effective_volume(const JobSpec& job, const Resources& cluster_total,
                                          double sigma_factor = kDefaultSigmaFactor);

/// Effective length of the whole job: critical-path sum (Eq. 14 right).
[[nodiscard]] double job_effective_length(const JobSpec& job,
                                          double sigma_factor = kDefaultSigmaFactor);

/// Remaining-progress snapshot used for the time-t recomputation.
struct JobProgress {
  /// Unfinished task count per phase (n_j^k(t)); size == phase_count.
  std::vector<int> remaining_tasks;
  /// Phase completion flags; finished phases contribute nothing.
  std::vector<bool> phase_finished;
};

/// Remaining effective volume v_j(t) (Eq. 16).
[[nodiscard]] double job_effective_volume_remaining(
    const JobSpec& job, const JobProgress& progress, const Resources& cluster_total,
    double sigma_factor = kDefaultSigmaFactor);

/// Remaining effective length e_j(t): critical path over remaining phases
/// (Eq. 17).
[[nodiscard]] double job_effective_length_remaining(
    const JobSpec& job, const JobProgress& progress,
    double sigma_factor = kDefaultSigmaFactor);

}  // namespace dollymp
