// The DAG job model of Section 3.
//
// Job j arrives at a_j and is a DAG G_j of phases Phi_j = {phi_j^1 ...
// phi_j^{pi_j}}.  Phase phi_j^k holds n_j^k identical parallel tasks; each
// task demands (c_j^k, m_j^k) and has a random execution time Theta_j^k with
// mean theta_j^k and standard deviation sigma_j^k, both known at arrival
// (estimated by the AM from recurring jobs / early tasks, Section 5.2).
// A task may start only after all tasks of every parent phase finish (Eq. 7)
// and the job finishes with its last phase (Eq. 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dollymp/common/resources.h"

namespace dollymp {

using JobId = std::int32_t;
using PhaseIndex = std::int32_t;

/// Static description of one phase.
struct PhaseSpec {
  std::string name;              ///< e.g. "map", "reduce", "iter3".
  int task_count = 1;            ///< n_j^k
  Resources demand;              ///< per-task (c_j^k, m_j^k)
  double theta_seconds = 1.0;    ///< mean task duration theta_j^k
  double sigma_seconds = 0.0;    ///< stddev sigma_j^k
  std::vector<PhaseIndex> parents;  ///< upstream phases P(phi_j^k)
  /// Gang-scheduled phase: every task must be placed atomically in one
  /// all-or-nothing wave (distributed ML training steps, where a partial
  /// world cannot make progress).  Placed via SchedulerContext::place_gang.
  /// Last so historical aggregate initializers keep their field order.
  bool gang = false;

  /// Effective per-task length e_j^k = theta + r * sigma (Section 5; the
  /// paper's sigma-weighting factor defaults to r = 1.5 in Section 6.1).
  [[nodiscard]] double effective_length(double sigma_factor) const {
    return theta_seconds + sigma_factor * sigma_seconds;
  }
};

/// Static description of one job.
struct JobSpec {
  JobId id = 0;
  std::string name;
  std::string app;               ///< application family, e.g. "wordcount".
  double arrival_seconds = 0.0;  ///< a_j
  std::vector<PhaseSpec> phases;

  [[nodiscard]] int total_tasks() const;
  [[nodiscard]] std::size_t phase_count() const { return phases.size(); }

  /// Validate structure: >=1 phase, each phase has >=1 task, positive
  /// theta, non-negative sigma/demands, parent indices in range and acyclic
  /// (parents must have smaller indices — specs are stored in topological
  /// order by construction).  Throws std::invalid_argument on violation.
  void validate() const;

  /// Convenience: a single-phase job (the setting of Sections 4.1-4.2 and
  /// Theorems 1-2).
  static JobSpec single_task(JobId id, Resources demand, double theta, double sigma = 0.0,
                             double arrival = 0.0);

  /// A one-phase job with n parallel tasks.
  static JobSpec single_phase(JobId id, int tasks, Resources demand, double theta,
                              double sigma = 0.0, double arrival = 0.0);
};

}  // namespace dollymp
