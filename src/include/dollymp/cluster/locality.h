// Data locality: input blocks, replicas, and placement levels.
//
// Section 5 keeps the HDFS convention of two replicas per data block; clones
// are launched to match a task's locality preferences, and when the first
// copy of a task completes the AM "keeps another running copy with the best
// data locality level and kills the remaining".  We model each task's input
// as one block with `replicas` placements and classify any (task, server)
// pair into NODE / RACK / OFF_RACK, with a configurable remote-read runtime
// penalty.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/rng.h"

namespace dollymp {

enum class LocalityLevel : std::uint8_t { kNode = 0, kRack = 1, kOffRack = 2 };

[[nodiscard]] const char* to_string(LocalityLevel level);

struct LocalityConfig {
  bool enabled = true;
  int replicas = 2;              ///< HDFS-style replica count (Section 5)
  double rack_penalty = 1.05;    ///< runtime multiplier for rack-local reads
  double off_rack_penalty = 1.15;///< runtime multiplier for off-rack reads
};

/// Replica placement of one task's input block.
struct BlockPlacement {
  std::vector<ServerId> replicas;
};

class LocalityModel {
 public:
  LocalityModel(LocalityConfig config, const Cluster& cluster)
      : config_(config), num_servers_(cluster.size()) {
    racks_.reserve(cluster.size());
    for (const auto& s : cluster.servers()) racks_.push_back(s.rack());
  }

  [[nodiscard]] const LocalityConfig& config() const { return config_; }

  /// Draw replica locations for one block: replicas land on distinct servers
  /// and (when the cluster has >1 rack) at least two racks, mirroring the
  /// HDFS placement policy.
  [[nodiscard]] BlockPlacement place_block(Rng& rng) const;

  /// Locality level of running a copy on `server` given the block placement.
  [[nodiscard]] LocalityLevel classify(const BlockPlacement& block, ServerId server) const;

  /// Runtime penalty multiplier (>= 1) of the given level.
  [[nodiscard]] double penalty(LocalityLevel level) const;

  /// Penalty of placing on `server` directly.
  [[nodiscard]] double placement_penalty(const BlockPlacement& block, ServerId server) const {
    return penalty(classify(block, server));
  }

 private:
  LocalityConfig config_;
  std::size_t num_servers_;
  std::vector<int> racks_;
};

}  // namespace dollymp
