// Incremental free-capacity index over a Cluster.
//
// The linear placement helpers (best_fit_server & friends) scan every server
// per copy placed, which makes a scheduler invocation O(placements x servers)
// — fine at the paper's 30-node inventory, hopeless at the 30K-server trace
// scale of Section 6.3.  PlacementIndex maintains, incrementally on every
// allocation / release / failure / repair, a two-level grouping that answers
// placement queries in time proportional to the number of *distinct
// allocation states*, not the number of servers:
//
//   * Servers are partitioned into *resource classes* (exact capacity
//     equality).  Trace inventories have a handful of machine shapes, so a
//     demand that exceeds a class capacity skips the whole class.
//   * Within a class, up servers are grouped by their exact used() vector.
//     Every demand in the system lives on the trace model's grid (integral
//     cores, 0.5 GB memory steps), so used vectors are sums of a small
//     palette and the number of distinct values stays in the dozens even
//     with 30,000 servers under churn.  All members of a group expose
//     value-identical free vectors, hence identical fit answers and
//     identical best-fit scores: one evaluation per group decides every
//     member at once, and the group's lowest id (members.back() — members are
//     kept sorted descending, so low-id churn shifts only a short suffix)
//     is the tie-break winner for the whole group.
//   * Groups are pooled per class and found through an insert-only map from
//     used vector to pool slot.  A drained group is unlinked from the
//     active list but keeps its slot and its members vector's capacity, so
//     steady-state maintenance — allocation churn revisiting the same used
//     vectors — performs no heap allocation.
//   * A hierarchical rack -> capacity-class level serves the rack-local
//     pass of locality_aware_server: each rack holds one member bucket per
//     resource class present in it, with an up-count.  A demand that
//     exceeds a bucket's class capacity — or a bucket whose members are all
//     down/quarantined — skips the whole bucket without touching a server.
//     Pruning is bit-identical to the flat per-rack scan because every
//     pruned server would have failed can_fit, and the winner comparator
//     is enumeration-order independent.
//
// Determinism contract: every query reproduces the corresponding linear scan
// *bit for bit*.  Group membership is exact value equality of used(), and
// both the fit test ((used + demand).fits_within(capacity)) and the score
// (demand.dot((capacity - used).clamped())) are the identical float
// expressions Server::can_fit and Server::free feed the linear scan, so one
// group-level evaluation equals every member's.  The winner is selected
// with the explicit comparator (score > best) || (score == best && id <
// best_id) — exactly the result of the ascending-id scan with a strict `>`.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/cluster/locality.h"
#include "dollymp/common/resources.h"

namespace dollymp {

class ThreadPool;
struct ShardStats;

class PlacementIndex {
 public:
  /// Builds the index over `cluster`'s current state.  The cluster must
  /// outlive the index and keep a stable server set (allocation, up/down
  /// state may change — report those through the hooks below).
  explicit PlacementIndex(const Cluster& cluster);

  // ----- maintenance hooks ---------------------------------------------------

  /// Server `id`'s allocation changed (allocate or release): move it to the
  /// group matching its new used vector.  O(log #groups + log group size).
  void on_allocation_changed(ServerId id);
  /// Server `id` went down: remove it from all candidate structures.
  void on_server_down(ServerId id);
  /// Server `id` came back up: re-index it from its current allocation.
  void on_server_up(ServerId id);

  /// Attach the deterministic parallel core's worker pool (and the
  /// shard-stats accumulator its dispatches note into).  With a pool, the
  /// non-neutral weighted_best_fit walk — the one query that visits every
  /// member individually — shards its member scan across the pool; the
  /// per-shard winners merge under the same total-order comparator the
  /// serial walk maximizes, so the answer is bit-identical for any thread
  /// count.  Null (the default) keeps every query serial.
  void set_parallelism(ThreadPool* pool, ShardStats* stats) {
    pool_ = pool;
    shard_stats_ = stats;
  }

  /// Batched placement: accumulate the capacity-group walk for a demand
  /// into a cached candidate list and replay it for every same-demand query
  /// until the group pool grows.  A Group's used vector — and therefore its
  /// per-demand fit answer and score — is immutable for the lifetime of its
  /// pool slot; only its member list churns.  So one pass over the pool per
  /// (demand, pool generation) captures every group that can ever fit, with
  /// its score precomputed, and a query is a flat scan of that list
  /// skipping currently-drained groups: the candidate set equals the
  /// unbatched walk's (active fitting groups), scores are the identical
  /// float expressions, and `beats` is enumeration-order independent —
  /// bit-identical decisions, one capacity-group walk per wakeup batch
  /// instead of one per task.  Off by default; the simulator wires
  /// SimConfig::batch_placement through here.
  void set_batching(bool on);
  [[nodiscard]] bool batching() const { return batching_; }

  /// Per-server score multiplier used by weighted_best_fit (DollyMP's
  /// straggler-aware placement weight).  Defaults to 1.0 for every server.
  void set_multiplier(ServerId id, double weight);
  [[nodiscard]] double multiplier(ServerId id) const;

  // ----- queries (bit-identical to the linear scans) -------------------------

  /// Equivalent of best_fit_server(cluster, demand).
  [[nodiscard]] ServerId best_fit(const Resources& demand) const;

  /// Equivalent of first_fit_server(cluster, demand).
  [[nodiscard]] ServerId first_fit(const Resources& demand) const;

  /// Equivalent of locality_aware_server(cluster, locality, task) given the
  /// task's block placement and demand.
  [[nodiscard]] ServerId locality_aware(const LocalityModel& locality,
                                        const BlockPlacement& block,
                                        const Resources& demand) const;

  /// Equivalent of DollyMP's straggler-aware pick: maximize
  /// demand.dot(free) * multiplier(id), boosted by 1.25 when the server
  /// holds a replica of `boost_block` (pass nullptr for no boost), ties to
  /// the lowest id.  While every multiplier is exactly 1.0 (the scorer's
  /// cold prior) groups collapse as in best_fit, with each fitting replica
  /// overlaid as its own boosted candidate; once any multiplier deviates
  /// the scan walks group members individually (still skipping non-fitting
  /// classes and groups, and sharing the group's base score).
  [[nodiscard]] ServerId weighted_best_fit(const Resources& demand,
                                           const BlockPlacement* boost_block) const;

  /// All up servers that can_fit(demand), ascending id — test/debug utility
  /// for validating candidate enumeration against a brute-force scan (not
  /// used on the hot path; allocates).
  [[nodiscard]] std::vector<ServerId> fitting_candidates(const Resources& demand) const;

  // ----- observability -------------------------------------------------------

  struct Counters {
    std::uint64_t queries = 0;          ///< placement queries answered
    std::uint64_t servers_scanned = 0;  ///< candidate evaluations (group-level
                                        ///< where groups collapse, per-server
                                        ///< where they cannot)
    std::uint64_t updates = 0;          ///< maintenance events applied
    std::uint64_t batch_hits = 0;       ///< queries answered from a cached walk
    std::uint64_t batch_rebuilds = 0;   ///< cached walks (re)built
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  [[nodiscard]] std::size_t class_count() const { return classes_.size(); }
  [[nodiscard]] std::size_t size() const { return class_of_.size(); }

 private:
  static constexpr std::int32_t kNoGroup = -1;

  /// Up servers of one class whose used() vectors are value-identical.
  struct Group {
    Resources used;
    std::vector<ServerId> members;  ///< descending; capacity kept when drained
    std::int32_t prev = kNoGroup;   ///< active-list links (empty => unlinked)
    std::int32_t next = kNoGroup;
  };

  struct ResourceClass {
    Resources capacity;
    std::vector<Group> groups;  ///< pool; slots are never reclaimed
    /// used -> pool slot.  Insert-only: churn revisits the same used
    /// vectors, so in steady state every lookup hits.
    std::map<std::array<double, Resources::kMaxDims>, std::int32_t> lookup;
    std::int32_t active_head = kNoGroup;  ///< list of groups with members
  };

  /// One precomputed candidate of a batched walk: pool-slot indices (the
  /// groups vector reallocates as the pool grows, so no pointers) plus the
  /// immutable per-demand score.
  struct BatchEntry {
    std::int32_t cls;
    std::int32_t gid;
    double score;  ///< demand.dot(group_free(capacity, used))
  };
  /// Cached capacity-group walk for one exact demand, valid for one pool
  /// generation (group creation invalidates: a new group could fit).
  struct BatchCache {
    Resources demand;
    std::uint64_t generation = 0;
    bool valid = false;
    std::vector<BatchEntry> entries;  ///< capacity kept across rebuilds
  };
  /// The cached walk for `demand`, rebuilt on miss or stale generation.
  [[nodiscard]] const BatchCache& batched_walk(const Resources& demand) const;

  /// Pool slot for `used`, creating the group on first sight.
  [[nodiscard]] std::int32_t group_for(ResourceClass& cls, const Resources& used);
  void add_member(ResourceClass& cls, std::int32_t gid, ServerId id);
  void remove_member(ResourceClass& cls, std::int32_t gid, ServerId id);
  void index_server(ServerId id);
  void deindex_server(ServerId id);

  const Cluster* cluster_;
  std::vector<ResourceClass> classes_;
  std::vector<std::int32_t> class_of_;  // server -> class index
  std::vector<std::int32_t> group_of_;  // server -> pool slot; kNoGroup = down
  std::vector<double> multiplier_;
  int nonneutral_ = 0;  // count of multipliers != 1.0 (0 => groups collapse)

  bool batching_ = false;
  /// Bumped whenever any class's group pool grows — the sole event that can
  /// add a candidate a cached walk does not know about.
  std::uint64_t pool_generation_ = 0;
  /// A handful of demand-keyed slots with round-robin eviction: the task
  /// demands in flight per wakeup come from a small palette (the trace
  /// model's grid), so this stays effectively fully associative.
  static constexpr std::size_t kBatchSlots = 8;
  mutable std::vector<BatchCache> batch_;
  mutable std::size_t batch_clock_ = 0;  ///< next slot to evict

  /// One capacity class's members within one rack: the hierarchical
  /// rack -> class level.  Member lists are static (built once, ascending);
  /// only the up-count changes as servers fail/recover/quarantine.
  struct RackClassBucket {
    std::int32_t cls = -1;
    std::uint32_t up_count = 0;     ///< members currently indexed (placeable)
    std::vector<ServerId> members;  ///< ascending ids
  };
  std::vector<std::vector<RackClassBucket>> rack_classes_;  // rack -> buckets
  /// The (rack, class) bucket holding `id` (built at construction).
  [[nodiscard]] RackClassBucket& bucket_of(ServerId id);
  mutable Counters counters_;

  /// One fitting group of the weighted member walk: the group plus its
  /// shared base score (evaluated once, exactly as the serial walk does).
  struct WeightedSpan {
    const Group* group;
    double base;
  };

  ThreadPool* pool_ = nullptr;        ///< parallel core's pool; null = serial
  ShardStats* shard_stats_ = nullptr;
  // Scratch for the sharded weighted walk, reused across queries (cleared,
  // never shrunk).  Queries run on the scheduling thread only; shard bodies
  // touch disjoint slots of scratch_best_/scratch_score_.
  mutable std::vector<WeightedSpan> scratch_spans_;
  mutable std::vector<std::size_t> scratch_offsets_;  // span -> first member index
  mutable std::vector<ServerId> scratch_best_;
  mutable std::vector<double> scratch_score_;
};

}  // namespace dollymp
