// A heterogeneous server: capacity, base speed, rack placement, allocation.
//
// Section 2 attributes stragglers to (i) server heterogeneity and (ii)
// time-varying background load on the physical hosts.  We model (i) with a
// static per-server base speed factor and (ii) with a pluggable background
// slowdown process (see background_load.h).  A copy placed on server s at
// time t runs at s.effective_speed(t) times nominal rate.
#pragma once

#include <cstdint>
#include <string>

#include "dollymp/common/resources.h"

namespace dollymp {

using ServerId = std::int32_t;
inline constexpr ServerId kInvalidServer = -1;

/// Immutable description of a server model.
struct ServerSpec {
  Resources capacity;      ///< (C_i cores, M_i GB) of Eq. (5).
  double base_speed = 1.0; ///< >0; 1.0 is a "normal" node, >1 is a fast node.
  int rack = 0;            ///< rack index for the locality model.
  std::string model;       ///< human-readable label, e.g. "xeon-24c".
};

/// Mutable allocation state of a single server inside a simulation.
class Server {
 public:
  Server(ServerId id, ServerSpec spec) : id_(id), spec_(std::move(spec)) {}

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] const ServerSpec& spec() const { return spec_; }
  [[nodiscard]] const Resources& capacity() const { return spec_.capacity; }
  [[nodiscard]] const Resources& used() const { return used_; }
  [[nodiscard]] Resources free() const { return (spec_.capacity - used_).clamped(); }
  [[nodiscard]] int rack() const { return spec_.rack; }

  /// True when `demand` fits in the remaining capacity and the server is
  /// up and not quarantined.
  [[nodiscard]] bool can_fit(const Resources& demand) const {
    return !down_ && !quarantined_ && (used_ + demand).fits_within(spec_.capacity);
  }

  /// Failure-injection state: a down server accepts no allocations (its
  /// running copies are killed by the simulator when it goes down).
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool is_down() const { return down_; }

  /// Resilience-policy state: a quarantined server is up (running copies
  /// keep running) but accepts no new placements until probation releases
  /// it.  Set via SchedulerContext::set_server_quarantined, which also
  /// keeps the PlacementIndex candidacy in sync.
  void set_quarantined(bool quarantined) { quarantined_ = quarantined; }
  [[nodiscard]] bool is_quarantined() const { return quarantined_; }

  /// Fail-slow ("gray failure") state: new copies launched on this server
  /// take slow_factor times longer while > 1.  1.0 means healthy; the
  /// simulator multiplies copy durations by this, so the healthy path is
  /// bit-exact (x * 1.0 == x for finite x).
  void set_slow_factor(double factor) { slow_factor_ = factor; }
  [[nodiscard]] double slow_factor() const { return slow_factor_; }

  /// Reserve resources; returns false (and changes nothing) if they do not
  /// fit.  The simulator is the only caller, so all capacity accounting
  /// (Eq. 5) funnels through this one check.
  bool allocate(const Resources& demand);

  /// Release previously allocated resources.
  void release(const Resources& demand);

  /// Running-copy counters (for utilization reporting).
  void note_copy_started() { ++running_copies_; }
  void note_copy_finished() { --running_copies_; }
  [[nodiscard]] int running_copies() const { return running_copies_; }

  /// Reset allocation state (between simulation runs).
  void reset() {
    used_ = {};
    running_copies_ = 0;
    down_ = false;
    quarantined_ = false;
    slow_factor_ = 1.0;
  }

 private:
  ServerId id_;
  ServerSpec spec_;
  Resources used_;
  int running_copies_ = 0;
  bool down_ = false;
  bool quarantined_ = false;
  double slow_factor_ = 1.0;
};

}  // namespace dollymp
