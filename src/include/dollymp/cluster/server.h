// A heterogeneous server: capacity, base speed, rack placement, allocation.
//
// Section 2 attributes stragglers to (i) server heterogeneity and (ii)
// time-varying background load on the physical hosts.  We model (i) with a
// static per-server base speed factor and (ii) with a pluggable background
// slowdown process (see background_load.h).  A copy placed on server s at
// time t runs at s.effective_speed(t) times nominal rate.
//
// Data layout: since the struct-of-arrays overhaul, per-server hot state
// (capacity, used, speed, flags, counters) lives in contiguous parallel
// arrays inside ServerTable, and Server is a 16-byte {table, id} view with
// the same accessor surface the object layout had.  Model labels are
// interned — one std::string per distinct machine shape, servers hold a
// 16-bit id — so building a million-server inventory allocates a handful
// of strings, not a million.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dollymp/common/debug_check.h"
#include "dollymp/common/resources.h"

namespace dollymp {

class StateWriter;
class StateReader;

using ServerId = std::int32_t;
inline constexpr ServerId kInvalidServer = -1;

/// Immutable description of a server model (construction-time only; the
/// hot state never stores one).
struct ServerSpec {
  Resources capacity;      ///< (C_i cores, M_i GB) of Eq. (5).
  double base_speed = 1.0; ///< >0; 1.0 is a "normal" node, >1 is a fast node.
  int rack = 0;            ///< rack index for the locality model.
  std::string model;       ///< human-readable label, e.g. "xeon-24c".
};

class Server;

/// Struct-of-arrays storage for every server's hot state.  Cluster owns
/// exactly one; Server views index into it.
class ServerTable {
 public:
  ServerTable() = default;

  void reserve(std::size_t servers);

  /// Append a row; interns the model label.  Returns the new server's id
  /// (== row index).
  ServerId add(const ServerSpec& spec);

  [[nodiscard]] std::size_t size() const { return capacity_.size(); }

  /// Interned model labels: one string per distinct model.
  [[nodiscard]] std::uint16_t intern_model(const std::string& model);
  [[nodiscard]] const std::string& model_name(std::uint16_t model_id) const {
    return model_names_[model_id];
  }
  [[nodiscard]] std::size_t distinct_models() const { return model_names_.size(); }

  /// Checkpoint/restore: the full table — immutable spec columns (capacity,
  /// speed, rack, model + interned labels) *and* mutable hot state (used,
  /// slow factor, copy counters, flags) — so a snapshot is self-contained
  /// and a fresh process can rebuild the cluster without re-running the
  /// inventory builder.  load_state overwrites every column.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  /// Bytes of hot-state storage (the interned label table is a handful of
  /// strings and not counted).  Feeds the bytes-per-server scale gate.
  [[nodiscard]] std::size_t memory_bytes() const {
    return capacity_.capacity() * sizeof(Resources) + used_.capacity() * sizeof(Resources) +
           base_speed_.capacity() * sizeof(double) +
           slow_factor_.capacity() * sizeof(double) +
           rack_.capacity() * sizeof(std::int32_t) +
           running_copies_.capacity() * sizeof(std::int32_t) +
           model_.capacity() * sizeof(std::uint16_t) +
           flags_.capacity() * sizeof(std::uint8_t);
  }

 private:
  friend class Server;

  static constexpr std::uint8_t kDown = 1u << 0;
  static constexpr std::uint8_t kQuarantined = 1u << 1;

  std::vector<Resources> capacity_;
  std::vector<Resources> used_;
  std::vector<double> base_speed_;
  std::vector<double> slow_factor_;
  std::vector<std::int32_t> rack_;
  std::vector<std::int32_t> running_copies_;
  std::vector<std::uint16_t> model_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::string> model_names_;
};

/// View over one ServerTable row: the mutable allocation state of a single
/// server inside a simulation.  Copying a Server copies the view, not the
/// row.
class Server {
 public:
  Server(ServerTable* table, ServerId id) : table_(table), id_(id) {}

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] const Resources& capacity() const { return table_->capacity_[row()]; }
  [[nodiscard]] const Resources& used() const { return table_->used_[row()]; }
  [[nodiscard]] Resources free() const { return (capacity() - used()).clamped(); }
  [[nodiscard]] int rack() const { return table_->rack_[row()]; }
  [[nodiscard]] double base_speed() const { return table_->base_speed_[row()]; }
  [[nodiscard]] std::uint16_t model_id() const { return table_->model_[row()]; }
  [[nodiscard]] const std::string& model() const {
    return table_->model_name(model_id());
  }

  /// True when `demand` fits in the remaining capacity and the server is
  /// up and not quarantined.
  [[nodiscard]] bool can_fit(const Resources& demand) const {
    const auto i = row();
    return table_->flags_[i] == 0 &&
           (table_->used_[i] + demand).fits_within(table_->capacity_[i]);
  }

  /// Failure-injection state: a down server accepts no allocations (its
  /// running copies are killed by the simulator when it goes down).
  void set_down(bool down) { set_flag(ServerTable::kDown, down); }
  [[nodiscard]] bool is_down() const { return (table_->flags_[row()] & ServerTable::kDown) != 0; }

  /// Resilience-policy state: a quarantined server is up (running copies
  /// keep running) but accepts no new placements until probation releases
  /// it.  Set via SchedulerContext::set_server_quarantined, which also
  /// keeps the PlacementIndex candidacy in sync.
  void set_quarantined(bool quarantined) { set_flag(ServerTable::kQuarantined, quarantined); }
  [[nodiscard]] bool is_quarantined() const {
    return (table_->flags_[row()] & ServerTable::kQuarantined) != 0;
  }

  /// Fail-slow ("gray failure") state: new copies launched on this server
  /// take slow_factor times longer while > 1.  1.0 means healthy; the
  /// simulator multiplies copy durations by this, so the healthy path is
  /// bit-exact (x * 1.0 == x for finite x).
  void set_slow_factor(double factor) { table_->slow_factor_[row()] = factor; }
  [[nodiscard]] double slow_factor() const { return table_->slow_factor_[row()]; }

  /// Reserve resources; returns false (and changes nothing) if they do not
  /// fit.  The simulator is the only caller, so all capacity accounting
  /// (Eq. 5) funnels through this one check.
  bool allocate(const Resources& demand);

  /// Release previously allocated resources.
  void release(const Resources& demand);

  /// Running-copy counters (for utilization reporting).
  void note_copy_started() { ++table_->running_copies_[row()]; }
  void note_copy_finished() {
    DMP_DEBUG_CHECK(table_->running_copies_[row()] > 0,
                    "Server::note_copy_finished: running-copy counter underflow");
    --table_->running_copies_[row()];
  }
  [[nodiscard]] int running_copies() const { return table_->running_copies_[row()]; }

  /// Reset allocation state (between simulation runs).
  void reset() {
    const auto i = row();
    table_->used_[i] = {};
    table_->running_copies_[i] = 0;
    table_->flags_[i] = 0;
    table_->slow_factor_[i] = 1.0;
  }

 private:
  [[nodiscard]] std::size_t row() const { return static_cast<std::size_t>(id_); }
  void set_flag(std::uint8_t bit, bool on) {
    if (on) {
      table_->flags_[row()] |= bit;
    } else {
      table_->flags_[row()] &= static_cast<std::uint8_t>(~bit);
    }
  }

  ServerTable* table_;
  ServerId id_;
};

}  // namespace dollymp
