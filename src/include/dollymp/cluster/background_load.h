// Time-varying background load on physical hosts.
//
// Section 2: "the background workload on the physical servers where the VM
// instances are located also changes over time.  Due to this, resource
// contention can occur and thus lead to stragglers."  We model the
// contention on each server as a piecewise-constant slowdown factor >= 1
// that renews at exponentially distributed intervals; with probability
// p_contend the renewal draws a heavy-tailed (bounded Pareto) slowdown,
// otherwise the server runs unimpeded.  This yields exactly the trace
// phenomenology the paper cites: most tasks normal, a heavy tail of copies
// running several times slower, and the straggler pattern changing over
// time rather than being pinned to fixed "bad" machines.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/common/distributions.h"
#include "dollymp/common/rng.h"

namespace dollymp {

class StateWriter;
class StateReader;

struct BackgroundLoadConfig {
  bool enabled = true;
  double mean_interval_seconds = 120.0;  ///< mean time between load renewals
  double contention_probability = 0.25;  ///< chance a renewal brings contention
  double slowdown_shape = 1.8;           ///< Pareto shape of the slowdown tail
  double max_slowdown = 8.0;             ///< cap (Facebook traces: up to 8x, Sec. 1)
};

/// Per-server piecewise-constant slowdown process.  Deterministic given the
/// seed and queried lazily: advance(t) rolls the process forward to time t.
class BackgroundLoadProcess {
 public:
  BackgroundLoadProcess(BackgroundLoadConfig config, std::size_t num_servers,
                        std::uint64_t seed);

  /// Multiplicative slowdown (>= 1) experienced by `server` at time
  /// `seconds`.  Monotonically advancing query times are required (the
  /// simulator's clock only moves forward).
  [[nodiscard]] double slowdown(std::size_t server, double seconds);

  [[nodiscard]] const BackgroundLoadConfig& config() const { return config_; }

  void reset(std::uint64_t seed);

  /// Checkpoint/restore: the per-server segment boundaries, current
  /// slowdowns and RNG positions — the full process state, so restored
  /// queries continue the exact realization.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  struct State {
    double until_seconds = 0.0;  ///< current segment valid before this time
    double slowdown = 1.0;
    Rng rng{0};
  };

  void renew(State& s, double now);

  BackgroundLoadConfig config_;
  std::vector<State> states_;
};

}  // namespace dollymp
