// The cluster: an indexed set of heterogeneous servers plus the standard
// inventories used throughout the evaluation.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/server.h"
#include "dollymp/common/resources.h"

namespace dollymp {

/// A group of identical servers, used to describe inventories compactly.
struct ServerGroup {
  ServerSpec spec;
  int count = 1;
};

class Cluster {
 public:
  Cluster();
  explicit Cluster(const std::vector<ServerGroup>& groups);
  // The server table lives behind a unique_ptr so Server views stay valid
  // across Cluster moves; copies deep-copy the table and rebind the views
  // (the simulator copies the prototype cluster per run).
  Cluster(const Cluster& other);
  Cluster& operator=(const Cluster& other);
  Cluster(Cluster&&) noexcept = default;
  Cluster& operator=(Cluster&&) noexcept = default;

  [[nodiscard]] std::size_t size() const { return servers_.size(); }
  [[nodiscard]] bool empty() const { return servers_.empty(); }
  [[nodiscard]] Server& server(std::size_t i) { return servers_.at(i); }
  [[nodiscard]] const Server& server(std::size_t i) const { return servers_.at(i); }
  [[nodiscard]] std::vector<Server>& servers() { return servers_; }
  [[nodiscard]] const std::vector<Server>& servers() const { return servers_; }

  /// Total capacity across servers (the denominators of Eq. 9 / Eq. 15).
  [[nodiscard]] const Resources& total_capacity() const { return total_; }
  /// Sum of free resources right now.
  [[nodiscard]] Resources total_free() const;
  /// Sum of allocated resources right now.
  [[nodiscard]] Resources total_used() const;
  /// Utilization of each dimension in [0,1]; max over dimensions.
  [[nodiscard]] double utilization() const;

  [[nodiscard]] int rack_count() const { return rack_count_; }

  /// The struct-of-arrays hot-state storage behind the Server views.
  [[nodiscard]] ServerTable& table() { return *table_; }
  [[nodiscard]] const ServerTable& table() const { return *table_; }

  void add_server(ServerSpec spec);
  /// Pre-size the table (large inventories build reallocation-free).
  void reserve(std::size_t servers);
  void reset_allocations();

  /// Checkpoint/restore: delegate to ServerTable::save_state/load_state and
  /// rebuild the Server views plus the derived totals, so a snapshot alone
  /// reconstructs the cluster in a fresh process.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

  // ----- standard inventories ---------------------------------------------

  /// The paper's private 30-node cluster (Section 6.1): 2 servers with 24
  /// cores / 48 GB, 7 servers with 16 cores / 32-64 GB, 21 servers with 8
  /// cores / 16 GB; 328 cores total, two racks.  Fast servers get a higher
  /// base speed (heterogeneity is what creates stragglers in Fig. 1).
  static Cluster paper30();

  /// Scaled-down Google-like heterogeneous inventory for the trace-driven
  /// simulations of Section 6.3 (the paper uses >30K servers; the default
  /// here keeps wall-clock reasonable while preserving heterogeneity mix —
  /// pass a larger `servers` to go bigger).
  static Cluster google_like(std::size_t servers);

  /// Full-scale trace inventory (Section 6.3): the paper replays Google
  /// traces on >30,000 servers.  Four machine shapes over racks of 48 —
  /// feasible to simulate thanks to the incremental PlacementIndex, and
  /// (with the struct-of-arrays ServerTable) cheap to build at 300K and
  /// 1,000,000 servers for the ROADMAP's million-server target (see
  /// bench/scale_step.cpp).
  static Cluster google_trace(std::size_t servers = 30'000);

  /// Mixed ML/analytics inventory for the GPU gang-scheduling scenario:
  /// per 8 machines, 2 are 8-GPU training nodes (64 cores / 256 GB / 8
  /// GPUs) and 6 are CPU-only 16-core workers, over racks of 16.  GPUs are
  /// the scarce integral third resource dimension (SimConfig::resource_dims
  /// = 3); gang-scheduled training steps compete with CPU analytics jobs
  /// for the hosts.
  static Cluster gpu_pods(std::size_t servers);

  /// Single server with the given (normalized) capacity — the transient
  /// setting of Sections 4.1/4.2 and the Fig. 2 example.
  static Cluster single(Resources capacity, double base_speed = 1.0);

  /// Homogeneous cluster (for controlled tests).
  static Cluster uniform(std::size_t servers, Resources capacity, double base_speed = 1.0);

 private:
  std::unique_ptr<ServerTable> table_;
  std::vector<Server> servers_;  ///< views into table_, one per row
  Resources total_;
  int rack_count_ = 0;
};

}  // namespace dollymp
