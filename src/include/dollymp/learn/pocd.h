// Probability of Completion before Deadline (PoCD) — the deadline-oriented
// redundancy analytics from the related work (Chronos, Xu et al.,
// ICDCS'18; paper Section 7).
//
// Chronos chooses between cloning and speculative execution per job by
// computing the probability that the job meets its deadline under each
// strategy.  This module provides those closed-form probabilities for the
// library's Pareto task model, so a user can reason about deadlines on top
// of the flowtime-oriented DollyMP machinery:
//
// * A task with Pareto(x_m, alpha) duration and r simultaneous copies
//   completes by t with probability 1 - (x_m/t)^(r*alpha)   (t >= x_m) —
//   the min of r i.i.d. Pareto variables is Pareto with shape r*alpha.
// * Under late speculation at time s with one backup, the task completes
//   by t > s with probability
//     1 - Pr{original > t, and (original > s implies backup > t - s)}
//   which for the renewal approximation used by Chronos is
//     1 - (x_m/t)^alpha * (x_m/(t-s))^alpha   for t - s >= x_m.
// * A phase of n independent tasks meets the deadline iff all its tasks
//   do; a chain of phases meets it iff a deadline split does (we use the
//   proportional-to-theta split Chronos adopts).
#pragma once

#include <vector>

#include "dollymp/common/distributions.h"
#include "dollymp/job/job.h"

namespace dollymp {

/// Probability that a single task (Pareto fit from theta/sigma) with `copies`
/// simultaneous copies finishes within `deadline_seconds`.  sigma == 0
/// degenerates to a step function at theta.
[[nodiscard]] double task_pocd_cloning(double theta, double sigma, int copies,
                                       double deadline_seconds);

/// Probability that a single task finishes within the deadline under
/// speculative execution: one backup launched at `speculate_at_seconds` if
/// the original is still running then.
[[nodiscard]] double task_pocd_speculation(double theta, double sigma,
                                           double speculate_at_seconds,
                                           double deadline_seconds);

/// PoCD of one phase: all of its `task_count` i.i.d. tasks must finish by
/// the deadline (with `copies` clones each).
[[nodiscard]] double phase_pocd_cloning(const PhaseSpec& phase, int copies,
                                        double deadline_seconds);

/// PoCD of a chain-structured job (phases executed sequentially): the
/// deadline is split across phases proportionally to their theta, the
/// Chronos heuristic.  Throws if the job's DAG is not a chain.
[[nodiscard]] double job_pocd_cloning(const JobSpec& job, int copies,
                                      double deadline_seconds);

/// Smallest number of copies (1..max_copies) whose phase PoCD reaches
/// `target`; 0 when even max_copies cannot reach it.
[[nodiscard]] int copies_for_target_pocd(const PhaseSpec& phase, double target,
                                         double deadline_seconds, int max_copies = 8);

}  // namespace dollymp
