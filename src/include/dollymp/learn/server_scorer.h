// Online straggler-aware server scoring — the paper's stated future work
// (Section 8: "apply online learning methods to quickly identify those
// servers that can easily lead to stragglers").
//
// Each completed copy yields one observation: the ratio of its realized
// running time to the phase's expected duration theta.  Per server we
// maintain an exponentially-weighted moving average of that ratio; servers
// whose recent copies run slow (static slowness, contention from
// background load, remote reads) accumulate a slowdown estimate > 1 and
// can be deprioritized when placing new copies and clones.  The EWMA
// forgets, so a server recovers its score once contention passes —
// matching the paper's observation that background load changes over time.
//
// The estimator is deliberately simple (no distributional assumptions):
// with a forgetting factor alpha, the estimate tracks a piecewise-constant
// slowdown with O(1/alpha) sample lag, and a pseudo-count prior keeps cold
// servers neutral so exploration is free.
#pragma once

#include <cstddef>
#include <vector>

#include "dollymp/cluster/server.h"

namespace dollymp {

class StateWriter;
class StateReader;

struct ServerScorerConfig {
  /// EWMA forgetting factor in (0, 1]; higher adapts faster.
  double ewma_alpha = 0.25;
  /// Neutral prior slowdown and its pseudo-weight (in samples): a server
  /// with few observations stays close to 1.0.
  double prior_slowdown = 1.0;
  double prior_weight = 3.0;
  /// Estimates are clamped to [1/max_slowdown, max_slowdown].
  double max_slowdown = 16.0;
};

class ServerScorer {
 public:
  ServerScorer(std::size_t num_servers, ServerScorerConfig config = {});

  /// Record one finished copy: `expected_seconds` is the phase's theta,
  /// `actual_seconds` the realized wall-clock running time on `server`.
  /// Killed copies must NOT be reported (their durations are censored by
  /// the surviving sibling and would bias the estimate down).
  void observe(ServerId server, double expected_seconds, double actual_seconds);

  /// Current slowdown estimate (>= 1/max, <= max); 1.0 means nominal.
  [[nodiscard]] double estimated_slowdown(ServerId server) const;

  [[nodiscard]] std::size_t samples(ServerId server) const;
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Multiplier to apply to a placement score (higher is better): the
  /// reciprocal of the estimated slowdown.
  [[nodiscard]] double placement_weight(ServerId server) const {
    return 1.0 / estimated_slowdown(server);
  }

  void reset();

  /// Checkpoint/restore of the learned estimates (state_io framing).
  /// load_state resizes to the serialized server count, so a
  /// default-sized instance can be restored directly.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  struct State {
    double ewma = 1.0;
    double weight = 0.0;  ///< effective sample mass behind the EWMA
    std::size_t count = 0;
  };

  ServerScorerConfig config_;
  std::vector<State> states_;
};

}  // namespace dollymp
