// Arrival processes: assign a_j to a job suite.
//
// Section 3 allows "an arbitrary time sequence" of arrivals; the evaluation
// uses fixed mean inter-arrival gaps (~200 s lightly loaded, ~20 s heavily
// loaded).  "Around N seconds" is modelled as uniform jitter about the mean;
// a Poisson process and batch (all-at-zero, the transient setting of
// Section 4) are also provided.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/job/job.h"

namespace dollymp {

/// All jobs arrive at time zero (the transient case of Sections 4.1-4.2).
void assign_batch_arrivals(std::vector<JobSpec>& jobs);

/// Deterministic fixed gap: job i arrives at i * gap.
void assign_fixed_arrivals(std::vector<JobSpec>& jobs, double gap_seconds);

/// Mean gap with +/- jitter_fraction uniform jitter (the paper's "around
/// 200 seconds" / "around 20 seconds").
void assign_jittered_arrivals(std::vector<JobSpec>& jobs, double mean_gap_seconds,
                              double jitter_fraction, std::uint64_t seed);

/// Poisson process with the given mean inter-arrival gap.
void assign_poisson_arrivals(std::vector<JobSpec>& jobs, double mean_gap_seconds,
                             std::uint64_t seed);

/// Diurnal (time-varying Poisson) arrivals: the instantaneous rate follows
/// 1 + amplitude * sin(2*pi*t/period), so load peaks and troughs like a
/// production cluster's day/night cycle.  amplitude in [0, 1); the mean
/// gap over a full period equals mean_gap_seconds.  Implemented by
/// thinning a homogeneous Poisson process.
void assign_diurnal_arrivals(std::vector<JobSpec>& jobs, double mean_gap_seconds,
                             double amplitude, double period_seconds,
                             std::uint64_t seed);

}  // namespace dollymp
