// Trace file IO: serialize a job suite to CSV and back.
//
// One row per phase.  Columns:
//   job_id,job_name,app,arrival_s,phase,phase_name,tasks,cpu,mem_gb,
//   theta_s,sigma_s,parents
// where `parents` is a ';'-separated list of phase indices (empty for
// sources).  This is the drop-in point for replaying a real cluster trace:
// convert it to this schema and feed it to any bench via load_trace().
#pragma once

#include <string>
#include <vector>

#include "dollymp/job/job.h"

namespace dollymp {

[[nodiscard]] std::string trace_to_csv(const std::vector<JobSpec>& jobs);
[[nodiscard]] std::vector<JobSpec> trace_from_csv(const std::string& csv_text);

void save_trace(const std::vector<JobSpec>& jobs, const std::string& path);
[[nodiscard]] std::vector<JobSpec> load_trace(const std::string& path);

}  // namespace dollymp
