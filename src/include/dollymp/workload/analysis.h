// Workload analysis: the calibration arithmetic behind every experiment.
//
// Before running a scheduler comparison you need to know what load a
// workload actually puts on a cluster — total core-/memory-seconds, the
// offered-load ratio over the arrival window, the straggler profile.
// These functions compute exactly that from JobSpecs, so experiments can
// be placed deliberately in the light/moderate/heavy regimes the paper's
// sections correspond to (every bench in this repository was calibrated
// with them).
#pragma once

#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/job/job.h"

namespace dollymp {

struct WorkloadStats {
  std::size_t jobs = 0;
  long long tasks = 0;
  long long phases = 0;
  double cpu_core_seconds = 0.0;   ///< sum of tasks x theta x cpu demand
  double mem_gb_seconds = 0.0;     ///< sum of tasks x theta x memory demand
  double gpu_seconds = 0.0;        ///< sum of tasks x theta x gpu demand
  double arrival_window_seconds = 0.0;  ///< last arrival - first arrival
  double mean_critical_path_seconds = 0.0;  ///< at sigma factor r = 0
  /// Fraction of phases whose sigma/theta marks them straggler-prone
  /// (cv > 0.5, the threshold separating the trace model's two classes).
  double straggler_phase_fraction = 0.0;
};

[[nodiscard]] WorkloadStats analyze_workload(const std::vector<JobSpec>& jobs);

/// Offered load of the workload on `cluster`: expected resource demand per
/// second of the arrival window over cluster capacity, per dimension, max
/// taken.  > 1 means the queue necessarily grows during arrivals.  Returns
/// 0 for an empty workload or a zero-length window (batch arrivals).
[[nodiscard]] double offered_load(const std::vector<JobSpec>& jobs,
                                  const Cluster& cluster);

/// Human-readable calibration report.
[[nodiscard]] std::string render_workload_report(const std::vector<JobSpec>& jobs,
                                                 const Cluster& cluster);

}  // namespace dollymp
