// Application builders: WordCount and PageRank DAG jobs.
//
// Section 6.2 builds its workload from two applications, WordCount (one
// map->reduce stage; inputs of 4 or 10 GB) and PageRank (iterative; inputs
// of 1 or 10 GB).  The builders reproduce the phase structure, task counts
// scaled from input size through an HDFS-style block size, per-task
// multi-resource demands, and duration statistics with the measured
// straggler dispersion.  Absolute seconds are calibrated so a 4 GB
// WordCount takes a few hundred seconds on the paper's 30-node cluster,
// matching Fig. 1's y-axis scale.
#pragma once

#include "dollymp/job/job.h"

namespace dollymp {

/// Knobs shared by the builders; defaults follow the paper's setup.
struct AppConfig {
  double block_gb = 0.25;          ///< HDFS block size driving map-task count
  double map_theta_per_gb = 11.0;  ///< mean map seconds per GB of block data
  double reduce_fraction = 0.25;   ///< reduce tasks per map task
  double straggler_cv = 0.9;       ///< sigma/theta of task durations
  Resources map_demand{1.0, 2.0};
  Resources reduce_demand{1.0, 3.0};
};

/// WordCount: map phase (one task per input block) followed by a reduce
/// phase that depends on it.
[[nodiscard]] JobSpec make_wordcount(JobId id, double input_gb, double arrival_seconds = 0.0,
                                     const AppConfig& config = {});

/// PageRank: an init/partition phase, then `iterations` supersteps, each a
/// compute phase followed by an aggregation barrier phase; the chain gives
/// the sequential-DAG dependency structure the paper evaluates.
[[nodiscard]] JobSpec make_pagerank(JobId id, double input_gb, int iterations = 3,
                                    double arrival_seconds = 0.0,
                                    const AppConfig& config = {});

/// TeraSort: sample -> partition-sort -> merge, the classic three-stage
/// sort benchmark.  The sort phase is memory-heavy (spill buffers), the
/// merge phase network/CPU bound — a different packing profile from
/// WordCount, useful for exercising multi-resource trade-offs.
[[nodiscard]] JobSpec make_terasort(JobId id, double input_gb,
                                    double arrival_seconds = 0.0,
                                    const AppConfig& config = {});

/// A SQL-style analytic query plan with a genuine diamond DAG: two scan
/// phases feed a join, which feeds an aggregate — the only builder whose
/// DAG is not a chain, exercising the multi-parent precedence (Eq. 7) and
/// critical-path logic on branching structures.
[[nodiscard]] JobSpec make_sql_join(JobId id, double left_gb, double right_gb,
                                    double arrival_seconds = 0.0,
                                    const AppConfig& config = {});

/// Knobs for the gang-scheduled ML training builder.
struct MlTrainConfig {
  int world_size = 8;    ///< data-parallel ranks; the gang width of each step
  int steps = 4;         ///< chained synchronous training steps
  /// Per-rank demand: GPU-integral (dim 2), with the CPU/host-memory
  /// sidecar each rank pins.  Requires SimConfig::resource_dims >= 3 to be
  /// visible in reports; the arithmetic carries it regardless.
  Resources rank_demand{4.0, 24.0, 1.0};
  double setup_theta_seconds = 90.0;  ///< data download + graph compile
  double step_theta_seconds = 150.0;  ///< mean seconds per synchronous step
  /// Synchronous steps disperse far less than map tasks (the all-reduce
  /// barrier is the straggler, not the compute), but not zero: input
  /// pipeline jitter remains.
  double straggler_cv = 0.25;
};

/// Distributed ML training: a CPU-only setup phase, then `steps` chained
/// gang phases of `world_size` ranks each (PhaseSpec::gang — placed
/// all-or-nothing, mirroring how a partial world cannot make progress
/// through an all-reduce).  The iteration chain reuses the PageRank
/// superstep structure; each step depends on the previous one.
[[nodiscard]] JobSpec make_mltrain(JobId id, double arrival_seconds = 0.0,
                                   const MlTrainConfig& config = {});

}  // namespace dollymp
