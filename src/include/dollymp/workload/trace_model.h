// Synthetic Google-trace workload model.
//
// The paper samples >1000 jobs uniformly at random from the Google cluster
// traces [37], using their task counts and per-task CPU/memory demands, and
// its Section 6.3 trace analysis reports: 95% of jobs are small; task
// execution times within a phase "can vary substantially (the stragglers
// could be 20x slow as the normal tasks)"; and 70% of job phases contain a
// fraction of more than 15% task stragglers.  The actual traces are not
// shipped here, so this model synthesizes jobs whose marginal distributions
// match those published statistics (DESIGN.md lists the substitution).  A
// real trace CSV can be substituted through workload/trace_io.h.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/common/rng.h"
#include "dollymp/job/job.h"

namespace dollymp {

struct TraceModelConfig {
  // --- job shape ------------------------------------------------------------
  double small_job_fraction = 0.95;  ///< Google: 95% of jobs are small [36]
  double small_tasks_median = 8.0;   ///< tasks per phase for small jobs
  double large_tasks_median = 120.0; ///< tasks per phase for large jobs
  double tasks_cv = 1.2;             ///< dispersion of task counts (lognormal)
  int max_tasks_per_phase = 2000;
  double multi_phase_fraction = 0.6; ///< jobs that get a reduce/second phase
  double dag_fraction = 0.15;        ///< jobs that get a 3+-phase chain DAG
  int max_phases = 6;

  // --- per-task demand --------------------------------------------------
  double cpu_median = 1.0;   ///< cores per task (Google traces are sub-core;
                             ///< we keep core-granularity like the paper's YARN)
  double cpu_cv = 0.6;
  double cpu_max = 8.0;
  double mem_per_cpu_median = 2.0;  ///< GB per core, correlated with CPU
  double mem_per_cpu_cv = 0.5;
  double mem_max = 32.0;

  // --- durations & stragglers -------------------------------------------
  double theta_median_seconds = 45.0;  ///< ~small-task scale, matches 5 s slots
  double theta_cv = 1.0;
  double theta_max_seconds = 1800.0;
  /// Fraction of phases that are straggler-prone (paper: 70%).
  double straggler_phase_fraction = 0.70;
  /// sigma/theta for straggler-prone phases — Pareto-fit alpha ~= 2.1 gives
  /// >15% of tasks beyond 1.5x median and a 20x tail.
  double straggler_cv = 1.1;
  /// sigma/theta for well-behaved phases.
  double normal_cv = 0.25;
};

/// Generates reproducible synthetic workloads.
class TraceModel {
 public:
  explicit TraceModel(TraceModelConfig config = {}, std::uint64_t seed = 1);

  [[nodiscard]] const TraceModelConfig& config() const { return config_; }

  /// Sample one job (arrival time set to 0; use workload/arrivals.h to
  /// assign arrivals).
  [[nodiscard]] JobSpec sample_job(JobId id);

  /// Sample a whole suite of `count` jobs.
  [[nodiscard]] std::vector<JobSpec> sample_jobs(int count, JobId first_id = 0);

 private:
  [[nodiscard]] int sample_task_count(bool small);
  [[nodiscard]] Resources sample_demand();
  [[nodiscard]] double sample_theta();

  TraceModelConfig config_;
  Rng rng_;
};

}  // namespace dollymp
