// Overload protection for service mode: deterministic admission control,
// load shedding and the SLO-driven degradation ladder (DESIGN.md §4.9).
//
// Everything here is a pure function of the arrival stream and the
// session's own observable state — no wall clock, no RNG — so a restored
// or forked session sheds exactly the arrivals the original would have
// shed and climbs the ladder at exactly the same pump boundaries.  That is
// what keeps the flight-recorder stream hash usable as the equality oracle
// even with protection enabled (docs/ALGORITHMS.md §20).
//
// Three layers, outermost first:
//   1. Token bucket (AdmissionGate): a hard arrival-rate cap refilled from
//      the arrivals' own timestamps.
//   2. Watermark shedding (AdmissionGate): when live jobs per live server
//      cross the high watermark the gate latches and sheds lower tenant
//      classes (error-diffused by shed_fraction) until load falls back
//      through the low watermark — classic hysteresis, no flapping.
//   3. Degradation ladder (OverloadGovernor): level 0 healthy, 1 throttle
//      clone budgets, 2 also disable speculation, 3 also shed every
//      non-protected arrival.  Driven by load ratio and the sliding-window
//      p99 against the SLO target, with dwell counts so one noisy
//      evaluation cannot move the ladder.
#pragma once

#include <cstdint>

#include "dollymp/job/job.h"
#include "dollymp/metrics/slo_window.h"

namespace dollymp {

class StateWriter;
class StateReader;

/// Why the gate dropped an arrival (the TraceEv::kArrivalShed encoding and
/// the SimStats counter it lands in).
enum class ShedReason : int {
  kTokenBucket = 0,  ///< over the admission rate cap
  kWatermark = 1,    ///< watermark latch shed a sheddable class
  kOverload = 2,     ///< ladder level 3: emergency shedding
};

struct OverloadConfig {
  /// Master switch for the admission gate (token bucket + watermark
  /// shedding).  Off by default: every golden hash predates this layer.
  bool admission_enabled = false;

  /// Token bucket over admitted arrivals; 0 disables the rate cap.  The
  /// bucket refills from arrival timestamps (not wall time), so admission
  /// is a pure function of the arrival stream.
  double bucket_rate_per_second = 0.0;
  /// Bucket capacity in jobs (the tolerated burst above the rate).
  double bucket_burst = 32.0;

  /// Watermark latch over live jobs per live (up, unquarantined) server:
  /// shedding starts at high_watermark and stops once load falls to
  /// low_watermark — the gap is the hysteresis band.
  double high_watermark = 4.0;
  double low_watermark = 2.0;

  /// Deterministic tenant classes: class = job id % num_tenant_classes,
  /// higher class = higher priority.  The top `protected_classes` classes
  /// are never shed by the watermark latch (they are still subject to the
  /// token bucket, which is a rate guarantee, not a priority one).
  int num_tenant_classes = 4;
  int protected_classes = 1;
  /// Fraction of sheddable arrivals dropped while the latch holds, applied
  /// by error diffusion so e.g. 0.5 sheds exactly every other candidate.
  double shed_fraction = 1.0;

  /// Master switch for the degradation ladder.  Off by default.
  bool governor_enabled = false;
  /// Sliding response-time window: size and the minimum sample count
  /// before p99 participates in the pressure signal.
  int slo_window_size = 512;
  int slo_min_samples = 64;
  /// p99 response-time target in seconds; 0 means pressure is load-only.
  double slo_target_p99_seconds = 0.0;
  /// Ladder thresholds over the pressure signal
  /// max(load_ratio / high_watermark, p99 / slo_target): the ladder wants
  /// level L while pressure >= enter_level[L-1].  Must be increasing.
  double enter_level1 = 1.0;
  double enter_level2 = 1.5;
  double enter_level3 = 2.0;
  /// A level is left only once pressure falls below enter * exit_ratio —
  /// the ladder's hysteresis band, in (0, 1].
  double exit_ratio = 0.8;
  /// Consecutive evaluations (one per pump chunk) agreeing before the
  /// ladder moves one rung, in either direction.
  int dwell_evaluations = 2;

  /// True when any protection layer is on (the session skips all overload
  /// work otherwise, keeping the default hot path byte-identical).
  [[nodiscard]] bool any_enabled() const { return admission_enabled || governor_enabled; }

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Layers 1 + 2: the per-arrival admit/shed decision.  Stateful
/// (bucket level, latch, diffusion accumulator) and fully serialized.
class AdmissionGate {
 public:
  explicit AdmissionGate(const OverloadConfig& config);

  /// Update the watermark latch from the current load ratio (live jobs per
  /// live server).  Called once per pump chunk, before the chunk's
  /// arrivals are filtered.
  void update_watermark(double load_ratio);

  /// Decide one arrival.  Returns true to admit; on false, `reason` names
  /// the layer that shed it.  `overload_level` is the governor's current
  /// rung (>= 3 forces shedding of every non-protected class).
  [[nodiscard]] bool admit(const JobSpec& spec, int overload_level, ShedReason* reason);

  /// Tenant class of a job under this gate's config.
  [[nodiscard]] int tenant_class(JobId id) const;
  [[nodiscard]] bool latched() const { return latched_; }

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  const OverloadConfig config_;
  double tokens_;
  double last_refill_seconds_ = 0.0;
  bool latched_ = false;
  double shed_accumulator_ = 0.0;
};

/// Layer 3: the hysteresis ladder.  Evaluated once per pump chunk; the
/// session applies level changes to the core (clone throttling and
/// speculation shutdown flow through SchedulerContext::overload_level).
class OverloadGovernor {
 public:
  explicit OverloadGovernor(const OverloadConfig& config);

  /// One evaluation: fold the load ratio and the window's p99 into the
  /// pressure signal and move at most one rung after the dwell.  Returns
  /// the (possibly unchanged) level.
  int evaluate(double load_ratio, const SloWindow& window);

  [[nodiscard]] int level() const { return level_; }
  /// Pressure computed by the last evaluate() call (observability).
  [[nodiscard]] double last_pressure() const { return last_pressure_; }

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  /// The level the current pressure argues for, ignoring dwell.
  [[nodiscard]] int target_level(double pressure) const;

  const OverloadConfig config_;
  int level_ = 0;
  int pending_level_ = 0;  ///< rung the recent evaluations argue for
  int dwell_count_ = 0;    ///< consecutive evaluations agreeing on it
  double last_pressure_ = 0.0;
};

}  // namespace dollymp
