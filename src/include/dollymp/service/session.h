// A long-lived simulation service session: streaming arrivals, verifiable
// checkpoint/restore, and copy-on-write what-if forks (DESIGN.md §4.8).
//
// A Session wraps a SimCore in service mode (streaming + job recycling),
// pumps jobs from an ArrivalSource in bounded chunks as simulated time
// advances, and keeps resident memory proportional to the number of LIVE
// jobs rather than total arrivals: job specs are ingested in shared-pointer
// segments, and a segment is dropped once every job it carries has been
// recycled by the core.
//
// Checkpoints are full-fidelity: the DMPCKPT01 file carries the arrival
// source position, the session clock and the complete SimCore state
// (including the scheduler's decision caches), so a restored session's
// flight-recorder stream hash is bit-identical to the uninterrupted run's
// — checked by tests/test_service across policies, fault modes and thread
// counts.
//
// Forks are the what-if primitive: fork() snapshots the parent in memory
// and builds a child session that shares the parent's immutable job specs
// (segment shared_ptrs plus SimCore's shared-spec restore path — no spec
// bytes are copied) while owning all mutable state.  The child can switch
// policy (the scheduler blob is skipped; the new policy starts cold) and
// quarantine servers at the fork point, then run an alternative future
// without perturbing the parent.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/metrics/slo_window.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/service/arrival_source.h"
#include "dollymp/service/overload.h"
#include "dollymp/sim/sim_core.h"

namespace dollymp {

/// The shared policy-name factory (the dialect of tools/dollymp_sim):
/// capacity, hopper, drf, tetris, carbyne, srpt, svf, dollymp0..dollymp3.
/// Throws std::invalid_argument listing the known names on a miss.
[[nodiscard]] std::unique_ptr<Scheduler> make_named_policy(const std::string& name);
[[nodiscard]] const std::vector<std::string>& known_policy_names();

struct ServiceConfig {
  SimConfig sim;
  ArrivalConfig arrivals;
  std::string policy = "dollymp2";
  /// Arrival pump chunk in slots: run_until ingests and steps in windows of
  /// this many slots so the in-core arrival backlog stays bounded.
  SimTime pump_slots = 256;
  /// Periodic checkpoint cadence in simulated seconds for drivers that ask
  /// for one (tools/dollymp_service --checkpoint-every).  Negative disables;
  /// exactly 0 is rejected (a checkpoint per slot is never what you want).
  double checkpoint_interval_seconds = -1.0;
  /// Overload protection: admission gate, load shedding and the SLO-driven
  /// degradation ladder.  All layers default off — the protected hot path
  /// is byte-identical to PR 8's, pinned by the golden stream hashes.
  OverloadConfig overload;

  /// Full validation: sim.validate(), arrivals.validate(), the policy name,
  /// the overload knobs and the service knobs.  Throws std::invalid_argument
  /// naming the field.
  void validate() const;
};

class Session {
 public:
  /// What-if divergence options for fork().
  struct ForkOptions {
    /// Empty: inherit the parent's policy AND its warm scheduler state.
    /// A different name: the child runs that policy from a cold start (the
    /// snapshot's scheduler blob is skipped).
    std::string policy;
    /// Servers quarantined in the child at the fork point ("what if this
    /// rack went dark") — permanent for the child's lifetime.
    std::vector<ServerId> quarantine;
  };

  /// Validates the config, installs the session-owned flight recorder
  /// (always on — the stream hash is the service's equality oracle;
  /// bounded ring, so it never grows), binds the policy and arms the core
  /// at slot 0.
  Session(Cluster cluster, ServiceConfig config);

  /// Advance simulated time through `horizon_slots`, pumping arrivals in
  /// pump_slots-sized chunks and reclaiming drained spec segments.
  ///
  /// Determinism contract: the decision stream is a pure function of
  /// (config, the SEQUENCE of run_until horizons).  Chunk boundaries decide
  /// whether an arriving job reuses a recycled slot or appends a fresh one,
  /// so pausing at different points yields different (each individually
  /// deterministic) streams.  Checkpoint/restore preserves bit-identity
  /// because the restored session resumes at the saved clock and the caller
  /// drives both futures with the same horizons.
  void run_until(SimTime horizon_slots);

  // ---- observability -------------------------------------------------------
  [[nodiscard]] SimTime clock() const { return clock_; }
  [[nodiscard]] const StreamTotals& totals() const { return core_->totals(); }
  [[nodiscard]] int live_jobs() const { return core_->jobs_remaining(); }
  [[nodiscard]] std::uint64_t stream_hash() const { return recorder_.hash(); }
  [[nodiscard]] std::uint64_t records_written() const { return recorder_.records_written(); }
  [[nodiscard]] std::size_t spec_segments() const { return segments_.size(); }
  /// Job specs currently retained across all segments — the number that
  /// must stay proportional to live jobs, not total arrivals.
  [[nodiscard]] std::size_t specs_retained() const;
  [[nodiscard]] std::size_t store_memory_bytes() const { return core_->store_memory_bytes(); }
  /// Current rung of the degradation ladder (0 unless the governor is on).
  [[nodiscard]] int overload_level() const { return core_->overload_level(); }
  /// Arrivals dropped by any protection layer so far (sum of the three
  /// SimStats shed counters) — with jobs_ingested this accounts for every
  /// arrival the source emitted.
  [[nodiscard]] long long arrivals_shed() const;
  /// Live-load ratio the gate/governor saw at the last pump boundary.
  [[nodiscard]] double load_ratio() const { return last_load_ratio_; }
  /// The sliding response-time window behind the SLO governor.
  [[nodiscard]] const SloWindow& slo_window() const { return slo_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] const std::string& policy_name() const { return config_.policy; }
  /// The underlying core, exposed for stats and targeted what-if mutations.
  [[nodiscard]] SimCore& core() { return *core_; }
  [[nodiscard]] const SimCore& core() const { return *core_; }

  // ---- checkpoint/restore --------------------------------------------------
  /// Write a DMPCKPT01 checkpoint file.  Legal at any pause point; const —
  /// the session continues unperturbed.
  void checkpoint(const std::string& path) const;

  /// The checkpoint payload as sealed DMPCKPT01 envelope bytes — what
  /// checkpoint() writes, for callers that publish through a
  /// SnapshotRotation instead of a single file.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Rebuild a session from a checkpoint written by a session with the
  /// same config (policy and cluster size are carried in the file and
  /// checked).  The restored session's future decision stream is
  /// bit-identical to the uninterrupted original's.
  [[nodiscard]] static std::unique_ptr<Session> restore(Cluster cluster,
                                                        ServiceConfig config,
                                                        const std::string& path);

  // ---- what-if forks -------------------------------------------------------
  /// Copy-on-write fork at the current pause point.  The child shares the
  /// parent's job-spec storage (and keeps it alive via segment
  /// shared_ptrs); all mutable simulation state is the child's own.  The
  /// parent is not modified and its future stream is unaffected.
  [[nodiscard]] std::unique_ptr<Session> fork(const ForkOptions& options) const;

 private:
  /// One ingest chunk: the specs (shared so forks and the core can outlive
  /// the pumping session), the ingest seq of its first job, and how many of
  /// its jobs the core has not recycled yet.
  struct Segment {
    std::shared_ptr<std::vector<JobSpec>> specs;
    std::int64_t first_seq = 0;
    std::int64_t live = 0;
  };

  void pump_arrivals(SimTime through_slot);
  void reap_recycled();
  /// Pump-boundary overload work: refresh the load estimate, update the
  /// watermark latch and step the governor ladder (tracing transitions).
  void evaluate_overload();
  void write_payload(StateWriter& w) const;
  void load_payload(StateReader& r, bool load_scheduler,
                    const std::vector<const JobSpec*>* shared_specs);

  ServiceConfig config_;
  Cluster prototype_;  ///< pristine copy for restore/fork core construction
  Recorder recorder_;
  ArrivalSource source_;
  AdmissionGate gate_;
  OverloadGovernor governor_;
  SloWindow slo_;
  double last_load_ratio_ = 0.0;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<SimCore> core_;
  std::deque<Segment> segments_;
  std::vector<RecycledJob> recycled_scratch_;
  SimTime clock_ = 0;  ///< horizon stepped through so far
};

}  // namespace dollymp
