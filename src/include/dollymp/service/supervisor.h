// Crash-safe supervised execution of a service session (DESIGN.md §4.9).
//
// run_supervised forks the session into a child process and babysits it:
// the child advances the session in fixed checkpoint strides, publishing a
// rotation snapshot (common/state_io.h SnapshotRotation) and an atomic
// progress file at every stride boundary; the parent waits, restarts a
// crashed or watchdog-stalled child from the newest *valid* snapshot
// (corrupted generations are quarantined and the previous one picked up
// automatically), and returns the final progress once the horizon is
// reached.
//
// Recovery is bit-identical, not merely close: snapshots are only cut at
// stride boundaries, strides are a multiple of the session's pump chunk,
// and the session's decision stream is a pure function of (config, horizon
// sequence) — so whatever partial work a killed child had done past its
// last snapshot is discarded and replayed identically by its successor.
// Any kill point therefore yields the same final stream hash as an
// uninterrupted run (docs/ALGORITHMS.md §20; proven across the
// policy × faults × threads matrix in tests/test_supervisor.cpp).
//
// POSIX-only (fork/waitpid/kill); on other platforms run_supervised throws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/service/session.h"

namespace dollymp {

struct SupervisorOptions {
  /// Base path of the snapshot rotation (files `<base>.latest`,
  /// `<base>.prev`, quarantined generations `<...>.quarantined.N`) and of
  /// the progress file `<base>.progress`.
  std::string snapshot_base;
  /// Slot the supervised run should reach.
  SimTime horizon_slots = 0;
  /// Snapshot cadence in slots.  Must be a positive multiple of the
  /// session's pump_slots so every snapshot falls on a canonical chunk
  /// boundary — the bit-identity precondition.
  SimTime checkpoint_stride_slots = 0;
  /// Give up after this many child restarts (a crash loop is a bug, not an
  /// outage to ride out).
  int max_restarts = 8;
  /// Wall-clock seconds without child progress before the watchdog assumes
  /// a hang, kills the child and restarts it.
  double watchdog_seconds = 30.0;
  /// Explicit snapshot to resume the FIRST child from, instead of the
  /// rotation's newest valid generation.  A quarantined path is refused.
  std::string resume_from;
  /// Fault-injection hook for the recovery proof: child k (0-based) raises
  /// SIGKILL on itself as soon as its clock reaches kill_at_slots[k] —
  /// deliberately *before* that stride's snapshot is cut, so the successor
  /// must recover from strictly older state.  Children beyond the list run
  /// to completion.
  std::vector<SimTime> kill_at_slots;
};

struct SupervisorResult {
  SimTime final_clock = 0;
  std::uint64_t stream_hash = 0;
  std::uint64_t records_written = 0;
  long long jobs_ingested = 0;
  long long jobs_completed = 0;
  long long arrivals_shed = 0;
  int restarts = 0;               ///< children spawned beyond the first
  int snapshots_quarantined = 0;  ///< corrupted generations moved aside
};

/// Run `config` over `cluster` under supervision until
/// options.horizon_slots.  Throws std::invalid_argument on bad options and
/// std::runtime_error when the child cannot be kept alive (restart budget
/// exhausted, or a crash with no valid snapshot to resume from).
///
/// Must not be called while the calling process has live worker threads:
/// the child is a fork() without exec, and only the forking thread survives
/// in it.
[[nodiscard]] SupervisorResult run_supervised(const Cluster& cluster,
                                              const ServiceConfig& config,
                                              const SupervisorOptions& options);

}  // namespace dollymp
