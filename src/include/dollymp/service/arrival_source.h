// Open-loop streaming arrival generation for service mode.
//
// Batch runs hand the simulator a complete job list up front; a service
// run faces an unbounded arrival process and must ingest jobs as simulated
// time advances.  This source models that process as a non-homogeneous
// Poisson stream with two composable modulations observed in production
// traces:
//
//   * a diurnal cycle — the rate swings sinusoidally around its base with
//     a configurable amplitude and period (day/night load);
//   * a flash crowd — a multiplicative rate surge over one interval
//     (a product launch, a retry storm).
//
// Generation uses Poisson thinning: candidate arrivals are drawn from a
// homogeneous process at the envelope rate lambda_max >= lambda(t)
// everywhere, and each candidate at time t survives with probability
// lambda(t) / lambda_max.  Thinning keeps the draw count per accepted
// arrival bounded and — crucially for checkpointing — makes the stream a
// pure function of (config, RNG position, last arrival time): capturing
// those three reproduces every future arrival bit-identically.
//
// Job bodies are sampled from the workload generators in workload/apps.h
// (wordcount / pagerank / terasort / sql_join) with exponentially
// distributed input sizes, so a long stream exercises the full size mix.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/common/rng.h"
#include "dollymp/sim/types.h"

namespace dollymp {

class StateWriter;
class StateReader;

struct ArrivalConfig {
  /// Base Poisson arrival rate in jobs per simulated second.
  double rate_per_second = 0.5;

  // ---- diurnal modulation --------------------------------------------------
  /// Relative swing in [0, 1): lambda(t) carries a factor
  /// 1 + amplitude * sin(2*pi*t / period).  0 disables the cycle.
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 86400.0;

  // ---- flash crowd ---------------------------------------------------------
  /// Rate multiplier (>= 1) applied inside
  /// [flash_start_seconds, flash_start_seconds + flash_duration_seconds).
  /// flash_start_seconds < 0 disables the surge.
  double flash_multiplier = 1.0;
  double flash_start_seconds = -1.0;
  double flash_duration_seconds = 0.0;

  // ---- job bodies ----------------------------------------------------------
  /// Mean input size of sampled jobs; sizes are Exp(mean) clamped to
  /// [0.05, 20 * mean] so a single draw cannot dwarf the cluster.
  double mean_input_gb = 2.0;

  /// Seed of the source's private RNG stream (independent of the
  /// simulator's streams; SimConfig::seed does not feed it).
  std::uint64_t seed = 1;

  /// JobId of the first emitted job; subsequent ids are sequential.
  JobId first_job_id = 0;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

class ArrivalSource {
 public:
  explicit ArrivalSource(ArrivalConfig config);

  /// Arrival time (seconds) of the next pending job.  Knowing it without
  /// materializing the job lets the session pump arrivals lazily.
  [[nodiscard]] double next_arrival_seconds() const { return pending_seconds_; }

  /// Materialize and append every job arriving strictly before
  /// `horizon_seconds`; returns the number emitted.  Chunking is free:
  /// emit_until(a) then emit_until(b) produces the same jobs as one
  /// emit_until(b) because the RNG is consumed in emission order.
  std::size_t emit_until(double horizon_seconds, std::vector<JobSpec>& out);

  [[nodiscard]] JobId next_job_id() const { return next_id_; }
  [[nodiscard]] const ArrivalConfig& config() const { return config_; }

  /// Instantaneous rate lambda(t) — exposed for tests.
  [[nodiscard]] double rate_at(double t_seconds) const;

  // ---- checkpoint/restore --------------------------------------------------
  /// RNG position + pending arrival + next id.  The config is NOT part of
  /// the stream: the restoring side constructs with the same config (the
  /// service checkpoint envelope carries and checks it).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  /// Thin the envelope process forward from pending_seconds_ to the next
  /// accepted arrival.
  void advance();
  [[nodiscard]] JobSpec sample_job(double arrival_seconds);

  ArrivalConfig config_;
  Rng rng_;
  double lambda_max_ = 0.0;
  double pending_seconds_ = 0.0;
  JobId next_id_ = 0;
};

}  // namespace dollymp
