// Mutable runtime state of jobs, phases, tasks and copies during a
// simulation.  Schedulers receive references to these objects through the
// SchedulerContext; the simulator is the only mutator (schedulers observe
// and request placements).
//
// Non-clairvoyance: CopyRuntime::finish is the simulator's private
// realization of the copy's random duration.  Scheduler implementations
// must not read it (they only know theta/sigma, as the paper's AM does);
// this is enforced by convention and checked in code review, not the type
// system, to keep the state inspectable by tests and metrics.
#pragma once

#include <vector>

#include "dollymp/cluster/locality.h"
#include "dollymp/common/distributions.h"
#include "dollymp/job/effective.h"
#include "dollymp/job/job.h"
#include "dollymp/sim/types.h"

namespace dollymp {

/// One running (or finished/killed) copy of a task.
struct CopyRuntime {
  ServerId server = kInvalidServer;
  SimTime start = kNever;
  SimTime finish = kNever;      ///< predicted completion slot (see header note)
  LocalityLevel locality = LocalityLevel::kNode;
  bool active = false;          ///< currently occupying resources
  bool killed = false;          ///< terminated because a sibling finished first
  double base_seconds = 0.0;    ///< sampled duration before slot rounding
};

class TaskRuntime {
 public:
  TaskRef ref;
  Resources demand;
  std::vector<CopyRuntime> copies;
  BlockPlacement block;         ///< input block replica placement

  bool finished = false;
  bool ever_cloned = false;  ///< ever had a redundant sibling (accounting)
  SimTime finish_slot = kNever;
  SimTime first_start = kNever;

  // Work-based model bookkeeping (Eq. 6): accrued work in theta-units of
  // seconds, last slot at which it was accrued, and a generation counter
  // that invalidates stale completion events when the copy set changes.
  double work_done_seconds = 0.0;
  SimTime work_updated_at = 0;
  std::uint32_t generation = 0;

  [[nodiscard]] int active_copies() const;
  [[nodiscard]] bool running() const { return active_copies() > 0; }
  [[nodiscard]] bool scheduled() const { return !copies.empty(); }
  [[nodiscard]] int total_copies() const { return static_cast<int>(copies.size()); }
  /// True when the task must (still or again) be placed: unfinished with no
  /// running copy.  Normally equivalent to "never scheduled", but a server
  /// failure can kill every copy of a task, putting it back in this state.
  [[nodiscard]] bool needs_placement() const { return !finished && active_copies() == 0; }
};

class PhaseRuntime {
 public:
  PhaseIndex index = 0;
  const PhaseSpec* spec = nullptr;

  std::vector<TaskRuntime> tasks;
  int remaining_tasks = 0;     ///< n_j^k(t) of Eq. (16)
  int unfinished_parents = 0;  ///< runnable when 0 (Eq. 7)
  bool has_children = false;   ///< some phase consumes this one's output
  // Scheduler fast-path counters, maintained by the simulator so policies
  // can skip exhausted phases in O(1) instead of scanning task arrays.
  int unscheduled_tasks = 0;        ///< tasks with no copy yet
  int first_unscheduled_hint = 0;   ///< monotone cursor into `tasks`
  int active_copies = 0;            ///< currently running copies in this phase
  bool finished = false;
  SimTime finish_slot = kNever;  ///< lambda_j^k of Eq. (6)

  /// Pre-sampled base durations (seconds), one per task; clones re-draw
  /// uniformly from this pool (Section 6.3's clone rule).
  std::vector<double> duration_pool;
  /// Speedup function h_j^k fitted from (theta, sigma) (Eq. 3).
  SpeedupFunction speedup{2.0};

  [[nodiscard]] bool runnable() const { return unfinished_parents == 0 && !finished; }
};

class JobRuntime {
 public:
  const JobSpec* spec = nullptr;
  JobId id = -1;

  SimTime arrival = 0;
  bool arrived = false;
  bool finished = false;
  SimTime finish_slot = kNever;
  SimTime first_start = kNever;

  std::vector<PhaseRuntime> phases;
  int remaining_phases = 0;

  // Aggregate accounting for the metrics module.
  int clones_launched = 0;        ///< copies beyond the first per task
  int speculative_launched = 0;   ///< backups from the speculation module
  double resource_seconds = 0.0;  ///< sum over copies: normalized demand x runtime
  int tasks_with_clones = 0;

  /// Snapshot for the Eq. (16)/(17) recomputation.
  [[nodiscard]] JobProgress progress() const;

  /// Remaining effective volume v_j(t) (Eq. 16).  Cached: the inputs only
  /// change when a task or phase of this job completes, and the simulator
  /// calls invalidate_remaining_cache() on exactly those events, so
  /// repeated reads (every DollyMP recompute, Carbyne's leftover sort)
  /// skip the per-phase rescan.  A cache refresh runs the identical
  /// effective.h computation, so cached reads are bit-identical to fresh
  /// ones.
  [[nodiscard]] double remaining_volume(const Resources& cluster_total,
                                        double sigma_factor) const;
  /// Remaining effective length e_j(t) (Eq. 17).  Cached like
  /// remaining_volume.
  [[nodiscard]] double remaining_length(double sigma_factor) const;

  /// Drop the remaining_volume / remaining_length caches (a task or phase
  /// of this job just completed).
  void invalidate_remaining_cache() const {
    volume_cache_valid_ = false;
    length_cache_valid_ = false;
  }
  /// Max over remaining phases of the phase dominant share (the d_j used by
  /// Algorithm 1's capacity margin).
  [[nodiscard]] double max_dominant_share(const Resources& cluster_total) const;

  [[nodiscard]] int total_tasks() const { return spec->total_tasks(); }
  [[nodiscard]] bool has_runnable_work() const;

 private:
  // remaining_volume / remaining_length caches, keyed by the call
  // parameters (different policies may pass different sigma factors).
  mutable bool volume_cache_valid_ = false;
  mutable double volume_cache_sigma_ = 0.0;
  mutable Resources volume_cache_total_;
  mutable double volume_cache_value_ = 0.0;
  mutable bool length_cache_valid_ = false;
  mutable double length_cache_sigma_ = 0.0;
  mutable double length_cache_value_ = 0.0;
};

/// Build the runtime skeleton for a job: samples the per-phase duration
/// pools (Pareto fitted to theta/sigma; degenerate to constant when sigma
/// is 0) and the input-block replica placements.
[[nodiscard]] JobRuntime materialize_job(const JobSpec& spec, double slot_seconds,
                                         const LocalityModel& locality, Rng& rng);

}  // namespace dollymp
