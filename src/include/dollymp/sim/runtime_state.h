// Mutable runtime state of jobs, phases, tasks and copies during a
// simulation.  Schedulers receive references to these objects through the
// SchedulerContext; the simulator is the only mutator (schedulers observe
// and request placements).
//
// Data layout: since the struct-of-arrays overhaul, these classes are VIEW
// holders.  The actual storage lives in flat parallel arrays owned by
// RuntimeStore (sim/runtime_store.h) — all PhaseRuntime records
// contiguous, all TaskRuntime records contiguous, all duration-pool
// samples contiguous, copy records pooled in a CopySlab.  JobRuntime::
// phases, PhaseRuntime::tasks and PhaseRuntime::duration_pool are RtSpan
// windows into those arrays, and TaskRuntime::copies is a slab-backed
// CopyList; the accessor surface (indexing, iteration, size, pointer
// difference against data()) is unchanged, so scheduler and metrics code
// is layout-agnostic.
//
// Non-clairvoyance: CopyRuntime::finish is the simulator's private
// realization of the copy's random duration.  Scheduler implementations
// must not read it (they only know theta/sigma, as the paper's AM does);
// this is enforced by convention and checked in code review, not the type
// system, to keep the state inspectable by tests and metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/cluster/locality.h"
#include "dollymp/common/distributions.h"
#include "dollymp/job/effective.h"
#include "dollymp/job/job.h"
#include "dollymp/sim/copy_slab.h"
#include "dollymp/sim/types.h"

namespace dollymp {

/// Non-owning window into one of RuntimeStore's flat arrays.  Deliberately
/// minimal: the vector read surface the runtime-state consumers use, plus
/// clear() (drop-the-elements semantics — storage stays with the store).
template <typename T>
class RtSpan {
 public:
  RtSpan() = default;

  /// Rebind the window (RuntimeStore does this on materialization and
  /// after any flat-array growth; tests bind hand-held backing vectors).
  void assign(T* data, std::size_t size) {
    data_ = data;
    size_ = static_cast<std::uint32_t>(size);
  }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const { return data_[size_ - 1]; }

  /// Forget the elements.  The storage belongs to the store and is not
  /// reclaimed — used by tests exercising empty-state error paths.
  void clear() { size_ = 0; }

 private:
  T* data_ = nullptr;
  std::uint32_t size_ = 0;
};

class TaskRuntime {
 public:
  TaskRef ref;
  Resources demand;
  CopyList copies;              ///< slab-backed; see sim/copy_slab.h
  BlockPlacement block;         ///< input block replica placement

  bool finished = false;
  bool ever_cloned = false;  ///< ever had a redundant sibling (accounting)
  SimTime finish_slot = kNever;
  SimTime first_start = kNever;

  // Work-based model bookkeeping (Eq. 6): accrued work in theta-units of
  // seconds, last slot at which it was accrued, and a generation counter
  // that invalidates stale completion events when the copy set changes.
  double work_done_seconds = 0.0;
  SimTime work_updated_at = 0;
  std::uint32_t generation = 0;

  [[nodiscard]] int active_copies() const;
  [[nodiscard]] bool running() const { return active_copies() > 0; }
  [[nodiscard]] bool scheduled() const { return !copies.empty(); }
  [[nodiscard]] int total_copies() const { return static_cast<int>(copies.size()); }
  /// True when the task must (still or again) be placed: unfinished with no
  /// running copy.  Normally equivalent to "never scheduled", but a server
  /// failure can kill every copy of a task, putting it back in this state.
  [[nodiscard]] bool needs_placement() const { return !finished && active_copies() == 0; }
};

class PhaseRuntime {
 public:
  PhaseIndex index = 0;
  const PhaseSpec* spec = nullptr;

  RtSpan<TaskRuntime> tasks;
  int remaining_tasks = 0;     ///< n_j^k(t) of Eq. (16)
  int unfinished_parents = 0;  ///< runnable when 0 (Eq. 7)
  bool has_children = false;   ///< some phase consumes this one's output
  // Scheduler fast-path counters, maintained by the simulator so policies
  // can skip exhausted phases in O(1) instead of scanning task arrays.
  int unscheduled_tasks = 0;        ///< tasks with no copy yet
  int first_unscheduled_hint = 0;   ///< monotone cursor into `tasks`
  int active_copies = 0;            ///< currently running copies in this phase
  bool finished = false;
  SimTime finish_slot = kNever;  ///< lambda_j^k of Eq. (6)

  /// Pre-sampled base durations (seconds), one per task; clones re-draw
  /// uniformly from this pool (Section 6.3's clone rule).
  RtSpan<double> duration_pool;
  /// Speedup function h_j^k fitted from (theta, sigma) (Eq. 3).
  SpeedupFunction speedup{2.0};
  /// Rack-spread duration factor of the last committed gang wave:
  /// 1 + gang_spread_penalty * (distinct racks - 1), set by
  /// SimCore::place_gang before the commit so every copy of the wave (and
  /// later clones/re-executions) runs with the all-reduce penalty baked in.
  /// Exactly 1.0 for non-gang phases, so the != 1.0 fast path keeps the
  /// historical decision stream bit-identical.
  double gang_penalty = 1.0;

  [[nodiscard]] bool runnable() const { return unfinished_parents == 0 && !finished; }
};

class JobRuntime {
 public:
  const JobSpec* spec = nullptr;
  JobId id = -1;

  SimTime arrival = 0;
  bool arrived = false;
  bool finished = false;
  SimTime finish_slot = kNever;
  SimTime first_start = kNever;

  RtSpan<PhaseRuntime> phases;
  int remaining_phases = 0;

  // Aggregate accounting for the metrics module.
  int clones_launched = 0;        ///< copies beyond the first per task
  int speculative_launched = 0;   ///< backups from the speculation module
  double resource_seconds = 0.0;  ///< sum over copies: normalized demand x runtime
  int tasks_with_clones = 0;

  // Service-mode bookkeeping.  pending_events counts in-flight heap events
  // referencing this job slot — recycling waits for the last one to drain,
  // so no event ever pops against a reused slot.  ingest_seq is the
  // streaming ingestion sequence number, a stable identity across JobId
  // reuse.  Both are inert in batch runs.
  std::int32_t pending_events = 0;
  std::int64_t ingest_seq = 0;

  /// Snapshot for the Eq. (16)/(17) recomputation.
  [[nodiscard]] JobProgress progress() const;

  /// Remaining effective volume v_j(t) (Eq. 16).  Cached: the inputs only
  /// change when a task or phase of this job completes, and the simulator
  /// calls invalidate_remaining_cache() on exactly those events, so
  /// repeated reads (every DollyMP recompute, Carbyne's leftover sort)
  /// skip the per-phase rescan.  A cache refresh runs the identical
  /// effective.h computation, so cached reads are bit-identical to fresh
  /// ones.
  [[nodiscard]] double remaining_volume(const Resources& cluster_total,
                                        double sigma_factor) const;
  /// Remaining effective length e_j(t) (Eq. 17).  Cached like
  /// remaining_volume.
  [[nodiscard]] double remaining_length(double sigma_factor) const;

  /// Drop the remaining_volume / remaining_length caches (a task or phase
  /// of this job just completed).
  void invalidate_remaining_cache() const {
    volume_cache_valid_ = false;
    length_cache_valid_ = false;
  }
  /// Max over remaining phases of the phase dominant share (the d_j used by
  /// Algorithm 1's capacity margin).
  [[nodiscard]] double max_dominant_share(const Resources& cluster_total) const;

  [[nodiscard]] int total_tasks() const { return spec->total_tasks(); }
  [[nodiscard]] bool has_runnable_work() const;

 private:
  // remaining_volume / remaining_length caches, keyed by the call
  // parameters (different policies may pass different sigma factors).
  mutable bool volume_cache_valid_ = false;
  mutable double volume_cache_sigma_ = 0.0;
  mutable Resources volume_cache_total_;
  mutable double volume_cache_value_ = 0.0;
  mutable bool length_cache_valid_ = false;
  mutable double length_cache_sigma_ = 0.0;
  mutable double length_cache_value_ = 0.0;
};

}  // namespace dollymp
