// The steppable simulation core behind Simulator and the service mode.
//
// Historically the whole event loop lived inside Simulator::Impl and ran a
// workload start-to-finish in one call.  Service mode needs the same engine
// but driven incrementally: jobs streamed in over time, execution paused at
// a horizon, state checkpointed to disk and restored bit-identically, and
// live simulations forked for what-if exploration.  SimCore is that
// extraction — the exact batch semantics restructured as
//
//   SimCore core(cluster, config);
//   core.ingest(specs);          // repeatable: streaming chunks append
//   core.begin(scheduler);
//   core.step_until(horizon);    // kUnbounded == the legacy run loop
//   SimResult r = core.finish();
//
// Batch equivalence is bit-exact: Simulator::run is now a thin wrapper over
// this sequence, and the 36 golden flight-stream hashes pin the claim.  The
// restructured loop visits slot 0 unconditionally (first_visit_), performs
// the same same-slot processing (failures, arrivals, completions, scheduler
// invocation) and throws the same stall / max_slots / time-advance errors
// with the same messages.
//
// Streaming differences are opt-in flags, all off for batch runs:
//   * set_streaming(true): jobs_remaining_ == 0 no longer ends the run
//     (more arrivals may be ingested later; fault timers keep ticking) and
//     step_until returns kIdle when truly nothing is pending.
//   * set_recycle_jobs(true): a completed job's runtime slot is handed back
//     to the RuntimeStore for the next materialize of the same shape once
//     its last in-flight heap event has drained, so resident memory tracks
//     *live* jobs instead of total arrivals.  Recycled (ingest_seq, JobId)
//     pairs are surfaced via take_recycled for id reuse upstream.
//   * set_source_exhausted(false): suppresses the stall throw while the
//     arrival source can still produce (the streaming session flips it to
//     true when the source ends, restoring the batch stall semantics).
//
// Checkpoint/restore: save_state serializes the complete mutable state —
// clock, RNG positions, cluster hot state, runtime store, pending event
// set, fault masks, background-load processes, recorder stream position and
// a length-prefixed scheduler blob — and load_state reproduces a run that
// pops the same events in the same order and appends the same trace
// records (docs/ALGORITHMS.md §19).  The pending events are re-pushed from
// an unspecified enumeration: the event comparator is a total order over
// all payload fields, so the pending *set* determines the pop sequence and
// the shard layout is not semantic.
#pragma once

#include <array>
#include <chrono>
#include <deque>
#include <optional>
#include <vector>

#include "dollymp/cluster/background_load.h"
#include "dollymp/cluster/cluster.h"
#include "dollymp/cluster/locality.h"
#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/rng.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/metrics/records.h"
#include "dollymp/metrics/slo_window.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/event_heap.h"
#include "dollymp/sim/faults.h"
#include "dollymp/sim/runtime_store.h"
#include "dollymp/sim/types.h"

namespace dollymp {

class StateWriter;
class StateReader;

/// Everything that can make the simulator visit a slot, in one typed heap.
/// Kind values double as the same-slot processing order: repairs before
/// failures (a machine that bounces within one slot ends up alive),
/// failures before completions (a copy cannot finish on a machine that
/// died the same instant), completions before timer wakeups (the scheduler
/// invocation a timer triggers must observe the slot's completions).
enum class EvKind : std::uint8_t {
  kServerRepair = 0,
  kServerFailure = 1,
  kCompletion = 2,  ///< copy finish (stochastic) or work prediction (work-based)
  kTimer = 3,       ///< scheduler wakeup requested via request_wakeup()
  // Fault-matrix events (sim/faults.h).  Rack events carry the rack index
  // in the `server` field.  Recover/repair kinds sort before their
  // onset/failure counterparts so a machine that bounces within one slot
  // ends up healthy, matching the crash-class convention above.
  kRackRepair = 4,
  kRackFailure = 5,
  kFailSlowRecover = 6,
  kFailSlowOnset = 7,
  kCopyFault = 8,   ///< cluster-wide transient copy-fault timer
};

/// One heap entry.  Completion events come in two flavours sharing the
/// kind: per-copy events (copy >= 0; stale when the copy was killed) and
/// per-task work predictions (copy == -1; stale when the task's generation
/// moved on).  Fields a kind does not use hold fixed sentinels so the
/// comparator defines one deterministic total order over all events.
struct SimEvent {
  SimTime slot = 0;
  EvKind kind = EvKind::kTimer;
  std::int32_t job_index = -1;
  PhaseIndex phase = -1;
  std::int32_t task = -1;
  std::int32_t copy = -1;        // -1 for work-based task events and non-completions
  std::uint32_t generation = 0;  // work-based staleness check, also a tie breaker
  ServerId server = kInvalidServer;

  // Repairs and failures form one group so same-slot machine events across
  // servers pop server-major with the repair first per server (each pop
  // draws the machine's next lifetime from the failure RNG, so this order
  // is part of the deterministic realization).
  [[nodiscard]] int group() const {
    switch (kind) {
      case EvKind::kServerRepair:
      case EvKind::kServerFailure:
      case EvKind::kRackRepair:
      case EvKind::kRackFailure:
      case EvKind::kFailSlowRecover:
      case EvKind::kFailSlowOnset:
        return 0;
      case EvKind::kCopyFault:
        return 1;  // after machine state settles, before completions
      case EvKind::kCompletion:
        return 2;
      case EvKind::kTimer:
        return 3;
    }
    return 4;  // unreachable
  }

  // Min-heap by slot with a fully deterministic total order: kind group,
  // then every payload field.  `generation` participates so two work-based
  // predictions for the same task (pushed by successive copy-set changes
  // landing on the same slot) pop in generation order instead of an
  // implementation-defined one.
  friend bool operator>(const SimEvent& a, const SimEvent& b) {
    if (a.slot != b.slot) return a.slot > b.slot;
    if (a.group() != b.group()) return a.group() > b.group();
    if (a.server != b.server) return a.server > b.server;
    if (a.kind != b.kind) return a.kind > b.kind;
    if (a.job_index != b.job_index) return a.job_index > b.job_index;
    if (a.phase != b.phase) return a.phase > b.phase;
    if (a.task != b.task) return a.task > b.task;
    if (a.copy != b.copy) return a.copy > b.copy;
    return a.generation > b.generation;
  }
};

/// Why step_until returned.
enum class StepOutcome : std::uint8_t {
  kFinished,        ///< batch mode: every ingested job completed
  kHorizonReached,  ///< the next due slot lies beyond the horizon
  kIdle,            ///< streaming: no live jobs, no pending arrivals, empty heap
};

/// Aggregate outcome counters for streaming runs, where per-job records
/// are not accumulated (a recycled job leaves only these behind).
struct StreamTotals {
  long long jobs_ingested = 0;
  long long jobs_completed = 0;
  double response_seconds_sum = 0.0;  ///< sum of (finish - arrival) wall seconds
  double makespan_seconds = 0.0;      ///< latest finish seen so far
  long long clones_launched = 0;
  long long speculative_launched = 0;
};

/// A recycled job slot's identity, surfaced so the streaming session can
/// reuse the JobId (bounding id-indexed scheduler state).
struct RecycledJob {
  std::int64_t ingest_seq = 0;
  JobId id = -1;
};

class SimCore final : public SchedulerContext {
 public:
  /// Horizon sentinel: never pause (the legacy batch loop).
  static constexpr SimTime kUnbounded = INT64_MAX;

  SimCore(Cluster cluster, const SimConfig& config);

  // ---- streaming knobs (set before begin(); all off for batch) -----------
  void set_streaming(bool streaming) { streaming_ = streaming; }
  void set_recycle_jobs(bool recycle) { recycle_ = recycle; }
  void set_source_exhausted(bool exhausted) { source_exhausted_ = exhausted; }

  /// Materialize jobs into the runtime store and merge them into the
  /// arrival order.  Callable repeatedly, before or after begin(); specs
  /// must outlive the core (the streaming session retains its segments).
  void ingest(const std::vector<JobSpec>& specs);

  /// Bind the scheduler, seed the fault timers and arm the loop at slot 0.
  void begin(Scheduler& scheduler);

  /// Run the event loop until nothing is due at or before `horizon` (the
  /// pause point advances no state: resuming recomputes the next due slot
  /// fresh, so arrivals ingested while paused are honoured).  Throws the
  /// legacy stall / max_slots / time-advance errors.
  StepOutcome step_until(SimTime horizon);

  /// Build the SimResult tail (records, leak accounting, counters).  In
  /// recycle mode per-job records are skipped — use totals() instead.
  [[nodiscard]] SimResult finish();

  // ---- streaming observability -------------------------------------------
  [[nodiscard]] const StreamTotals& totals() const { return totals_; }
  [[nodiscard]] int jobs_remaining() const { return jobs_remaining_; }
  [[nodiscard]] std::size_t pending_arrivals() const {
    return arrival_order_.size() - next_arrival_;
  }
  [[nodiscard]] std::size_t events_pending() const { return events_.size(); }
  [[nodiscard]] std::size_t job_slots() const { return jobs_.size(); }
  /// Ingest sequence number the next ingested job will receive — lets the
  /// session map take_recycled identities back to its spec segments.
  [[nodiscard]] std::int64_t next_ingest_seq() const { return next_ingest_seq_; }
  [[nodiscard]] const SimStats& stats() const { return result_.stats; }
  [[nodiscard]] std::size_t store_memory_bytes() const { return store_.memory_bytes(); }
  /// Drain the recycled-slot identities accumulated since the last call.
  void take_recycled(std::vector<RecycledJob>& out);

  // ---- overload protection (service mode; inert unless driven) -------------
  /// Observe each completed job's response time into `window` (null
  /// detaches).  The pointer is not serialized — the owning session rewires
  /// it after restore and round-trips the window contents itself.
  void set_slo_window(SloWindow* window) { slo_ = window; }
  /// Move the degradation ladder without tracing (restore path).  The live
  /// transition path is note_overload_transition below.
  void set_overload_level(int level) { overload_level_ = level; }
  /// SchedulerContext::overload_level for the policies.
  [[nodiscard]] int overload_level() const override { return overload_level_; }
  /// Servers currently placeable (up and not quarantined) — the live
  /// capacity the admission gate's watermark is measured against, O(fleet).
  [[nodiscard]] int live_servers() const;
  /// Accounting + trace for one shed arrival.  `reason`: 0 token bucket,
  /// 1 watermark, 2 overload ladder (the TraceEv::kArrivalShed encoding).
  void note_arrival_shed(JobId job, int tenant_class, int reason);
  /// Accounting + trace for a degradation-ladder move, then applies it.
  void note_overload_transition(int from_level, int to_level);

  // ---- checkpoint/restore -------------------------------------------------
  /// Serialize the complete mutable state (docs/DESIGN.md §4.8).  Legal at
  /// any pause point; const, so a live core can be snapshotted for forks.
  void save_state(StateWriter& w) const;
  /// Restore a snapshot written by save_state into a core constructed with
  /// the same config over any same-size cluster (the snapshot carries the
  /// authoritative cluster state).  Must be called after begin() with the
  /// scheduler that will continue the run; when `load_scheduler` is false
  /// the scheduler blob is skipped and the (freshly reset) scheduler starts
  /// cold — the policy-switch fork path.
  ///
  /// `shared_specs`, when non-null, is a per-slot spec-pointer table (from
  /// job_spec_pointers() of the core being forked): non-null entries are
  /// used directly instead of copying the spec out of the stream, so a fork
  /// shares its parent's immutable workload data.  The parent (or whatever
  /// owns those specs) must outlive this core.
  void load_state(StateReader& r, bool load_scheduler,
                  const std::vector<const JobSpec*>* shared_specs = nullptr);

  /// Per-slot spec pointers (null for recycled slots), aligned with the
  /// slot order save_state writes — the `shared_specs` input of a fork.
  [[nodiscard]] std::vector<const JobSpec*> job_spec_pointers() const;

  // ---- SchedulerContext ----------------------------------------------------
  [[nodiscard]] SimTime now() const override { return now_; }
  [[nodiscard]] double slot_seconds() const override { return config_.slot_seconds; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const SimConfig& config() const override { return config_; }
  [[nodiscard]] const std::vector<JobRuntime*>& active_jobs() override { return active_; }
  [[nodiscard]] Rng& policy_rng() override { return rng_policy_; }
  [[nodiscard]] PlacementIndex* placement_index() override {
    return index_ ? &*index_ : nullptr;
  }
  [[nodiscard]] ThreadPool* worker_pool() override { return pool_ ? &*pool_ : nullptr; }
  [[nodiscard]] ShardStats* shard_stats() override { return &parallel_stats_; }
  [[nodiscard]] Recorder* recorder() override { return rec_; }
  bool place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                  ServerId server) override;
  bool place_speculative_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                              ServerId server) override;
  bool place_gang(JobRuntime& job, PhaseRuntime& phase) override;
  void request_wakeup(SimTime slot) override;
  void set_server_quarantined(ServerId server_id, bool quarantined) override;
  void defer_retry(SimTime release_slot) override;
  void note_retry_issued(long long backoff_slots) override;
  void note_clone_budget_degraded(int effective, int configured) override;

 private:
  static std::uint64_t splitmix_seed(std::uint64_t seed, std::uint64_t tag) {
    std::uint64_t s = seed ^ (tag * 0x9E3779B97F4A7C15ULL);
    return splitmix64(s);
  }

  void push_event(const SimEvent& event);
  void push_completion(SimTime slot, JobRuntime& job, PhaseIndex phase,
                       std::int32_t task, std::int32_t copy, std::uint32_t generation);
  bool place(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task, ServerId server,
             bool speculative);
  void visit_slot();
  void process_arrivals();
  void drain_failures();
  void drain_completions();
  void handle_copy_finish(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                          std::size_t copy_index);
  void handle_work_event(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                         std::uint32_t generation);
  void complete_task(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task);
  void end_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                CopyRuntime& copy, bool killed);
  void complete_phase(JobRuntime& job, PhaseRuntime& phase);
  void complete_job(JobRuntime& job);
  void maybe_recycle(JobRuntime& job);
  void sample_utilization();
  void record_event(SimEventKind kind, JobId job = -1, PhaseIndex phase = -1,
                    int task = -1, std::int32_t server = -1);
  void trace(TraceEv type, JobId job = -1, PhaseIndex phase = -1,
             std::int32_t task = -1, std::int32_t copy = -1,
             std::int32_t server = -1, std::int64_t aux = 0);
  void validate_placeable(const JobSpec& spec) const;
  void seed_failures();
  void fail_server(ServerId server_id);
  void apply_server_down(ServerId server_id);
  void apply_server_up(ServerId server_id);
  void inject_copy_fault();
  void push_machine_event(SimTime delay, EvKind kind, std::int32_t target);
  [[nodiscard]] bool any_copy_active() const { return active_copy_count_ > 0; }
  /// True when the heap holds anything that can change simulation state
  /// (timer wakeups alone cannot: they only re-invoke the scheduler).
  [[nodiscard]] bool state_events_pending() const {
    return events_.size() > pending_timer_count_;
  }

  Cluster cluster_;
  SimConfig config_;
  /// Incremental free-capacity index over cluster_, kept in lockstep with
  /// every allocate/release/failure/repair below (absent when
  /// config_.use_placement_index is off).
  std::optional<PlacementIndex> index_;
  LocalityModel locality_;
  BackgroundLoadProcess background_;
  Rng rng_root_;
  Rng rng_workload_;
  Rng rng_exec_;
  Rng rng_policy_;
  Rng rng_failure_;
  /// Fault-matrix delay draws + down-source bookkeeping; absent on a
  /// healthy run.  Holds a reference to rng_failure_ above.
  std::optional<FaultEngine> faults_;
  Recorder* rec_;  ///< flight recorder, null unless SimConfig::recorder set
  /// Worker pool of the parallel scheduling core (absent when
  /// config_.threads resolves to a single thread) and the shard-count /
  /// imbalance accumulator its sharded scans note into.
  std::optional<ThreadPool> pool_;
  ShardStats parallel_stats_;

  /// Struct-of-arrays backing store for all job/phase/task/copy state; the
  /// jobs_ reference below preserves the historical vector-of-jobs surface
  /// (indexing, `&job - jobs_.data()` event payloads) over its flat jobs
  /// array.
  RuntimeStore store_;
  std::vector<JobRuntime>& jobs_ = store_.jobs();
  std::vector<std::int32_t> arrival_order_;  // job indices by arrival slot
  std::size_t next_arrival_ = 0;
  std::vector<JobRuntime*> active_;
  /// The event heap: completions, failures, repairs and timer wakeups in a
  /// single deterministic total order, sharded by server/job range behind a
  /// loser-tree merge frontier (sim/event_heap.h).
  ShardedEventHeap<SimEvent> events_;
  std::size_t pending_timer_count_ = 0;
  SimTime pending_timer_slot_ = kNever;  ///< dedupe: last timer slot still queued

  SimTime now_ = 0;
  Scheduler* scheduler_ = nullptr;  ///< valid from begin()
  /// place_gang scratch: the probe wave's tentative (task, server)
  /// assignments and the distinct racks of a committed wave.  Members so
  /// the steady state allocates nothing.
  std::vector<std::pair<TaskRuntime*, ServerId>> gang_scratch_;
  std::vector<int> gang_rack_scratch_;
  long long active_copy_count_ = 0;
  bool placed_this_invocation_ = false;
  /// Set via defer_retry(): the policy held at least one task back on
  /// purpose this invocation (retry backoff), so an otherwise-idle slot is
  /// not a stall.
  bool deferred_this_invocation_ = false;
  bool arrivals_this_slot_ = false;
  int jobs_remaining_ = 0;

  // ---- service-mode state --------------------------------------------------
  bool streaming_ = false;
  bool recycle_ = false;
  bool source_exhausted_ = true;  ///< batch: the full workload is up front
  bool first_visit_ = true;       ///< slot 0 is visited unconditionally
  bool started_ = false;
  std::int64_t next_ingest_seq_ = 0;
  StreamTotals totals_;
  std::vector<RecycledJob> recycled_;
  /// Degradation-ladder rung the session governor last applied (0 outside
  /// service mode) and the optional response-time window it feeds.
  int overload_level_ = 0;
  SloWindow* slo_ = nullptr;
  /// JobSpecs deserialized from a snapshot (restored jobs point here; a
  /// deque keeps addresses stable as later snapshots or ingests append).
  std::deque<JobSpec> owned_specs_;
  std::optional<std::chrono::steady_clock::time_point> wall_start_;

  SimResult result_;
};

}  // namespace dollymp
