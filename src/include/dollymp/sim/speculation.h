// LATE-style speculative execution, used by the Capacity baseline.
//
// Hadoop's speculation (which the paper's Capacity baseline runs, Section 2)
// monitors task progress and launches a backup for a task running much
// slower than its peers.  In the simulator a policy cannot observe the
// realized durations (non-clairvoyance), so it does what Hadoop does:
// compare a task's elapsed runtime against the phase's expected duration
// and the progress of already-finished siblings, and back up the worst
// overrunners when spare resources exist.  The paper's Fig. 1 observation —
// backups launch too late to save small jobs — emerges naturally: a task is
// only recognized as a straggler after running slow_factor * theta seconds.
#pragma once

#include <cstddef>
#include <vector>

#include "dollymp/sched/scheduler.h"

namespace dollymp {

struct SpeculationConfig {
  bool enabled = true;
  /// A task becomes a backup candidate after elapsed > slow_factor * theta.
  /// Hadoop flags a task only once it has demonstrably fallen behind the
  /// phase (progress score a standard deviation below the mean), which on
  /// heavy-tailed durations corresponds to roughly twice the expected time.
  double slow_factor = 2.5;
  /// Additionally require that at least this fraction of the phase's tasks
  /// have finished (Hadoop will not speculate before it has statistically
  /// significant samples — the very limitation Section 1 calls out for
  /// small jobs); 0 disables the gate.
  double min_finished_fraction = 0.4;
  /// At most one backup per task (Hadoop's default), so with the original
  /// copy a speculated task has 2 concurrent copies.
  int max_backups_per_task = 1;
  /// Cap on the fraction of cluster slots spent on backups at once.
  double capacity_fraction_cap = 0.10;
};

/// Scans active jobs and launches backups through the context.  Returns the
/// number of backups launched.  Reusable by any scheduler; the Capacity
/// baseline calls it after its normal placement pass.
///
/// Event-driven: the pass also registers a timer wakeup
/// (SchedulerContext::request_wakeup) at the earliest future slot where a
/// currently-running task will cross the slow_factor threshold, so callers
/// need no every-slot polling — between events and that crossing, the
/// pass's decision cannot change.
int run_speculation_pass(SchedulerContext& ctx, const SpeculationConfig& config);

/// Persistent scratch arena for run_speculation_pass: the scan-unit list,
/// per-shard scan outputs and the merged candidate vector.  Owned by the
/// calling scheduler and handed to every pass, so steady-state sweeps run
/// entirely inside retained capacity (no shard-merge allocation churn); each
/// parallel pass reports its acquisition to ShardStats::note_arena with
/// whether any backing buffer had to grow.
struct SpeculationScratch {
  struct Candidate {
    JobRuntime* job;
    PhaseRuntime* phase;
    TaskRuntime* task;
    double overrun;  ///< elapsed / theta, larger = more overdue
  };
  /// One (job, runnable phase) pair past the finished-fraction gate.
  struct ScanUnit {
    JobRuntime* job;
    PhaseRuntime* phase;
  };
  /// One shard's scan output: candidates and budget charges in scan order,
  /// plus the shard's earliest straggler-threshold crossing.
  struct ShardScan {
    std::vector<Candidate> candidates;
    std::vector<double> norm_contributions;
    SimTime next_crossing = kNever;
  };

  std::vector<ScanUnit> units;
  std::vector<ShardScan> scans;
  std::vector<Candidate> candidates;  ///< ordered merge of the shard scans

  /// Total retained capacity in bytes across every backing buffer —
  /// compared before/after a pass to detect growth.
  [[nodiscard]] std::size_t capacity_bytes() const;
};

/// Arena-taking overload: identical decisions to the overload above (the
/// scratch only changes where the temporaries live).  A null `scratch`
/// falls back to function-local buffers.
int run_speculation_pass(SchedulerContext& ctx, const SpeculationConfig& config,
                         SpeculationScratch* scratch);

}  // namespace dollymp
