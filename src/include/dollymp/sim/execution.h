// Execution models: realized copy durations (stochastic) and the
// mean-field work accrual of Eqs. (1), (4), (6) (work-based).
#pragma once

#include "dollymp/cluster/server.h"
#include "dollymp/common/rng.h"
#include "dollymp/sim/runtime_state.h"
#include "dollymp/sim/types.h"

namespace dollymp {

/// Base duration of a copy (seconds on a speed-1 server) under the
/// stochastic model.  The first copy of task i uses the pre-sampled pool
/// entry i; every additional copy draws a fresh entry uniformly from the
/// same phase's pool — exactly the paper's Section 6.3 clone rule.
[[nodiscard]] double sample_copy_base_seconds(const PhaseRuntime& phase, int task_index,
                                              bool is_first_copy, Rng& rng);

/// Apply the environment to a base duration: server base speed (server
/// heterogeneity), data-locality fetch penalty and the background-load
/// slowdown at launch time.  Takes the speed scalar rather than a Server
/// so the model is usable without a cluster (and the hot path reads the
/// ServerTable speed array once).
[[nodiscard]] double scale_copy_seconds(double base_seconds, double server_base_speed,
                                        double locality_penalty, double background_slowdown);

/// Seconds -> whole slots, at least 1 (a copy occupies its resources for at
/// least one slot).
[[nodiscard]] SimTime seconds_to_slots(double seconds, double slot_seconds);

// ---- work-based model -------------------------------------------------------

/// Roll task work forward to `now`: work += h(r) * slot_seconds per elapsed
/// slot while r copies were active (Eq. 4).  Call before any change to the
/// copy set and before completion checks.
void accrue_work(TaskRuntime& task, const PhaseRuntime& phase, SimTime now,
                 double slot_seconds);

/// Predicted completion slot given the current copy count stays fixed:
/// smallest t > now with work(t) >= theta (Eq. 6); kNever when no copies
/// are active.
[[nodiscard]] SimTime predict_work_finish(const TaskRuntime& task, const PhaseRuntime& phase,
                                          SimTime now, double slot_seconds);

}  // namespace dollymp
