// Sharded event heap with a loser-tree merge frontier.
//
// The simulator's single std::priority_queue serializes every push/pop
// through one comparison tree whose depth grows with the *total* number of
// pending events — at trace scale (hundreds of thousands of in-flight
// completions and fault timers) each operation walks log2(N) cache-cold
// levels.  ShardedEventHeap splits the pending set into K per-shard binary
// min-heaps keyed by a pure function of the event's payload (server range
// for machine/fault events, job range for completions — the same
// contiguous partition shard_range() produces), and merges the K shard
// minima through a tournament tree (the winner-storing variant of a loser
// tree — see adjust() for why winners): pop touches one shallow shard heap
// of ~N/K events plus log2(K) tournament nodes, and the K frontier events
// stay hot in cache.
//
// Ordering proof sketch (docs/ALGORITHMS.md §18): the event comparator is a
// total order, so the global minimum of the pending set equals the minimum
// over the per-shard minima — which is exactly what the tournament tree
// maintains.  Two events that compare equal are field-identical (every
// payload field participates in the comparator), and the shard key is a
// pure function of those fields, so equal events always land in the same
// shard and their pop order is immaterial.  Hence pop order is identical to
// the single-heap order for every K, which is why the 36 golden
// flight-stream hashes pin K = 8 (the default) against the K = 1 history.
//
// Not thread-safe; the simulator pushes and pops from the event loop thread
// only.  The win is cache locality and shallower sift paths, not
// parallelism — determinism is non-negotiable here.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dollymp {

/// Shard for an event with payload `server` / `job_index` out of `shards`
/// shards over a fleet of `servers` machines and `jobs` jobs.  Machine and
/// fault events (server >= 0, rack index for rack events) map by server
/// range, completions (job_index >= 0) by job range — both using the exact
/// inverse of shard_range(), so shard s receives the events of the entities
/// shard_range(s, shards, n) covers.  Everything else (timer wakeups, the
/// cluster-wide copy-fault timer) lands in shard 0.  Pure in its arguments:
/// equal events always map to the same shard.
[[nodiscard]] std::size_t event_shard_for(std::int32_t server, std::int32_t job_index,
                                          std::size_t shards, std::size_t servers,
                                          std::size_t jobs);

/// K binary min-heaps + a tournament tree over their minima.  `Event` needs
/// `operator>` defining a strict total order (the simulator's SimEvent
/// contract).  pop order reproduces a single std::priority_queue with
/// std::greater<> bit for bit, for any K (see file comment).
template <typename Event>
class ShardedEventHeap {
 public:
  ShardedEventHeap() { reset(1); }  // valid (empty, single-shard) from birth

  /// Drop every pending event and re-partition into `shards` heaps.
  /// Per-shard storage capacity is kept when the shard count is unchanged,
  /// so back-to-back runs reuse their arenas.
  void reset(std::size_t shards) {
    if (shards == 0) shards = 1;
    std::size_t leaves = 1;
    while (leaves < shards) leaves *= 2;
    if (heaps_.size() == leaves) {
      for (auto& h : heaps_) h.clear();
    } else {
      // Padded to a power of two: pad leaves own permanently-empty heaps so
      // the tournament needs no sentinel special-casing.
      heaps_.assign(leaves, {});
    }
    shards_ = shards;
    leaves_ = leaves;
    node_.assign(leaves, 0);
    size_ = 0;
    rebuild();
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push(const Event& event, std::size_t shard) {
    auto& heap = heaps_[shard];
    heap.push_back(event);
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    ++size_;
    adjust(shard);
  }

  /// The global minimum: the tournament's winner shard's front.
  [[nodiscard]] const Event& top() const {
    return heaps_[static_cast<std::size_t>(node_[0])].front();
  }

  void pop() {
    const auto winner = static_cast<std::size_t>(node_[0]);
    auto& heap = heaps_[winner];
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    heap.pop_back();
    --size_;
    adjust(winner);
  }

  /// Visit every pending event in unspecified (internal heap-array) order —
  /// the checkpoint writer's enumeration.  Restoring by re-pushing the
  /// visited events reproduces the exact pop order regardless of the
  /// enumeration or the original internal layout: the comparator is a total
  /// order over all payload fields, so the pending *set* determines the pop
  /// sequence (the §18 argument that makes the shard count a pure cache
  /// knob makes snapshots layout-free too).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& heap : heaps_) {
      for (const Event& e : heap) fn(e);
    }
  }

 private:
  /// True when shard `a`'s frontier event precedes shard `b`'s.  An empty
  /// shard is +infinity; exact ties (possible only between field-identical
  /// events, which never spread across shards) and empty-vs-empty break to
  /// the lower shard index, keeping the tournament a strict total order.
  [[nodiscard]] bool leaf_less(std::int32_t a, std::int32_t b) const {
    const auto& ha = heaps_[static_cast<std::size_t>(a)];
    const auto& hb = heaps_[static_cast<std::size_t>(b)];
    if (ha.empty() || hb.empty()) {
      if (ha.empty() && hb.empty()) return a < b;
      return hb.empty();
    }
    if (ha.front() > hb.front()) return false;
    if (hb.front() > ha.front()) return true;
    return a < b;
  }

  /// Winner of tree position m: leaves are their own winners, internal
  /// nodes cache theirs in node_.
  [[nodiscard]] std::int32_t child_winner(std::size_t m) const {
    return m >= leaves_ ? static_cast<std::int32_t>(m - leaves_) : node_[m];
  }

  /// Recompute the tournament path from leaf `shard` to the root after that
  /// shard's frontier changed: each node on the path replays its match from
  /// its children's current winners — O(log K), and sound for a change at
  /// *any* leaf.  (The classic loser-tree replay, one comparison per level
  /// against the stored loser, is only sound when the changed leaf is the
  /// current winner: push() touches arbitrary shards, and a decreased
  /// non-winner leaf can then evict the reigning winner from the tree
  /// entirely.  Storing winners costs one extra load per level and has no
  /// such restriction — see docs/ALGORITHMS.md §18.)
  void adjust(std::size_t shard) {
    for (std::size_t n = (shard + leaves_) / 2; n >= 1; n /= 2) {
      const std::int32_t left = child_winner(2 * n);
      const std::int32_t right = child_winner(2 * n + 1);
      node_[n] = leaf_less(left, right) ? left : right;
    }
    node_[0] = leaves_ == 1 ? 0 : node_[1];
  }

  /// Full bottom-up tournament build (reset only).
  void rebuild() {
    if (leaves_ == 1) {
      node_[0] = 0;
      return;
    }
    for (std::size_t n = leaves_ - 1; n >= 1; --n) {
      const std::int32_t left = child_winner(2 * n);
      const std::int32_t right = child_winner(2 * n + 1);
      node_[n] = leaf_less(left, right) ? left : right;
    }
    node_[0] = node_[1];
  }

  std::vector<std::vector<Event>> heaps_;  ///< leaves_ heaps; pads stay empty
  std::vector<std::int32_t> node_;  ///< node_[0] = root winner, node_[n] = subtree winners
  std::size_t shards_ = 1;
  std::size_t leaves_ = 1;
  std::size_t size_ = 0;
};

}  // namespace dollymp
