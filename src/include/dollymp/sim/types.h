// Core simulator vocabulary: slotted time, task references, configuration.
//
// Section 3 models a time-slotted system; Section 6.3 picks a slot length of
// 5 seconds ("comparable to the duration of small tasks in traces") and has
// the scheduler act at the start of each slot.  SimTime counts slots;
// SimConfig::slot_seconds converts to wall-clock seconds.
#pragma once

#include <cstdint>

#include "dollymp/cluster/background_load.h"
#include "dollymp/cluster/locality.h"
#include "dollymp/job/job.h"

namespace dollymp {

class Recorder;  // obs/recorder.h — the optional flight recorder

using SimTime = std::int64_t;
inline constexpr SimTime kNever = -1;

/// Identifies one task: (job, phase, task index within phase) — the
/// (j, k, l) triple of Section 3.
struct TaskRef {
  JobId job = -1;
  PhaseIndex phase = -1;
  int task = -1;

  friend constexpr bool operator==(const TaskRef&, const TaskRef&) = default;
};

/// How copy runtimes are produced.
enum class ExecutionModel : std::uint8_t {
  /// Each launched copy draws its base runtime from the phase's duration
  /// pool (the paper's Section 6.3 rule: "the running time of each clone
  /// [is] the same as that of a task randomly chosen from the same job
  /// phase"), scaled by server speed, locality penalty and background load.
  /// A task completes when its earliest copy does.
  kStochastic,
  /// Deterministic mean-field model of Eqs. (1), (4), (6): a task with r
  /// active copies accrues h(r) units of work per slot and completes when
  /// the accrued work reaches theta.  Used for validating the analytical
  /// results (Section 4) where expectations, not samples, are analyzed.
  kWorkBased,
};

/// What happens to outstanding copies when the first copy of a task
/// finishes (Section 5's delay-assignment policy).
enum class CloneKillPolicy : std::uint8_t {
  /// Kill every other copy immediately (resources released at once).
  kKillImmediately,
  /// Keep the still-running copy with the best data locality (the paper's
  /// AM keeps one for intermediate-data locality) and kill the rest; the
  /// kept copy runs to completion and its resource usage is charged.
  kKeepBestLocality,
};

[[nodiscard]] const char* to_string(ExecutionModel model);
[[nodiscard]] const char* to_string(CloneKillPolicy policy);

enum class FaultDelayDist : std::uint8_t;
[[nodiscard]] const char* to_string(FaultDelayDist dist);

/// Machine failure injection: servers crash (killing every running copy on
/// them and refusing placements) and come back after a repair delay.
/// Exercises the cloning machinery's fault-tolerance story — HDFS keeps
/// two replicas per block for exactly this case (Section 5).
struct FailureConfig {
  bool enabled = false;
  double mean_time_to_failure_seconds = 3600.0;
  double mean_repair_seconds = 300.0;
};

/// Delay distribution family for fault timers (sim/faults.h).  Both are
/// inverse-CDF samplers consuming exactly one uniform draw, so switching
/// the family never changes the failure stream's draw count.
enum class FaultDelayDist : std::uint8_t {
  kExponential,  ///< memoryless (the classic MTTF/MTTR model)
  kWeibull,      ///< shape < 1: infant mortality; shape > 1: wear-out
};

/// One fault delay: family, mean, and (for Weibull) the shape k.
struct FaultDelaySpec {
  FaultDelayDist dist = FaultDelayDist::kExponential;
  double mean_seconds = 3600.0;
  double weibull_shape = 1.5;  ///< only read when dist == kWeibull
};

/// Rack-correlated outages: an entire rack (shared ToR switch / PDU) goes
/// down at once and comes back at once.  Failure-domain correlation is the
/// case HDFS's off-rack second replica exists for — and the case the
/// independent-crash model cannot produce.
struct RackFaultConfig {
  bool enabled = false;
  FaultDelaySpec time_to_failure{FaultDelayDist::kExponential, 7200.0, 1.5};
  FaultDelaySpec repair{FaultDelayDist::kExponential, 600.0, 1.5};
};

/// Fail-slow ("gray") servers: the machine stays up and keeps its
/// allocations but copies launched while degraded run slowdown_factor
/// times longer (stochastic model; the mean-field work model ignores
/// speed, so this class is a no-op there).  Running copies keep their
/// already-realized durations — degradation hits new launches, which is
/// what a scheduler can actually steer around.
struct FailSlowConfig {
  bool enabled = false;
  double slowdown_factor = 4.0;  ///< >= 1; multiplies new-copy durations
  FaultDelaySpec time_to_onset{FaultDelayDist::kExponential, 3600.0, 1.5};
  FaultDelaySpec recovery{FaultDelayDist::kExponential, 900.0, 1.5};
};

/// Transient copy faults: a single running copy dies (task JVM crash, OOM
/// kill) without the machine going down.  The victim is drawn uniformly
/// from all running copies by the failure RNG.
struct CopyFaultConfig {
  bool enabled = false;
  FaultDelaySpec inter_fault{FaultDelayDist::kExponential, 300.0, 1.5};
};

/// The full fault-injection matrix (sim/faults.h).  The legacy independent
/// crash class keeps living in FailureConfig (SimConfig::failures) for
/// source compatibility; crash_dist below upgrades its delay family.
/// Everything here defaults to disabled/exponential, in which case the
/// simulation is bit-identical to the pre-fault-matrix behaviour.
struct FaultConfig {
  RackFaultConfig rack;
  FailSlowConfig fail_slow;
  CopyFaultConfig copy;
  /// Delay family for the independent-crash class of SimConfig::failures.
  FaultDelayDist crash_dist = FaultDelayDist::kExponential;
  double crash_weibull_shape = 1.5;

  [[nodiscard]] bool any_enabled() const {
    return rack.enabled || fail_slow.enabled || copy.enabled;
  }
};

struct SimConfig {
  double slot_seconds = 5.0;
  std::uint64_t seed = 1;
  ExecutionModel model = ExecutionModel::kStochastic;

  /// Hard system cap on concurrent copies per task (original + clones).
  /// Section 5: "the maximum number of clones for each running task is two
  /// under DollyMP, namely, there are at most three concurrent copies".
  int max_copies_per_task = 3;

  CloneKillPolicy kill_policy = CloneKillPolicy::kKillImmediately;

  /// The sigma weighting factor r in e_j^k = theta + r * sigma (default
  /// from Section 6.1).
  double sigma_factor = 1.5;

  BackgroundLoadConfig background;
  LocalityConfig locality;
  FailureConfig failures;
  FaultConfig faults;

  /// Runtime resource dimensionality: how many of the Resources vector's
  /// kMaxDims slots this run provisions/ingests/displays.  Dims 0 and 1 are
  /// always CPU cores and memory GB; dim 2 is GPUs.  Every arithmetic path
  /// loops all kMaxDims unconditionally with unused dims held at exactly
  /// 0.0, so 2 (the default) reproduces the historical two-resource decision
  /// stream bit for bit — this knob only widens reporting and validation.
  int resource_dims = 2;

  /// Duration penalty factor per extra rack a gang phase is split across:
  /// every task of a gang placed on R distinct racks runs with factor
  /// 1 + gang_spread_penalty * (R - 1) (all-reduce traffic crossing rack
  /// switches).  0 disables the penalty.
  double gang_spread_penalty = 0.15;

  /// Worker threads for the deterministic parallel scheduling core: the
  /// per-job priority recompute, the weighted placement scan and the
  /// speculation sweep shard across a pool of this many threads, each with
  /// a fixed-shard-order reduction so the decision stream (and the
  /// flight-recorder hash) is bit-identical to the sequential run.  1 (the
  /// default) keeps today's exact single-threaded path with no pool at all;
  /// 0 selects hardware_concurrency.  Asserted by the paired-seed
  /// equivalence suite and the parallel fuzzer.
  int threads = 1;

  /// Shard count of the sharded event heap (sim/event_heap.h): pending
  /// events partition into this many per-shard binary min-heaps (machine
  /// and fault events by server range, completions by job range) merged
  /// through a loser-tree frontier.  Pop order is bit-identical for every
  /// value — the golden flight-stream hashes pin the default against the
  /// single-heap history — so this is purely a cache/latency knob.  Must be
  /// in [1, 64]; 1 degenerates to one heap.
  int event_shards = 8;

  /// Accumulate placement queries into the PlacementIndex's pool-group
  /// batch cache: repeated same-demand queries within one capacity-group
  /// generation reuse one precomputed group walk instead of re-walking the
  /// class lists per task.  Decision streams are bit-identical either way
  /// (asserted by the equivalence matrix); off selects the unbatched walk.
  bool batch_placement = true;

  /// Maintain an incremental PlacementIndex over the cluster and expose it
  /// through SchedulerContext::placement_index(), so the placement helpers
  /// stop scanning every server per copy placed.  Placement decisions are
  /// bit-identical either way (asserted by the paired-seed equivalence
  /// tests); turning this off selects the linear-scan baseline.
  bool use_placement_index = true;

  /// Safety valve: abort if the clock passes this many slots.
  SimTime max_slots = 4'000'000;

  /// Record per-task records in the result (memory heavy for big runs).
  bool record_tasks = false;
  /// Record (slot, utilization) samples at scheduler invocations.
  bool record_utilization = false;
  /// Record the full event trace (every placement/completion/kill/failure)
  /// in SimResult::events — debugging aid, memory heavy for big runs.
  bool record_events = false;

  /// Optional flight recorder (obs/recorder.h): every simulation event and
  /// scheduler decision is appended as a compact TraceRecord.  Null by
  /// default — each instrumentation site is one predicted-not-taken branch,
  /// so a recorder-off run pays nothing.  Not owned; must outlive the run.
  /// The recorder's stream hash and counters are surfaced in
  /// SimStats::recorder_* at the end of the run.
  Recorder* recorder = nullptr;

  /// Reject nonsensical configurations with a clear std::invalid_argument
  /// before a run silently misbehaves: non-positive slot length, zero copy
  /// cap, non-positive fault delay means, slowdown factors below 1, or
  /// repair/recovery delays that cannot complete within the max_slots
  /// horizon.  Called by the Simulator constructor and the CLI tools.
  void validate() const;
};

}  // namespace dollymp
