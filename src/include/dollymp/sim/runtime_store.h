// RuntimeStore: flat struct-of-arrays backing store for all mutable
// job/phase/task/copy state of one simulation run.
//
// Before the overhaul each JobRuntime owned a vector<PhaseRuntime>, each
// phase a vector<TaskRuntime> and a vector<double> duration pool, and each
// task a vector<CopyRuntime> — tens of thousands of small heap blocks per
// trace run, scattered across the address space.  The store keeps ONE
// array per record kind, keyed by dense ids (a job's phases occupy a
// contiguous extent of the phase array, a phase's tasks a contiguous
// extent of the task array, and so on), and the runtime classes hold
// RtSpan windows into them.  Copy records live in a CopySlab with
// free-list reuse, so the steady state allocates nothing.
//
// Id spaces:
//   * JobId (job.h) stays the workload-assigned id; the store ALSO assigns
//     a dense index — materialization order — which is what the simulator
//     uses for event payloads (`&job - jobs().data()`), unchanged from the
//     old vector-of-jobs layout.
//   * Dense PhaseId / TaskId are the positions in phases()/tasks(); code
//     that needs them derives them by pointer difference, which the
//     contiguous layout makes valid across a whole run, not just within
//     one job.
//
// Growth: materialize() appends to the flat arrays.  When an append
// relocates an array, every span into it is rebound from the recorded
// extents — pointers held by callers across materialize() calls are
// invalid (exactly like iterators across vector::push_back), so the
// simulator materializes all jobs before taking references, and
// reserve_for() pre-sizes the arrays so the bulk path never relocates.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "dollymp/sim/runtime_state.h"

namespace dollymp {

class StateWriter;
class StateReader;

class RuntimeStore {
 public:
  RuntimeStore() = default;
  RuntimeStore(const RuntimeStore&) = delete;
  RuntimeStore& operator=(const RuntimeStore&) = delete;

  /// Pre-size the flat arrays for exactly these specs (phase/task/pool
  /// totals are derivable from the specs alone), so the following
  /// materialize() calls never relocate.
  void reserve_for(const std::vector<JobSpec>& specs);

  /// Build the runtime skeleton for a job: samples the per-phase duration
  /// pools (Pareto fitted to theta/sigma; degenerate to constant when
  /// sigma is 0) and the input-block replica placements.  Returns the
  /// job's dense index into jobs().  Draw order matches the pre-overhaul
  /// materialize_job exactly (pool samples, then per-task blocks, phase by
  /// phase), so seeds reproduce bit-identical runs.
  std::size_t materialize(const JobSpec& spec, double slot_seconds,
                          const LocalityModel& locality, Rng& rng);

  [[nodiscard]] std::vector<JobRuntime>& jobs() { return jobs_; }
  [[nodiscard]] const std::vector<JobRuntime>& jobs() const { return jobs_; }
  [[nodiscard]] CopySlab& copy_slab() { return slab_; }
  [[nodiscard]] const CopySlab& copy_slab() const { return slab_; }

  /// Total copy slots handed back for reuse is visible via
  /// copy_slab().counters(); this is the store-wide footprint: flat
  /// arrays (capacity, not size — reserved headroom is real memory) plus
  /// slab blocks.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Drop everything (flat arrays, slab, extents).
  void clear();

  /// Service-mode recycling: hand a completed job's slot back for reuse.
  /// The next materialize() of a job with the same shape (per-phase task
  /// counts — the pool size is a pure function of the task count, so it
  /// matches automatically) rebuilds the runtime records *in place*, with
  /// the identical RNG draw order the append path uses, so resident memory
  /// tracks live jobs instead of total arrivals.  The slot's JobRuntime
  /// keeps its finished state until reuse (active-list erase predicates
  /// stay sound); its copy extents must already be released.
  void release_job(std::size_t job_index);

  /// Recyclable slots currently parked (streaming memory accounting).
  [[nodiscard]] std::size_t free_slot_count() const;

  /// Per-slot free/live mask (1 = released), for checkpoint writers that
  /// must not dereference a released slot's nulled spec pointer.
  [[nodiscard]] std::vector<std::uint8_t> free_mask() const;

  /// Checkpoint/restore of every runtime record: flat arrays, extents,
  /// per-task copy lists (content re-acquired from the slab on load — the
  /// extent layout is not semantic) and the free-slot pool.  Spec pointers
  /// are NOT serialized: load_state takes the per-slot JobSpec pointers
  /// (deserialized by the caller, in slot order) and rebinds job.spec /
  /// phase.spec from them.
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r, const std::vector<const JobSpec*>& specs);

 private:
  struct JobExtent {
    std::uint32_t phase_begin = 0;
    std::uint32_t phase_count = 0;
  };
  struct PhaseExtent {
    std::uint32_t task_begin = 0;
    std::uint32_t task_count = 0;
    std::uint32_t pool_begin = 0;
    std::uint32_t pool_count = 0;
  };

  /// Point every span at the current array locations (after relocation).
  void rebind_views();

  /// Rebuild a released slot's records in place for `spec` (same shape).
  void rematerialize(std::size_t job_index, const JobSpec& spec, double slot_seconds,
                     const LocalityModel& locality, Rng& rng);

  CopySlab slab_;
  std::vector<JobRuntime> jobs_;
  std::vector<PhaseRuntime> phases_;
  std::vector<TaskRuntime> tasks_;
  std::vector<double> durations_;
  std::vector<JobExtent> job_extents_;
  std::vector<PhaseExtent> phase_extents_;
  /// Released job slots keyed by shape (per-phase task counts).
  std::map<std::vector<std::uint32_t>, std::vector<std::uint32_t>> free_slots_;
  std::vector<std::uint32_t> shape_scratch_;
};

}  // namespace dollymp
