// The time-slotted cluster simulator.
//
// Drives the model of Section 3: jobs arrive at a_j (Eq. none — arbitrary
// sequence), the scheduler is consulted at slot boundaries, copies occupy
// server resources subject to the capacity constraint (Eq. 5), tasks start
// only after their parent phases finish (Eq. 7), a task completes with its
// earliest copy (stochastic model) or when its accrued work reaches theta
// (work-based model, Eq. 6), and the job finishes with its last phase
// (Eq. 8).  The event loop fast-forwards across empty slots unless the
// scheduler asks to be invoked every slot (speculation needs that).
//
// Every run is deterministic given SimConfig::seed.  The environment
// realization (duration pools, block placements, background load) is fixed
// before the scheduler acts, so different policies on the same seed face
// the same stragglers — the paired-comparison setup behind Figs. 8-11.
#pragma once

#include <memory>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/metrics/records.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/types.h"

namespace dollymp {

class Simulator {
 public:
  /// The cluster is taken by value: each run owns and resets its copy, so
  /// one prototype cluster can serve many concurrent simulations.
  Simulator(Cluster cluster, SimConfig config);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Run the workload to completion under `scheduler`.  Throws
  /// std::invalid_argument when a job can never be placed (some phase's
  /// demand exceeds every server) and std::runtime_error when the scheduler
  /// stalls (pending work, free resources, nothing placed, no future
  /// events) or the max_slots safety valve trips.
  [[nodiscard]] SimResult run(const std::vector<JobSpec>& jobs, Scheduler& scheduler);

  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  Cluster prototype_;
  SimConfig config_;
};

/// Convenience: one-shot run.
[[nodiscard]] SimResult simulate(const Cluster& cluster, const SimConfig& config,
                                 const std::vector<JobSpec>& jobs, Scheduler& scheduler);

}  // namespace dollymp
