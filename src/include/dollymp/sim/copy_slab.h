// Pooled arena storage for CopyRuntime records.
//
// Pre-overhaul, every TaskRuntime owned a std::vector<CopyRuntime>: one
// heap allocation per task that ever ran, growing (and reallocating) as
// clones, speculative backups and fault re-executions appended.  At trace
// scale the simulator launches millions of copies, so copy storage churn
// was the last steady-state allocator in the hot loop.
//
// CopySlab replaces those vectors with extents carved out of large stable
// blocks:
//
//   * Storage is a list of fixed-size blocks (kBlockCopies records each).
//     Blocks are never freed or moved while the slab lives, so a
//     CopyRuntime* stays valid until its extent is released — the same
//     stability guarantee scheduler code relied on between vector growths.
//   * A task's copies live in ONE contiguous extent, so CopyList exposes
//     the full random-access vector interface (data(), operator[],
//     pointer-difference indexing) with zero indirection on iteration.
//   * Extent capacities are powers of two.  Released extents go to a
//     per-capacity free list and are handed back verbatim to the next
//     request, so steady-state churn — jobs completing while new jobs
//     materialize — recycles warm memory instead of allocating.  The
//     acquire/reuse counters feed SimStats and the allocations-per-step
//     bench gates.
//
// Thread safety: none.  All mutation happens on the scheduling thread
// (sharded scans only read), matching the rest of the runtime state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "dollymp/cluster/locality.h"
#include "dollymp/cluster/server.h"
#include "dollymp/sim/types.h"

namespace dollymp {

/// One running (or finished/killed) copy of a task.  Kept a plain struct:
/// the slab stores these by value, densely.
struct CopyRuntime {
  ServerId server = kInvalidServer;
  SimTime start = kNever;
  SimTime finish = kNever;      ///< predicted completion slot (see runtime_state.h)
  LocalityLevel locality = LocalityLevel::kNode;
  bool active = false;          ///< currently occupying resources
  bool killed = false;          ///< terminated because a sibling finished first
  double base_seconds = 0.0;    ///< sampled duration before slot rounding
};

class CopySlab {
 public:
  /// Copies per storage block.  Also the largest extent a single task can
  /// hold — far above any realistic copy count (the concurrent cap is
  /// SimConfig::max_copies_per_task; only fault-driven re-execution grows
  /// the historical record past it).
  static constexpr std::size_t kBlockCopies = 4096;

  CopySlab() = default;
  CopySlab(const CopySlab&) = delete;
  CopySlab& operator=(const CopySlab&) = delete;

  struct Extent {
    CopyRuntime* data = nullptr;
    std::uint32_t capacity = 0;
  };

  /// Hand out an extent with capacity >= `min_capacity` (rounded up to a
  /// power of two), recycled from the free list when one is available.
  [[nodiscard]] Extent acquire(std::uint32_t min_capacity);

  /// Return an extent to its capacity's free list.  The caller must pass
  /// back exactly what acquire() returned.
  void release(Extent extent);

  /// Drop every block and free list (invalidates all extents).
  void clear();

  // ---- observability --------------------------------------------------------

  struct Counters {
    std::uint64_t acquires = 0;        ///< extents handed out
    std::uint64_t reuses = 0;          ///< ... of which came from a free list
    std::uint64_t block_allocations = 0;  ///< fresh storage blocks allocated
    std::uint64_t copies_capacity = 0;    ///< total copy slots in live blocks
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Bytes of copy storage held (blocks only; the free-list index is
  /// negligible).  Feeds the bytes-per-server scale accounting.
  [[nodiscard]] std::size_t memory_bytes() const {
    return blocks_.size() * kBlockCopies * sizeof(CopyRuntime);
  }

 private:
  /// Smallest c with (1u << c) >= n (n <= kBlockCopies).
  [[nodiscard]] static std::uint32_t capacity_class(std::uint32_t n);

  std::vector<std::unique_ptr<CopyRuntime[]>> blocks_;
  std::size_t bump_block_ = 0;  ///< block being carved
  std::size_t bump_used_ = 0;   ///< copies carved from it so far
  /// free_[c] holds extents of capacity 1 << c.
  std::vector<std::vector<CopyRuntime*>> free_;
  Counters counters_;
};

/// The per-task view over a slab extent: the subset of std::vector's
/// interface the scheduler/simulator code uses, backed by CopySlab
/// storage.  Move-only (two lists must never own one extent).
class CopyList {
 public:
  CopyList() = default;
  CopyList(CopyList&& other) noexcept { steal(other); }
  CopyList& operator=(CopyList&& other) noexcept {
    if (this != &other) {
      release_storage();
      steal(other);
    }
    return *this;
  }
  CopyList(const CopyList&) = delete;
  CopyList& operator=(const CopyList&) = delete;
  ~CopyList() { release_storage(); }

  /// Attach the backing slab (materialization does this; hand-built tasks
  /// in tests must bind before the first push_back).  The slab must
  /// outlive the list.
  void bind(CopySlab* slab) { slab_ = slab; }
  [[nodiscard]] CopySlab* slab() const { return slab_; }

  [[nodiscard]] CopyRuntime* begin() { return data_; }
  [[nodiscard]] CopyRuntime* end() { return data_ + size_; }
  [[nodiscard]] const CopyRuntime* begin() const { return data_; }
  [[nodiscard]] const CopyRuntime* end() const { return data_ + size_; }
  [[nodiscard]] CopyRuntime* data() { return data_; }
  [[nodiscard]] const CopyRuntime* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] CopyRuntime& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const CopyRuntime& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] CopyRuntime& back() { return data_[size_ - 1]; }
  [[nodiscard]] const CopyRuntime& back() const { return data_[size_ - 1]; }

  void push_back(const CopyRuntime& copy);
  void reserve(std::size_t n);

  /// Forget the elements but keep the extent (vector::clear semantics —
  /// steady-state reset paths stay allocation-free).
  void clear() { size_ = 0; }

  /// Return the extent to the slab (job-completion recycling).  The list
  /// is empty and unallocated afterwards but stays bound.
  void release_storage();

 private:
  void steal(CopyList& other) {
    slab_ = other.slab_;
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }

  CopySlab* slab_ = nullptr;
  CopyRuntime* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

}  // namespace dollymp
