// The fault-injection matrix: delay draws and down-state bookkeeping for
// the four injectable fault classes.
//
// The simulator owns the event heap; this engine owns (a) the delay draws
// for every fault timer — all from the single dedicated failure RNG, so the
// realization is a pure function of (seed, heap pop order) and replay
// determinism is preserved — and (b) the per-server down-source bookkeeping
// that makes overlapping fault classes idempotent: a server downed by both
// an independent crash and its rack's outage comes back only when the last
// cause clears, and duplicate failure/repair events for an already-
// failed/repaired server are absorbed as non-edges instead of corrupting
// copy or index state.
//
// Fault classes (FaultClass):
//   kCrash      independent whole-server crash/repair (the legacy
//               FailureConfig class, refactored in; delay family upgradable
//               to Weibull via FaultConfig::crash_dist).
//   kRack       rack-correlated outage: every server sharing the rack goes
//               down at once and comes back at once.
//   kFailSlow   "gray" server: stays up, keeps its allocations, but new
//               copies run slowdown_factor times longer until recovery.
//   kCopyFault  transient single-copy kill (task crash / OOM) with the
//               machine staying up; the victim is drawn uniformly from the
//               running copies.
#pragma once

#include <cstdint>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/rng.h"
#include "dollymp/sim/types.h"

namespace dollymp {

class StateWriter;
class StateReader;

enum class FaultClass : std::uint8_t {
  kCrash = 0,
  kRack = 1,
  kFailSlow = 2,
  kCopyFault = 3,
};

[[nodiscard]] const char* to_string(FaultClass cls);

class FaultEngine {
 public:
  /// One initial fault timer produced by seed(): the simulator translates
  /// these into heap events.  `target` is a ServerId for kCrash/kFailSlow,
  /// a rack index for kRack, and unused (-1) for kCopyFault.
  struct Timer {
    SimTime slot = 0;
    FaultClass cls = FaultClass::kCrash;
    std::int32_t target = -1;
  };

  /// @param rng  the dedicated failure stream (Rng split 4); held by
  ///             reference — every delay draw and victim pick goes through
  ///             it in heap-pop order, which is deterministic.
  FaultEngine(const Cluster& cluster, const FailureConfig& crash,
              const FaultConfig& faults, double slot_seconds, Rng& rng);

  [[nodiscard]] bool crash_enabled() const { return crash_.enabled; }
  [[nodiscard]] bool rack_enabled() const { return faults_.rack.enabled; }
  [[nodiscard]] bool fail_slow_enabled() const { return faults_.fail_slow.enabled; }
  [[nodiscard]] bool copy_fault_enabled() const { return faults_.copy.enabled; }
  [[nodiscard]] double slowdown_factor() const { return faults_.fail_slow.slowdown_factor; }

  /// Draw the initial timer for every enabled fault class.  Crash timers
  /// are drawn first, one per server in id order — exactly the legacy
  /// seed_failures() draw sequence, so a crash-only configuration consumes
  /// the failure stream identically to the pre-fault-matrix simulator.
  /// Then one failure timer per rack, one onset timer per server
  /// (fail-slow), and a single cluster-wide copy-fault timer.
  [[nodiscard]] std::vector<Timer> seed();

  // Per-class delay draws (slots, >= 1), consumed at event-pop time to
  // schedule the follow-up event.  Each consumes exactly one uniform draw.
  [[nodiscard]] SimTime crash_failure_delay();
  [[nodiscard]] SimTime crash_repair_delay();
  [[nodiscard]] SimTime rack_failure_delay();
  [[nodiscard]] SimTime rack_repair_delay();
  [[nodiscard]] SimTime fail_slow_onset_delay();
  [[nodiscard]] SimTime fail_slow_recovery_delay();
  [[nodiscard]] SimTime copy_fault_delay();

  /// Uniform victim pick in [0, n) from the failure stream (copy faults).
  [[nodiscard]] std::size_t pick(std::size_t n) { return rng_.below(n); }

  /// Record that `source` wants `server` down.  Returns true only on the
  /// edge transition from fully-up to down — the caller must kill copies /
  /// deindex exactly then.  A failure landing on an already-down server
  /// (e.g. crash after rack outage, or a duplicate event) is absorbed.
  bool mark_down(ServerId server, FaultClass source);

  /// Record that `source` no longer holds `server` down.  Returns true only
  /// when the last down-cause clears — the caller re-indexes exactly then.
  /// A repair racing another source's outage (or a duplicate repair) is
  /// absorbed.
  bool mark_up(ServerId server, FaultClass source);

  [[nodiscard]] bool is_down(ServerId server) const {
    return down_mask_[static_cast<std::size_t>(server)] != 0;
  }

  [[nodiscard]] int rack_count() const { return static_cast<int>(rack_members_.size()); }
  [[nodiscard]] const std::vector<ServerId>& rack_members(int rack) const {
    return rack_members_[static_cast<std::size_t>(rack)];
  }

  /// Checkpoint/restore: the down-source mask is the engine's only mutable
  /// state (the failure RNG is owned by the simulator and restored there;
  /// rack membership is derived from the cluster topology).
  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  [[nodiscard]] SimTime delay_slots(const FaultDelaySpec& spec);
  [[nodiscard]] SimTime exponential_delay_slots(double mean_seconds);

  FailureConfig crash_;
  FaultConfig faults_;
  double slot_seconds_;
  Rng& rng_;
  /// Bit i of down_mask_[s] set when fault class i currently holds s down
  /// (only kCrash and kRack bits are ever set — fail-slow keeps servers up).
  std::vector<std::uint8_t> down_mask_;
  std::vector<std::vector<ServerId>> rack_members_;
};

}  // namespace dollymp
