// Derived reports over SimResults: the exact quantities the paper's figures
// plot.
#pragma once

#include <string>
#include <vector>

#include "dollymp/common/stats.h"
#include "dollymp/metrics/records.h"

namespace dollymp {

/// Scalar summary of one run.
struct RunSummary {
  std::string scheduler;
  std::size_t jobs = 0;
  double total_flowtime = 0.0;
  double mean_flowtime = 0.0;
  double p95_flowtime = 0.0;
  double mean_running_time = 0.0;
  double p95_running_time = 0.0;
  double makespan = 0.0;
  double total_resource_seconds = 0.0;
  double cloned_task_fraction = 0.0;
  long long clones_launched = 0;
  /// Control-plane counters of the run (invocations, events, placement
  /// funnel, wall clock).
  SimStats stats;
};

[[nodiscard]] RunSummary summarize(const SimResult& result);

/// Flowtime CDF over jobs (Figs. 4a, 6).
[[nodiscard]] Cdf flowtime_cdf(const SimResult& result);
/// Running-time CDF over jobs (Figs. 4b, 5).
[[nodiscard]] Cdf running_time_cdf(const SimResult& result);

/// Cumulative total flowtime in arrival order (Fig. 7): entry i is the sum
/// of flowtimes of the first i+1 arrivals.
[[nodiscard]] std::vector<std::pair<double, double>> cumulative_flowtime_series(
    const SimResult& result);

/// Per-job ratios between two runs on the same workload, matched by job id
/// (Figs. 8, 10, 11).  ratio = metric(numerator) / metric(denominator).
struct PairedRatios {
  Cdf flowtime_ratio;
  Cdf running_time_ratio;
  Cdf resource_ratio;
  /// Fraction of matched jobs with flowtime reduced by at least `cut`
  /// (e.g. cut = 0.3 -> "at least 40% of jobs obtain a reduction by 30%").
  [[nodiscard]] double fraction_flowtime_reduced_by(double cut) const;
};

[[nodiscard]] PairedRatios paired_ratios(const SimResult& numerator,
                                         const SimResult& denominator);

/// Speedup of mean flowtime: 1 - mean(numerator)/mean(denominator).
[[nodiscard]] double mean_flowtime_reduction(const SimResult& candidate,
                                             const SimResult& baseline);

/// Render a comparison table of several run summaries.
[[nodiscard]] std::string render_summaries(const std::vector<RunSummary>& summaries);

/// Render the control-plane counters of several runs: scheduler
/// invocations, slots visited vs fast-forwarded, events processed by kind,
/// the placement funnel (attempts / accepted / rejections by reason) and
/// simulator wall clock.  The observability half of the event-driven
/// control plane — every perf PR can quote this table.
[[nodiscard]] std::string render_control_plane(const std::vector<RunSummary>& summaries);

/// Render a CDF as "value@q" rows for quantiles {0.1 ... 1.0}.
[[nodiscard]] std::string render_cdf_rows(const std::string& label, const Cdf& cdf);

/// Jain's fairness index over per-job slowdowns (flowtime / running time
/// under an empty cluster is unknown, so slowdown here is flowtime divided
/// by the job's own running time): 1 = perfectly equal slowdowns, 1/n =
/// maximally unfair.  Used to quantify the fairness cost of size-based
/// priorities (DollyMP/SVF) against fair-share policies (DRF/Carbyne).
[[nodiscard]] double jain_fairness_of_slowdowns(const SimResult& result);

/// Per-job slowdown samples: flowtime / running_time (>= 1; equals 1 when
/// a job never waits).
[[nodiscard]] Cdf slowdown_cdf(const SimResult& result);

/// Serialize per-job records to CSV (one row per job) for external
/// analysis/plotting; the inverse schema is human-stable:
///   job_id,name,app,arrival_s,first_start_s,finish_s,flowtime_s,
///   running_s,tasks,clones,speculative,tasks_with_clones,resource_s
[[nodiscard]] std::string results_to_csv(const SimResult& result);
void save_results(const SimResult& result, const std::string& path);

}  // namespace dollymp
