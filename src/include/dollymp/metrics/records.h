// Result records produced by a simulation run.
//
// The evaluation metrics of Section 6: job flowtime (f_j - a_j), job running
// time (first task start to finish), resource usage (normalized demand x
// copy duration summed over copies, the Fig. 8 metric), clone counts, and
// cluster utilization.
#pragma once

#include <string>
#include <vector>

#include "dollymp/common/resources.h"
#include "dollymp/job/job.h"
#include "dollymp/sim/types.h"

namespace dollymp {

struct JobRecord {
  JobId id = -1;
  std::string name;
  std::string app;
  double arrival_seconds = 0.0;
  double first_start_seconds = 0.0;
  double finish_seconds = 0.0;
  int total_tasks = 0;
  int clones_launched = 0;        ///< extra copies beyond the first per task
  int speculative_launched = 0;
  int tasks_with_clones = 0;
  double resource_seconds = 0.0;  ///< sum over copies: normalized demand * runtime

  [[nodiscard]] double flowtime() const { return finish_seconds - arrival_seconds; }
  [[nodiscard]] double running_time() const { return finish_seconds - first_start_seconds; }
  [[nodiscard]] double wait_time() const { return first_start_seconds - arrival_seconds; }
};

struct TaskRecord {
  TaskRef ref;
  double first_start_seconds = 0.0;
  double finish_seconds = 0.0;
  int copies = 0;
};

/// Kinds of simulator events exposed through the optional event trace
/// (SimConfig::record_events) — the debugging/audit channel: every
/// placement, completion, kill and failure in time order.
enum class SimEventKind : std::uint8_t {
  kJobArrival,
  kCopyPlaced,
  kClonePlaced,
  kSpeculativePlaced,
  kCopyFinished,
  kCopyKilled,
  kTaskCompleted,
  kPhaseCompleted,
  kJobCompleted,
  kServerFailed,
  kServerRepaired,
};

[[nodiscard]] const char* to_string(SimEventKind kind);

struct SimEventRecord {
  double seconds = 0.0;
  SimEventKind kind = SimEventKind::kJobArrival;
  JobId job = -1;
  PhaseIndex phase = -1;
  int task = -1;
  std::int32_t server = -1;  ///< server involved (placements, kills, failures)
};

struct UtilizationSample {
  double seconds = 0.0;
  double cpu = 0.0;   ///< fraction of total CPU allocated
  double mem = 0.0;   ///< fraction of total memory allocated
};

/// Control-plane observability: how the event/timer-driven simulator spent
/// a run.  Always filled (the counters are cheap); surfaced in the report
/// tables so every perf PR can show its effect on scheduler invocations
/// and fast-forwarding.
struct SimStats {
  // Control plane.
  long long scheduler_invocations = 0;  ///< schedule() calls
  long long slots_visited = 0;          ///< slots the event loop stopped at
  long long slots_fast_forwarded = 0;   ///< slots skipped between visits
  long long timer_wakeups_requested = 0;

  // Events processed, by kind.
  long long events_copy_finish = 0;   ///< stochastic-model completion events
  long long events_work_finish = 0;   ///< work-based-model prediction events
  long long events_server_failure = 0;
  long long events_server_repair = 0;
  long long events_timer = 0;         ///< timer wakeups fired
  long long events_job_arrival = 0;
  long long events_rack_failure = 0;      ///< rack-correlated outage events
  long long events_rack_repair = 0;
  long long events_fail_slow_onset = 0;   ///< server entered fail-slow state
  long long events_fail_slow_recover = 0;
  long long events_copy_fault = 0;        ///< transient copy-fault timer pops

  // Placement funnel: every place_copy/place_speculative_copy request,
  // split by outcome.
  long long placement_attempts = 0;
  long long placements_accepted = 0;
  long long rejected_job_not_ready = 0;      ///< job finished or not arrived
  long long rejected_phase_not_runnable = 0; ///< parents unfinished / task done
  long long rejected_copy_cap = 0;           ///< per-task concurrent-copy cap
  long long rejected_invalid_server = 0;     ///< server id out of range
  long long rejected_no_capacity = 0;        ///< server down or lacks resources

  // Placement-index effectiveness (all zero when the index is disabled):
  // queries answered, servers actually score-evaluated across them (the
  // "rescan" cost an unindexed run would pay per query times the fleet
  // size), and maintenance updates applied.
  long long index_queries = 0;
  long long index_servers_scanned = 0;
  long long index_updates = 0;
  // Batched placement (SimConfig::batch_placement; zero when off or the
  // index is disabled): queries answered by replaying a cached
  // capacity-group walk vs walks (re)built.  Deterministic and
  // thread-count-independent, like the three counters above.
  long long index_batch_hits = 0;
  long long index_batch_rebuilds = 0;

  // Deterministic parallel scheduling core (all zero when SimConfig::threads
  // <= 1): sharded scans dispatched to the worker pool, shards and items
  // across them, and the largest single shard (the imbalance bound — with
  // contiguous even splits it stays within one item of items/shards).
  // Deterministic for a fixed thread count but legitimately different
  // across thread counts, so the equivalence suite compares every SimStats
  // field EXCEPT these and wall_clock_seconds.
  long long parallel_sections = 0;
  long long parallel_shards = 0;
  long long parallel_items = 0;
  long long parallel_max_shard_items = 0;
  // Per-shard scratch arenas of the parallel core's hot passes (priority
  // recompute, speculation sweep): acquisitions, acquisitions served
  // entirely from retained capacity, and acquisitions that had to grow a
  // buffer.  Steady state must be all reuses (asserted by the steady-state
  // allocation test); thread-count-dependent like the section counters, so
  // equally excluded from cross-thread stats comparison.
  long long parallel_arena_acquires = 0;
  long long parallel_arena_reuses = 0;
  long long parallel_arena_grows = 0;
  // Thread-count visibility (also excluded from cross-thread comparison):
  // what SimConfig::threads asked for and what the pool resolved it to
  // (threads=0 = hardware concurrency; 1 = no pool).
  long long threads_configured = 1;
  long long threads_resolved = 1;

  // Flight recorder (obs/recorder.h; all zero when SimConfig::recorder is
  // null): records appended, wire bytes they represent, ring evictions, and
  // the incremental hash over the full stream — the run's replay
  // fingerprint (identical across same-seed runs; see obs/replay.h).
  long long recorder_records = 0;
  long long recorder_bytes = 0;
  long long recorder_evictions = 0;
  unsigned long long recorder_hash = 0;

  // Availability accounting (fault injection + resilience policies; all
  // zero on a healthy run).  work_seconds_lost charges each fault-killed
  // copy its elapsed runtime — the redo cost failures impose.
  long long copies_killed_by_faults = 0;  ///< crash / rack / copy-fault kills
  double work_seconds_lost = 0.0;
  long long retries_issued = 0;           ///< backoff retries registered
  long long backoff_slots_waited = 0;     ///< total slots placements were deferred
  long long servers_quarantined = 0;      ///< quarantine entries
  long long quarantine_exits = 0;         ///< probation released a server
  long long clone_budget_degradations = 0;  ///< scheduler passes with shrunk budget

  // Overload protection (service-mode admission gate + degradation ladder;
  // all zero when the knobs are off).  Every arrival the gate drops lands
  // in exactly one of the three shed counters, so
  // jobs_ingested + sum(arrivals_shed_*) == arrivals the source emitted —
  // the conservation gate bench/overload_stream.cpp enforces.
  long long arrivals_shed_admission = 0;  ///< token bucket rejected (rate cap)
  long long arrivals_shed_watermark = 0;  ///< live-load watermark shedding
  long long arrivals_shed_overload = 0;   ///< ladder level-3 emergency shedding
  long long overload_transitions = 0;     ///< degradation-ladder level changes
  long long overload_level_max = 0;       ///< highest ladder level reached

  // Gang scheduling (all zero when the workload has no gang phases).  A
  // "gang" here is one all-or-nothing placement wave of a PhaseSpec::gang
  // phase; rollbacks count probe waves that found no complete assignment
  // and released every tentative allocation.
  long long gangs_placed = 0;            ///< waves committed atomically
  long long gang_tasks_placed = 0;       ///< first copies placed across waves
  long long gang_rollbacks = 0;          ///< probe waves rolled back
  long long gangs_split_across_racks = 0;  ///< committed waves spanning >1 rack

  // End-of-run conservation check inputs (chaos invariant: every launched
  // copy is accounted for and no allocation leaks past the last job).
  long long copies_finished = 0;  ///< copies that ran to natural completion
  long long copies_killed = 0;    ///< copies terminated early (any cause)
  double leaked_cpu = 0.0;        ///< cluster CPU still allocated at run end
  double leaked_mem = 0.0;        ///< cluster memory still allocated at run end
  long long leaked_active_copies = 0;  ///< copies still marked active at run end

  // Data-layout accounting (struct-of-arrays overhaul): copy-slab extent
  // traffic (acquires vs free-list reuses and fresh block allocations —
  // steady state should reuse, not allocate), the flat runtime-store and
  // server-table footprints, and the derived bytes-per-server figure the
  // scale gate tracks.  Deterministic for a fixed workload, except
  // peak_rss_bytes (a process-wide high-water mark), which the
  // equivalence suite excludes like wall_clock_seconds.
  long long copy_slab_acquires = 0;
  long long copy_slab_reuses = 0;
  long long copy_slab_blocks = 0;
  long long runtime_store_bytes = 0;   ///< flat arrays + slab, capacity-accounted
  long long server_table_bytes = 0;    ///< struct-of-arrays server hot state
  double bytes_per_server = 0.0;       ///< server_table_bytes / cluster size
  long long peak_rss_bytes = 0;        ///< /proc VmHWM at run end (0 if unavailable)

  double wall_clock_seconds = 0.0;  ///< host time spent inside run()

  [[nodiscard]] long long events_processed() const {
    return events_copy_finish + events_work_finish + events_server_failure +
           events_server_repair + events_timer + events_job_arrival +
           events_rack_failure + events_rack_repair + events_fail_slow_onset +
           events_fail_slow_recover + events_copy_fault;
  }
  [[nodiscard]] long long placements_rejected() const {
    return rejected_job_not_ready + rejected_phase_not_runnable + rejected_copy_cap +
           rejected_invalid_server + rejected_no_capacity;
  }
};

struct SimResult {
  std::string scheduler;
  double slot_seconds = 5.0;
  double makespan_seconds = 0.0;
  std::vector<JobRecord> jobs;
  std::vector<TaskRecord> tasks;          ///< only when SimConfig::record_tasks
  std::vector<UtilizationSample> utilization;
  std::vector<SimEventRecord> events;     ///< only when SimConfig::record_events

  // Aggregates filled by the simulator.
  long long total_copies_launched = 0;
  long long total_tasks_completed = 0;

  /// Control-plane counters (invocations, events by kind, placement
  /// funnel, wall clock) — always recorded.
  SimStats stats;

  [[nodiscard]] double total_flowtime() const;
  [[nodiscard]] double mean_flowtime() const;
  [[nodiscard]] double total_running_time() const;
  [[nodiscard]] double total_resource_seconds() const;
  /// Fraction of tasks that had at least one clone (Fig. 10b).
  [[nodiscard]] double cloned_task_fraction() const;

  /// Find a job record by id; throws std::out_of_range when absent.
  [[nodiscard]] const JobRecord& job(JobId id) const;
};

}  // namespace dollymp
