// Sliding-window response-time quantiles for the service-mode SLO tracker.
//
// A bounded ring of the most recent job response times with on-demand
// p50/p99 (nth_element over a scratch copy — the window is small and
// quantiles are read once per pump chunk, so sorting cost is irrelevant
// next to determinism).  The window is part of the session's checkpoint
// payload: a restored session sees exactly the samples the original saw,
// so the degradation ladder it drives makes the same decisions — the
// bit-identity contract extends through the SLO feedback loop.
#pragma once

#include <cstddef>
#include <vector>

namespace dollymp {

class StateWriter;
class StateReader;

class SloWindow {
 public:
  /// `capacity` is the number of most-recent samples retained (must be > 0).
  explicit SloWindow(std::size_t capacity);

  /// Record one completed job's response time (seconds).
  void observe(double response_seconds);

  /// Samples currently in the window (<= capacity).
  [[nodiscard]] std::size_t count() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Samples ever observed (monotone; survives ring wrap).
  [[nodiscard]] long long total_observed() const { return observed_; }

  /// Quantile over the current window via the nearest-rank rule;
  /// 0.0 when the window is empty.  q is clamped to [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p99() const { return quantile(0.99); }

  void save_state(StateWriter& w) const;
  void load_state(StateReader& r);

 private:
  std::vector<double> ring_;
  std::size_t size_ = 0;
  std::size_t next_ = 0;
  long long observed_ = 0;
  mutable std::vector<double> scratch_;
};

}  // namespace dollymp
