// Experiment runner: paired scheduler comparisons and seed-replicated
// sweeps, parallelized over a thread pool.
//
// Every run gets its own Simulator (the cluster prototype is copied) and a
// fresh Scheduler from its factory, so runs share no mutable state and can
// execute concurrently; results come back in input order.  This is the
// programmatic version of what the figure benches do by hand, exposed so
// downstream users can script their own comparisons.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/stats.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/metrics/records.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/types.h"

namespace dollymp {

using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

struct ComparisonEntry {
  std::string name;          ///< label carried into the results
  SchedulerFactory factory;  ///< invoked once per run (thread safety)
};

struct ComparisonSpec {
  Cluster cluster;
  SimConfig config;
  std::vector<JobSpec> jobs;
};

/// Run every scheduler on the same workload and environment seed (the
/// paired-comparison setup of Figs. 8-11).  `pool` may be null for serial
/// execution.  Results are in `entries` order.
[[nodiscard]] std::vector<SimResult> run_comparison(
    const ComparisonSpec& spec, const std::vector<ComparisonEntry>& entries,
    ThreadPool* pool = nullptr);

/// Aggregated statistics over seed replications of one scheduler.
struct ReplicatedStats {
  std::string name;
  RunningStats total_flowtime;
  RunningStats mean_flowtime;
  RunningStats makespan;
  RunningStats cloned_task_fraction;
};

/// Run each scheduler across `seeds` environment seeds (same workload
/// specs; durations/background/locality re-realized per seed) and collect
/// aggregate statistics.  Parallel over (scheduler x seed) when a pool is
/// given.
[[nodiscard]] std::vector<ReplicatedStats> run_replicated(
    const ComparisonSpec& spec, const std::vector<ComparisonEntry>& entries,
    const std::vector<std::uint64_t>& seeds, ThreadPool* pool = nullptr);

}  // namespace dollymp
