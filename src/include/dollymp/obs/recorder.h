// The flight recorder: an append-only sink for TraceRecords.
//
// Two retention modes behind one type:
//   * unbounded stream (capacity 0) — keeps every record, for trace export
//     and replay verification;
//   * bounded ring (capacity N) — keeps the newest N records and evicts the
//     oldest, for always-on recording in long runs, with dump-on-anomaly:
//     when something goes wrong the ring holds the last N decisions that
//     led there (dump() renders them oldest-first).
//
// Either way the recorder maintains counters (records written, wire bytes,
// evictions) and an incremental 64-bit hash over the *full* stream — the
// hash covers evicted records too, so a ring-recorded run and an
// unbounded-recorded run of the same config report the same hash.  That
// hash is the replay verifier's cheap equality oracle.
//
// The hook contract: the simulator holds a `Recorder*` that is null by
// default, and every instrumentation site is a single branch
// (`if (rec) rec->append(...)`), so recording costs nothing when off and
// one predictable branch plus ~56 bytes of stores when on.  Not
// thread-safe; one recorder per run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "dollymp/obs/trace_record.h"

namespace dollymp {

class Recorder {
 public:
  /// capacity 0 = unbounded stream; capacity N > 0 = ring of the newest N.
  explicit Recorder(std::size_t ring_capacity = 0) : capacity_(ring_capacity) {
    if (capacity_ > 0) buffer_.reserve(capacity_);
  }

  /// Append one record.  Stamps `record.seq` with the stream position and
  /// folds the stamped record into the running hash before storing it.
  void append(TraceRecord record) {
    record.seq = records_written_++;
    hash_ = fold_record_hash(hash_, record);
    if (capacity_ == 0) {
      buffer_.push_back(record);
    } else if (buffer_.size() < capacity_) {
      buffer_.push_back(record);
    } else {
      buffer_[head_] = record;
      if (++head_ == capacity_) head_ = 0;  // avoids a div for non-power-of-two rings
      ++evictions_;
    }
  }

  [[nodiscard]] bool bounded() const { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t records_written() const { return records_written_; }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return records_written_ * kTraceRecordWireBytes;
  }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  /// Incremental hash over every record ever appended (evicted included).
  [[nodiscard]] std::uint64_t hash() const { return hash_; }
  /// Records currently retained (<= records_written for a ring).
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  /// Retained records in stream order (a ring is unrolled oldest-first).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Decode the retained records, one per line, oldest first — the
  /// dump-on-anomaly rendering.
  void dump(std::ostream& os) const;

  void clear() {
    buffer_.clear();
    head_ = 0;
    records_written_ = 0;
    evictions_ = 0;
    hash_ = kTraceHashSeed;
  }

  /// Checkpoint/restore: resume the incremental stream at a saved position.
  /// Retained records are dropped (they were evicted-by-restore); the next
  /// append continues the sequence numbering and hash chain exactly where
  /// the snapshot left it, so the restored run's stream hash stays equal to
  /// the uninterrupted run's.
  void restore_stream(std::uint64_t records_written, std::uint64_t hash) {
    buffer_.clear();
    head_ = 0;
    records_written_ = records_written;
    evictions_ = 0;
    hash_ = hash;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceRecord> buffer_;
  std::size_t head_ = 0;  ///< ring only: index of the oldest retained record
  std::uint64_t records_written_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t hash_ = kTraceHashSeed;
};

/// Binary log I/O.  Format: magic "DMPTRC02", slot_seconds, the resolved
/// worker-thread count of the run that produced the stream (provenance for
/// the determinism story: the stream is identical for every value, so a
/// divergence can never be blamed on threading — the header lets a reader
/// check that claim), record count, then `count` packed records
/// (kTraceRecordWireBytes each, little-endian on every platform this
/// project targets).  load_log also accepts legacy "DMPTRC01" files, which
/// lack the thread field (reported as 1).  Throws std::runtime_error on
/// I/O failure or a malformed/foreign file.
struct TraceLog {
  double slot_seconds = 5.0;
  long long threads_resolved = 1;  ///< worker threads of the producing run
  std::vector<TraceRecord> records;
};

void save_log(const std::string& path, const std::vector<TraceRecord>& records,
              double slot_seconds, long long threads_resolved = 1);
[[nodiscard]] TraceLog load_log(const std::string& path);

}  // namespace dollymp
