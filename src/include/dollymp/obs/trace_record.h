// The flight-recorder record vocabulary.
//
// One TraceRecord per simulation event or scheduler decision, compact and
// fixed-layout so a recorder can retain millions of them cheaply and hash
// the stream incrementally.  The stream is a *total order*: records are
// appended in the exact order the single-threaded simulator produces them,
// so two runs of the same SimConfig are bit-identical streams — the
// property the replay verifier (obs/replay.h) checks and pinpoints
// violations of.
//
// Field reuse: the record is deliberately flat (no unions, no variants) so
// equality, hashing and serialization stay trivial.  Fields a kind does not
// use hold their -1/0 defaults; `aux` and `score` carry the kind-specific
// payload documented per enumerator below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "dollymp/sim/types.h"

namespace dollymp {

/// Everything the flight recorder can witness.  Values are part of the
/// on-disk log format — append new kinds at the end, never renumber.
enum class TraceEv : std::uint8_t {
  kJobArrival = 0,         ///< job joined the active set
  kCopyPlaced = 1,         ///< first concurrent copy of a task (aux = locality level)
  kClonePlaced = 2,        ///< redundant sibling launched by cloning (aux = locality)
  kSpeculativePlaced = 3,  ///< backup launched by the speculation pass (aux = locality)
  kCopyFinished = 4,       ///< copy ran to completion (aux = duration in slots)
  kCopyKilled = 5,         ///< copy terminated by sibling finish / failure (aux = duration)
  kTaskCompleted = 6,      ///< task done; aux = total copies it ever had
  kPhaseCompleted = 7,     ///< last task of the phase finished
  kJobCompleted = 8,       ///< last phase finished
  kServerFailed = 9,       ///< machine crashed; hosted copies are being killed
  kServerRepaired = 10,    ///< machine back up and accepting placements
  kSchedulerInvoked = 11,  ///< schedule() about to run; aux = active job count
  kWakeupRequested = 12,   ///< request_wakeup registered a timer; aux = target slot
  kTimerFired = 13,        ///< a registered timer wakeup popped at this slot
  kPlacementQuery = 14,    ///< a placement helper chose `server` with `score`
                           ///< (aux = query kind: 0 best-fit, 1 first-fit,
                           ///<  2 locality-aware, 3 DollyMP weighted)
  kSpeculationPass = 15,   ///< straggler sweep; aux = candidates<<16 | launched
  kCopyFault = 16,         ///< transient fault killed one running copy
  kServerDegraded = 17,    ///< fail-slow onset; aux = slowdown_factor * 100
  kServerRestored = 18,    ///< fail-slow recovery; server speed back to normal
  kQuarantineEnter = 19,   ///< resilience policy quarantined a server
  kQuarantineExit = 20,    ///< quarantine expired; server back in candidacy
  kRetryBackoff = 21,      ///< re-placement deferred; aux = backoff slots
  kCloneBudgetDegraded = 22,  ///< clone budget shrunk under low capacity
                              ///< (aux = effective<<16 | configured)
  kArrivalShed = 23,          ///< admission gate dropped an arrival
                              ///< (aux = shed reason<<8 | tenant class;
                              ///<  reasons: 0 token bucket, 1 watermark,
                              ///<  2 overload ladder level 3)
  kOverloadLevelChanged = 24, ///< degradation ladder moved
                              ///< (aux = new level<<8 | old level)
  kGangPlaced = 25,           ///< a gang phase committed atomically
                              ///< (aux = distinct racks<<32 | tasks placed)
  kGangRollback = 26,         ///< a gang probe failed; tentative allocations
                              ///< released (aux = tasks probed before failure)
};

[[nodiscard]] const char* to_string(TraceEv ev);

/// One flight-recorder record.  56 bytes in memory, 53 on the wire.
struct TraceRecord {
  std::uint64_t seq = 0;    ///< position in the stream, stamped by the recorder
  SimTime slot = 0;         ///< simulation slot the event happened at
  TraceEv type = TraceEv::kJobArrival;
  JobId job = -1;
  PhaseIndex phase = -1;
  std::int32_t task = -1;
  std::int32_t copy = -1;   ///< copy index within the task, where meaningful
  std::int32_t server = -1;
  std::int64_t aux = 0;     ///< kind-specific payload (see TraceEv)
  double score = 0.0;       ///< placement score for kPlacementQuery, else 0

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Serialized size of one record in the binary log (packed fields, no
/// padding) — also the unit of Recorder::bytes_written().
inline constexpr std::size_t kTraceRecordWireBytes = 53;

/// Incremental stream hash: fold `record` into the running 64-bit hash `h`.
/// Every payload field participates (seq included), so any reordering,
/// mutation, insertion or truncation of the stream changes the final value.
/// Start from kTraceHashSeed.
inline constexpr std::uint64_t kTraceHashSeed = 0xcbf29ce484222325ULL;

[[nodiscard]] std::uint64_t fold_record_hash(std::uint64_t h, const TraceRecord& record);

/// Human-readable one-line decoding, e.g.
///   "#142 slot=317 clone-placed job=5 phase=1 task=12 copy=1 server=23".
[[nodiscard]] std::string decode(const TraceRecord& record);

}  // namespace dollymp
