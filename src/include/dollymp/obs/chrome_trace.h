// Chrome trace event (Perfetto-loadable) export of a flight-recorder
// stream.
//
// The rendering: one process ("cluster", pid 0) with one lane (tid) per
// server holding the copy spans — first copies, clones and speculative
// backups distinguished by category, killed copies and stragglers flagged —
// plus a "scheduler" process (pid 1) carrying instant events for scheduler
// invocations, job arrivals/completions and speculation passes.  Open the
// file at https://ui.perfetto.dev (or chrome://tracing) to scrub through a
// run: where every copy sat on a machine timeline, which clone won, where
// a straggler held a phase open.
//
// A span is a straggler when its duration exceeds
// `straggler_factor` x the median duration of completed spans of the same
// (job, phase) — a self-contained definition that needs no model
// parameters, mirroring how the paper eyeballs Fig. 1.
#pragma once

#include <string>
#include <vector>

#include "dollymp/obs/trace_record.h"

namespace dollymp {

struct ChromeTraceOptions {
  double slot_seconds = 5.0;       ///< slot -> microsecond conversion
  double straggler_factor = 1.5;   ///< x median same-phase duration
};

/// Render `records` (stream order) as Chrome trace event JSON
/// ({"traceEvents": [...]}).  Tolerates ring-truncated streams: spans whose
/// start was evicted are dropped, spans still open at the end of the stream
/// are emitted with zero duration and an "unterminated" flag.
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceRecord>& records,
                                            const ChromeTraceOptions& options);

}  // namespace dollymp
