// Replay-divergence verification.
//
// Turns "same seed, bit-identical schedule" from a hand-written paired-seed
// test pattern into a reusable subsystem: run a config twice (or once
// against a saved log), record both flight-recorder streams, compare the
// incremental hashes, and on mismatch report the *first divergent record*
// decoded on both sides.  Because the stream totally orders every event and
// decision the simulator makes, the first divergence is the earliest point
// at which the two executions stopped being the same run — everything
// before it is certified identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dollymp/obs/recorder.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {

struct DivergenceReport {
  bool identical = false;
  std::uint64_t hash_a = 0;
  std::uint64_t hash_b = 0;
  std::size_t records_a = 0;
  std::size_t records_b = 0;
  /// Index of the first record where the streams differ (only meaningful
  /// when !identical).  Equals min(records_a, records_b) when one stream is
  /// a strict prefix of the other.
  std::size_t first_divergence = 0;
  /// Decoded records at the divergence point; "<end of stream>" for the
  /// shorter side of a prefix divergence.
  std::string lhs;
  std::string rhs;

  [[nodiscard]] std::string to_string() const;
};

/// Compare two record streams; O(min length) with the first mismatch
/// decoded.  Hashes are recomputed from the streams so the report is
/// self-contained even for streams loaded from disk.
[[nodiscard]] DivergenceReport compare_streams(const std::vector<TraceRecord>& a,
                                               const std::vector<TraceRecord>& b);

using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

/// Run `(cluster, config, jobs)` twice with fresh scheduler instances from
/// `factory`, each under an unbounded recorder, and compare the streams.
/// `config.recorder` is overridden internally; the caller's pointer is
/// never used.
[[nodiscard]] DivergenceReport verify_replay(const Cluster& cluster,
                                             const SimConfig& config,
                                             const std::vector<JobSpec>& jobs,
                                             const SchedulerFactory& factory);

/// Run once and compare against a previously captured stream (e.g. a
/// load_log()ed reference): the live run is side A, the reference side B.
[[nodiscard]] DivergenceReport verify_against_log(const Cluster& cluster,
                                                  const SimConfig& config,
                                                  const std::vector<JobSpec>& jobs,
                                                  const SchedulerFactory& factory,
                                                  const std::vector<TraceRecord>& reference);

}  // namespace dollymp
