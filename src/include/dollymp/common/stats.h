// Streaming statistics, empirical CDFs and histograms.
//
// The paper's evaluation reports distributions almost exclusively as CDFs
// (Figs. 4b, 5, 6, 8, 9, 10, 11) plus aggregate means/sums; this module is
// the single implementation all benches and reports use.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dollymp {

/// Numerically stable streaming moments (Welford).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Coefficient of variation sd/mean; 0 when mean is 0.
  [[nodiscard]] double cv() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool empty() const { return count() == 0; }

  /// Fraction of samples <= x, i.e. F(x).  0 on empty.
  [[nodiscard]] double fraction_at_most(double x) const;
  /// Inverse CDF: smallest sample v with F(v) >= q, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evenly spaced (quantile, value) points, suitable for printing a CDF
  /// series the way the paper's figures plot them.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points = 20) const;

  [[nodiscard]] const std::vector<double>& sorted_samples() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// edge buckets so total mass is preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] double bucket_high(std::size_t i) const;

  /// Render a terminal bar chart, one row per bucket.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Quantile of an unsorted sample (copies + sorts; convenience for tests).
[[nodiscard]] double quantile_of(std::vector<double> samples, double q);

/// Process peak resident-set size in bytes (Linux /proc/self/status VmHWM);
/// 0 when unavailable.  Feeds the scale gate's RSS ceiling and SimStats.
[[nodiscard]] long long process_peak_rss_bytes();

}  // namespace dollymp
