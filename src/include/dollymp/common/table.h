// Console table rendering for the figure/table bench harnesses.
//
// Every bench binary prints the rows/series a paper figure reports; this
// renderer keeps them aligned and readable without any dependency.
#pragma once

#include <string>
#include <vector>

namespace dollymp {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void add_row_values(const std::vector<double>& values, int precision = 2);

  /// Mixed first-column label + numeric rest.
  void add_labeled_row(std::string label, const std::vector<double>& values,
                       int precision = 2);

  [[nodiscard]] std::string render() const;

  /// Render with a caption line above the table.
  [[nodiscard]] std::string render(const std::string& caption) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  static std::string format_double(double v, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a one-line section banner (used by benches between sub-figures).
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace dollymp
