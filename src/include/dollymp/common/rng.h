// Deterministic, splittable pseudo-random number generation.
//
// Every simulation must be exactly reproducible from a single 64-bit seed so
// experiments can be replayed and paired comparisons (e.g. DollyMP^2 vs
// DollyMP^0 on the *same* straggler realization, Fig. 10) are valid.  We use
// xoshiro256** seeded via SplitMix64, both public-domain algorithms, rather
// than std::mt19937 so results are identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dollymp {

/// SplitMix64 step — used for seeding and for cheap hash-like mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator, so it can be
/// plugged into <random> distributions, though the distributions in
/// distributions.h are preferred (they are portable across stdlibs).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  53 bits of mantissa entropy.
  [[nodiscard]] double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator.  Children created with distinct
  /// tags are statistically independent of each other and of the parent, so
  /// subsystems (arrivals, durations, placement noise) can evolve without
  /// perturbing each other's streams when one consumes more randomness.
  [[nodiscard]] Rng split(std::uint64_t tag) const {
    std::uint64_t sm = state_[0] ^ rotl(state_[3], 13) ^ (tag * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(sm));
  }

  /// Stream-position capture for checkpoint/restore: the full 256-bit
  /// xoshiro state.  set_state(state()) reproduces the draw sequence
  /// exactly, which is what makes restored runs bit-identical.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dollymp
