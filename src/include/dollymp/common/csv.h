// Minimal CSV reader/writer used for trace files and experiment output.
//
// Supports quoted fields with embedded commas/quotes/newlines (RFC 4180
// subset), header rows, and typed column access.  Deliberately small: traces
// are plain rectangular tables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dollymp {

/// One parsed CSV table.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Parse from text; the first row is the header.  Throws
  /// std::runtime_error on malformed quoting or ragged rows.
  static CsvTable parse(std::string_view text);
  /// Parse a file via parse(); throws std::runtime_error if unreadable.
  static CsvTable load(const std::string& path);

  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }

  /// Column index by name; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> column(std::string_view name) const;

  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::string& cell(std::size_t row, std::string_view col_name) const;
  [[nodiscard]] double cell_double(std::size_t row, std::string_view col_name) const;
  [[nodiscard]] long long cell_int(std::size_t row, std::string_view col_name) const;

  void add_row(std::vector<std::string> row);

  /// Serialize (with quoting where needed).
  [[nodiscard]] std::string to_string() const;
  void save(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Streaming writer: write_row() accepts any mix of string / arithmetic
/// values and quotes as needed.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_header(const std::vector<std::string>& names) { write_strings(names); }
  void write_strings(const std::vector<std::string>& fields);

  template <typename... Fields>
  void write_row(const Fields&... fields) {
    std::vector<std::string> out;
    out.reserve(sizeof...(fields));
    (out.push_back(field_to_string(fields)), ...);
    write_strings(out);
  }

 private:
  static std::string field_to_string(const std::string& s) { return s; }
  static std::string field_to_string(const char* s) { return s; }
  static std::string field_to_string(double v);
  static std::string field_to_string(long long v) { return std::to_string(v); }
  static std::string field_to_string(unsigned long long v) { return std::to_string(v); }
  static std::string field_to_string(int v) { return std::to_string(v); }
  static std::string field_to_string(long v) { return std::to_string(v); }
  static std::string field_to_string(unsigned v) { return std::to_string(v); }
  static std::string field_to_string(std::size_t v) { return std::to_string(v); }

  std::ostream& os_;
};

/// Quote a single CSV field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace dollymp
