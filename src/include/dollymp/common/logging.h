// Lightweight leveled logging.
//
// The simulator is a hot loop, so log statements must cost one branch when
// disabled.  Thread-safe: each emitted line is formatted into a local buffer
// and written with a single locked call.
#pragma once

#include <sstream>
#include <string>

namespace dollymp {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global threshold; default kWarn so library users see problems but not
/// simulator chatter.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();
[[nodiscard]] bool log_enabled(LogLevel level);

/// Emit one line (appends '\n'); used by the LOG macro below.
void log_line(LogLevel level, const std::string& message);

[[nodiscard]] const char* log_level_name(LogLevel level);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dollymp

/// Usage: DOLLYMP_LOG(kInfo) << "scheduled " << n << " tasks";
#define DOLLYMP_LOG(severity)                                          \
  if (!::dollymp::log_enabled(::dollymp::LogLevel::severity)) {        \
  } else                                                               \
    ::dollymp::detail::LogStream(::dollymp::LogLevel::severity)
