// Shared command-line plumbing for the dollymp_* tools.
//
// Every driver (dollymp_sim, dollymp_chaos, dollymp_sweep, dollymp_service)
// speaks the same flag dialect: `--flag value` and `--flag=value` are
// interchangeable, and an unknown flag is rejected with a did-you-mean
// suggestion computed over the tool's known-flag list instead of a bare
// "unknown option".  The helpers here are the one implementation of that
// dialect; the tools keep their own flag dispatch (the flag sets differ)
// but share normalization, value splitting and the rejection message.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dollymp::cli {

/// argv[1..] with every `--flag=value` expanded into `--flag` `value`, so a
/// dispatch loop only ever sees the space-separated spelling.  Lone `=`
/// inside non-flag arguments (file names, cluster specs) is left alone.
[[nodiscard]] std::vector<std::string> normalize_args(int argc, char** argv);

/// Split on a separator (cluster specs like google:300, fault specs like
/// MTBF:REPAIR).  An empty text yields one empty part, matching getline.
[[nodiscard]] std::vector<std::string> split(const std::string& text, char sep);

/// Levenshtein edit distance, the did-you-mean metric.
[[nodiscard]] std::size_t edit_distance(const std::string& a, const std::string& b);

/// The known flag closest to `flag`, or "" when nothing is plausibly close
/// (distance must be <= max(2, |flag|/3) — "--hlep" suggests "--help",
/// random typos suggest nothing).  Ties break toward the earlier entry so
/// suggestion order is deterministic.
[[nodiscard]] std::string closest_flag(const std::string& flag,
                                       const std::vector<std::string>& known);

/// Full rejection line for an unrecognized flag: `unknown option --hlep
/// (did you mean --help?)`, with the suggestion clause dropped when
/// closest_flag finds nothing.
[[nodiscard]] std::string unknown_flag_message(const std::string& flag,
                                               const std::vector<std::string>& known);

}  // namespace dollymp::cli
