// Probability distributions and the cloning speedup model of Section 3.
//
// The paper models task execution times as Type-I Pareto random variables
// (Eq. 2), fits the shape parameter alpha from the (mean, standard
// deviation) statistics each Application Master reports, and derives the
// cloning speedup function (Eq. 3)
//
//     h(x) = (alpha - 1/x) / (alpha - 1) = 1 + (1 - 1/x) / (alpha - 1),
//
// which is the ratio E[Theta] / E[min of x i.i.d. copies]: launching x
// simultaneous copies divides the expected execution time by h(x) (Eq. 1).
// h is strictly increasing and concave in x, with supremum R = alpha/(alpha-1)
// (the bound used by Theorem 1).
//
// All samplers are inverse-CDF based on Rng::uniform() so results are
// bit-identical across platforms and standard libraries.
#pragma once

#include <cmath>
#include <stdexcept>

#include "dollymp/common/rng.h"

namespace dollymp {

/// Type-I Pareto distribution: Pr{X > x} = (x_m / x)^alpha for x >= x_m.
class ParetoDist {
 public:
  /// @param scale   x_m > 0, the minimum value.
  /// @param shape   alpha > 0.  Mean exists for alpha > 1, variance for
  ///                alpha > 2.
  ParetoDist(double scale, double shape);

  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double shape() const { return shape_; }

  /// Mean alpha*x_m/(alpha-1); throws std::domain_error if alpha <= 1.
  [[nodiscard]] double mean() const;
  /// Variance; throws std::domain_error if alpha <= 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Pr{X > x}.
  [[nodiscard]] double tail(double x) const;
  /// Inverse CDF at u in [0,1).
  [[nodiscard]] double quantile(double u) const;

  [[nodiscard]] double sample(Rng& rng) const { return quantile(rng.uniform()); }

  /// Fit (x_m, alpha) from a target mean and coefficient of variation
  /// (cv = sd/mean), inverting cv^2 = 1/(alpha*(alpha-2)):
  ///   alpha = 1 + sqrt(1 + 1/cv^2),  x_m = mean*(alpha-1)/alpha.
  /// This is the fit the DollyMP Application Master performs from measured
  /// task statistics (Section 3 / Section 5.2).  cv must be > 0.
  static ParetoDist fit(double mean, double cv);

 private:
  double scale_;
  double shape_;
};

/// Pareto truncated to [scale, upper]: keeps the heavy tail shape but bounds
/// the worst straggler (the traces in Section 6.3 report stragglers up to
/// ~20x the normal task).
class BoundedParetoDist {
 public:
  BoundedParetoDist(double scale, double shape, double upper);

  [[nodiscard]] double scale() const { return scale_; }
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double upper() const { return upper_; }

  [[nodiscard]] double quantile(double u) const;
  [[nodiscard]] double sample(Rng& rng) const { return quantile(rng.uniform()); }
  [[nodiscard]] double mean() const;

 private:
  double scale_;
  double shape_;
  double upper_;
};

/// Lognormal distribution, parameterized by the underlying normal (mu,
/// sigma).  Used by the workload generator for task-count and input-size
/// dispersion, which Google-trace analyses report as roughly lognormal.
class LognormalDist {
 public:
  LognormalDist(double mu, double sigma);

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] double mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

  [[nodiscard]] double sample(Rng& rng) const;

  /// Fit from a target mean and coefficient of variation.
  static LognormalDist fit(double mean, double cv);

 private:
  double mu_;
  double sigma_;
};

/// Exponential distribution with the given mean; used for Poisson arrivals.
class ExponentialDist {
 public:
  explicit ExponentialDist(double mean);
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double sample(Rng& rng) const;

 private:
  double mean_;
};

/// Weibull distribution parameterized by (mean, shape k), with the scale
/// derived as mean / Gamma(1 + 1/k).  Failure-analysis literature fits
/// machine lifetimes with k < 1 (infant mortality: hazard decreases with
/// uptime) and wear-out repairs with k > 1; k == 1 degenerates to the
/// exponential.  Inverse-CDF sampling, so draws are bit-portable and
/// consume exactly one Rng::uniform() like ExponentialDist — the fault
/// engine can switch a delay between the two without perturbing any other
/// stream's draw count.
class WeibullDist {
 public:
  /// @param mean   target mean, > 0.
  /// @param shape  k > 0.
  WeibullDist(double mean, double shape);

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

  /// Inverse CDF at u in [0,1): scale * (-ln(1-u))^(1/k).
  [[nodiscard]] double quantile(double u) const;
  [[nodiscard]] double sample(Rng& rng) const { return quantile(rng.uniform()); }

 private:
  double mean_;
  double shape_;
  double scale_;
};

/// Standard normal sample via the Marsaglia polar variant of Box-Muller,
/// consuming only Rng::uniform draws.
[[nodiscard]] double sample_standard_normal(Rng& rng);

/// The cloning speedup function h(x) of Eq. (3), parameterized by the Pareto
/// shape alpha of the underlying task-duration distribution.
///
/// Invariants (asserted by the test suite): h(1) == 1, h strictly increasing,
/// h concave on the positive integers, h(x) < R = alpha/(alpha-1) for all x.
class SpeedupFunction {
 public:
  /// @param alpha  Pareto shape, must be > 1 so the mean exists.
  explicit SpeedupFunction(double alpha);

  /// Build from measured (mean, sd) task statistics, via ParetoDist::fit.
  /// cv == 0 (deterministic tasks) degenerates to h(x) == 1 for all x,
  /// represented internally by alpha = +infinity.
  static SpeedupFunction from_stats(double mean, double stddev);

  /// h(x); x >= 1.  For the degenerate (deterministic) case returns 1.
  [[nodiscard]] double operator()(double x) const;

  /// Supremum R = alpha/(alpha-1) (Theorem 1's bound); +infinity never
  /// occurs because alpha > 1.  Degenerate case returns 1.
  [[nodiscard]] double upper_bound() const;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] bool degenerate() const { return !std::isfinite(alpha_); }

  /// Smallest number of copies r such that budget * h(r) >= theta, i.e. the
  /// r_j of Corollary 4.1 (r_j = min { r : 2^l h(r) >= theta_j }); returns 0
  /// if even r -> infinity cannot reach theta within the budget.
  [[nodiscard]] int min_copies_for(double theta, double budget) const;

 private:
  double alpha_;
};

}  // namespace dollymp
