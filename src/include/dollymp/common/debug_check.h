// Debug invariant checks that stay live under the sanitizer CI jobs.
//
// The ASan/TSan workflows build RelWithDebInfo, which defines NDEBUG and
// compiles plain assert() out — exactly the builds where a layout bug
// (double release, copy-counter underflow) should fail loudly.  So
// DMP_DEBUG_CHECK is active whenever NDEBUG is unset OR a sanitizer is
// detected, and compiles to nothing in plain release builds, keeping the
// hot path free of branches there.
#pragma once

#include <cstdio>
#include <cstdlib>

#if !defined(NDEBUG)
#define DMP_DEBUG_CHECKS_ENABLED 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DMP_DEBUG_CHECKS_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DMP_DEBUG_CHECKS_ENABLED 1
#endif
#endif

#ifndef DMP_DEBUG_CHECKS_ENABLED
#define DMP_DEBUG_CHECKS_ENABLED 0
#endif

#if DMP_DEBUG_CHECKS_ENABLED
#define DMP_DEBUG_CHECK(cond, msg)                                             \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "DMP_DEBUG_CHECK failed at %s:%d: %s\n  %s\n",      \
                   __FILE__, __LINE__, #cond, msg);                            \
      std::abort();                                                            \
    }                                                                          \
  } while (0)
#else
#define DMP_DEBUG_CHECK(cond, msg) \
  do {                             \
  } while (0)
#endif
