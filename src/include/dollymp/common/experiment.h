// Experiment sweep driver: whole-replication parallelism.
//
// PR 5's deterministic parallel core shards *inside* one simulation; this
// driver attacks the other axis of the paper's §6 evaluation, the figure
// grid itself: seeds × policies × fault matrices are independent
// replications, so they fan across the owned thread pool with no shared
// mutable state at all (each replication copies the cluster prototype and
// builds a fresh scheduler from its factory).  Aggregation happens on the
// calling thread in fixed grid order, so the aggregate — including the
// rendered JSON, byte for byte — is identical for every thread count.
// That invariant is what test_sweep.cpp pins and what lets the chaos and
// comparison matrices run as one command (tools/dollymp_sweep.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/stats.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/metrics/experiment.h"
#include "dollymp/sim/types.h"

namespace dollymp {

/// One fault environment of the sweep grid: a named override of the base
/// config's failure/fault matrix (the chaos harness's fault classes, plus
/// "healthy" = everything off).
struct SweepFaultPreset {
  std::string name;
  FailureConfig failures;
  FaultConfig faults;
};

/// The preset catalogue the chaos matrix uses, by name: "healthy", "crash"
/// (independent crashes), "rack", "failslow", "copyfault", "all".  Throws
/// std::invalid_argument on an unknown name, listing the catalogue.
[[nodiscard]] SweepFaultPreset make_fault_preset(const std::string& name);

/// The full replication grid.  Every (policy × fault preset × seed) triple
/// is one independent simulation of the same workload over a copy of
/// `cluster`; `base` supplies everything the grid does not override (its
/// seed/failures/faults fields are overwritten per cell, and any attached
/// recorder is dropped — replications must not share one).
struct SweepSpec {
  Cluster cluster;
  SimConfig base;
  std::vector<JobSpec> jobs;
  std::vector<ComparisonEntry> policies;
  /// Empty means one pass-through preset named "base" keeping base's own
  /// failure/fault settings.
  std::vector<SweepFaultPreset> fault_presets;
  /// Environment seeds (durations/background/locality re-realized per
  /// seed).  Empty means {base.seed}.
  std::vector<std::uint64_t> seeds;
};

/// Mean with a normal-approximation 95% confidence interval
/// (mean ± 1.96·sd/√n; degenerate to the mean when n < 2).
struct MeanCi {
  std::size_t n = 0;
  double mean = 0.0;
  double sd = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] MeanCi mean_ci95(const RunningStats& stats);

/// Aggregates for one (policy, fault preset) cell across its seeds.
struct SweepCell {
  std::string policy;
  std::string fault;
  std::size_t replications = 0;
  /// Across seeds: one sample per replication.
  RunningStats total_flowtime_seconds;
  RunningStats mean_flowtime_seconds;
  RunningStats makespan_seconds;
  RunningStats cloned_task_fraction;
  /// Pooled per-job samples in (seed, job) order across all replications.
  Cdf flowtime_seconds;      ///< finish − arrival
  Cdf running_time_seconds;  ///< finish − first start
};

struct SweepResult {
  std::vector<SweepCell> cells;  ///< policy-major, preset-minor grid order
  std::size_t replications = 0;
  /// Wall-clock of the whole sweep.  Deliberately NOT part of the rendered
  /// JSON (which must be byte-deterministic); the bench and the CLI report
  /// it separately as replications/sec.
  double wall_clock_seconds = 0.0;
};

/// Run the grid, fanning replications across `pool` (null or single-worker
/// runs serially inline).  Results and aggregates are independent of the
/// thread count.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec, ThreadPool* pool = nullptr);

/// Deterministic JSON rendering of a sweep: per-cell means, 95% CIs and
/// CDF quantile curves.  Contains no wall-clock, host or thread-count
/// fields, so equal sweeps render equal bytes regardless of parallelism.
[[nodiscard]] std::string render_sweep_json(const SweepResult& result);

}  // namespace dollymp
