// Binary state serialization for checkpoint/restore (the DMPCKPT01 format).
//
// A checkpoint must be *verifiable*: the restored simulation's
// flight-recorder stream hash has to equal the uninterrupted run's, so a
// snapshot that silently drops or reorders a field is worse than one that
// fails loudly.  StateWriter/StateReader therefore wrap every payload in a
// framed envelope — a 9-byte magic ("DMPCKPT01"), a format version, the
// payload length, and a trailing 64-bit FNV-1a hash over the payload — and
// the reader rejects truncation, trailing garbage, bit corruption and
// foreign files with a std::runtime_error naming what went wrong.
//
// Inside the envelope the encoding is deliberately dumb: little-endian
// fixed-width integers, IEEE doubles by bit pattern, length-prefixed
// strings and vectors, and u32 section tags (fourcc-style) sprinkled
// between subsystems so a reader that drifts out of sync fails at the next
// tag instead of misinterpreting the rest of the stream.  Snapshots are
// exchanged between process images of the same build (the service
// checkpoints to disk and restores later, possibly in a fresh process), not
// across architectures.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

namespace dollymp {

/// Seed/prime of the envelope's FNV-1a payload hash.
inline constexpr std::uint64_t kStateHashSeed = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kStateHashPrime = 0x100000001b3ULL;

/// The 9-byte format magic + current version.
inline constexpr char kStateMagic[] = "DMPCKPT01";  // 9 chars + NUL
inline constexpr std::uint32_t kStateVersion = 1;

class StateWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  /// Trivially-copyable record by raw bytes (same-build snapshots only; the
  /// sizeof is part of the stream so a layout drift fails loudly on read).
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u32(static_cast<std::uint32_t>(sizeof(T)));
    bytes(&v, sizeof(T));
  }
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    u32(static_cast<std::uint32_t>(sizeof(T)));
    u64(v.size());
    bytes(v.data(), v.size() * sizeof(T));
  }
  /// Subsystem boundary marker (fourcc), checked by StateReader::section.
  void section(std::uint32_t tag) { u32(0x5EC70000u ^ tag); }

  /// Reserve an 8-byte length slot (nested blobs a reader may skip);
  /// returns its position for patch_u64.
  [[nodiscard]] std::size_t reserve_u64() {
    const std::size_t at = buf_.size();
    u64(0);
    return at;
  }
  void patch_u64(std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Seal the payload into the framed envelope (magic, version, length,
  /// payload, FNV-1a hash).  The writer is consumed.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> buf_;
};

class StateReader {
 public:
  /// Validate the envelope (magic, version, length, payload hash) and
  /// position the cursor at the payload start.  Throws std::runtime_error
  /// on a foreign, truncated or corrupted snapshot.  The buffer must
  /// outlive the reader.
  StateReader(const std::uint8_t* data, std::size_t size);
  explicit StateReader(const std::vector<std::uint8_t>& data)
      : StateReader(data.data(), data.size()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  [[nodiscard]] bool b() { return u8() != 0; }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void bytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  [[nodiscard]] std::string str();
  template <typename T>
  void pod(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_record_size(u32(), sizeof(T));
    bytes(&v, sizeof(T));
  }
  template <typename T>
  void pod_vec(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_record_size(u32(), sizeof(T));
    const std::uint64_t n = u64();
    need(n * sizeof(T));
    v.resize(n);
    bytes(v.data(), n * sizeof(T));
  }
  /// Consume a section marker; throws naming the tag on mismatch.
  void section(std::uint32_t tag);
  void skip(std::size_t n) {
    need(n);
    pos_ += n;
  }
  [[nodiscard]] std::size_t remaining() const { return end_ - pos_; }
  /// End-of-payload check for callers that want to assert full consumption.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  static void check_record_size(std::uint32_t stored, std::size_t expected);

  const std::uint8_t* data_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

/// Whole-file helpers for checkpoint artifacts.  write_state_file is
/// atomic: the bytes land in `path + ".tmp"`, are flushed and fsync'd, and
/// the temp file is renamed over the target, so a crash at any instant
/// leaves either the old complete file or the new complete file — never a
/// torn one.  Every failure (open, short write from a full disk, fsync,
/// rename) throws std::runtime_error carrying the errno text.
/// read_state_file throws std::runtime_error on I/O failure.
void write_state_file(const std::string& path, const std::vector<std::uint8_t>& bytes);
[[nodiscard]] std::vector<std::uint8_t> read_state_file(const std::string& path);

/// Last-good/previous snapshot rotation for crash-safe supervised recovery.
///
/// write() publishes bytes as `<base>.latest` (atomically, via
/// write_state_file) after demoting the previous latest to `<base>.prev`,
/// so at any instant at most one complete older snapshot plus one complete
/// newer snapshot exist on disk.  newest_valid() walks latest-then-prev,
/// validates each candidate's DMPCKPT01 envelope, quarantines a corrupted
/// file out of the way (renamed to `<file>.quarantined.N` so it is kept for
/// forensics but never re-picked) and returns the path of the newest
/// snapshot that verifies — the supervisor's automatic fallback.
class SnapshotRotation {
 public:
  explicit SnapshotRotation(std::string base_path);

  /// Publish `bytes` as the new latest snapshot; the previous latest (if
  /// any) becomes the previous-generation fallback.
  void write(const std::vector<std::uint8_t>& bytes);

  /// Path of the newest snapshot whose envelope validates, or "" when none
  /// survives.  Corrupted candidates are quarantined as a side effect.
  [[nodiscard]] std::string newest_valid();

  [[nodiscard]] std::string latest_path() const { return base_ + ".latest"; }
  [[nodiscard]] std::string previous_path() const { return base_ + ".prev"; }
  /// True when `path` names a quarantined snapshot (never load these).
  [[nodiscard]] static bool is_quarantined_path(const std::string& path);
  /// Corrupted snapshots moved aside by newest_valid() on this instance.
  [[nodiscard]] int quarantined_count() const { return quarantined_; }

 private:
  std::string base_;
  int quarantined_ = 0;
};

}  // namespace dollymp
