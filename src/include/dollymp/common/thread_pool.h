// Fixed-size thread pool with chunked parallel_for / sharded-scan helpers.
//
// Two consumers with different shapes share this pool:
//
//   * The bench harness fans independent replications (different seeds /
//     schedulers / load points) across cores through submit()/parallel_map —
//     tasks share no mutable state and join through futures.
//   * The deterministic parallel scheduling core (SimConfig::threads) shards
//     hot scheduler scans — priority recompute, weighted placement scoring,
//     the speculation sweep — through run_shards()/parallel_for.  Those
//     call sites own the determinism story: each shard computes into its own
//     pre-sized slot and the caller reduces in fixed shard order, so the
//     result is bit-identical to the sequential run (DESIGN.md section 4.5).
//
// Dispatch is chunked: a parallel_for over n items enqueues at most
// pool-size closures (one per contiguous chunk), never one per item, so the
// per-item cost is a plain indirect call with no allocation.  Exceptions
// propagate: the lowest-shard-index exception is rethrown on the calling
// thread after every shard has finished (deterministic — completion order
// never picks the winner).  A null pool (or a single-shard split) runs the
// whole range inline on the calling thread.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dollymp {

class ThreadPool {
 public:
  /// @param threads  0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Drain the queue, join every worker and reject all later submissions.
  /// Idempotent; the destructor calls it.  After shutdown() size() is 0,
  /// so sharded helpers fed this pool fall back to inline execution.
  void shutdown();

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Fire-and-forget enqueue: no packaged_task, no future — the one
  /// allocation is the queue's own std::function.  The callable must not
  /// throw (run_shards wraps shard bodies in a catch-all before posting).
  template <typename F>
  void post(F&& fn) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: post after shutdown");
      queue_.emplace_back(std::forward<F>(fn));
    }
    cv_.notify_one();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Number of shards a deterministic sharded scan over n items uses: one per
/// pool worker, never more than n, 1 when there is no pool (inline).  The
/// *reduction* order never depends on this value — only dispatch does — so
/// every thread count produces the same bits.
[[nodiscard]] inline std::size_t shard_count(const ThreadPool* pool, std::size_t n) {
  if (n == 0) return 0;
  if (pool == nullptr || pool->size() < 2) return 1;
  return std::min(pool->size(), n);
}

/// Contiguous [begin, end) range of shard s out of `shards` over [0, n).
/// Pure in (s, shards, n): boundaries cover every index exactly once and
/// never depend on runtime interleaving.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> shard_range(
    std::size_t shard, std::size_t shards, std::size_t n) {
  return {shard * n / shards, (shard + 1) * n / shards};
}

/// Shard-count / imbalance counters for the parallel scheduling core,
/// surfaced as SimStats::parallel_* and the control-plane table.  note() is
/// called by the dispatching thread after its section joined, so the struct
/// needs no synchronization.
struct ShardStats {
  long long sections = 0;         ///< sharded scans actually dispatched
  long long shards = 0;           ///< shards across those sections
  long long items = 0;            ///< items the sections covered
  long long max_shard_items = 0;  ///< largest single shard (imbalance bound)

  // Scratch-arena traffic of the sharded passes: every acquire either ran
  // entirely inside retained capacity (a reuse) or had to grow at least one
  // buffer.  Steady state must be all reuses — the shard-merge glue's
  // zero-allocation claim, asserted by the steady-state tests.
  long long arena_acquires = 0;
  long long arena_reuses = 0;
  long long arena_grows = 0;

  void note(std::size_t shards_used, std::size_t n) {
    if (shards_used < 2) return;  // ran inline: not a parallel section
    ++sections;
    shards += static_cast<long long>(shards_used);
    items += static_cast<long long>(n);
    const auto widest = static_cast<long long>((n + shards_used - 1) / shards_used);
    max_shard_items = std::max(max_shard_items, widest);
  }

  /// One scratch-arena acquisition: `grew` says whether any backing buffer
  /// had to allocate (capacity grew) to serve it.
  void note_arena(bool grew) {
    ++arena_acquires;
    if (grew) {
      ++arena_grows;
    } else {
      ++arena_reuses;
    }
  }
};

namespace detail {

/// Join state for one sharded dispatch: counts shards down and keeps the
/// exception of the *lowest* shard index (deterministic winner).
class ShardJoin {
 public:
  explicit ShardJoin(std::size_t pending) : pending_(pending) {}

  void finish(std::size_t shard, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error && shard < error_shard_) {
      error_shard_ = shard;
      error_ = error;
    }
    if (--pending_ == 0) cv_.notify_one();
  }

  void wait_and_rethrow() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_;
  std::size_t error_shard_ = static_cast<std::size_t>(-1);
  std::exception_ptr error_;
};

}  // namespace detail

/// Run body(shard, begin, end) for every shard of a fixed `shards`-way split
/// of [0, n) — the workhorse of the deterministic parallel core.  Callers
/// pre-size per-shard output slots to `shards` (obtained from shard_count),
/// let each shard write only its own slot, then reduce in ascending shard
/// order on the calling thread; since shard boundaries are contiguous and
/// ascending, that reduction visits items in exactly sequential order.
/// shards <= 1 (or a null pool) runs inline.  Blocks until every shard is
/// done; the lowest shard's exception is rethrown.  Must not be called from
/// inside a pool task (the nested dispatch would wait on its own workers).
template <typename F>
void run_shards(ThreadPool* pool, std::size_t shards, std::size_t n, F&& body) {
  if (n == 0 || shards == 0) return;
  if (shards == 1 || pool == nullptr) {
    body(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  detail::ShardJoin join(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const auto [begin, end] = shard_range(s, shards, n);
    pool->post([&join, &body, s, begin = begin, end = end] {
      std::exception_ptr error;
      try {
        body(s, begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      join.finish(s, error);
    });
  }
  join.wait_and_rethrow();
}

/// Chunked parallel_for: fn(i) for every i in [0, n), split into at most
/// pool-size contiguous chunks with one pool task each — no per-item
/// allocation of any kind.  A null pool runs the loop inline on the calling
/// thread.  Exceptions propagate (lowest-chunk wins, see run_shards).
template <typename F>
void parallel_for(ThreadPool* pool, std::size_t n, F&& fn) {
  run_shards(pool, shard_count(pool, n), n,
             [&fn](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) fn(i);
             });
}

/// Reference-taking overload kept for the bench/experiment callers; same
/// chunked semantics as the pointer overload above.
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

/// Map fn over [0, n) collecting results in order.
template <typename F>
auto parallel_map(ThreadPool& pool, std::size_t n, F&& fn)
    -> std::vector<std::invoke_result_t<F, std::size_t>> {
  using R = std::invoke_result_t<F, std::size_t>;
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace dollymp
