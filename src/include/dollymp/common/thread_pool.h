// Fixed-size thread pool with a parallel_for helper.
//
// Simulations themselves are single-threaded and deterministic; the pool is
// used by the bench harness to fan independent replications (different
// seeds / schedulers / load points) across cores, following the Core
// Guidelines' concurrency rules: tasks share no mutable state and results
// are joined through futures.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dollymp {

class ThreadPool {
 public:
  /// @param threads  0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(i) for i in [0, n) across the pool and wait for completion.
/// Exceptions from any iteration are rethrown (first one wins).
void parallel_for(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

/// Map fn over [0, n) collecting results in order.
template <typename F>
auto parallel_map(ThreadPool& pool, std::size_t n, F&& fn)
    -> std::vector<std::invoke_result_t<F, std::size_t>> {
  using R = std::invoke_result_t<F, std::size_t>;
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace dollymp
