// Multi-dimensional resource vectors (CPU cores + memory GB).
//
// The paper's model (Section 3) is two-dimensional: each task of phase
// phi_j^k demands c_j^k CPU cores and m_j^k GB of memory, and server i has
// capacity (C_i, M_i).  Everything the schedulers need from resources is
// collected here: component-wise arithmetic, the fits-within partial order
// (capacity constraint Eq. 5), the inner-product alignment score used by
// Tetris and by DollyMP's intra-priority tie break, and the dominant-share
// computation of Eq. 9 / Eq. 15.
#pragma once

#include <algorithm>
#include <cmath>
#include <iosfwd>
#include <string>

namespace dollymp {

/// A point in (CPU cores, memory GB) space.  Values are non-negative by
/// convention; helper constructors and operations never produce NaN for
/// non-negative inputs.
struct Resources {
  double cpu = 0.0;
  double mem = 0.0;

  constexpr Resources() = default;
  constexpr Resources(double cpu_cores, double mem_gb) : cpu(cpu_cores), mem(mem_gb) {}

  [[nodiscard]] constexpr bool fits_within(const Resources& capacity) const {
    // Tolerate tiny floating error so that repeated alloc/release round trips
    // never spuriously reject a task that exactly fills a server.
    constexpr double kSlack = 1e-9;
    return cpu <= capacity.cpu + kSlack && mem <= capacity.mem + kSlack;
  }

  [[nodiscard]] constexpr bool is_zero() const { return cpu == 0.0 && mem == 0.0; }
  [[nodiscard]] constexpr bool non_negative() const { return cpu >= 0.0 && mem >= 0.0; }

  /// Inner product — the "alignment score" of Tetris (Section 2) and the
  /// resource-fit tie break of Algorithm 2, step 12.
  [[nodiscard]] constexpr double dot(const Resources& other) const {
    return cpu * other.cpu + mem * other.mem;
  }

  /// Dominant share with respect to a total capacity (Eq. 9 / Eq. 15):
  ///   d = max(cpu / total.cpu, mem / total.mem).
  /// A zero capacity dimension contributes 0 (that dimension cannot be
  /// dominant when the cluster has none of it and the demand must be 0).
  [[nodiscard]] double dominant_share(const Resources& total) const;

  /// Component-wise minimum / maximum.
  [[nodiscard]] constexpr Resources min(const Resources& o) const {
    return {cpu < o.cpu ? cpu : o.cpu, mem < o.mem ? mem : o.mem};
  }
  [[nodiscard]] constexpr Resources max(const Resources& o) const {
    return {cpu > o.cpu ? cpu : o.cpu, mem > o.mem ? mem : o.mem};
  }

  /// Clamp negatives (from floating noise after release) back to zero.
  [[nodiscard]] constexpr Resources clamped() const {
    return {cpu < 0.0 ? 0.0 : cpu, mem < 0.0 ? 0.0 : mem};
  }

  constexpr Resources& operator+=(const Resources& o) {
    cpu += o.cpu;
    mem += o.mem;
    return *this;
  }
  constexpr Resources& operator-=(const Resources& o) {
    cpu -= o.cpu;
    mem -= o.mem;
    return *this;
  }
  constexpr Resources& operator*=(double s) {
    cpu *= s;
    mem *= s;
    return *this;
  }

  friend constexpr Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend constexpr Resources operator-(Resources a, const Resources& b) { return a -= b; }
  friend constexpr Resources operator*(Resources a, double s) { return a *= s; }
  friend constexpr Resources operator*(double s, Resources a) { return a *= s; }
  friend constexpr bool operator==(const Resources& a, const Resources& b) {
    return a.cpu == b.cpu && a.mem == b.mem;
  }

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Resources& r);

/// Sum of normalized dimensions, used as the scalar "resource usage" in the
/// paper's Fig. 8 metric ("the sum across the (normalized) CPU and Memory
/// resource multiplied by the task duration").
[[nodiscard]] double normalized_sum(const Resources& r, const Resources& total);

}  // namespace dollymp
