// N-dimensional resource vectors (CPU cores, memory GB, GPUs, ...).
//
// The paper's model (Section 3) is multi-resource: each task of phase
// phi_j^k demands a vector of resources and server i has a capacity vector.
// Historically this file hard-coded two dimensions (CPU cores, memory GB);
// it now carries a fixed-capacity N-dimensional vector with a compile-time
// maximum (`kMaxDims`).  Dimensions 0 and 1 are always CPU and memory so the
// two-dimensional reproduction is unchanged; dimension 2 is the GPU axis
// used by the gang-scheduled ML workload; further dimensions are reserved.
//
// Everything the schedulers need from resources is collected here:
// component-wise arithmetic, the fits-within partial order (capacity
// constraint Eq. 5), the inner-product alignment score used by Tetris and by
// DollyMP's intra-priority tie break, and the dominant-share computation of
// Eq. 9 / Eq. 15 — all generalized as loops over every dimension.
//
// Bit-identity contract: unused dimensions are exactly 0.0, and every
// operation iterates all `kMaxDims` unconditionally.  Adding 0.0, taking
// min/max against 0.0, and comparing 0.0 <= 0.0 + slack are bitwise
// invisible for the non-negative values this type holds, so a build with
// kMaxDims > 2 reproduces the historical two-field arithmetic bit for bit
// when only CPU and memory are populated (tests/test_resources_nd.cpp is
// the differential harness that pins this).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace dollymp {

/// A point in resource space.  Values are non-negative by convention;
/// helper constructors and operations never produce NaN for non-negative
/// inputs.
///
/// Equality policy: `operator==` is EXACT (bitwise `double` comparison per
/// dimension).  It is the key semantics of the `PlacementIndex` usage
/// groups and of every hash/cache keyed on a resource vector: two servers
/// belong to the same group iff their used vectors are value-identical,
/// which holds exactly when they executed the same allocate/release
/// sequence.  Tolerant comparison lives only in `fits_within` (the kSlack
/// headroom), which answers a different question — "does this demand fit"
/// — where accumulated float noise from repeated alloc/release round trips
/// must not spuriously reject an exact fill.  Do not "fix" `==` to be
/// approximate: near-equal-but-not-equal vectors landing in distinct index
/// groups is intended and harmless (both groups stay visible to every
/// walk), while an approximate key would make group membership depend on
/// insertion order and break replay determinism.
struct Resources {
  /// Compile-time dimension capacity.  Dimension 0 = CPU cores,
  /// 1 = memory GB, 2 = GPUs, 3 = reserved.
  static constexpr std::size_t kMaxDims = 4;
  static constexpr std::size_t kCpuDim = 0;
  static constexpr std::size_t kMemDim = 1;
  static constexpr std::size_t kGpuDim = 2;

  std::array<double, kMaxDims> dims{};

  constexpr Resources() = default;
  constexpr Resources(double cpu_cores, double mem_gb)
      : dims{cpu_cores, mem_gb, 0.0, 0.0} {}
  constexpr Resources(double cpu_cores, double mem_gb, double gpus)
      : dims{cpu_cores, mem_gb, gpus, 0.0} {}

  [[nodiscard]] constexpr double cpu() const { return dims[kCpuDim]; }
  [[nodiscard]] constexpr double mem() const { return dims[kMemDim]; }
  [[nodiscard]] constexpr double gpu() const { return dims[kGpuDim]; }

  constexpr double& operator[](std::size_t d) { return dims[d]; }
  constexpr double operator[](std::size_t d) const { return dims[d]; }

  [[nodiscard]] constexpr bool fits_within(const Resources& capacity) const {
    // Tolerate tiny floating error so that repeated alloc/release round trips
    // never spuriously reject a task that exactly fills a server.
    constexpr double kSlack = 1e-9;
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      if (dims[d] > capacity.dims[d] + kSlack) return false;
    }
    return true;
  }

  [[nodiscard]] constexpr bool is_zero() const {
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      if (dims[d] != 0.0) return false;
    }
    return true;
  }
  [[nodiscard]] constexpr bool non_negative() const {
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      if (dims[d] < 0.0) return false;
    }
    return true;
  }

  /// Inner product — the "alignment score" of Tetris (Section 2) and the
  /// resource-fit tie break of Algorithm 2, step 12.
  [[nodiscard]] constexpr double dot(const Resources& other) const {
    double sum = 0.0;
    for (std::size_t d = 0; d < kMaxDims; ++d) sum += dims[d] * other.dims[d];
    return sum;
  }

  /// Dominant share with respect to a total capacity (Eq. 9 / Eq. 15):
  ///   d = max over dimensions of dims[d] / total[d].
  /// A zero capacity dimension contributes 0 (that dimension cannot be
  /// dominant when the cluster has none of it and the demand must be 0).
  [[nodiscard]] double dominant_share(const Resources& total) const;

  /// Component-wise minimum / maximum.
  [[nodiscard]] constexpr Resources min(const Resources& o) const {
    Resources out;
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      out.dims[d] = dims[d] < o.dims[d] ? dims[d] : o.dims[d];
    }
    return out;
  }
  [[nodiscard]] constexpr Resources max(const Resources& o) const {
    Resources out;
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      out.dims[d] = dims[d] > o.dims[d] ? dims[d] : o.dims[d];
    }
    return out;
  }

  /// Clamp negatives (from floating noise after release) back to zero.
  [[nodiscard]] constexpr Resources clamped() const {
    Resources out;
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      out.dims[d] = dims[d] < 0.0 ? 0.0 : dims[d];
    }
    return out;
  }

  constexpr Resources& operator+=(const Resources& o) {
    for (std::size_t d = 0; d < kMaxDims; ++d) dims[d] += o.dims[d];
    return *this;
  }
  constexpr Resources& operator-=(const Resources& o) {
    for (std::size_t d = 0; d < kMaxDims; ++d) dims[d] -= o.dims[d];
    return *this;
  }
  constexpr Resources& operator*=(double s) {
    for (std::size_t d = 0; d < kMaxDims; ++d) dims[d] *= s;
    return *this;
  }

  friend constexpr Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend constexpr Resources operator-(Resources a, const Resources& b) { return a -= b; }
  friend constexpr Resources operator*(Resources a, double s) { return a *= s; }
  friend constexpr Resources operator*(double s, Resources a) { return a *= s; }
  /// EXACT comparison — see the equality-policy note on the struct.
  friend constexpr bool operator==(const Resources& a, const Resources& b) {
    for (std::size_t d = 0; d < kMaxDims; ++d) {
      if (a.dims[d] != b.dims[d]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Resources& r);

/// Sum of normalized dimensions, used as the scalar "resource usage" in the
/// paper's Fig. 8 metric ("the sum across the (normalized) CPU and Memory
/// resource multiplied by the task duration").  Zero-capacity dimensions
/// contribute nothing, so the metric is unchanged on two-dimensional runs.
[[nodiscard]] double normalized_sum(const Resources& r, const Resources& total);

/// Smallest free fraction across provisioned dimensions (total[d] > 0) —
/// the "how full is the cluster" scalar Hopper's reservation test uses.
/// Returns 0 when no dimension is provisioned.
[[nodiscard]] double min_free_fraction(const Resources& free, const Resources& total);

}  // namespace dollymp
