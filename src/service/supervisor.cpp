#include "dollymp/service/supervisor.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <thread>

#include "dollymp/common/state_io.h"

#if !defined(_WIN32)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace dollymp {

namespace {

constexpr SimTime kNoKill = -1;

/// Exit code the child uses for a thrown exception (configuration error,
/// unreadable snapshot, ...) — fatal, not a crash to restart through.
constexpr int kChildFatalExit = 17;

/// The child's stride-boundary progress report, published atomically next
/// to the rotation so the parent can watch liveness and read the final
/// totals without sharing memory.
struct Progress {
  std::int64_t clock = 0;
  std::uint64_t hash = 0;
  std::uint64_t records = 0;
  std::int64_t ingested = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
};

void write_progress(const std::string& path, const Session& session) {
  StateWriter w;
  w.i64(session.clock());
  w.u64(session.stream_hash());
  w.u64(session.records_written());
  w.i64(session.totals().jobs_ingested);
  w.i64(session.totals().jobs_completed);
  w.i64(session.arrivals_shed());
  write_state_file(path, w.finish());
}

[[nodiscard]] bool try_read_progress(const std::string& path, Progress& out) {
  try {
    const std::vector<std::uint8_t> bytes = read_state_file(path);
    StateReader r(bytes);
    out.clock = r.i64();
    out.hash = r.u64();
    out.records = r.u64();
    out.ingested = r.i64();
    out.completed = r.i64();
    out.shed = r.i64();
    r.expect_done();
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

/// Quarantined generations currently on disk around the rotation — counted
/// by the parent after the fact (quarantining happens inside children).
[[nodiscard]] int count_quarantined(const std::string& base) {
  int count = 0;
  for (const char* generation : {".latest", ".prev"}) {
    for (int n = 0;; ++n) {
      const std::string jail =
          base + generation + ".quarantined." + std::to_string(n);
      std::FILE* f = std::fopen(jail.c_str(), "rb");
      if (f == nullptr) break;
      std::fclose(f);
      ++count;
    }
  }
  return count;
}

#if !defined(_WIN32)

/// The child's whole life.  Runs after fork() with no exec, so it must
/// only _exit, never return or unwind into the parent's stack frames.
[[noreturn]] void child_main(const Cluster& cluster, const ServiceConfig& config,
                             const SupervisorOptions& options,
                             const std::string& explicit_resume, SimTime kill_at) {
  try {
    SnapshotRotation rotation(options.snapshot_base);
    const std::string progress_path = options.snapshot_base + ".progress";
    std::unique_ptr<Session> session;
    const std::string resume =
        !explicit_resume.empty() ? explicit_resume : rotation.newest_valid();
    if (!resume.empty()) {
      session = Session::restore(cluster, config, resume);
    } else {
      // Nothing durable yet (or every generation was quarantined away
      // before the first stride completed): start from slot 0 — replaying
      // a prefix is bit-identical work, not divergence.
      session = std::make_unique<Session>(cluster, config);
    }

    const SimTime stride = options.checkpoint_stride_slots;
    while (session->clock() < options.horizon_slots) {
      const SimTime next = std::min(options.horizon_slots,
                                    (session->clock() / stride + 1) * stride);
      if (kill_at != kNoKill && kill_at <= next) {
        // Deterministic crash injection: die mid-stride, after doing real
        // work past the last snapshot and before cutting the next one.
        // Everything since the last stride boundary is lost on purpose.
        session->run_until(std::max(session->clock(), std::min(kill_at, next)));
        std::raise(SIGKILL);
      }
      session->run_until(next);
      rotation.write(session->serialize());
      write_progress(progress_path, *session);
    }
    std::_Exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "supervised child: fatal: %s\n", e.what());
    std::_Exit(kChildFatalExit);
  }
}

#endif  // !defined(_WIN32)

void validate_options(const ServiceConfig& config, const SupervisorOptions& options) {
  if (options.snapshot_base.empty()) {
    throw std::invalid_argument("SupervisorOptions: snapshot_base must be set");
  }
  if (options.horizon_slots <= 0) {
    throw std::invalid_argument("SupervisorOptions: horizon_slots must be > 0");
  }
  if (options.checkpoint_stride_slots <= 0) {
    throw std::invalid_argument("SupervisorOptions: checkpoint_stride_slots must be > 0");
  }
  if (options.checkpoint_stride_slots % config.pump_slots != 0) {
    // Bit-identity precondition: snapshots must land on canonical pump
    // boundaries so the restored continuation chunks identically.
    throw std::invalid_argument(
        "SupervisorOptions: checkpoint_stride_slots must be a multiple of "
        "pump_slots (snapshots must fall on arrival-pump boundaries)");
  }
  if (options.max_restarts < 0) {
    throw std::invalid_argument("SupervisorOptions: max_restarts must be >= 0");
  }
  if (!(options.watchdog_seconds > 0.0)) {
    throw std::invalid_argument("SupervisorOptions: watchdog_seconds must be > 0");
  }
  if (!options.resume_from.empty() &&
      SnapshotRotation::is_quarantined_path(options.resume_from)) {
    throw std::runtime_error("supervisor: refusing to resume from quarantined snapshot " +
                             options.resume_from +
                             " (it failed envelope validation; pick a valid generation)");
  }
}

}  // namespace

SupervisorResult run_supervised(const Cluster& cluster, const ServiceConfig& config,
                                const SupervisorOptions& options) {
  validate_options(config, options);
  config.validate();
#if defined(_WIN32)
  throw std::runtime_error("supervisor: fork-based supervision is POSIX-only");
#else
  const std::string progress_path = options.snapshot_base + ".progress";
  std::remove(progress_path.c_str());  // stale liveness signal from a past run

  int spawned = 0;
  for (;;) {
    const SimTime kill_at =
        static_cast<std::size_t>(spawned) < options.kill_at_slots.size()
            ? options.kill_at_slots[static_cast<std::size_t>(spawned)]
            : kNoKill;
    const std::string explicit_resume = spawned == 0 ? options.resume_from : "";

    const pid_t pid = fork();
    if (pid < 0) {
      throw std::runtime_error("supervisor: fork failed");
    }
    if (pid == 0) {
      child_main(cluster, config, options, explicit_resume, kill_at);
    }
    ++spawned;

    // Babysit: reap on exit, or SIGKILL a child whose progress file has
    // not advanced for watchdog_seconds (a hang is a crash that forgot to
    // die).
    Progress last{};
    bool have_last = try_read_progress(progress_path, last);
    auto last_advance = std::chrono::steady_clock::now();
    int status = 0;
    for (;;) {
      const pid_t reaped = waitpid(pid, &status, WNOHANG);
      if (reaped == pid) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      Progress now_p{};
      if (try_read_progress(progress_path, now_p) &&
          (!have_last || now_p.clock > last.clock)) {
        last = now_p;
        have_last = true;
        last_advance = std::chrono::steady_clock::now();
      } else if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               last_advance)
                     .count() > options.watchdog_seconds) {
        kill(pid, SIGKILL);
        (void)waitpid(pid, &status, 0);
        break;
      }
    }

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      Progress final_progress{};
      if (!try_read_progress(progress_path, final_progress)) {
        throw std::runtime_error("supervisor: child finished but left no progress file");
      }
      SupervisorResult result;
      result.final_clock = final_progress.clock;
      result.stream_hash = final_progress.hash;
      result.records_written = final_progress.records;
      result.jobs_ingested = final_progress.ingested;
      result.jobs_completed = final_progress.completed;
      result.arrivals_shed = final_progress.shed;
      result.restarts = spawned - 1;
      result.snapshots_quarantined = count_quarantined(options.snapshot_base);
      return result;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == kChildFatalExit) {
      throw std::runtime_error(
          "supervisor: child failed fatally during setup or restore "
          "(see its stderr); not restarting");
    }
    // Crash or watchdog kill: restart from the newest valid snapshot.
    if (spawned > options.max_restarts) {
      throw std::runtime_error("supervisor: restart budget exhausted after " +
                               std::to_string(spawned - 1) + " restarts");
    }
  }
#endif
}

}  // namespace dollymp
