#include "dollymp/service/overload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "dollymp/common/state_io.h"

namespace dollymp {

namespace {

void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace

void OverloadConfig::validate() const {
  require(std::isfinite(bucket_rate_per_second) && bucket_rate_per_second >= 0.0,
          "OverloadConfig: bucket_rate_per_second must be >= 0 (0 disables)");
  require(std::isfinite(bucket_burst) && bucket_burst >= 1.0,
          "OverloadConfig: bucket_burst must be >= 1");
  require(std::isfinite(high_watermark) && high_watermark > 0.0,
          "OverloadConfig: high_watermark must be > 0");
  require(std::isfinite(low_watermark) && low_watermark > 0.0,
          "OverloadConfig: low_watermark must be > 0");
  require(low_watermark < high_watermark,
          "OverloadConfig: watermarks must be ordered (low < high)");
  require(num_tenant_classes >= 1, "OverloadConfig: num_tenant_classes must be >= 1");
  require(protected_classes >= 0 && protected_classes <= num_tenant_classes,
          "OverloadConfig: protected_classes must be in [0, num_tenant_classes]");
  require(std::isfinite(shed_fraction) && shed_fraction >= 0.0 && shed_fraction <= 1.0,
          "OverloadConfig: shed_fraction must be in [0, 1]");
  require(slo_window_size > 0, "OverloadConfig: slo_window_size must be > 0");
  require(slo_min_samples > 0, "OverloadConfig: slo_min_samples must be > 0");
  require(std::isfinite(slo_target_p99_seconds) && slo_target_p99_seconds >= 0.0,
          "OverloadConfig: slo_target_p99_seconds must be >= 0 (0 = load-only)");
  require(std::isfinite(enter_level1) && enter_level1 > 0.0,
          "OverloadConfig: enter_level1 must be > 0");
  require(enter_level1 < enter_level2 && enter_level2 < enter_level3,
          "OverloadConfig: ladder thresholds must be increasing "
          "(enter_level1 < enter_level2 < enter_level3)");
  require(std::isfinite(exit_ratio) && exit_ratio > 0.0 && exit_ratio <= 1.0,
          "OverloadConfig: exit_ratio must be in (0, 1]");
  require(dwell_evaluations >= 1, "OverloadConfig: dwell_evaluations must be >= 1");
}

// ---- AdmissionGate ----------------------------------------------------------

AdmissionGate::AdmissionGate(const OverloadConfig& config)
    : config_(config), tokens_(config.bucket_burst) {}

int AdmissionGate::tenant_class(JobId id) const {
  const int classes = config_.num_tenant_classes;
  // Job ids are non-negative in practice; fold defensively anyway.
  const int cls = static_cast<int>(id % classes);
  return cls < 0 ? cls + classes : cls;
}

void AdmissionGate::update_watermark(double load_ratio) {
  // Hysteresis latch: engage at the high watermark, release only once load
  // has fallen through the low one — between them the latch holds its
  // state, so the shedding decision cannot flap chunk to chunk.
  if (!latched_ && load_ratio >= config_.high_watermark) {
    latched_ = true;
  } else if (latched_ && load_ratio <= config_.low_watermark) {
    latched_ = false;
    shed_accumulator_ = 0.0;  // each episode diffuses from a clean slate
  }
}

bool AdmissionGate::admit(const JobSpec& spec, int overload_level, ShedReason* reason) {
  // Layer 1: the token bucket, refilled by simulated time from the
  // arrivals' own timestamps.  Monotone arrival times make the refill
  // deterministic and chunking-independent.
  if (config_.bucket_rate_per_second > 0.0) {
    const double elapsed = spec.arrival_seconds - last_refill_seconds_;
    if (elapsed > 0.0) {
      tokens_ = std::min(config_.bucket_burst,
                         tokens_ + elapsed * config_.bucket_rate_per_second);
      last_refill_seconds_ = spec.arrival_seconds;
    }
    if (tokens_ < 1.0) {
      *reason = ShedReason::kTokenBucket;
      return false;
    }
    tokens_ -= 1.0;
  }

  // Layers 2 + 3: priority shedding while the watermark latch holds or the
  // governor sits on the top rung.  Protected classes ride through.
  const bool emergency = overload_level >= 3;
  if (!latched_ && !emergency) return true;
  const int cls = tenant_class(spec.id);
  if (cls >= config_.num_tenant_classes - config_.protected_classes) return true;
  // Error diffusion: carrying the fractional part forward makes the shed
  // count over any window of n candidates exactly round(n * fraction) —
  // deterministic, order-insensitive accounting with no RNG.
  shed_accumulator_ += config_.shed_fraction;
  if (shed_accumulator_ < 1.0) return true;
  shed_accumulator_ -= 1.0;
  *reason = emergency ? ShedReason::kOverload : ShedReason::kWatermark;
  return false;
}

void AdmissionGate::save_state(StateWriter& w) const {
  w.f64(tokens_);
  w.f64(last_refill_seconds_);
  w.b(latched_);
  w.f64(shed_accumulator_);
}

void AdmissionGate::load_state(StateReader& r) {
  tokens_ = r.f64();
  last_refill_seconds_ = r.f64();
  latched_ = r.b();
  shed_accumulator_ = r.f64();
}

// ---- OverloadGovernor -------------------------------------------------------

OverloadGovernor::OverloadGovernor(const OverloadConfig& config) : config_(config) {}

int OverloadGovernor::target_level(double pressure) const {
  // Asymmetric thresholds around the current level: climbing to L requires
  // pressure >= enter_level[L]; staying at L only requires
  // pressure > enter_level[L] * exit_ratio.  The band between them is the
  // hysteresis that keeps a pressure hovering at a threshold from
  // oscillating the ladder.
  const double enters[3] = {config_.enter_level1, config_.enter_level2,
                            config_.enter_level3};
  int target = 0;
  for (int l = 1; l <= 3; ++l) {
    const double threshold =
        l <= level_ ? enters[l - 1] * config_.exit_ratio : enters[l - 1];
    if (pressure >= threshold) target = l;
  }
  return target;
}

int OverloadGovernor::evaluate(double load_ratio, const SloWindow& window) {
  double pressure = load_ratio / config_.high_watermark;
  if (config_.slo_target_p99_seconds > 0.0 &&
      window.count() >= static_cast<std::size_t>(config_.slo_min_samples)) {
    pressure = std::max(pressure, window.p99() / config_.slo_target_p99_seconds);
  }
  last_pressure_ = pressure;

  const int target = target_level(pressure);
  if (target == level_) {
    pending_level_ = level_;
    dwell_count_ = 0;
    return level_;
  }
  // Dwell: the same direction must be argued for dwell_evaluations
  // consecutive chunks, then the ladder moves ONE rung (never jumps), so
  // every transition is individually traced and individually reversible.
  if (pending_level_ != target) {
    pending_level_ = target;
    dwell_count_ = 1;
  } else {
    ++dwell_count_;
  }
  if (dwell_count_ >= config_.dwell_evaluations) {
    level_ += target > level_ ? 1 : -1;
    pending_level_ = level_;
    dwell_count_ = 0;
  }
  return level_;
}

void OverloadGovernor::save_state(StateWriter& w) const {
  w.i32(level_);
  w.i32(pending_level_);
  w.i32(dwell_count_);
  w.f64(last_pressure_);
}

void OverloadGovernor::load_state(StateReader& r) {
  level_ = r.i32();
  pending_level_ = r.i32();
  dwell_count_ = r.i32();
  last_pressure_ = r.f64();
}

}  // namespace dollymp
