#include "dollymp/service/arrival_source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dollymp/common/state_io.h"
#include "dollymp/workload/apps.h"

namespace dollymp {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}  // namespace

void ArrivalConfig::validate() const {
  if (!(rate_per_second > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: rate_per_second must be > 0");
  }
  if (diurnal_amplitude < 0.0 || diurnal_amplitude >= 1.0) {
    throw std::invalid_argument("ArrivalConfig: diurnal_amplitude must be in [0, 1)");
  }
  if (diurnal_amplitude > 0.0 && !(diurnal_period_seconds > 0.0)) {
    throw std::invalid_argument(
        "ArrivalConfig: diurnal_period_seconds must be > 0 when diurnal_amplitude is set");
  }
  if (flash_multiplier < 1.0) {
    throw std::invalid_argument("ArrivalConfig: flash_multiplier must be >= 1");
  }
  if (flash_multiplier > 1.0) {
    if (flash_start_seconds < 0.0) {
      throw std::invalid_argument(
          "ArrivalConfig: flash_start_seconds must be >= 0 when flash_multiplier > 1");
    }
    if (!(flash_duration_seconds > 0.0)) {
      throw std::invalid_argument(
          "ArrivalConfig: flash_duration_seconds must be > 0 when flash_multiplier > 1");
    }
  }
  if (!(mean_input_gb > 0.0)) {
    throw std::invalid_argument("ArrivalConfig: mean_input_gb must be > 0");
  }
  if (first_job_id < 0) {
    throw std::invalid_argument("ArrivalConfig: first_job_id must be >= 0");
  }
}

ArrivalSource::ArrivalSource(ArrivalConfig config)
    : config_(config), rng_(config.seed), next_id_(config.first_job_id) {
  config_.validate();
  // Envelope rate for thinning: an upper bound of lambda(t) over all t.
  // Both modulations are multiplicative, so the bound is their product at
  // their peaks.
  lambda_max_ = config_.rate_per_second * (1.0 + config_.diurnal_amplitude) *
                std::max(1.0, config_.flash_multiplier);
  pending_seconds_ = 0.0;
  advance();
}

double ArrivalSource::rate_at(double t_seconds) const {
  double rate = config_.rate_per_second;
  if (config_.diurnal_amplitude > 0.0) {
    rate *= 1.0 + config_.diurnal_amplitude *
                      std::sin(kTwoPi * t_seconds / config_.diurnal_period_seconds);
  }
  if (config_.flash_multiplier > 1.0 && t_seconds >= config_.flash_start_seconds &&
      t_seconds < config_.flash_start_seconds + config_.flash_duration_seconds) {
    rate *= config_.flash_multiplier;
  }
  return rate;
}

void ArrivalSource::advance() {
  double t = pending_seconds_;
  for (;;) {
    // Exponential inter-arrival at the envelope rate.  uniform() is in
    // [0, 1), so log1p(-u) is finite.
    t += -std::log1p(-rng_.uniform()) / lambda_max_;
    if (rng_.uniform() * lambda_max_ < rate_at(t)) break;  // survives thinning
  }
  pending_seconds_ = t;
}

JobSpec ArrivalSource::sample_job(double arrival_seconds) {
  // Exponential size around the configured mean, clamped so one draw can't
  // produce an unplaceable monster or a degenerate sliver.
  const double raw = -std::log1p(-rng_.uniform()) * config_.mean_input_gb;
  const double gb = std::clamp(raw, 0.05, 20.0 * config_.mean_input_gb);
  const JobId id = next_id_++;
  switch (rng_.below(4)) {
    case 0:
      return make_wordcount(id, gb, arrival_seconds);
    case 1:
      return make_pagerank(id, gb, /*iterations=*/2 + static_cast<int>(rng_.below(3)),
                           arrival_seconds);
    case 2:
      return make_terasort(id, gb, arrival_seconds);
    default:
      // Split the sampled volume across the two scan sides.
      return make_sql_join(id, 0.5 * gb, 0.5 * gb, arrival_seconds);
  }
}

std::size_t ArrivalSource::emit_until(double horizon_seconds, std::vector<JobSpec>& out) {
  std::size_t emitted = 0;
  while (pending_seconds_ < horizon_seconds) {
    out.push_back(sample_job(pending_seconds_));
    ++emitted;
    advance();
  }
  return emitted;
}

void ArrivalSource::save_state(StateWriter& w) const {
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.f64(pending_seconds_);
  w.i32(next_id_);
}

void ArrivalSource::load_state(StateReader& r) {
  std::array<std::uint64_t, 4> words;
  for (auto& word : words) word = r.u64();
  rng_.set_state(words);
  pending_seconds_ = r.f64();
  next_id_ = r.i32();
}

}  // namespace dollymp
