#include "dollymp/service/session.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dollymp/common/state_io.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"

namespace dollymp {

namespace {
/// Ring capacity of the session-owned recorder: the hash covers the whole
/// stream regardless, so the ring only bounds dump-on-anomaly context.
constexpr std::size_t kServiceRingCapacity = 4096;
}  // namespace

const std::vector<std::string>& known_policy_names() {
  static const std::vector<std::string> names = {
      "capacity", "hopper",   "drf",      "tetris",   "carbyne", "srpt",
      "svf",      "dollymp0", "dollymp1", "dollymp2", "dollymp3"};
  return names;
}

std::unique_ptr<Scheduler> make_named_policy(const std::string& name) {
  if (name == "capacity") return std::make_unique<CapacityScheduler>();
  if (name == "hopper") return std::make_unique<HopperScheduler>();
  if (name == "drf") return std::make_unique<DrfScheduler>();
  if (name == "tetris") return std::make_unique<TetrisScheduler>();
  if (name == "carbyne") return std::make_unique<CarbyneScheduler>();
  if (name == "srpt") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
  }
  if (name == "svf") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
  }
  if (name.rfind("dollymp", 0) == 0 && name.size() == 8 && name[7] >= '0' &&
      name[7] <= '3') {
    DollyMPConfig config;
    config.clone_budget = name[7] - '0';
    return std::make_unique<DollyMPScheduler>(config);
  }
  std::string known;
  for (const std::string& candidate : known_policy_names()) {
    if (!known.empty()) known += ", ";
    known += candidate;
  }
  throw std::invalid_argument("unknown policy '" + name + "' (known: " + known + ")");
}

void ServiceConfig::validate() const {
  sim.validate();
  arrivals.validate();
  overload.validate();
  const auto& names = known_policy_names();
  if (std::find(names.begin(), names.end(), policy) == names.end()) {
    // Re-derive the factory's message (it lists the known names).
    (void)make_named_policy(policy);
  }
  if (pump_slots <= 0) {
    throw std::invalid_argument("ServiceConfig: pump_slots must be > 0");
  }
  if (checkpoint_interval_seconds == 0.0) {
    throw std::invalid_argument(
        "ServiceConfig: checkpoint_interval_seconds must be nonzero "
        "(negative disables periodic checkpoints)");
  }
}

Session::Session(Cluster cluster, ServiceConfig config)
    : config_(std::move(config)),
      prototype_(std::move(cluster)),
      recorder_(kServiceRingCapacity),
      source_(config_.arrivals),
      gate_(config_.overload),
      governor_(config_.overload),
      slo_(static_cast<std::size_t>(std::max(1, config_.overload.slo_window_size))) {
  config_.validate();
  if (prototype_.size() == 0) {
    throw std::invalid_argument("Session: empty cluster");
  }
  // The session's recorder is authoritative: the stream hash is the
  // checkpoint/fork equality oracle, so service mode always records.
  config_.sim.recorder = &recorder_;
  scheduler_ = make_named_policy(config_.policy);
  core_ = std::make_unique<SimCore>(prototype_, config_.sim);
  core_->set_streaming(true);
  core_->set_recycle_jobs(true);
  core_->set_source_exhausted(false);
  // The response-time window only feeds the governor; leave the completion
  // hot path untouched when the ladder is off.
  if (config_.overload.governor_enabled) core_->set_slo_window(&slo_);
  core_->begin(*scheduler_);
}

void Session::run_until(SimTime horizon_slots) {
  while (clock_ < horizon_slots) {
    const SimTime chunk_end = std::min(horizon_slots, clock_ + config_.pump_slots);
    // Overload work happens at the pump boundary, before the chunk's
    // arrivals are filtered: the gate and ladder see the load the previous
    // chunk left behind — a pure function of the session's own state, so
    // restored and forked sessions evaluate identically.
    if (config_.overload.any_enabled()) evaluate_overload();
    pump_arrivals(chunk_end);
    (void)core_->step_until(chunk_end);
    reap_recycled();
    clock_ = chunk_end;
  }
}

long long Session::arrivals_shed() const {
  const SimStats& st = core_->stats();
  return st.arrivals_shed_admission + st.arrivals_shed_watermark +
         st.arrivals_shed_overload;
}

void Session::evaluate_overload() {
  // Live-load estimate: jobs in flight per placeable server.  Quarantined
  // and down machines drop out of the denominator, so a faulty fleet trips
  // the watermark earlier — protection is fault-aware by construction.
  const int live = std::max(1, core_->live_servers());
  last_load_ratio_ =
      static_cast<double>(core_->jobs_remaining()) / static_cast<double>(live);
  if (config_.overload.admission_enabled) gate_.update_watermark(last_load_ratio_);
  if (config_.overload.governor_enabled) {
    const int before = core_->overload_level();
    const int after = governor_.evaluate(last_load_ratio_, slo_);
    if (after != before) core_->note_overload_transition(before, after);
  }
}

void Session::pump_arrivals(SimTime through_slot) {
  // Jobs with arrival_seconds < (through_slot + 1) * slot_seconds land on
  // slots <= through_slot; everything pumped in a previous chunk was below
  // the previous horizon, so arrivals are never ingested late.
  const double horizon_seconds =
      static_cast<double>(through_slot + 1) * config_.sim.slot_seconds;
  if (source_.next_arrival_seconds() >= horizon_seconds) return;
  auto specs = std::make_shared<std::vector<JobSpec>>();
  source_.emit_until(horizon_seconds, *specs);
  // Admission gate: filter the chunk's arrivals in place.  A shed job is
  // never ingested — its id simply vanishes from the stream (and lands in
  // the shed accounting), exactly as if the client had been turned away.
  const int level = core_->overload_level();
  if (config_.overload.admission_enabled || level >= 3) {
    std::size_t kept = 0;
    for (JobSpec& spec : *specs) {
      ShedReason reason{};
      if (gate_.admit(spec, level, &reason)) {
        if (kept != static_cast<std::size_t>(&spec - specs->data())) {
          (*specs)[kept] = std::move(spec);
        }
        ++kept;
      } else {
        core_->note_arrival_shed(spec.id, gate_.tenant_class(spec.id),
                                 static_cast<int>(reason));
      }
    }
    specs->resize(kept);
  }
  if (specs->empty()) return;
  Segment segment;
  segment.first_seq = core_->next_ingest_seq();
  segment.live = static_cast<std::int64_t>(specs->size());
  segment.specs = std::move(specs);
  core_->ingest(*segment.specs);
  segments_.push_back(std::move(segment));
}

void Session::reap_recycled() {
  recycled_scratch_.clear();
  core_->take_recycled(recycled_scratch_);
  for (const RecycledJob& job : recycled_scratch_) {
    for (Segment& segment : segments_) {
      const auto count = static_cast<std::int64_t>(segment.specs->size());
      if (job.ingest_seq >= segment.first_seq &&
          job.ingest_seq < segment.first_seq + count) {
        --segment.live;
        break;
      }
    }
    // Seqs before the first segment belong to jobs restored from a
    // checkpoint — the core owns those specs; nothing to reclaim here.
  }
  // Only a fully-recycled *prefix* is dropped: segments are consumed
  // roughly in arrival order, so the retained window tracks live jobs.
  while (!segments_.empty() && segments_.front().live == 0) segments_.pop_front();
}

std::size_t Session::specs_retained() const {
  std::size_t retained = 0;
  for (const Segment& segment : segments_) retained += segment.specs->size();
  return retained;
}

void Session::write_payload(StateWriter& w) const {
  w.str(config_.policy);
  w.u64(prototype_.size());
  w.i64(clock_);
  source_.save_state(w);
  core_->save_state(w);
  // Overload-protection state rides at the tail: gate (bucket level, latch,
  // diffusion), governor (rung + dwell), the SLO window's samples and the
  // core's applied ladder level.  Written unconditionally so the payload
  // layout does not depend on which knobs are on.
  w.section(0x4F564C44u);  // 'OVLD'
  gate_.save_state(w);
  governor_.save_state(w);
  slo_.save_state(w);
  w.i32(core_->overload_level());
  w.f64(last_load_ratio_);
}

void Session::load_payload(StateReader& r, bool load_scheduler,
                           const std::vector<const JobSpec*>* shared_specs) {
  const std::string snapshot_policy = r.str();
  if (load_scheduler && snapshot_policy != config_.policy) {
    throw std::runtime_error("snapshot: policy mismatch (snapshot ran " +
                             snapshot_policy + ", session configured " +
                             config_.policy + ")");
  }
  const std::uint64_t snapshot_servers = r.u64();
  if (snapshot_servers != prototype_.size()) {
    throw std::runtime_error(
        "snapshot: cluster size mismatch (snapshot has " +
        std::to_string(snapshot_servers) + " servers, session has " +
        std::to_string(prototype_.size()) + ")");
  }
  clock_ = r.i64();
  source_.load_state(r);
  core_->load_state(r, load_scheduler, shared_specs);
  r.section(0x4F564C44u);  // 'OVLD'
  gate_.load_state(r);
  governor_.load_state(r);
  slo_.load_state(r);
  // Re-apply the ladder rung silently: the transition was traced when it
  // happened in the original run; replaying it would skew the stream.
  core_->set_overload_level(r.i32());
  last_load_ratio_ = r.f64();
}

std::vector<std::uint8_t> Session::serialize() const {
  StateWriter w;
  write_payload(w);
  return w.finish();
}

void Session::checkpoint(const std::string& path) const {
  write_state_file(path, serialize());
}

std::unique_ptr<Session> Session::restore(Cluster cluster, ServiceConfig config,
                                          const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_state_file(path);
  StateReader r(bytes);
  auto session = std::make_unique<Session>(std::move(cluster), std::move(config));
  session->load_payload(r, /*load_scheduler=*/true, nullptr);
  r.expect_done();
  return session;
}

std::unique_ptr<Session> Session::fork(const ForkOptions& options) const {
  ServiceConfig child_config = config_;
  const bool switch_policy = !options.policy.empty() && options.policy != config_.policy;
  if (!options.policy.empty()) child_config.policy = options.policy;
  child_config.sim.recorder = nullptr;  // the child installs its own

  StateWriter w;
  write_payload(w);
  const std::vector<std::uint8_t> bytes = w.finish();
  StateReader r(bytes);

  auto child = std::make_unique<Session>(prototype_, std::move(child_config));
  // Share the parent's spec storage: copying the segment deque copies
  // shared_ptrs, which keep the spec vectors alive for the child even after
  // the parent drains and drops them.
  child->segments_ = segments_;
  const std::vector<const JobSpec*> shared = core_->job_spec_pointers();
  child->load_payload(r, /*load_scheduler=*/!switch_policy, &shared);
  r.expect_done();

  for (const ServerId server : options.quarantine) {
    if (server < 0 ||
        static_cast<std::size_t>(server) >= child->core_->cluster().size()) {
      throw std::invalid_argument("ForkOptions: quarantine server id out of range");
    }
    child->core_->set_server_quarantined(server, true);
  }
  return child;
}

}  // namespace dollymp
