#include "dollymp/sched/carbyne.h"

#include <algorithm>
#include <vector>

namespace dollymp {

namespace {

bool place_one(SchedulerContext& ctx, JobRuntime& job) {
  for (auto& phase : job.phases) {
    if (!phase.runnable()) continue;
    if (phase.spec->gang) {
      // All-or-nothing: the whole wave counts as this job's one offer.
      if (phase.unscheduled_tasks > 0 && ctx.place_gang(job, phase)) return true;
      continue;
    }
    TaskRuntime* task = next_unscheduled_task(phase);
    if (task == nullptr) continue;
    const ServerId server = best_fit_server(ctx, task->demand);
    if (server == kInvalidServer) continue;
    if (ctx.place_copy(job, phase, *task, server)) return true;
  }
  return false;
}

}  // namespace

void CarbyneScheduler::schedule(SchedulerContext& ctx) {
  const auto& jobs = ctx.active_jobs();
  if (jobs.empty()) return;
  const Resources total = ctx.cluster().total_capacity();
  const double fair_share = 1.0 / static_cast<double>(jobs.size());

  // Pass 1: the fairness guarantee.  DRF-style progressive filling (offer
  // to the lowest dominant share), with every job capped at its fair share
  // — the allocation Carbyne promises each job before altruism kicks in.
  struct Entry {
    JobRuntime* job;
    double share;
    bool blocked;
  };
  std::vector<Entry> entries;
  entries.reserve(jobs.size());
  for (JobRuntime* job : jobs) {
    entries.push_back({job, job_active_allocation(*job).dominant_share(total), false});
  }
  for (;;) {
    Entry* pick = nullptr;
    for (auto& e : entries) {
      if (e.blocked || e.share >= fair_share) continue;
      if (pick == nullptr || e.share < pick->share) pick = &e;
    }
    if (pick == nullptr) break;
    if (place_one(ctx, *pick->job)) {
      pick->share = job_active_allocation(*pick->job).dominant_share(total);
    } else {
      pick->blocked = true;
    }
  }

  // Pass 2: altruistic leftover redistribution — smallest remaining volume
  // first (Carbyne's leftover packer "adopts ideas from DRF and Tetris":
  // demand-aware shortest-first), best-fit packing, no per-job cap.
  std::vector<JobRuntime*> leftover_order(jobs.begin(), jobs.end());
  std::stable_sort(leftover_order.begin(), leftover_order.end(),
                   [&](const JobRuntime* a, const JobRuntime* b) {
                     return a->remaining_volume(total, sigma_factor_) <
                            b->remaining_volume(total, sigma_factor_);
                   });
  for (JobRuntime* job : leftover_order) {
    while (place_one(ctx, *job)) {
    }
  }
}

}  // namespace dollymp
