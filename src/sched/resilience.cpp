#include "dollymp/sched/resilience.h"

#include <algorithm>
#include <cmath>

#include "dollymp/common/state_io.h"
#include "dollymp/obs/recorder.h"

namespace dollymp {

ResiliencePolicy::ResiliencePolicy(ResilienceConfig config, std::size_t cluster_size)
    : config_(config) {
  strikes_.assign(cluster_size, 0.0);
  strike_updated_.assign(cluster_size, 0);
  quarantine_release_.assign(cluster_size, kNever);
}

double ResiliencePolicy::decayed_strikes(ServerId server, SimTime now) const {
  const auto s = static_cast<std::size_t>(server);
  const auto dt = static_cast<double>(now - strike_updated_[s]);
  if (dt <= 0.0 || strikes_[s] == 0.0) return strikes_[s];
  return strikes_[s] * std::exp2(-dt / config_.strike_half_life_slots);
}

void ResiliencePolicy::add_strike(SchedulerContext& ctx, ServerId server) {
  const SimTime now = ctx.now();
  const auto s = static_cast<std::size_t>(server);
  strikes_[s] = decayed_strikes(server, now) + 1.0;
  strike_updated_[s] = now;
  if (!config_.quarantine) return;
  if (quarantine_release_[s] != kNever) return;  // already serving a term
  if (strikes_[s] < config_.flap_threshold) return;
  // Fleet-fraction cap: quarantining is a luxury — with much of the
  // cluster already excluded, keep flaky servers in service rather than
  // starving placement entirely.
  const auto fleet = static_cast<double>(strikes_.size());
  if (static_cast<double>(quarantined_count_ + 1) >
      config_.max_quarantined_fraction * fleet) {
    return;
  }
  quarantine_release_[s] = now + config_.quarantine_slots;
  ++quarantined_count_;
  ctx.set_server_quarantined(server, true);
  // Make sure an invocation happens at the release slot even on an
  // otherwise-quiet cluster, so begin_invocation can lift the term.
  ctx.request_wakeup(quarantine_release_[s]);
}

void ResiliencePolicy::on_copy_fault(SchedulerContext& ctx, const TaskRuntime& task,
                                     ServerId server) {
  add_strike(ctx, server);
  // Backoff applies when the fault orphaned the task: the next re-placement
  // attempt waits out an exponentially growing hold.
  if (!task.needs_placement()) return;
  Backoff& b = backoff_[task.ref];
  const int doublings = std::min(b.attempts, config_.retry_budget);
  const SimTime hold = std::min(config_.backoff_max_slots,
                                config_.backoff_initial_slots << doublings);
  ++b.attempts;
  b.release = ctx.now() + hold;
  ctx.note_retry_issued(hold);
  if (Recorder* rec = ctx.recorder()) {
    TraceRecord r;
    r.slot = ctx.now();
    r.type = TraceEv::kRetryBackoff;
    r.job = task.ref.job;
    r.phase = task.ref.phase;
    r.task = task.ref.task;
    r.server = server;
    r.aux = hold;
    rec->append(r);
  }
}

void ResiliencePolicy::on_server_failed(SchedulerContext& ctx, ServerId server) {
  ++down_count_;
  add_strike(ctx, server);
}

void ResiliencePolicy::on_server_repaired(SchedulerContext& /*ctx*/, ServerId /*server*/) {
  --down_count_;
}

void ResiliencePolicy::begin_invocation(SchedulerContext& ctx) {
  earliest_release_ = kNever;
  const SimTime now = ctx.now();
  for (std::size_t s = 0; s < quarantine_release_.size(); ++s) {
    if (quarantine_release_[s] == kNever || quarantine_release_[s] > now) continue;
    quarantine_release_[s] = kNever;
    --quarantined_count_;
    // Probation: release with half the strikes instead of a clean slate —
    // a server that flaps again right away goes straight back in.
    strikes_[s] = decayed_strikes(static_cast<ServerId>(s), now) * 0.5;
    strike_updated_[s] = now;
    ctx.set_server_quarantined(static_cast<ServerId>(s), false);
  }
}

bool ResiliencePolicy::should_defer(const TaskRuntime& task, SimTime now) {
  const auto it = backoff_.find(task.ref);
  if (it == backoff_.end()) return false;
  if (it->second.release == kNever || it->second.release <= now) return false;
  if (earliest_release_ == kNever || it->second.release < earliest_release_) {
    earliest_release_ = it->second.release;
  }
  return true;
}

void ResiliencePolicy::finish_invocation(SchedulerContext& ctx) {
  if (earliest_release_ == kNever) return;
  ctx.defer_retry(earliest_release_);
  earliest_release_ = kNever;
}

void ResiliencePolicy::save_state(StateWriter& w) const {
  w.pod_vec(strikes_);
  w.pod_vec(strike_updated_);
  w.pod_vec(quarantine_release_);
  w.i32(quarantined_count_);
  w.i32(down_count_);
  w.i64(earliest_release_);
  // Backoff entries sorted by task ref so the snapshot bytes are stable
  // (unordered_map iteration order is not).  Lookup is always by find(),
  // so restore order never influences behavior.
  std::vector<std::pair<TaskRef, Backoff>> entries(backoff_.begin(), backoff_.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.first.job != b.first.job) return a.first.job < b.first.job;
    if (a.first.phase != b.first.phase) return a.first.phase < b.first.phase;
    return a.first.task < b.first.task;
  });
  w.u64(entries.size());
  for (const auto& [ref, hold] : entries) {
    w.i32(ref.job);
    w.i32(ref.phase);
    w.i32(ref.task);
    w.i32(hold.attempts);
    w.i64(hold.release);
  }
}

void ResiliencePolicy::load_state(StateReader& r) {
  r.pod_vec(strikes_);
  r.pod_vec(strike_updated_);
  r.pod_vec(quarantine_release_);
  quarantined_count_ = r.i32();
  down_count_ = r.i32();
  earliest_release_ = r.i64();
  backoff_.clear();
  const std::uint64_t count = r.u64();
  backoff_.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    TaskRef ref;
    ref.job = r.i32();
    ref.phase = r.i32();
    ref.task = r.i32();
    Backoff hold;
    hold.attempts = r.i32();
    hold.release = r.i64();
    backoff_.emplace(ref, hold);
  }
}

int ResiliencePolicy::degraded_clone_budget(const SchedulerContext& ctx,
                                            int configured) const {
  if (!config_.degrade_clones || configured <= 0) return configured;
  const auto fleet = static_cast<double>(ctx.cluster().size());
  if (fleet <= 0.0) return configured;
  const double live =
      fleet - static_cast<double>(down_count_) - static_cast<double>(quarantined_count_);
  const double fraction = std::max(0.0, live / fleet);
  if (fraction >= config_.capacity_watermark) return configured;
  // Proportional shrink below the watermark: at watermark the full budget,
  // approaching zero capacity approaches zero clones.
  const int effective = static_cast<int>(
      std::floor(static_cast<double>(configured) * fraction / config_.capacity_watermark));
  return std::clamp(effective, 0, configured);
}

}  // namespace dollymp
