#include "dollymp/sched/hopper.h"

#include <algorithm>
#include <vector>

namespace dollymp {

HopperScheduler::HopperScheduler(HopperConfig config) : config_(config) {}

void HopperScheduler::schedule(SchedulerContext& ctx) {
  const Resources total = ctx.cluster().total_capacity();

  // Order jobs by virtual size: remaining tasks inflated by the
  // speculation budget, weighted by per-task normalized demand.
  struct Entry {
    JobRuntime* job;
    double virtual_size;
  };
  std::vector<Entry> order;
  order.reserve(ctx.active_jobs().size());
  for (JobRuntime* job : ctx.active_jobs()) {
    double size = 0.0;
    for (const auto& phase : job->phases) {
      if (phase.finished) continue;
      size += static_cast<double>(phase.remaining_tasks) *
              normalized_sum(phase.spec->demand, total) * phase.spec->theta_seconds;
    }
    order.push_back({job, size * (1.0 + config_.speculation_budget)});
  }
  std::stable_sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    return a.virtual_size < b.virtual_size;
  });

  // Non-work-conserving allocation: stop handing out new tasks once the
  // remaining free capacity falls inside the speculation reservation, so
  // backups for the jobs already running always find room.
  const double reservation = config_.speculation_budget;
  for (auto& [job, virtual_size] : order) {
    const Resources free = ctx.cluster().total_free();
    const double free_fraction = min_free_fraction(free, total);
    if (free_fraction <= reservation) break;  // hold the rest back for backups
    place_gang_phases(ctx, *job);
    for (auto& phase : job->phases) {
      if (!phase.runnable()) continue;
      while (TaskRuntime* task = next_unscheduled_task(phase)) {
        const Resources now_free = ctx.cluster().total_free();
        const double now_fraction = min_free_fraction(now_free, total);
        if (now_fraction <= reservation) break;
        const ServerId server = best_fit_server(ctx, task->demand);
        if (server == kInvalidServer) break;
        if (!ctx.place_copy(*job, phase, *task, server)) break;
      }
    }
  }

  // The reservation pays off here: backups launch from the reserved slice.
  run_speculation_pass(ctx, config_.speculation, &spec_scratch_);
}

}  // namespace dollymp
