#include "dollymp/sched/strip_packing.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dollymp {

StripPacking nfdh_pack(const std::vector<StripItem>& items) {
  for (const auto& item : items) {
    if (!(item.width > 0.0) || item.width > 1.0 + 1e-12) {
      throw std::invalid_argument("nfdh_pack: item width must be in (0, 1]");
    }
    if (!(item.height > 0.0)) {
      throw std::invalid_argument("nfdh_pack: item height must be > 0");
    }
  }

  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return items[a].height > items[b].height;
  });

  StripPacking packing;
  packing.placements.reserve(items.size());

  // Shelves: each shelf's height is the height of its first (tallest)
  // item; items go left to right; a new shelf opens when the next item
  // does not fit.
  double shelf_bottom = 0.0;
  double shelf_height = 0.0;
  double cursor_x = 0.0;
  for (const auto index : order) {
    const StripItem& item = items[index];
    if (cursor_x + item.width > 1.0 + 1e-12 || shelf_height == 0.0) {
      // open a new shelf
      shelf_bottom += shelf_height;
      shelf_height = item.height;
      cursor_x = 0.0;
    }
    packing.placements.push_back({index, cursor_x, shelf_bottom});
    cursor_x += item.width;
    packing.height = std::max(packing.height, shelf_bottom + item.height);
  }
  return packing;
}

double strip_area_lower_bound(const std::vector<StripItem>& items) {
  double area = 0.0;
  for (const auto& item : items) area += item.width * item.height;
  return area;
}

double strip_height_lower_bound(const std::vector<StripItem>& items) {
  double tallest = 0.0;
  for (const auto& item : items) tallest = std::max(tallest, item.height);
  return tallest;
}

bool strip_packing_is_feasible(const std::vector<StripItem>& items,
                               const StripPacking& packing) {
  if (packing.placements.size() != items.size()) return false;
  std::vector<bool> seen(items.size(), false);
  for (const auto& p : packing.placements) {
    if (p.item >= items.size() || seen[p.item]) return false;
    seen[p.item] = true;
    const StripItem& item = items[p.item];
    if (p.x < -1e-12 || p.x + item.width > 1.0 + 1e-9) return false;
    if (p.y < -1e-12 || p.y + item.height > packing.height + 1e-9) return false;
  }
  // Pairwise overlap check (tests use modest n).
  for (std::size_t i = 0; i < packing.placements.size(); ++i) {
    for (std::size_t k = i + 1; k < packing.placements.size(); ++k) {
      const auto& a = packing.placements[i];
      const auto& b = packing.placements[k];
      const auto& ia = items[a.item];
      const auto& ib = items[b.item];
      const bool separated_x =
          a.x + ia.width <= b.x + 1e-9 || b.x + ib.width <= a.x + 1e-9;
      const bool separated_y =
          a.y + ia.height <= b.y + 1e-9 || b.y + ib.height <= a.y + 1e-9;
      if (!separated_x && !separated_y) return false;
    }
  }
  return true;
}

}  // namespace dollymp
