#include "dollymp/sched/knapsack.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace dollymp {

KnapsackPick knapsack_unit_profit(const std::vector<double>& weights, double budget) {
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("knapsack: negative weight");
  }
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return weights[a] < weights[b]; });
  KnapsackPick pick;
  for (const auto i : order) {
    if (pick.total_weight + weights[i] > budget + 1e-12) break;
    pick.total_weight += weights[i];
    pick.total_profit += 1.0;
    pick.chosen.push_back(i);
  }
  std::sort(pick.chosen.begin(), pick.chosen.end());
  return pick;
}

KnapsackPick knapsack_dp(const std::vector<double>& weights,
                         const std::vector<double>& profits, double budget,
                         std::size_t resolution) {
  if (weights.size() != profits.size()) {
    throw std::invalid_argument("knapsack_dp: weights/profits size mismatch");
  }
  if (resolution == 0) throw std::invalid_argument("knapsack_dp: resolution must be > 0");
  KnapsackPick pick;
  if (weights.empty() || budget <= 0.0) return pick;

  const double cell = budget / static_cast<double>(resolution);
  // Integer weights, rounded UP so the real budget is never exceeded.
  std::vector<std::size_t> w(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw std::invalid_argument("knapsack_dp: negative weight");
    w[i] = static_cast<std::size_t>(std::ceil(weights[i] / cell - 1e-12));
  }

  constexpr double kNoValue = -1.0;
  std::vector<double> best(resolution + 1, kNoValue);
  best[0] = 0.0;
  // Whether item i is taken at budget b in the optimum, flattened to one
  // contiguous allocation at row stride (resolution + 1): one cache-friendly
  // block instead of `weights.size()` separate bitset rows.
  const std::size_t stride = resolution + 1;
  std::vector<bool> taken(weights.size() * stride, false);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (w[i] > resolution) continue;
    const std::size_t row = i * stride;
    for (std::size_t b = resolution + 1; b-- > w[i];) {
      const std::size_t prev = b - w[i];
      if (best[prev] == kNoValue) continue;
      if (best[prev] + profits[i] > best[b]) {
        best[b] = best[prev] + profits[i];
        taken[row + b] = true;
      }
    }
  }

  std::size_t best_b = 0;
  for (std::size_t b = 0; b <= resolution; ++b) {
    if (best[b] > best[best_b]) best_b = b;
  }
  // Reconstruct.
  std::size_t b = best_b;
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (b >= w[i] && taken[i * stride + b]) {
      pick.chosen.push_back(i);
      pick.total_weight += weights[i];
      pick.total_profit += profits[i];
      b -= w[i];
    }
  }
  std::sort(pick.chosen.begin(), pick.chosen.end());
  return pick;
}

KnapsackPick knapsack_brute_force(const std::vector<double>& weights,
                                  const std::vector<double>& profits, double budget) {
  if (weights.size() != profits.size()) {
    throw std::invalid_argument("knapsack_brute_force: size mismatch");
  }
  if (weights.size() > 24) {
    throw std::invalid_argument("knapsack_brute_force: too many items");
  }
  const std::size_t n = weights.size();
  KnapsackPick best;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double weight = 0.0;
    double profit = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        weight += weights[i];
        profit += profits[i];
      }
    }
    if (weight <= budget + 1e-12 && profit > best.total_profit) {
      best.total_profit = profit;
      best.total_weight = weight;
      best.chosen.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1ULL << i)) best.chosen.push_back(i);
      }
    }
  }
  return best;
}

namespace {

struct BnbState {
  const std::vector<double>* weights;   // sorted by density, descending
  const std::vector<double>* profits;
  const std::vector<std::size_t>* original_index;
  double budget;
  double best_profit;
  std::vector<bool> best_taken;
  std::vector<bool> taken;
};

// Dantzig bound: profit of the fractional relaxation from item `depth` on.
double fractional_bound(const BnbState& s, std::size_t depth, double weight,
                        double profit) {
  double remaining = s.budget - weight;
  double bound = profit;
  for (std::size_t i = depth; i < s.weights->size() && remaining > 0.0; ++i) {
    const double w = (*s.weights)[i];
    if (w <= remaining) {
      remaining -= w;
      bound += (*s.profits)[i];
    } else {
      bound += (*s.profits)[i] * remaining / w;
      remaining = 0.0;
    }
  }
  return bound;
}

void bnb(BnbState& s, std::size_t depth, double weight, double profit) {
  if (profit > s.best_profit) {
    s.best_profit = profit;
    s.best_taken = s.taken;
  }
  if (depth == s.weights->size()) return;
  if (fractional_bound(s, depth, weight, profit) <= s.best_profit + 1e-12) return;
  // Branch: take item `depth` first (density order makes this greedy-ish).
  if (weight + (*s.weights)[depth] <= s.budget + 1e-12) {
    s.taken[depth] = true;
    bnb(s, depth + 1, weight + (*s.weights)[depth], profit + (*s.profits)[depth]);
    s.taken[depth] = false;
  }
  bnb(s, depth + 1, weight, profit);
}

}  // namespace

KnapsackPick knapsack_branch_and_bound(const std::vector<double>& weights,
                                       const std::vector<double>& profits,
                                       double budget) {
  if (weights.size() != profits.size()) {
    throw std::invalid_argument("knapsack_branch_and_bound: size mismatch");
  }
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("knapsack_branch_and_bound: negative weight");
  }
  KnapsackPick pick;
  if (weights.empty() || budget < 0.0) return pick;

  // Sort by profit density, descending (zero-weight items first).
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double da = weights[a] > 0.0 ? profits[a] / weights[a]
                                       : std::numeric_limits<double>::infinity();
    const double db = weights[b] > 0.0 ? profits[b] / weights[b]
                                       : std::numeric_limits<double>::infinity();
    return da > db;
  });
  std::vector<double> sorted_w(weights.size());
  std::vector<double> sorted_p(weights.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_w[i] = weights[order[i]];
    sorted_p[i] = profits[order[i]];
  }

  BnbState state;
  state.weights = &sorted_w;
  state.profits = &sorted_p;
  state.original_index = &order;
  state.budget = budget;
  state.best_profit = -1.0;
  state.taken.assign(weights.size(), false);
  state.best_taken.assign(weights.size(), false);
  bnb(state, 0, 0.0, 0.0);

  for (std::size_t i = 0; i < state.best_taken.size(); ++i) {
    if (state.best_taken[i]) {
      pick.chosen.push_back(order[i]);
      pick.total_weight += weights[order[i]];
      pick.total_profit += profits[order[i]];
    }
  }
  std::sort(pick.chosen.begin(), pick.chosen.end());
  return pick;
}

}  // namespace dollymp
