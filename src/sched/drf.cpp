#include "dollymp/sched/drf.h"

#include <algorithm>
#include <vector>

namespace dollymp {

namespace {

struct Entry {
  JobRuntime* job;
  double dominant_share;
  bool blocked;  ///< no placeable task this round
};

/// Place one runnable, unscheduled task of `job`.  First-fit placement:
/// DRF reasons about fairness, not packing (Section 6.1 contrasts it with
/// Tetris on exactly this point).
bool place_one(SchedulerContext& ctx, JobRuntime& job) {
  for (auto& phase : job.phases) {
    if (!phase.runnable()) continue;
    if (phase.spec->gang) {
      // All-or-nothing: the whole wave counts as this job's one offer.
      if (phase.unscheduled_tasks > 0 && ctx.place_gang(job, phase)) return true;
      continue;
    }
    TaskRuntime* task = next_unscheduled_task(phase);
    if (task == nullptr) continue;
    const ServerId server = first_fit_server(ctx, task->demand);
    if (server == kInvalidServer) continue;
    if (ctx.place_copy(job, phase, *task, server)) return true;
  }
  return false;
}

}  // namespace

void DrfScheduler::schedule(SchedulerContext& ctx) {
  const Resources total = ctx.cluster().total_capacity();
  std::vector<Entry> entries;
  entries.reserve(ctx.active_jobs().size());
  for (JobRuntime* job : ctx.active_jobs()) {
    entries.push_back({job, job_active_allocation(*job).dominant_share(total), false});
  }

  // Progressive filling: keep offering to the lowest dominant share.
  bool progress = true;
  while (progress) {
    progress = false;
    Entry* pick = nullptr;
    for (auto& e : entries) {
      if (e.blocked) continue;
      if (pick == nullptr || e.dominant_share < pick->dominant_share) pick = &e;
    }
    if (pick == nullptr) break;
    if (place_one(ctx, *pick->job)) {
      pick->dominant_share = job_active_allocation(*pick->job).dominant_share(total);
      progress = true;
    } else {
      pick->blocked = true;
      progress = std::any_of(entries.begin(), entries.end(),
                             [](const Entry& e) { return !e.blocked; });
    }
  }
}

}  // namespace dollymp
