#include "dollymp/sched/tetris.h"

#include <algorithm>
#include <vector>

namespace dollymp {

TetrisScheduler::TetrisScheduler(TetrisConfig config) : config_(config) {}

namespace {

struct Candidate {
  JobRuntime* job;
  PhaseRuntime* phase;
  double remaining_norm;  ///< remaining work, normalized to [0,1] across jobs
};

/// Remaining work of a job: unfinished tasks x theta x normalized demand.
double remaining_work(const JobRuntime& job, const Resources& total) {
  double work = 0.0;
  for (const auto& phase : job.phases) {
    if (phase.finished) continue;
    work += static_cast<double>(phase.remaining_tasks) * phase.spec->theta_seconds *
            normalized_sum(phase.spec->demand, total);
  }
  return work;
}

}  // namespace

void TetrisScheduler::schedule(SchedulerContext& ctx) {
  const Resources total = ctx.cluster().total_capacity();

  // Gather candidate phases (all tasks within a phase share demand and
  // duration, so a phase is one candidate) and the jobs' remaining work.
  std::vector<Candidate> candidates;
  double max_work = 0.0;
  std::vector<double> work_of;
  for (JobRuntime* job : ctx.active_jobs()) {
    // Gang phases cannot enter the per-server packing loop (they place as
    // one atomic wave), so offer them up front in arrival order.
    place_gang_phases(ctx, *job);
    const double work = remaining_work(*job, total);
    max_work = std::max(max_work, work);
    for (auto& phase : job->phases) {
      if (!phase.runnable()) continue;
      candidates.push_back({job, &phase, work});
    }
  }
  if (candidates.empty()) return;
  for (auto& c : candidates) {
    c.remaining_norm = max_work > 0.0 ? 1.0 - c.remaining_norm / max_work : 0.0;
  }

  // Machine-centric packing: fill each free server with its best-scoring
  // tasks, as the Tetris prototype does.  The alignment score is the raw
  // inner product demand.free, normalized by the server's capacity norm to
  // [0, 1] so the SRPT term (weighted delta) acts as the deliberate small
  // nudge the Tetris paper describes.  Larger, better-aligned demands score
  // higher on an empty machine — the property behind the paper's Fig. 2
  // walkthrough where the full-server job is scheduled first.
  for (const auto& server : ctx.cluster().servers()) {
    for (;;) {
      Candidate* best = nullptr;
      TaskRuntime* best_task = nullptr;
      double best_score = -1.0;
      for (auto& c : candidates) {
        if (c.job->finished || !c.phase->runnable()) continue;
        if (c.phase->unscheduled_tasks == 0) continue;
        if (!server.can_fit(c.phase->spec->demand)) continue;
        TaskRuntime* task = next_unscheduled_task(*c.phase);
        if (task == nullptr) continue;
        const Resources& demand = c.phase->spec->demand;
        const double alignment =
            demand.dot(server.free()) / server.capacity().dot(server.capacity());
        const double score = alignment + config_.delta * c.remaining_norm;
        if (score > best_score) {
          best_score = score;
          best = &c;
          best_task = task;
        }
      }
      if (best == nullptr) break;
      if (!ctx.place_copy(*best->job, *best->phase, *best_task, server.id())) break;
    }
  }
}

}  // namespace dollymp
