#include "dollymp/sched/scheduler.h"

#include <algorithm>

#include "dollymp/cluster/placement_index.h"

namespace dollymp {

ServerId best_fit_server(const Cluster& cluster, const Resources& demand) {
  ServerId best = kInvalidServer;
  double best_score = -1.0;
  for (const auto& server : cluster.servers()) {
    if (!server.can_fit(demand)) continue;
    const double score = demand.dot(server.free());
    if (score > best_score) {
      best_score = score;
      best = server.id();
    }
  }
  return best;
}

ServerId first_fit_server(const Cluster& cluster, const Resources& demand) {
  for (const auto& server : cluster.servers()) {
    if (server.can_fit(demand)) return server.id();
  }
  return kInvalidServer;
}

ServerId locality_aware_server(const Cluster& cluster, const LocalityModel& locality,
                               const TaskRuntime& task) {
  // Node-local replica first.
  for (const auto replica : task.block.replicas) {
    const auto& server = cluster.server(static_cast<std::size_t>(replica));
    if (server.can_fit(task.demand)) return replica;
  }
  // Then any rack-local server, preferring the tightest alignment.
  ServerId best_rack = kInvalidServer;
  double best_rack_score = -1.0;
  for (const auto& server : cluster.servers()) {
    if (!server.can_fit(task.demand)) continue;
    if (locality.classify(task.block, server.id()) != LocalityLevel::kRack) continue;
    const double score = task.demand.dot(server.free());
    if (score > best_rack_score) {
      best_rack_score = score;
      best_rack = server.id();
    }
  }
  if (best_rack != kInvalidServer) return best_rack;
  return best_fit_server(cluster, task.demand);
}

ServerId best_fit_server(SchedulerContext& ctx, const Resources& demand) {
  if (PlacementIndex* index = ctx.placement_index()) return index->best_fit(demand);
  return best_fit_server(ctx.cluster(), demand);
}

ServerId first_fit_server(SchedulerContext& ctx, const Resources& demand) {
  if (PlacementIndex* index = ctx.placement_index()) return index->first_fit(demand);
  return first_fit_server(ctx.cluster(), demand);
}

ServerId locality_aware_server(SchedulerContext& ctx, const LocalityModel& locality,
                               const TaskRuntime& task) {
  if (PlacementIndex* index = ctx.placement_index()) {
    return index->locality_aware(locality, task.block, task.demand);
  }
  return locality_aware_server(ctx.cluster(), locality, task);
}

TaskRuntime* next_unscheduled_task(PhaseRuntime& phase) {
  if (phase.unscheduled_tasks == 0) return nullptr;
  auto& hint = phase.first_unscheduled_hint;
  const int n = static_cast<int>(phase.tasks.size());
  while (hint < n && !phase.tasks[static_cast<std::size_t>(hint)].needs_placement()) {
    ++hint;
  }
  return hint < n ? &phase.tasks[static_cast<std::size_t>(hint)] : nullptr;
}

int place_job_greedy(SchedulerContext& ctx, JobRuntime& job) {
  int placed = 0;
  for (auto& phase : job.phases) {
    if (!phase.runnable()) continue;
    while (TaskRuntime* task = next_unscheduled_task(phase)) {
      const ServerId server = best_fit_server(ctx, task->demand);
      if (server == kInvalidServer) break;  // identical siblings will not fit either
      if (!ctx.place_copy(job, phase, *task, server)) break;
      ++placed;
    }
  }
  return placed;
}

Resources job_active_allocation(const JobRuntime& job) {
  Resources total;
  for (const auto& phase : job.phases) {
    if (phase.active_copies > 0) {
      total += phase.spec->demand * static_cast<double>(phase.active_copies);
    }
  }
  return total;
}

Resources job_active_allocation_scan(const JobRuntime& job) {
  Resources total;
  for (const auto& phase : job.phases) {
    for (const auto& task : phase.tasks) {
      const int active = task.active_copies();
      if (active > 0) total += task.demand * static_cast<double>(active);
    }
  }
  return total;
}

}  // namespace dollymp
