#include "dollymp/sched/scheduler.h"

#include <algorithm>

#include "dollymp/cluster/placement_index.h"
#include "dollymp/obs/recorder.h"

namespace dollymp {

namespace {

// Flight-recorder hook shared by the context-taking placement helpers: one
// kPlacementQuery record per query with the chosen server and its score (the
// same free-capacity dot product either answer path maximizes), so a trace
// explains every placement decision.  `query_kind` matches the TraceEv
// documentation: 0 best-fit, 1 first-fit, 2 locality-aware.
void trace_query(SchedulerContext& ctx, std::int64_t query_kind,
                 const Resources& demand, ServerId chosen) {
  Recorder* rec = ctx.recorder();
  if (rec == nullptr) return;
  TraceRecord r;
  r.slot = ctx.now();
  r.type = TraceEv::kPlacementQuery;
  r.server = chosen;
  r.aux = query_kind;
  if (chosen != kInvalidServer) {
    r.score = demand.dot(ctx.cluster().server(static_cast<std::size_t>(chosen)).free());
  }
  rec->append(r);
}

}  // namespace

ServerId best_fit_server(const Cluster& cluster, const Resources& demand) {
  ServerId best = kInvalidServer;
  double best_score = -1.0;
  for (const auto& server : cluster.servers()) {
    if (!server.can_fit(demand)) continue;
    const double score = demand.dot(server.free());
    if (score > best_score) {
      best_score = score;
      best = server.id();
    }
  }
  return best;
}

ServerId first_fit_server(const Cluster& cluster, const Resources& demand) {
  for (const auto& server : cluster.servers()) {
    if (server.can_fit(demand)) return server.id();
  }
  return kInvalidServer;
}

ServerId locality_aware_server(const Cluster& cluster, const LocalityModel& locality,
                               const TaskRuntime& task) {
  // Node-local replica first.
  for (const auto replica : task.block.replicas) {
    const auto& server = cluster.server(static_cast<std::size_t>(replica));
    if (server.can_fit(task.demand)) return replica;
  }
  // Then any rack-local server, preferring the tightest alignment.
  ServerId best_rack = kInvalidServer;
  double best_rack_score = -1.0;
  for (const auto& server : cluster.servers()) {
    if (!server.can_fit(task.demand)) continue;
    if (locality.classify(task.block, server.id()) != LocalityLevel::kRack) continue;
    const double score = task.demand.dot(server.free());
    if (score > best_rack_score) {
      best_rack_score = score;
      best_rack = server.id();
    }
  }
  if (best_rack != kInvalidServer) return best_rack;
  return best_fit_server(cluster, task.demand);
}

ServerId best_fit_server(SchedulerContext& ctx, const Resources& demand) {
  PlacementIndex* index = ctx.placement_index();
  const ServerId chosen =
      index ? index->best_fit(demand) : best_fit_server(ctx.cluster(), demand);
  trace_query(ctx, 0, demand, chosen);
  return chosen;
}

ServerId first_fit_server(SchedulerContext& ctx, const Resources& demand) {
  PlacementIndex* index = ctx.placement_index();
  const ServerId chosen =
      index ? index->first_fit(demand) : first_fit_server(ctx.cluster(), demand);
  trace_query(ctx, 1, demand, chosen);
  return chosen;
}

ServerId locality_aware_server(SchedulerContext& ctx, const LocalityModel& locality,
                               const TaskRuntime& task) {
  PlacementIndex* index = ctx.placement_index();
  const ServerId chosen = index
                              ? index->locality_aware(locality, task.block, task.demand)
                              : locality_aware_server(ctx.cluster(), locality, task);
  trace_query(ctx, 2, task.demand, chosen);
  return chosen;
}

TaskRuntime* next_unscheduled_task(PhaseRuntime& phase) {
  if (phase.unscheduled_tasks == 0) return nullptr;
  // Gang phases are all-or-nothing: refusing per-task handout here is the
  // safety net that keeps every greedy path from starting a partial gang.
  if (phase.spec != nullptr && phase.spec->gang) return nullptr;
  auto& hint = phase.first_unscheduled_hint;
  const int n = static_cast<int>(phase.tasks.size());
  while (hint < n && !phase.tasks[static_cast<std::size_t>(hint)].needs_placement()) {
    ++hint;
  }
  return hint < n ? &phase.tasks[static_cast<std::size_t>(hint)] : nullptr;
}

int place_gang_phases(SchedulerContext& ctx, JobRuntime& job) {
  int placed = 0;
  for (auto& phase : job.phases) {
    if (phase.spec == nullptr || !phase.spec->gang) continue;
    if (!phase.runnable() || phase.unscheduled_tasks == 0) continue;
    const int pending = phase.unscheduled_tasks;
    if (ctx.place_gang(job, phase)) placed += pending - phase.unscheduled_tasks;
  }
  return placed;
}

int place_job_greedy(SchedulerContext& ctx, JobRuntime& job) {
  int placed = place_gang_phases(ctx, job);
  for (auto& phase : job.phases) {
    if (!phase.runnable()) continue;
    while (TaskRuntime* task = next_unscheduled_task(phase)) {
      const ServerId server = best_fit_server(ctx, task->demand);
      if (server == kInvalidServer) break;  // identical siblings will not fit either
      if (!ctx.place_copy(job, phase, *task, server)) break;
      ++placed;
    }
  }
  return placed;
}

Resources job_active_allocation(const JobRuntime& job) {
  Resources total;
  for (const auto& phase : job.phases) {
    if (phase.active_copies > 0) {
      total += phase.spec->demand * static_cast<double>(phase.active_copies);
    }
  }
  return total;
}

Resources job_active_allocation_scan(const JobRuntime& job) {
  Resources total;
  for (const auto& phase : job.phases) {
    for (const auto& task : phase.tasks) {
      const int active = task.active_copies();
      if (active > 0) total += task.demand * static_cast<double>(active);
    }
  }
  return total;
}

}  // namespace dollymp
