#include "dollymp/sched/simple_priority.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace dollymp {

SimplePriorityScheduler::SimplePriorityScheduler(SimplePriorityConfig config)
    : config_(config) {
  if (config_.clone_budget < 0) {
    throw std::invalid_argument("SimplePriority: clone_budget must be >= 0");
  }
}

std::string SimplePriorityScheduler::name() const {
  std::string base = config_.rule == SimplePriorityRule::kSrpt ? "srpt" : "svf";
  if (config_.clone_budget > 0) base += "^" + std::to_string(config_.clone_budget);
  return base;
}

void SimplePriorityScheduler::schedule(SchedulerContext& ctx) {
  const Resources total = ctx.cluster().total_capacity();
  std::vector<std::pair<double, JobRuntime*>> order;
  order.reserve(ctx.active_jobs().size());
  for (JobRuntime* job : ctx.active_jobs()) {
    const double key = config_.rule == SimplePriorityRule::kSrpt
                           ? job->remaining_length(config_.sigma_factor)
                           : job->remaining_volume(total, config_.sigma_factor);
    order.emplace_back(key, job);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  for (auto& [key, job] : order) {
    place_job_greedy(ctx, *job);
  }

  if (config_.clone_budget == 0) return;
  const int copy_cap = std::min(1 + config_.clone_budget, ctx.config().max_copies_per_task);
  for (int pass = 0; pass < config_.clone_budget; ++pass) {
    int placed = 0;
    for (auto& [key, job] : order) {
      for (auto& phase : job->phases) {
        if (!phase.runnable() || phase.active_copies == 0) continue;
        for (auto& task : phase.tasks) {
          if (task.finished || !task.running()) continue;
          if (task.total_copies() >= copy_cap) continue;
          const ServerId server = best_fit_server(ctx, task.demand);
          if (server == kInvalidServer) continue;
          if (ctx.place_copy(*job, phase, task, server)) ++placed;
        }
      }
    }
    if (placed == 0) break;
  }
}

}  // namespace dollymp
