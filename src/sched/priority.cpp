#include "dollymp/sched/priority.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dollymp/common/thread_pool.h"
#include "dollymp/sched/knapsack.h"

namespace dollymp {

std::size_t PriorityScratch::capacity_bytes() const {
  std::size_t bytes = shard_weights.capacity() * sizeof(std::vector<double>) +
                      shard_members.capacity() * sizeof(std::vector<std::size_t>) +
                      weights.capacity() * sizeof(double) +
                      members.capacity() * sizeof(std::size_t);
  for (const auto& v : shard_weights) bytes += v.capacity() * sizeof(double);
  for (const auto& v : shard_members) bytes += v.capacity() * sizeof(std::size_t);
  return bytes;
}

PriorityResult compute_transient_priorities(const std::vector<PriorityJobInput>& jobs) {
  return compute_transient_priorities(jobs, nullptr, nullptr);
}

PriorityResult compute_transient_priorities(const std::vector<PriorityJobInput>& jobs,
                                            ThreadPool* pool, ShardStats* shard_stats) {
  return compute_transient_priorities(jobs, pool, shard_stats, nullptr);
}

PriorityResult compute_transient_priorities(const std::vector<PriorityJobInput>& jobs,
                                            ThreadPool* pool, ShardStats* shard_stats,
                                            PriorityScratch* scratch) {
  PriorityScratch local;
  PriorityScratch& arena = scratch != nullptr ? *scratch : local;
  const std::size_t capacity_before = arena.capacity_bytes();

  PriorityResult result;
  result.priority.assign(jobs.size(), 0);
  if (jobs.empty()) return result;

  double total_volume = 0.0;
  double max_dominant = 0.0;
  double max_length = 1.0;
  for (const auto& j : jobs) {
    if (j.volume < 0.0 || j.length < 0.0) {
      throw std::invalid_argument("priorities: negative volume/length");
    }
    total_volume += j.volume;
    max_dominant = std::max(max_dominant, j.dominant);
    max_length = std::max(max_length, j.length);
  }
  // Guard the capacity margin: a job may dominate a whole dimension.
  max_dominant = std::min(max_dominant, 1.0 - 1e-6);

  const double horizon = std::max(1.0, total_volume / (1.0 - max_dominant));
  int g = static_cast<int>(std::ceil(std::log2(horizon)));
  // Extend so every job falls into some B_l (e_j <= 2^l must eventually
  // hold) and so the final budget covers the total volume.
  g = std::max({g, 1, static_cast<int>(std::ceil(std::log2(std::max(1.0, max_length))))});
  g = std::min(g + 1, 62);

  // Per-shard candidate buffers for the round filter, served from the
  // arena so the doubling rounds — and, with a caller-owned scratch, every
  // later recompute — reuse their capacity.  Shard s filters the contiguous
  // job range shard_range(s, ...); concatenating the shard lists in
  // ascending shard order reproduces the serial ascending-index scan, so
  // the knapsack sees the identical candidate sequence.
  const std::size_t filter_shards = shard_count(pool, jobs.size());
  if (arena.shard_weights.size() < filter_shards) arena.shard_weights.resize(filter_shards);
  if (arena.shard_members.size() < filter_shards) arena.shard_members.resize(filter_shards);
  auto& shard_weights = arena.shard_weights;
  auto& shard_members = arena.shard_members;
  auto& weights = arena.weights;
  auto& members = arena.members;

  std::size_t assigned = 0;
  int l = 1;
  for (; l <= 62 && assigned < jobs.size(); ++l) {
    const double budget = std::ldexp(1.0, l);  // 2^l
    // B_l = unassigned-or-assigned jobs with e_j <= 2^l; jobs already
    // assigned keep their class but still occupy budget in later rounds
    // per Algorithm 1 (the knapsack is re-solved over all of B_l).
    weights.clear();
    members.clear();
    if (filter_shards < 2) {
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].length <= budget + 1e-12) {
          weights.push_back(jobs[i].volume);
          members.push_back(i);
        }
      }
    } else {
      run_shards(pool, filter_shards, jobs.size(),
                 [&](std::size_t s, std::size_t begin, std::size_t end) {
                   auto& sw = shard_weights[s];
                   auto& sm = shard_members[s];
                   sw.clear();
                   sm.clear();
                   for (std::size_t i = begin; i < end; ++i) {
                     if (jobs[i].length <= budget + 1e-12) {
                       sw.push_back(jobs[i].volume);
                       sm.push_back(i);
                     }
                   }
                 });
      for (std::size_t s = 0; s < filter_shards; ++s) {
        weights.insert(weights.end(), shard_weights[s].begin(), shard_weights[s].end());
        members.insert(members.end(), shard_members[s].begin(), shard_members[s].end());
      }
      if (shard_stats != nullptr) shard_stats->note(filter_shards, jobs.size());
    }
    if (members.empty()) continue;
    const KnapsackPick pick = knapsack_unit_profit(weights, budget);
    for (const auto w_index : pick.chosen) {
      const std::size_t job_index = members[w_index];
      if (result.priority[job_index] == 0) {
        result.priority[job_index] = l;
        ++assigned;
      }
    }
    if (l >= g && assigned == jobs.size()) break;
  }
  result.rounds = l;

  // Jobs the oracle never selected (possible only under adversarial volume
  // vs. length scaling) go to the last class + 1.
  for (auto& p : result.priority) {
    if (p == 0) p = result.rounds + 1;
  }
  // Arena accounting: a caller-retained scratch that served a parallel pass
  // counts as one acquisition, grown iff any backing buffer allocated.
  if (scratch != nullptr && shard_stats != nullptr && filter_shards >= 2) {
    shard_stats->note_arena(arena.capacity_bytes() > capacity_before);
  }
  return result;
}

PriorityResult compute_weighted_transient_priorities(
    const std::vector<WeightedPriorityJobInput>& jobs) {
  PriorityResult result;
  result.priority.assign(jobs.size(), 0);
  if (jobs.empty()) return result;

  double total_volume = 0.0;
  double max_dominant = 0.0;
  double max_length = 1.0;
  for (const auto& j : jobs) {
    if (j.volume < 0.0 || j.length < 0.0) {
      throw std::invalid_argument("priorities: negative volume/length");
    }
    if (!(j.weight > 0.0)) {
      throw std::invalid_argument("priorities: weights must be > 0");
    }
    total_volume += j.volume;
    max_dominant = std::max(max_dominant, j.dominant);
    max_length = std::max(max_length, j.length);
  }
  max_dominant = std::min(max_dominant, 1.0 - 1e-6);

  const double horizon = std::max(1.0, total_volume / (1.0 - max_dominant));
  int g = static_cast<int>(std::ceil(std::log2(horizon)));
  g = std::max({g, 1, static_cast<int>(std::ceil(std::log2(std::max(1.0, max_length))))});
  g = std::min(g + 1, 62);

  std::size_t assigned = 0;
  int l = 1;
  for (; l <= 62 && assigned < jobs.size(); ++l) {
    const double budget = std::ldexp(1.0, l);
    std::vector<double> weights;
    std::vector<double> profits;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].length <= budget + 1e-12) {
        weights.push_back(jobs[i].volume);
        profits.push_back(jobs[i].weight);
        members.push_back(i);
      }
    }
    if (members.empty()) continue;
    const KnapsackPick pick = knapsack_branch_and_bound(weights, profits, budget);
    for (const auto w_index : pick.chosen) {
      const std::size_t job_index = members[w_index];
      if (result.priority[job_index] == 0) {
        result.priority[job_index] = l;
        ++assigned;
      }
    }
    if (l >= g && assigned == jobs.size()) break;
  }
  result.rounds = l;
  for (auto& p : result.priority) {
    if (p == 0) p = result.rounds + 1;
  }
  return result;
}

}  // namespace dollymp
