#include "dollymp/sched/priority.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dollymp/sched/knapsack.h"

namespace dollymp {

PriorityResult compute_transient_priorities(const std::vector<PriorityJobInput>& jobs) {
  PriorityResult result;
  result.priority.assign(jobs.size(), 0);
  if (jobs.empty()) return result;

  double total_volume = 0.0;
  double max_dominant = 0.0;
  double max_length = 1.0;
  for (const auto& j : jobs) {
    if (j.volume < 0.0 || j.length < 0.0) {
      throw std::invalid_argument("priorities: negative volume/length");
    }
    total_volume += j.volume;
    max_dominant = std::max(max_dominant, j.dominant);
    max_length = std::max(max_length, j.length);
  }
  // Guard the capacity margin: a job may dominate a whole dimension.
  max_dominant = std::min(max_dominant, 1.0 - 1e-6);

  const double horizon = std::max(1.0, total_volume / (1.0 - max_dominant));
  int g = static_cast<int>(std::ceil(std::log2(horizon)));
  // Extend so every job falls into some B_l (e_j <= 2^l must eventually
  // hold) and so the final budget covers the total volume.
  g = std::max({g, 1, static_cast<int>(std::ceil(std::log2(std::max(1.0, max_length))))});
  g = std::min(g + 1, 62);

  std::size_t assigned = 0;
  int l = 1;
  for (; l <= 62 && assigned < jobs.size(); ++l) {
    const double budget = std::ldexp(1.0, l);  // 2^l
    // B_l = unassigned-or-assigned jobs with e_j <= 2^l; jobs already
    // assigned keep their class but still occupy budget in later rounds
    // per Algorithm 1 (the knapsack is re-solved over all of B_l).
    std::vector<double> weights;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].length <= budget + 1e-12) {
        weights.push_back(jobs[i].volume);
        members.push_back(i);
      }
    }
    if (members.empty()) continue;
    const KnapsackPick pick = knapsack_unit_profit(weights, budget);
    for (const auto w_index : pick.chosen) {
      const std::size_t job_index = members[w_index];
      if (result.priority[job_index] == 0) {
        result.priority[job_index] = l;
        ++assigned;
      }
    }
    if (l >= g && assigned == jobs.size()) break;
  }
  result.rounds = l;

  // Jobs the oracle never selected (possible only under adversarial volume
  // vs. length scaling) go to the last class + 1.
  for (auto& p : result.priority) {
    if (p == 0) p = result.rounds + 1;
  }
  return result;
}

PriorityResult compute_weighted_transient_priorities(
    const std::vector<WeightedPriorityJobInput>& jobs) {
  PriorityResult result;
  result.priority.assign(jobs.size(), 0);
  if (jobs.empty()) return result;

  double total_volume = 0.0;
  double max_dominant = 0.0;
  double max_length = 1.0;
  for (const auto& j : jobs) {
    if (j.volume < 0.0 || j.length < 0.0) {
      throw std::invalid_argument("priorities: negative volume/length");
    }
    if (!(j.weight > 0.0)) {
      throw std::invalid_argument("priorities: weights must be > 0");
    }
    total_volume += j.volume;
    max_dominant = std::max(max_dominant, j.dominant);
    max_length = std::max(max_length, j.length);
  }
  max_dominant = std::min(max_dominant, 1.0 - 1e-6);

  const double horizon = std::max(1.0, total_volume / (1.0 - max_dominant));
  int g = static_cast<int>(std::ceil(std::log2(horizon)));
  g = std::max({g, 1, static_cast<int>(std::ceil(std::log2(std::max(1.0, max_length))))});
  g = std::min(g + 1, 62);

  std::size_t assigned = 0;
  int l = 1;
  for (; l <= 62 && assigned < jobs.size(); ++l) {
    const double budget = std::ldexp(1.0, l);
    std::vector<double> weights;
    std::vector<double> profits;
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].length <= budget + 1e-12) {
        weights.push_back(jobs[i].volume);
        profits.push_back(jobs[i].weight);
        members.push_back(i);
      }
    }
    if (members.empty()) continue;
    const KnapsackPick pick = knapsack_branch_and_bound(weights, profits, budget);
    for (const auto w_index : pick.chosen) {
      const std::size_t job_index = members[w_index];
      if (result.priority[job_index] == 0) {
        result.priority[job_index] = l;
        ++assigned;
      }
    }
    if (l >= g && assigned == jobs.size()) break;
  }
  result.rounds = l;
  for (auto& p : result.priority) {
    if (p == 0) p = result.rounds + 1;
  }
  return result;
}

}  // namespace dollymp
