#include "dollymp/sched/dollymp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dollymp/sched/priority.h"

namespace dollymp {

DollyMPScheduler::DollyMPScheduler(DollyMPConfig config) : config_(config) {
  if (config_.clone_budget < 0) {
    throw std::invalid_argument("DollyMP: clone_budget must be >= 0");
  }
}

std::string DollyMPScheduler::name() const {
  return "dollymp^" + std::to_string(config_.clone_budget);
}

void DollyMPScheduler::reset() {
  priority_.clear();
  volume_.clear();
  priorities_dirty_ = false;
  scorer_.reset();
}

void DollyMPScheduler::on_copy_finished(SchedulerContext& ctx, const JobRuntime& /*job*/,
                                        const PhaseRuntime& phase,
                                        const TaskRuntime& /*task*/,
                                        const CopyRuntime& copy) {
  if (!config_.straggler_aware) return;
  if (!scorer_) scorer_.emplace(ctx.cluster().size());
  const double actual_seconds =
      static_cast<double>(ctx.now() - copy.start) * ctx.slot_seconds();
  scorer_->observe(copy.server, phase.spec->theta_seconds, actual_seconds);
}

void DollyMPScheduler::recompute_priorities(SchedulerContext& ctx) {
  const auto& jobs = ctx.active_jobs();
  const Resources total = ctx.cluster().total_capacity();
  const double slot = ctx.slot_seconds();

  std::vector<PriorityJobInput> inputs;
  inputs.reserve(jobs.size());
  for (const JobRuntime* job : jobs) {
    PriorityJobInput in;
    in.volume = job->remaining_volume(total, config_.sigma_factor) / slot;
    in.length = job->remaining_length(config_.sigma_factor) / slot;
    in.dominant = job->max_dominant_share(total);
    if (config_.corollary_clone_counts && config_.clone_budget > 0) {
      // Corollary 4.1: with up to (1 + budget) concurrent copies a job's
      // tasks finish h(1+budget) times faster in expectation, so the job
      // qualifies for the earlier class l with e_j / h <= 2^l; the clone
      // pass then launches exactly the copies needed to meet that window.
      double min_speedup = std::numeric_limits<double>::infinity();
      for (const auto& phase : job->phases) {
        if (phase.finished) continue;
        min_speedup =
            std::min(min_speedup, phase.speedup(1.0 + config_.clone_budget));
      }
      if (std::isfinite(min_speedup) && min_speedup > 1.0) {
        in.length /= min_speedup;
      }
    }
    inputs.push_back(in);
  }
  const PriorityResult result = compute_transient_priorities(inputs);

  priority_.clear();
  volume_.clear();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    priority_[jobs[i]->id] = result.priority[i];
    volume_[jobs[i]->id] = inputs[i].volume;
  }
}

void DollyMPScheduler::on_job_arrival(SchedulerContext& ctx) { recompute_priorities(ctx); }

void DollyMPScheduler::on_job_completed(SchedulerContext& /*ctx*/, const JobRuntime& /*job*/) {
  // The typed completion event replaces the old "did active_jobs() shrink
  // since my last recompute?" size check: mark the cached priorities stale
  // and refresh lazily at the next schedule() call (which the simulator
  // guarantees happens in the same slot, after the job leaves the active
  // set).
  if (config_.recompute_on_completion) priorities_dirty_ = true;
}

std::vector<DollyMPScheduler::JobOrder> DollyMPScheduler::ordered_jobs(
    SchedulerContext& ctx) const {
  std::vector<JobOrder> order;
  order.reserve(ctx.active_jobs().size());
  for (JobRuntime* job : ctx.active_jobs()) {
    const auto pit = priority_.find(job->id);
    const auto vit = volume_.find(job->id);
    JobOrder jo;
    jo.job = job;
    jo.priority = pit == priority_.end() ? 1 << 20 : pit->second;
    jo.volume = vit == volume_.end() ? 0.0 : vit->second;
    order.push_back(jo);
  }
  std::stable_sort(order.begin(), order.end(), [](const JobOrder& a, const JobOrder& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.volume != b.volume) return a.volume < b.volume;
    return a.job->id < b.job->id;
  });
  return order;
}

ServerId DollyMPScheduler::pick_server(SchedulerContext& ctx, const TaskRuntime& task) const {
  if (config_.straggler_aware && scorer_ && scorer_->size() == ctx.cluster().size()) {
    // Straggler-aware placement: best resource fit, discounted by the
    // learned slowdown estimate, with a bonus for input-replica locality.
    ServerId best = kInvalidServer;
    double best_score = -1.0;
    for (const auto& server : ctx.cluster().servers()) {
      if (!server.can_fit(task.demand)) continue;
      double score = task.demand.dot(server.free()) * scorer_->placement_weight(server.id());
      if (config_.locality_aware) {
        for (const auto replica : task.block.replicas) {
          if (replica == server.id()) {
            score *= 1.25;
            break;
          }
        }
      }
      if (score > best_score) {
        best_score = score;
        best = server.id();
      }
    }
    return best;
  }
  if (config_.locality_aware) {
    // The context does not expose the locality model directly; replicate
    // its preference order with the cluster's rack layout.
    for (const auto replica : task.block.replicas) {
      const auto& server = ctx.cluster().server(static_cast<std::size_t>(replica));
      if (server.can_fit(task.demand)) return replica;
    }
  }
  return best_fit_server(ctx.cluster(), task.demand);
}

int DollyMPScheduler::place_new_tasks(SchedulerContext& ctx, std::vector<JobOrder>& order) {
  // Walk priority classes in order; inside a class jobs are already sorted
  // by remaining volume (the knapsack oracle treats members of a class
  // equally, so smallest-volume-first is the natural ordering), and every
  // copy individually lands on its best-fit server (the inner-product tie
  // break of Algorithm 2, step 12).  A full per-placement re-scan of the
  // class for the single globally best-fitting task would be quadratic in
  // cluster size; per-task best-fit keeps the same packing signal at
  // O(placements x servers).
  int placed_total = 0;
  for (auto& jo : order) {
    JobRuntime& job = *jo.job;
    if (job.finished) continue;
    for (auto& phase : job.phases) {
      if (!phase.runnable()) continue;
      while (TaskRuntime* task = next_unscheduled_task(phase)) {
        const ServerId server = pick_server(ctx, *task);
        if (server == kInvalidServer) break;  // identical siblings will not fit either
        if (!ctx.place_copy(job, phase, *task, server)) break;
        ++placed_total;
      }
    }
  }
  return placed_total;
}

int DollyMPScheduler::place_clones(SchedulerContext& ctx, std::vector<JobOrder>& order) {
  if (config_.clone_budget == 0) return 0;
  const int copy_cap =
      std::min(1 + config_.clone_budget, ctx.config().max_copies_per_task);

  // Section 4.1's rule: clone small jobs "when the total amount of consumed
  // resources under cloning is less than the resource demand of other
  // jobs".  When no job is waiting for resources, leftover capacity is
  // free and every running task may be cloned; when jobs are queued, every
  // clone-second is stolen from a waiting task, so only overdue copies —
  // where the heavy-tail conditional gain is large — justify the cost.
  bool anyone_waiting = false;
  for (const JobOrder& jo : order) {
    for (const auto& phase : jo.job->phases) {
      if (phase.runnable() && phase.unscheduled_tasks > 0) {
        anyone_waiting = true;
        break;
      }
    }
    if (anyone_waiting) break;
  }

  int placed = 0;
  std::vector<TaskRuntime*> candidates;
  auto clone_pass = [&](JobOrder& jo) {
    JobRuntime& job = *jo.job;
    if (job.finished) return;
    for (auto& phase : job.phases) {
      if (!phase.runnable() || phase.active_copies == 0) continue;
      // Clone only once every task of the phase has been scheduled — in the
      // YARN implementation an AM launches clones "when RM allocates more
      // containers than the number of pending tasks" (Section 5.2), which
      // naturally targets the phase's final wave: the stragglers holding
      // the phase barrier.  Cloning earlier waves would only halve the
      // phase's throughput.
      if (phase.unscheduled_tasks > 0) continue;
      // Within a phase, clone the longest-running copies first: under the
      // heavy-tailed duration model a task's conditional remaining time
      // grows with its elapsed time, so the oldest running tasks are the
      // likeliest stragglers and the min-of-copies gain is largest there.
      // Corollary 4.1's clone budget: within priority class l (window
      // 2^l slots), a task needs exactly r_j = min{r : 2^l h(r) >= theta}
      // concurrent copies to meet the window — more cannot help it, fewer
      // may miss it.  The restriction only matters when resources are
      // contested; with an idle queue the flat budget applies (Section
      // 4.1's free-cloning rule).
      int phase_cap = copy_cap;
      if (config_.corollary_clone_counts && anyone_waiting) {
        const auto pit = priority_.find(job.id);
        if (pit != priority_.end()) {
          const double window_seconds =
              std::ldexp(1.0, pit->second) * ctx.slot_seconds();
          const int needed =
              phase.speedup.min_copies_for(phase.spec->theta_seconds, window_seconds);
          if (needed > 0) phase_cap = std::min(copy_cap, std::max(1, needed));
        }
      }
      candidates.clear();
      for (auto& task : phase.tasks) {
        if (task.finished || !task.running()) continue;
        if (task.total_copies() >= phase_cap) continue;
        if (anyone_waiting) {
          // Launch-time clones (same slot as the original — the Section 3
          // model where "all clones of a task are launched at the same
          // time") and overdue-straggler clones carry the payoff; mid-life
          // clones of healthy tasks only burn contested resources.
          const double elapsed =
              static_cast<double>(ctx.now() - task.first_start) * ctx.slot_seconds();
          const bool launch_time = task.first_start == ctx.now();
          if (!launch_time && elapsed < phase.spec->theta_seconds) continue;
        }
        candidates.push_back(&task);
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const TaskRuntime* a, const TaskRuntime* b) {
                         return a->first_start < b->first_start;
                       });
      for (TaskRuntime* task : candidates) {
        const ServerId server = pick_server(ctx, *task);
        if (server == kInvalidServer) continue;
        if (ctx.place_copy(job, phase, *task, server)) ++placed;
      }
    }
  };

  if (config_.smallest_first_clones) {
    for (auto& jo : order) clone_pass(jo);
  } else {
    for (auto it = order.rbegin(); it != order.rend(); ++it) clone_pass(*it);
  }
  return placed;
}

void DollyMPScheduler::schedule(SchedulerContext& ctx) {
  if (priorities_dirty_) {
    recompute_priorities(ctx);
    priorities_dirty_ = false;
  }
  auto order = ordered_jobs(ctx);
  place_new_tasks(ctx, order);
  // "Repeat Step 9 twice if there are available resources" — each extra
  // pass may add one more clone per task up to the budget.
  for (int pass = 0; pass < config_.clone_budget; ++pass) {
    if (place_clones(ctx, order) == 0) break;
  }
}

}  // namespace dollymp
