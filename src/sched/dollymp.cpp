#include "dollymp/sched/dollymp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/state_io.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/obs/recorder.h"

namespace dollymp {

DollyMPScheduler::DollyMPScheduler(DollyMPConfig config) : config_(config) {
  if (config_.clone_budget < 0) {
    throw std::invalid_argument("DollyMP: clone_budget must be >= 0");
  }
}

std::string DollyMPScheduler::name() const {
  return "dollymp^" + std::to_string(config_.clone_budget);
}

void DollyMPScheduler::reset() {
  // Invalidate every cached priority entry in O(1): entries are valid only
  // for the current epoch, so bumping it (monotonically — epoch 0 is never
  // a written epoch) retires them all without deallocating the buffers.
  ++epoch_;
  priorities_dirty_ = false;
  scorer_.reset();
  resilience_.reset();
}

ResiliencePolicy* DollyMPScheduler::live_resilience(SchedulerContext& ctx) {
  if (!config_.resilience.enabled) return nullptr;
  if (!resilience_) resilience_.emplace(config_.resilience, ctx.cluster().size());
  return &*resilience_;
}

void DollyMPScheduler::on_copy_fault(SchedulerContext& ctx, const JobRuntime& /*job*/,
                                     const PhaseRuntime& /*phase*/,
                                     const TaskRuntime& task, ServerId server) {
  if (ResiliencePolicy* res = live_resilience(ctx)) res->on_copy_fault(ctx, task, server);
}

void DollyMPScheduler::on_server_failed(SchedulerContext& ctx, ServerId server) {
  if (ResiliencePolicy* res = live_resilience(ctx)) res->on_server_failed(ctx, server);
}

void DollyMPScheduler::on_server_repaired(SchedulerContext& ctx, ServerId server) {
  if (ResiliencePolicy* res = live_resilience(ctx)) res->on_server_repaired(ctx, server);
}

bool DollyMPScheduler::priority_known(JobId id) const {
  const auto slot = static_cast<std::size_t>(id);
  return epoch_ > 0 && slot < prio_epoch_.size() && prio_epoch_[slot] == epoch_;
}

void DollyMPScheduler::ensure_slot(JobId id) {
  const auto need = static_cast<std::size_t>(id) + 1;
  if (prio_epoch_.size() < need) {
    prio_epoch_.resize(need, 0);
    prio_value_.resize(need, 0);
    vol_value_.resize(need, 0.0);
  }
}

void DollyMPScheduler::on_copy_finished(SchedulerContext& ctx, const JobRuntime& /*job*/,
                                        const PhaseRuntime& phase,
                                        const TaskRuntime& /*task*/,
                                        const CopyRuntime& copy) {
  if (!config_.straggler_aware) return;
  if (!scorer_) scorer_.emplace(ctx.cluster().size());
  const double actual_seconds =
      static_cast<double>(ctx.now() - copy.start) * ctx.slot_seconds();
  scorer_->observe(copy.server, phase.spec->theta_seconds, actual_seconds);
  // Mirror the updated weight into the placement index so its weighted
  // query scores with exactly the multipliers the linear scan would use.
  // observe() touches only copy.server's estimate, so pushing that one
  // weight keeps the mirror complete (cold servers stay at the index's
  // default multiplier 1.0 == 1 / prior_slowdown).
  if (PlacementIndex* index = ctx.placement_index()) {
    index->set_multiplier(copy.server, scorer_->placement_weight(copy.server));
  }
}

void DollyMPScheduler::recompute_priorities(SchedulerContext& ctx) {
  const auto& jobs = ctx.active_jobs();
  const Resources total = ctx.cluster().total_capacity();
  const double slot = ctx.slot_seconds();

  // Per-job v_j/e_j/d_j are independent: each job's remaining_volume /
  // remaining_length reads touch only that job's runtime (its mutable
  // remaining-work caches included), so the recompute shards cleanly across
  // the worker pool — shard s fills the contiguous inputs_ range it owns
  // and no reduction is needed.
  inputs_.resize(jobs.size());
  ThreadPool* pool = ctx.worker_pool();
  const std::size_t shards = shard_count(pool, jobs.size());
  run_shards(pool, shards, jobs.size(),
             [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 const JobRuntime* job = jobs[i];
                 PriorityJobInput in;
                 in.volume = job->remaining_volume(total, config_.sigma_factor) / slot;
                 in.length = job->remaining_length(config_.sigma_factor) / slot;
                 in.dominant = job->max_dominant_share(total);
                 if (config_.corollary_clone_counts && config_.clone_budget > 0) {
                   // Corollary 4.1: with up to (1 + budget) concurrent copies a
                   // job's tasks finish h(1+budget) times faster in expectation,
                   // so the job qualifies for the earlier class l with
                   // e_j / h <= 2^l; the clone pass then launches exactly the
                   // copies needed to meet that window.
                   double min_speedup = std::numeric_limits<double>::infinity();
                   for (const auto& phase : job->phases) {
                     if (phase.finished) continue;
                     min_speedup =
                         std::min(min_speedup, phase.speedup(1.0 + config_.clone_budget));
                   }
                   if (std::isfinite(min_speedup) && min_speedup > 1.0) {
                     in.length /= min_speedup;
                   }
                 }
                 inputs_[i] = in;
               }
             });
  ShardStats* stats = ctx.shard_stats();
  if (stats != nullptr) stats->note(shards, jobs.size());
  const PriorityResult result =
      compute_transient_priorities(inputs_, pool, stats, &prio_scratch_);

  // Open a new epoch: every pre-existing entry becomes stale at once, then
  // the active jobs are written fresh.  Equivalent to clearing and refilling
  // the old hash maps, without the rehash/allocation churn.
  ++epoch_;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobId id = jobs[i]->id;
    ensure_slot(id);
    const auto slot_i = static_cast<std::size_t>(id);
    prio_epoch_[slot_i] = epoch_;
    prio_value_[slot_i] = result.priority[i];
    vol_value_[slot_i] = inputs_[i].volume;
  }
}

void DollyMPScheduler::on_job_arrival(SchedulerContext& ctx) { recompute_priorities(ctx); }

void DollyMPScheduler::on_job_completed(SchedulerContext& /*ctx*/, const JobRuntime& /*job*/) {
  // The typed completion event replaces the old "did active_jobs() shrink
  // since my last recompute?" size check: mark the cached priorities stale
  // and refresh lazily at the next schedule() call (which the simulator
  // guarantees happens in the same slot, after the job leaves the active
  // set).
  if (config_.recompute_on_completion) priorities_dirty_ = true;
}

void DollyMPScheduler::rebuild_order(SchedulerContext& ctx) {
  order_.clear();
  order_.reserve(ctx.active_jobs().size());
  for (JobRuntime* job : ctx.active_jobs()) {
    JobOrder jo;
    jo.job = job;
    jo.has_priority = priority_known(job->id);
    const auto slot = static_cast<std::size_t>(job->id);
    jo.priority = jo.has_priority ? prio_value_[slot] : 1 << 20;
    jo.volume = jo.has_priority ? vol_value_[slot] : 0.0;
    order_.push_back(jo);
  }
  // The comparator is a strict total order (job ids are unique), so plain
  // sort yields the same permutation stable_sort did — without its
  // temporary-buffer allocation on every call.
  std::sort(order_.begin(), order_.end(), [](const JobOrder& a, const JobOrder& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.volume != b.volume) return a.volume < b.volume;
    return a.job->id < b.job->id;
  });
}

namespace {

// Flight-recorder record for DollyMP's weighted pick (TraceEv query kind 3):
// chosen server plus the weighted score the scan maximized, recomputed from
// the chosen server so the index and linear-scan paths log the same value.
void trace_weighted_pick(SchedulerContext& ctx, const TaskRuntime& task,
                         ServerId chosen, double score) {
  Recorder* rec = ctx.recorder();
  if (rec == nullptr) return;
  TraceRecord r;
  r.slot = ctx.now();
  r.type = TraceEv::kPlacementQuery;
  r.task = task.ref.task;
  r.server = chosen;
  r.aux = 3;
  r.score = score;
  rec->append(r);
}

}  // namespace

ServerId DollyMPScheduler::pick_server(SchedulerContext& ctx, const TaskRuntime& task) const {
  if (config_.straggler_aware && scorer_ && scorer_->size() == ctx.cluster().size()) {
    // Straggler-aware placement: best resource fit, discounted by the
    // learned slowdown estimate, with a bonus for input-replica locality.
    // The placement index keeps a mirror of the scorer's weights (pushed in
    // on_copy_finished), so its weighted query reproduces the linear scan
    // below exactly — same score expression, same lowest-id tie-break.
    if (PlacementIndex* index = ctx.placement_index()) {
      const ServerId chosen = index->weighted_best_fit(
          task.demand, config_.locality_aware ? &task.block : nullptr);
      if (ctx.recorder() != nullptr) {
        double score = 0.0;
        if (chosen != kInvalidServer) {
          const auto& server = ctx.cluster().server(static_cast<std::size_t>(chosen));
          score = task.demand.dot(server.free()) * scorer_->placement_weight(chosen);
          if (config_.locality_aware) {
            for (const auto replica : task.block.replicas) {
              if (replica == chosen) {
                score *= 1.25;
                break;
              }
            }
          }
        }
        trace_weighted_pick(ctx, task, chosen, score);
      }
      return chosen;
    }
    ServerId best = kInvalidServer;
    double best_score = -1.0;
    for (const auto& server : ctx.cluster().servers()) {
      if (!server.can_fit(task.demand)) continue;
      double score = task.demand.dot(server.free()) * scorer_->placement_weight(server.id());
      if (config_.locality_aware) {
        for (const auto replica : task.block.replicas) {
          if (replica == server.id()) {
            score *= 1.25;
            break;
          }
        }
      }
      if (score > best_score) {
        best_score = score;
        best = server.id();
      }
    }
    trace_weighted_pick(ctx, task, best, best == kInvalidServer ? 0.0 : best_score);
    return best;
  }
  if (config_.locality_aware) {
    // The context does not expose the locality model directly; replicate
    // its preference order with the cluster's rack layout.
    for (const auto replica : task.block.replicas) {
      const auto& server = ctx.cluster().server(static_cast<std::size_t>(replica));
      if (server.can_fit(task.demand)) {
        trace_weighted_pick(ctx, task, replica, task.demand.dot(server.free()));
        return replica;
      }
    }
  }
  return best_fit_server(ctx, task.demand);
}

int DollyMPScheduler::place_new_tasks(SchedulerContext& ctx) {
  // Walk priority classes in order; inside a class jobs are already sorted
  // by remaining volume (the knapsack oracle treats members of a class
  // equally, so smallest-volume-first is the natural ordering), and every
  // copy individually lands on its best-fit server (the inner-product tie
  // break of Algorithm 2, step 12).  A full per-placement re-scan of the
  // class for the single globally best-fitting task would be quadratic in
  // cluster size; per-task best-fit keeps the same packing signal at
  // O(placements x servers).
  int placed_total = 0;
  for (auto& jo : order_) {
    JobRuntime& job = *jo.job;
    if (job.finished) continue;
    placed_total += place_gang_phases(ctx, job);
    for (auto& phase : job.phases) {
      if (!phase.runnable()) continue;
      while (TaskRuntime* task = next_unscheduled_task(phase)) {
        const ServerId server = pick_server(ctx, *task);
        if (server == kInvalidServer) break;  // identical siblings will not fit either
        if (!ctx.place_copy(job, phase, *task, server)) break;
        ++placed_total;
      }
    }
  }
  return placed_total;
}

int DollyMPScheduler::place_new_tasks_resilient(SchedulerContext& ctx) {
  // Same priority order and per-task placement as place_new_tasks, but
  // tasks under a retry-backoff hold are skipped (and their earliest
  // release recorded for defer_retry) instead of placed.  This path cannot
  // use next_unscheduled_task: its monotone cursor would advance past a
  // held task and never revisit it.  Deferral is recorded even after
  // capacity runs out, so the policy never misses the backoff wakeup.
  int placed_total = 0;
  const SimTime now = ctx.now();
  for (auto& jo : order_) {
    JobRuntime& job = *jo.job;
    if (job.finished) continue;
    placed_total += place_gang_phases(ctx, job);
    for (auto& phase : job.phases) {
      if (!phase.runnable() || phase.unscheduled_tasks == 0) continue;
      if (phase.spec->gang) continue;  // offered atomically above
      bool capacity_exhausted = false;
      const auto first =
          static_cast<std::size_t>(std::max(phase.first_unscheduled_hint, 0));
      for (std::size_t t = first; t < phase.tasks.size(); ++t) {
        TaskRuntime& task = phase.tasks[t];
        if (!task.needs_placement()) continue;
        if (resilience_->should_defer(task, now)) continue;
        if (capacity_exhausted) continue;
        const ServerId server = pick_server(ctx, task);
        if (server == kInvalidServer) {
          capacity_exhausted = true;  // identical siblings will not fit either
          continue;
        }
        if (!ctx.place_copy(job, phase, task, server)) {
          capacity_exhausted = true;
          continue;
        }
        ++placed_total;
      }
    }
  }
  return placed_total;
}

int DollyMPScheduler::place_clones(SchedulerContext& ctx, int clone_budget) {
  if (clone_budget == 0) return 0;
  const int copy_cap = std::min(1 + clone_budget, ctx.config().max_copies_per_task);

  // Section 4.1's rule: clone small jobs "when the total amount of consumed
  // resources under cloning is less than the resource demand of other
  // jobs".  When no job is waiting for resources, leftover capacity is
  // free and every running task may be cloned; when jobs are queued, every
  // clone-second is stolen from a waiting task, so only overdue copies —
  // where the heavy-tail conditional gain is large — justify the cost.
  bool anyone_waiting = false;
  for (const JobOrder& jo : order_) {
    for (const auto& phase : jo.job->phases) {
      if (phase.runnable() && phase.unscheduled_tasks > 0) {
        anyone_waiting = true;
        break;
      }
    }
    if (anyone_waiting) break;
  }

  int placed = 0;
  auto clone_pass = [&](JobOrder& jo) {
    JobRuntime& job = *jo.job;
    if (job.finished) return;
    for (auto& phase : job.phases) {
      if (!phase.runnable() || phase.active_copies == 0) continue;
      // Clone only once every task of the phase has been scheduled — in the
      // YARN implementation an AM launches clones "when RM allocates more
      // containers than the number of pending tasks" (Section 5.2), which
      // naturally targets the phase's final wave: the stragglers holding
      // the phase barrier.  Cloning earlier waves would only halve the
      // phase's throughput.
      if (phase.unscheduled_tasks > 0) continue;
      // Within a phase, clone the longest-running copies first: under the
      // heavy-tailed duration model a task's conditional remaining time
      // grows with its elapsed time, so the oldest running tasks are the
      // likeliest stragglers and the min-of-copies gain is largest there.
      // Corollary 4.1's clone budget: within priority class l (window
      // 2^l slots), a task needs exactly r_j = min{r : 2^l h(r) >= theta}
      // concurrent copies to meet the window — more cannot help it, fewer
      // may miss it.  The restriction only matters when resources are
      // contested; with an idle queue the flat budget applies (Section
      // 4.1's free-cloning rule).
      int phase_cap = copy_cap;
      if (config_.corollary_clone_counts && anyone_waiting && jo.has_priority) {
        // jo.has_priority guards against the 1 << 20 not-yet-prioritized
        // sentinel reaching ldexp, matching the old hash-map lookup miss.
        const double window_seconds = std::ldexp(1.0, jo.priority) * ctx.slot_seconds();
        const int needed =
            phase.speedup.min_copies_for(phase.spec->theta_seconds, window_seconds);
        if (needed > 0) phase_cap = std::min(copy_cap, std::max(1, needed));
      }
      candidates_.clear();
      for (auto& task : phase.tasks) {
        if (task.finished || !task.running()) continue;
        if (task.total_copies() >= phase_cap) continue;
        if (anyone_waiting) {
          // Launch-time clones (same slot as the original — the Section 3
          // model where "all clones of a task are launched at the same
          // time") and overdue-straggler clones carry the payoff; mid-life
          // clones of healthy tasks only burn contested resources.
          const double elapsed =
              static_cast<double>(ctx.now() - task.first_start) * ctx.slot_seconds();
          const bool launch_time = task.first_start == ctx.now();
          if (!launch_time && elapsed < phase.spec->theta_seconds) continue;
        }
        candidates_.push_back(&task);
      }
      // Candidates are pushed in ascending task index, so breaking
      // first_start ties on task index makes this total order sort exactly
      // as the previous stable_sort (and allocation-free).
      std::sort(candidates_.begin(), candidates_.end(),
                [](const TaskRuntime* a, const TaskRuntime* b) {
                  if (a->first_start != b->first_start) return a->first_start < b->first_start;
                  return a->ref.task < b->ref.task;
                });
      for (TaskRuntime* task : candidates_) {
        const ServerId server = pick_server(ctx, *task);
        if (server == kInvalidServer) continue;
        if (ctx.place_copy(job, phase, *task, server)) ++placed;
      }
    }
  };

  if (config_.smallest_first_clones) {
    for (auto& jo : order_) clone_pass(jo);
  } else {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) clone_pass(*it);
  }
  return placed;
}

void DollyMPScheduler::schedule(SchedulerContext& ctx) {
  ResiliencePolicy* res = live_resilience(ctx);
  if (res != nullptr) res->begin_invocation(ctx);
  if (priorities_dirty_) {
    recompute_priorities(ctx);
    priorities_dirty_ = false;
  }
  rebuild_order(ctx);
  // Graceful degradation: shrink the clone budget when live capacity is
  // below the watermark — redundancy yields to first copies under duress.
  int clone_budget = config_.clone_budget;
  if (res != nullptr) {
    clone_budget = res->degraded_clone_budget(ctx, config_.clone_budget);
  }
  // Overload ladder (service mode): cloning inflates effective utilization
  // exactly when the system is saturated, so level 1 halves the configured
  // budget and level >= 2 suspends cloning outright.  Level 0 — every batch
  // run — leaves the budget untouched.
  const int overload = ctx.overload_level();
  if (overload >= 1) {
    clone_budget = std::min(clone_budget, overload >= 2 ? 0 : config_.clone_budget / 2);
  }
  if (clone_budget < config_.clone_budget) {
    ctx.note_clone_budget_degraded(clone_budget, config_.clone_budget);
  }
  if (res != nullptr) {
    place_new_tasks_resilient(ctx);
  } else {
    place_new_tasks(ctx);
  }
  // "Repeat Step 9 twice if there are available resources" — each extra
  // pass may add one more clone per task up to the budget.
  for (int pass = 0; pass < clone_budget; ++pass) {
    if (place_clones(ctx, clone_budget) == 0) break;
  }
  if (res != nullptr) res->finish_invocation(ctx);
}

void DollyMPScheduler::save_state(StateWriter& w) const {
  // Only current-epoch priority entries matter: stale slots are garbage by
  // construction.  Saved as (id, prio, vol) triples so the restored store
  // can be any size — ensure_slot regrows it on load.
  std::uint64_t valid = 0;
  for (std::size_t id = 0; id < prio_epoch_.size(); ++id) {
    if (prio_epoch_[id] == epoch_) ++valid;
  }
  w.u64(valid);
  for (std::size_t id = 0; id < prio_epoch_.size(); ++id) {
    if (prio_epoch_[id] != epoch_) continue;
    w.i32(static_cast<std::int32_t>(id));
    w.i32(prio_value_[id]);
    w.f64(vol_value_[id]);
  }
  w.b(priorities_dirty_);
  w.b(scorer_.has_value());
  if (scorer_) scorer_->save_state(w);
  w.b(resilience_.has_value());
  if (resilience_) resilience_->save_state(w);
}

void DollyMPScheduler::load_state(StateReader& r) {
  // Called on a fresh same-config instance after reset(): write the saved
  // entries at the current epoch so priority_known sees them again.
  const std::uint64_t valid = r.u64();
  for (std::uint64_t i = 0; i < valid; ++i) {
    const JobId id = r.i32();
    const int prio = r.i32();
    const double vol = r.f64();
    ensure_slot(id);
    const auto slot = static_cast<std::size_t>(id);
    prio_epoch_[slot] = epoch_;
    prio_value_[slot] = prio;
    vol_value_[slot] = vol;
  }
  priorities_dirty_ = r.b();
  if (r.b()) {
    // The lazy optionals are sized from the stream, so a zero-server
    // placeholder is enough to restore into.
    if (!scorer_) scorer_.emplace(0);
    scorer_->load_state(r);
  }
  if (r.b()) {
    if (!resilience_) resilience_.emplace(config_.resilience, 0);
    resilience_->load_state(r);
  }
}

}  // namespace dollymp
