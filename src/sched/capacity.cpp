#include "dollymp/sched/capacity.h"

namespace dollymp {

CapacityScheduler::CapacityScheduler(CapacityConfig config) : config_(config) {}

void CapacityScheduler::schedule(SchedulerContext& ctx) {
  // FIFO over arrival order (the active list is maintained in arrival
  // order by the simulator).  A single-queue YARN Capacity Scheduler
  // reserves containers for the application at the head of the queue: when
  // the head job still has runnable container requests that do not fit,
  // later applications are not offered the leftover (no size-aware
  // backfill).  This head-of-line behaviour is what makes its flowtime
  // collapse under load in the paper's Figs. 6-7.
  // Placement is first-fit: YARN grants containers on whichever NodeManager
  // heartbeats with room, with no multi-resource packing (that is Tetris's
  // whole point, Section 2).
  for (JobRuntime* job : ctx.active_jobs()) {
    place_gang_phases(ctx, *job);
    for (auto& phase : job->phases) {
      if (!phase.runnable()) continue;
      while (TaskRuntime* task = next_unscheduled_task(phase)) {
        const ServerId server = first_fit_server(ctx, task->demand);
        if (server == kInvalidServer) break;
        if (!ctx.place_copy(*job, phase, *task, server)) break;
      }
    }
    bool head_blocked = false;
    for (auto& phase : job->phases) {
      if (!phase.runnable()) continue;
      // A gang phase never hands out per-task work, so a pending gang
      // blocks the head of the queue via its unscheduled counter instead.
      const bool pending = (phase.spec->gang && phase.unscheduled_tasks > 0) ||
                           next_unscheduled_task(phase) != nullptr;
      if (pending) {
        head_blocked = true;
        break;
      }
    }
    if (head_blocked) break;
  }
  run_speculation_pass(ctx, config_.speculation, &spec_scratch_);
}

}  // namespace dollymp
