#include "dollymp/workload/analysis.h"

#include <algorithm>
#include <sstream>

#include "dollymp/job/dag.h"

namespace dollymp {

WorkloadStats analyze_workload(const std::vector<JobSpec>& jobs) {
  WorkloadStats stats;
  stats.jobs = jobs.size();
  if (jobs.empty()) return stats;

  double first_arrival = jobs.front().arrival_seconds;
  double last_arrival = jobs.front().arrival_seconds;
  long long straggly_phases = 0;
  double critical_path_total = 0.0;
  for (const auto& job : jobs) {
    first_arrival = std::min(first_arrival, job.arrival_seconds);
    last_arrival = std::max(last_arrival, job.arrival_seconds);
    critical_path_total += critical_path_length(job, 0.0);
    for (const auto& phase : job.phases) {
      ++stats.phases;
      stats.tasks += phase.task_count;
      const double task_seconds =
          static_cast<double>(phase.task_count) * phase.theta_seconds;
      stats.cpu_core_seconds += task_seconds * phase.demand.cpu();
      stats.mem_gb_seconds += task_seconds * phase.demand.mem();
      stats.gpu_seconds += task_seconds * phase.demand.gpu();
      if (phase.theta_seconds > 0.0 &&
          phase.sigma_seconds / phase.theta_seconds > 0.5) {
        ++straggly_phases;
      }
    }
  }
  stats.arrival_window_seconds = last_arrival - first_arrival;
  stats.mean_critical_path_seconds =
      critical_path_total / static_cast<double>(jobs.size());
  stats.straggler_phase_fraction =
      stats.phases == 0
          ? 0.0
          : static_cast<double>(straggly_phases) / static_cast<double>(stats.phases);
  return stats;
}

double offered_load(const std::vector<JobSpec>& jobs, const Cluster& cluster) {
  const WorkloadStats stats = analyze_workload(jobs);
  if (stats.arrival_window_seconds <= 0.0 || cluster.empty()) return 0.0;
  const Resources total = cluster.total_capacity();
  double load = 0.0;
  if (total.cpu() > 0.0) {
    load = std::max(load,
                    stats.cpu_core_seconds / stats.arrival_window_seconds / total.cpu());
  }
  if (total.mem() > 0.0) {
    load = std::max(load,
                    stats.mem_gb_seconds / stats.arrival_window_seconds / total.mem());
  }
  if (total.gpu() > 0.0) {
    load = std::max(load,
                    stats.gpu_seconds / stats.arrival_window_seconds / total.gpu());
  }
  return load;
}

std::string render_workload_report(const std::vector<JobSpec>& jobs,
                                   const Cluster& cluster) {
  const WorkloadStats stats = analyze_workload(jobs);
  std::ostringstream os;
  os << "workload: " << stats.jobs << " jobs, " << stats.phases << " phases, "
     << stats.tasks << " tasks\n"
     << "  work:            " << stats.cpu_core_seconds << " core-s, "
     << stats.mem_gb_seconds << " GB-s\n"
     << "  arrival window:  " << stats.arrival_window_seconds << " s\n"
     << "  mean crit. path: " << stats.mean_critical_path_seconds << " s\n"
     << "  straggler-prone phases: " << stats.straggler_phase_fraction * 100.0 << " %\n"
     << "  offered load on " << cluster.size()
     << "-server cluster: " << offered_load(jobs, cluster) << "\n";
  return os.str();
}

}  // namespace dollymp
