#include "dollymp/workload/trace_io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "dollymp/common/csv.h"

namespace dollymp {

namespace {

std::string join_parents(const std::vector<PhaseIndex>& parents) {
  std::string out;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (i) out += ';';
    out += std::to_string(parents[i]);
  }
  return out;
}

std::vector<PhaseIndex> split_parents(const std::string& text) {
  std::vector<PhaseIndex> parents;
  std::stringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ';')) {
    if (!token.empty()) parents.push_back(static_cast<PhaseIndex>(std::stoi(token)));
  }
  return parents;
}

// The `gpu` and `gang` columns are written unconditionally but optional on
// read, so pre-GPU trace files keep loading unchanged (demand defaults to
// zero GPUs, phases to non-gang).
const std::vector<std::string> kHeader = {
    "job_id",  "job_name", "app",     "arrival_s", "phase", "phase_name", "tasks",
    "cpu",     "mem_gb",   "gpu",     "theta_s",   "sigma_s", "gang",     "parents"};

}  // namespace

std::string trace_to_csv(const std::vector<JobSpec>& jobs) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.write_header(kHeader);
  for (const auto& job : jobs) {
    for (std::size_t k = 0; k < job.phases.size(); ++k) {
      const auto& p = job.phases[k];
      writer.write_row(static_cast<long long>(job.id), job.name, job.app,
                       job.arrival_seconds, static_cast<long long>(k), p.name,
                       static_cast<long long>(p.task_count), p.demand.cpu(),
                       p.demand.mem(), p.demand.gpu(), p.theta_seconds, p.sigma_seconds,
                       static_cast<long long>(p.gang ? 1 : 0), join_parents(p.parents));
    }
  }
  return os.str();
}

std::vector<JobSpec> trace_from_csv(const std::string& csv_text) {
  const CsvTable table = CsvTable::parse(csv_text);
  // Jobs may be interleaved; group rows by job id preserving first-seen
  // order, and phases by their explicit phase index.
  std::vector<JobSpec> jobs;
  std::map<long long, std::size_t> index_of;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const long long id = table.cell_int(r, "job_id");
    auto [it, inserted] = index_of.try_emplace(id, jobs.size());
    if (inserted) {
      JobSpec job;
      job.id = static_cast<JobId>(id);
      job.name = table.cell(r, "job_name");
      job.app = table.cell(r, "app");
      job.arrival_seconds = table.cell_double(r, "arrival_s");
      jobs.push_back(std::move(job));
    }
    JobSpec& job = jobs[it->second];
    const auto phase_idx = static_cast<std::size_t>(table.cell_int(r, "phase"));
    if (job.phases.size() <= phase_idx) job.phases.resize(phase_idx + 1);
    PhaseSpec& phase = job.phases[phase_idx];
    phase.name = table.cell(r, "phase_name");
    phase.task_count = static_cast<int>(table.cell_int(r, "tasks"));
    const double gpus =
        table.column("gpu").has_value() ? table.cell_double(r, "gpu") : 0.0;
    phase.demand = {table.cell_double(r, "cpu"), table.cell_double(r, "mem_gb"), gpus};
    phase.theta_seconds = table.cell_double(r, "theta_s");
    phase.sigma_seconds = table.cell_double(r, "sigma_s");
    phase.gang = table.column("gang").has_value() && table.cell_int(r, "gang") != 0;
    phase.parents = split_parents(table.cell(r, "parents"));
  }
  for (const auto& job : jobs) job.validate();
  return jobs;
}

void save_trace(const std::vector<JobSpec>& jobs, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace_io: cannot write " + path);
  out << trace_to_csv(jobs);
}

std::vector<JobSpec> load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return trace_from_csv(buf.str());
}

}  // namespace dollymp
