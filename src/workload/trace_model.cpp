#include "dollymp/workload/trace_model.h"

#include <algorithm>
#include <cmath>

#include "dollymp/common/distributions.h"

namespace dollymp {

TraceModel::TraceModel(TraceModelConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

int TraceModel::sample_task_count(bool small) {
  const double median = small ? config_.small_tasks_median : config_.large_tasks_median;
  const auto dist = LognormalDist::fit(median, config_.tasks_cv);
  const double raw = dist.sample(rng_);
  return std::clamp(static_cast<int>(std::lround(raw)), 1, config_.max_tasks_per_phase);
}

Resources TraceModel::sample_demand() {
  const auto cpu_dist = LognormalDist::fit(config_.cpu_median, config_.cpu_cv);
  // YARN-style integral cores, >= 1.
  double cpu = std::clamp(std::round(cpu_dist.sample(rng_)), 1.0, config_.cpu_max);
  const auto mem_dist =
      LognormalDist::fit(config_.mem_per_cpu_median, config_.mem_per_cpu_cv);
  double mem = std::clamp(cpu * mem_dist.sample(rng_), 0.5, config_.mem_max);
  // Round memory to 0.5 GB granularity like container requests.
  mem = std::round(mem * 2.0) / 2.0;
  return {cpu, mem};
}

double TraceModel::sample_theta() {
  const auto dist = LognormalDist::fit(config_.theta_median_seconds, config_.theta_cv);
  return std::clamp(dist.sample(rng_), 5.0, config_.theta_max_seconds);
}

JobSpec TraceModel::sample_job(JobId id) {
  JobSpec job;
  job.id = id;
  job.name = "trace-" + std::to_string(id);
  const bool small = rng_.chance(config_.small_job_fraction);
  job.app = small ? "trace-small" : "trace-large";

  // Shape: 1 phase, 2 phases (map/reduce-like), or a chain DAG.
  int phases = 1;
  if (rng_.chance(config_.dag_fraction)) {
    phases = static_cast<int>(rng_.range(3, config_.max_phases));
  } else if (rng_.chance(config_.multi_phase_fraction)) {
    phases = 2;
  }

  const Resources demand = sample_demand();
  const int head_tasks = sample_task_count(small);
  const double head_theta = sample_theta();

  for (int k = 0; k < phases; ++k) {
    PhaseSpec phase;
    phase.name = "phase" + std::to_string(k);
    // Downstream phases shrink (reduce-style) but keep the job's demand
    // profile; tasks from the same phase share resource requirements
    // (Section 5.2's estimation assumption).
    phase.task_count = std::max(1, head_tasks >> std::min(k, 4));
    phase.demand = demand;
    phase.theta_seconds = k == 0 ? head_theta : sample_theta();
    const bool straggly = rng_.chance(config_.straggler_phase_fraction);
    phase.sigma_seconds =
        (straggly ? config_.straggler_cv : config_.normal_cv) * phase.theta_seconds;
    if (k > 0) phase.parents = {static_cast<PhaseIndex>(k - 1)};
    job.phases.push_back(std::move(phase));
  }

  job.validate();
  return job;
}

std::vector<JobSpec> TraceModel::sample_jobs(int count, JobId first_id) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(std::max(0, count)));
  for (int i = 0; i < count; ++i) jobs.push_back(sample_job(first_id + i));
  return jobs;
}

}  // namespace dollymp
