#include "dollymp/workload/apps.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dollymp {

namespace {
int blocks_for(double input_gb, double block_gb) {
  if (input_gb <= 0.0) throw std::invalid_argument("apps: input_gb must be > 0");
  if (block_gb <= 0.0) throw std::invalid_argument("apps: block_gb must be > 0");
  return std::max(1, static_cast<int>(std::ceil(input_gb / block_gb)));
}
}  // namespace

JobSpec make_wordcount(JobId id, double input_gb, double arrival_seconds,
                       const AppConfig& config) {
  const int maps = blocks_for(input_gb, config.block_gb);
  const int reduces =
      std::max(1, static_cast<int>(std::lround(maps * config.reduce_fraction)));
  const double map_theta = config.map_theta_per_gb * config.block_gb * 4.0;
  const double reduce_theta = map_theta * 1.5;

  JobSpec job;
  job.id = id;
  job.name = "wordcount-" + std::to_string(id);
  job.app = "wordcount";
  job.arrival_seconds = arrival_seconds;

  PhaseSpec map;
  map.name = "map";
  map.task_count = maps;
  map.demand = config.map_demand;
  map.theta_seconds = map_theta;
  map.sigma_seconds = config.straggler_cv * map_theta;
  job.phases.push_back(map);

  PhaseSpec reduce;
  reduce.name = "reduce";
  reduce.task_count = reduces;
  reduce.demand = config.reduce_demand;
  reduce.theta_seconds = reduce_theta;
  reduce.sigma_seconds = config.straggler_cv * reduce_theta;
  reduce.parents = {0};
  job.phases.push_back(reduce);

  job.validate();
  return job;
}

JobSpec make_pagerank(JobId id, double input_gb, int iterations, double arrival_seconds,
                      const AppConfig& config) {
  if (iterations < 1) throw std::invalid_argument("make_pagerank: iterations >= 1");
  const int partitions = blocks_for(input_gb, config.block_gb);
  const double compute_theta = config.map_theta_per_gb * config.block_gb * 3.0;

  JobSpec job;
  job.id = id;
  job.name = "pagerank-" + std::to_string(id);
  job.app = "pagerank";
  job.arrival_seconds = arrival_seconds;

  PhaseSpec init;
  init.name = "partition";
  init.task_count = partitions;
  init.demand = config.map_demand;
  init.theta_seconds = compute_theta * 0.6;
  init.sigma_seconds = config.straggler_cv * init.theta_seconds;
  job.phases.push_back(init);

  PhaseIndex previous = 0;
  for (int it = 0; it < iterations; ++it) {
    PhaseSpec compute;
    compute.name = "compute-" + std::to_string(it);
    compute.task_count = partitions;
    compute.demand = config.map_demand;
    compute.theta_seconds = compute_theta;
    compute.sigma_seconds = config.straggler_cv * compute_theta;
    compute.parents = {previous};
    job.phases.push_back(compute);
    previous = static_cast<PhaseIndex>(job.phases.size() - 1);

    PhaseSpec aggregate;
    aggregate.name = "aggregate-" + std::to_string(it);
    aggregate.task_count = std::max(1, partitions / 8);
    aggregate.demand = config.reduce_demand;
    aggregate.theta_seconds = compute_theta * 0.5;
    aggregate.sigma_seconds = config.straggler_cv * aggregate.theta_seconds;
    aggregate.parents = {previous};
    job.phases.push_back(aggregate);
    previous = static_cast<PhaseIndex>(job.phases.size() - 1);
  }

  job.validate();
  return job;
}

JobSpec make_terasort(JobId id, double input_gb, double arrival_seconds,
                      const AppConfig& config) {
  const int partitions = blocks_for(input_gb, config.block_gb);
  const double base_theta = config.map_theta_per_gb * config.block_gb * 4.0;

  JobSpec job;
  job.id = id;
  job.name = "terasort-" + std::to_string(id);
  job.app = "terasort";
  job.arrival_seconds = arrival_seconds;

  PhaseSpec sample;
  sample.name = "sample";
  sample.task_count = std::max(1, partitions / 16);
  sample.demand = config.map_demand;
  sample.theta_seconds = base_theta * 0.3;
  sample.sigma_seconds = config.straggler_cv * sample.theta_seconds;
  job.phases.push_back(sample);

  PhaseSpec sort;
  sort.name = "partition-sort";
  sort.task_count = partitions;
  // Memory-heavy: spill buffers roughly double the mapper footprint.
  sort.demand = {config.map_demand.cpu(), config.map_demand.mem() * 2.0};
  sort.theta_seconds = base_theta * 1.2;
  sort.sigma_seconds = config.straggler_cv * sort.theta_seconds;
  sort.parents = {0};
  job.phases.push_back(sort);

  PhaseSpec merge;
  merge.name = "merge";
  merge.task_count = std::max(1, partitions / 4);
  merge.demand = {config.reduce_demand.cpu() * 2.0, config.reduce_demand.mem()};
  merge.theta_seconds = base_theta;
  merge.sigma_seconds = config.straggler_cv * merge.theta_seconds;
  merge.parents = {1};
  job.phases.push_back(merge);

  job.validate();
  return job;
}

JobSpec make_sql_join(JobId id, double left_gb, double right_gb, double arrival_seconds,
                      const AppConfig& config) {
  const int left_parts = blocks_for(left_gb, config.block_gb);
  const int right_parts = blocks_for(right_gb, config.block_gb);
  const double scan_theta = config.map_theta_per_gb * config.block_gb * 2.0;

  JobSpec job;
  job.id = id;
  job.name = "sqljoin-" + std::to_string(id);
  job.app = "sqljoin";
  job.arrival_seconds = arrival_seconds;

  PhaseSpec left;
  left.name = "scan-left";
  left.task_count = left_parts;
  left.demand = config.map_demand;
  left.theta_seconds = scan_theta;
  left.sigma_seconds = config.straggler_cv * scan_theta;
  job.phases.push_back(left);

  PhaseSpec right;
  right.name = "scan-right";
  right.task_count = right_parts;
  right.demand = config.map_demand;
  right.theta_seconds = scan_theta;
  right.sigma_seconds = config.straggler_cv * scan_theta;
  job.phases.push_back(right);

  PhaseSpec join;
  join.name = "join";
  join.task_count = std::max(1, (left_parts + right_parts) / 4);
  join.demand = {config.reduce_demand.cpu(), config.reduce_demand.mem() * 1.5};
  join.theta_seconds = scan_theta * 1.5;
  join.sigma_seconds = config.straggler_cv * join.theta_seconds;
  join.parents = {0, 1};  // the diamond: waits on both scans
  job.phases.push_back(join);

  PhaseSpec aggregate;
  aggregate.name = "aggregate";
  aggregate.task_count = std::max(1, join.task_count / 4);
  aggregate.demand = config.reduce_demand;
  aggregate.theta_seconds = scan_theta * 0.6;
  aggregate.sigma_seconds = config.straggler_cv * aggregate.theta_seconds;
  aggregate.parents = {2};
  job.phases.push_back(aggregate);

  job.validate();
  return job;
}

JobSpec make_mltrain(JobId id, double arrival_seconds, const MlTrainConfig& config) {
  if (config.world_size < 1) throw std::invalid_argument("make_mltrain: world_size >= 1");
  if (config.steps < 1) throw std::invalid_argument("make_mltrain: steps >= 1");

  JobSpec job;
  job.id = id;
  job.name = "mltrain-" + std::to_string(id);
  job.app = "mltrain";
  job.arrival_seconds = arrival_seconds;

  PhaseSpec setup;
  setup.name = "setup";
  setup.task_count = 1;
  // CPU-only: dataset download and graph compilation hold no GPU.
  setup.demand = {2.0, 8.0};
  setup.theta_seconds = config.setup_theta_seconds;
  setup.sigma_seconds = config.straggler_cv * setup.theta_seconds;
  job.phases.push_back(setup);

  PhaseIndex previous = 0;
  for (int s = 0; s < config.steps; ++s) {
    PhaseSpec step;
    step.name = "step-" + std::to_string(s);
    step.task_count = config.world_size;
    step.demand = config.rank_demand;
    step.theta_seconds = config.step_theta_seconds;
    step.sigma_seconds = config.straggler_cv * config.step_theta_seconds;
    step.gang = true;
    step.parents = {previous};
    job.phases.push_back(step);
    previous = static_cast<PhaseIndex>(job.phases.size() - 1);
  }

  job.validate();
  return job;
}

}  // namespace dollymp
