#include "dollymp/workload/arrivals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dollymp/common/distributions.h"
#include "dollymp/common/rng.h"

namespace dollymp {

void assign_batch_arrivals(std::vector<JobSpec>& jobs) {
  for (auto& job : jobs) job.arrival_seconds = 0.0;
}

void assign_fixed_arrivals(std::vector<JobSpec>& jobs, double gap_seconds) {
  if (gap_seconds < 0.0) throw std::invalid_argument("arrivals: gap must be >= 0");
  double t = 0.0;
  for (auto& job : jobs) {
    job.arrival_seconds = t;
    t += gap_seconds;
  }
}

void assign_jittered_arrivals(std::vector<JobSpec>& jobs, double mean_gap_seconds,
                              double jitter_fraction, std::uint64_t seed) {
  if (mean_gap_seconds <= 0.0) throw std::invalid_argument("arrivals: gap must be > 0");
  jitter_fraction = std::clamp(jitter_fraction, 0.0, 1.0);
  Rng rng(seed);
  double t = 0.0;
  for (auto& job : jobs) {
    job.arrival_seconds = t;
    const double jitter = rng.uniform(-jitter_fraction, jitter_fraction);
    t += mean_gap_seconds * (1.0 + jitter);
  }
}

void assign_poisson_arrivals(std::vector<JobSpec>& jobs, double mean_gap_seconds,
                             std::uint64_t seed) {
  const ExponentialDist gap(mean_gap_seconds);
  Rng rng(seed);
  double t = 0.0;
  for (auto& job : jobs) {
    job.arrival_seconds = t;
    t += gap.sample(rng);
  }
}

void assign_diurnal_arrivals(std::vector<JobSpec>& jobs, double mean_gap_seconds,
                             double amplitude, double period_seconds,
                             std::uint64_t seed) {
  if (mean_gap_seconds <= 0.0) throw std::invalid_argument("arrivals: gap must be > 0");
  if (amplitude < 0.0 || amplitude >= 1.0) {
    throw std::invalid_argument("arrivals: amplitude must be in [0, 1)");
  }
  if (period_seconds <= 0.0) {
    throw std::invalid_argument("arrivals: period must be > 0");
  }
  // Thinning: candidate events from a homogeneous process at the peak rate
  // lambda_max = (1 + amplitude)/gap are accepted with probability
  // lambda(t)/lambda_max.
  const double lambda_max = (1.0 + amplitude) / mean_gap_seconds;
  const ExponentialDist candidate_gap(1.0 / lambda_max);
  Rng rng(seed);
  double t = 0.0;
  constexpr double kTwoPi = 6.283185307179586;
  for (auto& job : jobs) {
    for (;;) {
      t += candidate_gap.sample(rng);
      const double rate =
          (1.0 + amplitude * std::sin(kTwoPi * t / period_seconds)) / mean_gap_seconds;
      if (rng.uniform() * lambda_max <= rate) break;
    }
    job.arrival_seconds = t;
  }
}

}  // namespace dollymp
