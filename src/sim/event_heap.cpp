#include "dollymp/sim/event_heap.h"

namespace dollymp {

std::size_t event_shard_for(std::int32_t server, std::int32_t job_index,
                            std::size_t shards, std::size_t servers,
                            std::size_t jobs) {
  if (shards <= 1) return 0;
  // The exact inverse of shard_range(s, shards, n): entity i belongs to
  // shard ((i + 1) * shards - 1) / n, the unique s with
  // s*n/shards <= i < (s+1)*n/shards.  Rack events carry the rack index in
  // the server field — racks number fewer than servers, so the clamp below
  // only guards degenerate single-entity universes.
  const auto place = [shards](std::size_t i, std::size_t n) {
    if (n == 0) return std::size_t{0};
    i = std::min(i, n - 1);
    return ((i + 1) * shards - 1) / n;
  };
  if (server >= 0) return place(static_cast<std::size_t>(server), servers);
  if (job_index >= 0) return place(static_cast<std::size_t>(job_index), jobs);
  return 0;  // timer wakeups and the cluster-wide copy-fault timer
}

}  // namespace dollymp
