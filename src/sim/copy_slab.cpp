#include "dollymp/sim/copy_slab.h"

#include <cstring>
#include <stdexcept>

#include "dollymp/common/debug_check.h"

namespace dollymp {

std::uint32_t CopySlab::capacity_class(std::uint32_t n) {
  std::uint32_t cls = 0;
  while ((1u << cls) < n) ++cls;
  return cls;
}

CopySlab::Extent CopySlab::acquire(std::uint32_t min_capacity) {
  if (min_capacity == 0) min_capacity = 1;
  if (min_capacity > kBlockCopies) {
    throw std::length_error("CopySlab: extent larger than a block");
  }
  const std::uint32_t cls = capacity_class(min_capacity);
  const std::uint32_t capacity = 1u << cls;
  ++counters_.acquires;
  if (cls < free_.size() && !free_[cls].empty()) {
    CopyRuntime* data = free_[cls].back();
    free_[cls].pop_back();
    ++counters_.reuses;
    return {data, capacity};
  }
  // Carve from the bump block; start a fresh block when the remainder is
  // short.  Extents are pow2-sized and blocks are a pow2 multiple, so a
  // fresh block never leaves a gap — the remainder check only fires when
  // mixed extent sizes fragment the tail, and the skipped slots are
  // reclaimed implicitly when the whole slab clears.
  if (bump_block_ >= blocks_.size() || bump_used_ + capacity > kBlockCopies) {
    if (bump_block_ < blocks_.size()) bump_block_ = blocks_.size();
    blocks_.push_back(std::make_unique<CopyRuntime[]>(kBlockCopies));
    ++counters_.block_allocations;
    counters_.copies_capacity += kBlockCopies;
    bump_block_ = blocks_.size() - 1;
    bump_used_ = 0;
  }
  CopyRuntime* data = blocks_[bump_block_].get() + bump_used_;
  bump_used_ += capacity;
  return {data, capacity};
}

void CopySlab::release(Extent extent) {
  if (extent.data == nullptr) return;
  DMP_DEBUG_CHECK(extent.capacity > 0 && (extent.capacity & (extent.capacity - 1)) == 0,
                  "CopySlab::release: capacity must be the pow2 acquire() returned");
  const std::uint32_t cls = capacity_class(extent.capacity);
  if (cls >= free_.size()) free_.resize(cls + 1);
  free_[cls].push_back(extent.data);
}

void CopySlab::clear() {
  blocks_.clear();
  free_.clear();
  bump_block_ = 0;
  bump_used_ = 0;
  counters_.copies_capacity = 0;
}

void CopyList::push_back(const CopyRuntime& copy) {
  if (size_ == capacity_) {
    DMP_DEBUG_CHECK(slab_ != nullptr, "CopyList: push_back before bind()");
    const std::uint32_t want = capacity_ == 0 ? 2 : capacity_ * 2;
    CopySlab::Extent next = slab_->acquire(want);
    if (size_ > 0) std::memcpy(next.data, data_, size_ * sizeof(CopyRuntime));
    if (data_ != nullptr) slab_->release({data_, capacity_});
    data_ = next.data;
    capacity_ = next.capacity;
  }
  data_[size_++] = copy;
}

void CopyList::reserve(std::size_t n) {
  if (n <= capacity_) return;
  DMP_DEBUG_CHECK(slab_ != nullptr, "CopyList: reserve before bind()");
  CopySlab::Extent next = slab_->acquire(static_cast<std::uint32_t>(n));
  if (size_ > 0) std::memcpy(next.data, data_, size_ * sizeof(CopyRuntime));
  if (data_ != nullptr) slab_->release({data_, capacity_});
  data_ = next.data;
  capacity_ = next.capacity;
}

void CopyList::release_storage() {
  if (data_ == nullptr) return;
  slab_->release({data_, capacity_});
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
}

}  // namespace dollymp
