#include "dollymp/sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

#include "dollymp/cluster/background_load.h"
#include "dollymp/cluster/placement_index.h"
#include "dollymp/common/distributions.h"
#include "dollymp/common/logging.h"
#include "dollymp/common/stats.h"
#include "dollymp/common/thread_pool.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/sim/event_heap.h"
#include "dollymp/sim/execution.h"
#include "dollymp/sim/faults.h"
#include "dollymp/sim/runtime_store.h"

namespace dollymp {

namespace {

/// Everything that can make the simulator visit a slot, in one typed heap.
/// Kind values double as the same-slot processing order: repairs before
/// failures (a machine that bounces within one slot ends up alive),
/// failures before completions (a copy cannot finish on a machine that
/// died the same instant), completions before timer wakeups (the scheduler
/// invocation a timer triggers must observe the slot's completions).
enum class EvKind : std::uint8_t {
  kServerRepair = 0,
  kServerFailure = 1,
  kCompletion = 2,  ///< copy finish (stochastic) or work prediction (work-based)
  kTimer = 3,       ///< scheduler wakeup requested via request_wakeup()
  // Fault-matrix events (sim/faults.h).  Rack events carry the rack index
  // in the `server` field.  Recover/repair kinds sort before their
  // onset/failure counterparts so a machine that bounces within one slot
  // ends up healthy, matching the crash-class convention above.
  kRackRepair = 4,
  kRackFailure = 5,
  kFailSlowRecover = 6,
  kFailSlowOnset = 7,
  kCopyFault = 8,   ///< cluster-wide transient copy-fault timer
};

/// One heap entry.  Completion events come in two flavours sharing the
/// kind: per-copy events (copy >= 0; stale when the copy was killed) and
/// per-task work predictions (copy == -1; stale when the task's generation
/// moved on).  Fields a kind does not use hold fixed sentinels so the
/// comparator defines one deterministic total order over all events.
struct SimEvent {
  SimTime slot = 0;
  EvKind kind = EvKind::kTimer;
  std::int32_t job_index = -1;
  PhaseIndex phase = -1;
  std::int32_t task = -1;
  std::int32_t copy = -1;        // -1 for work-based task events and non-completions
  std::uint32_t generation = 0;  // work-based staleness check, also a tie breaker
  ServerId server = kInvalidServer;

  // Repairs and failures form one group so same-slot machine events across
  // servers pop server-major with the repair first per server (each pop
  // draws the machine's next lifetime from the failure RNG, so this order
  // is part of the deterministic realization).
  [[nodiscard]] int group() const {
    switch (kind) {
      case EvKind::kServerRepair:
      case EvKind::kServerFailure:
      case EvKind::kRackRepair:
      case EvKind::kRackFailure:
      case EvKind::kFailSlowRecover:
      case EvKind::kFailSlowOnset:
        return 0;
      case EvKind::kCopyFault:
        return 1;  // after machine state settles, before completions
      case EvKind::kCompletion:
        return 2;
      case EvKind::kTimer:
        return 3;
    }
    return 4;  // unreachable
  }

  // Min-heap by slot with a fully deterministic total order: kind group,
  // then every payload field.  `generation` participates so two work-based
  // predictions for the same task (pushed by successive copy-set changes
  // landing on the same slot) pop in generation order instead of an
  // implementation-defined one.
  friend bool operator>(const SimEvent& a, const SimEvent& b) {
    if (a.slot != b.slot) return a.slot > b.slot;
    if (a.group() != b.group()) return a.group() > b.group();
    if (a.server != b.server) return a.server > b.server;
    if (a.kind != b.kind) return a.kind > b.kind;
    if (a.job_index != b.job_index) return a.job_index > b.job_index;
    if (a.phase != b.phase) return a.phase > b.phase;
    if (a.task != b.task) return a.task > b.task;
    if (a.copy != b.copy) return a.copy > b.copy;
    return a.generation > b.generation;
  }
};

}  // namespace

class Simulator::Impl final : public SchedulerContext {
 public:
  Impl(Cluster cluster, const SimConfig& config)
      : cluster_(std::move(cluster)),
        config_(config),
        locality_(config.locality, cluster_),
        background_(config.background, cluster_.size(), splitmix_seed(config.seed, 0xB6)),
        rng_root_(config.seed),
        rec_(config.recorder) {
    rng_workload_ = rng_root_.split(1);
    rng_exec_ = rng_root_.split(2);
    rng_policy_ = rng_root_.split(3);
    rng_failure_ = rng_root_.split(4);
    if (config_.use_placement_index) index_.emplace(cluster_);
    if (config_.failures.enabled || config_.faults.any_enabled()) {
      faults_.emplace(cluster_, config_.failures, config_.faults, config_.slot_seconds,
                      rng_failure_);
    }
    // The deterministic parallel core's worker pool: threads == 1 (the
    // default) keeps the exact sequential path with no pool; 0 resolves to
    // hardware_concurrency inside ThreadPool.  A resolved single-worker
    // pool is dropped again — one worker cannot shard, so the sharded call
    // sites would run inline anyway and the thread would only idle.
    if (config_.threads != 1) {
      pool_.emplace(static_cast<std::size_t>(config_.threads));
      if (pool_->size() < 2) pool_.reset();
    }
    if (index_) {
      index_->set_parallelism(worker_pool(), &parallel_stats_);
      index_->set_batching(config_.batch_placement);
    }
  }

  SimResult run(const std::vector<JobSpec>& specs, Scheduler& scheduler);

  // ---- SchedulerContext ----------------------------------------------------
  [[nodiscard]] SimTime now() const override { return now_; }
  [[nodiscard]] double slot_seconds() const override { return config_.slot_seconds; }
  [[nodiscard]] const Cluster& cluster() const override { return cluster_; }
  [[nodiscard]] const SimConfig& config() const override { return config_; }
  [[nodiscard]] const std::vector<JobRuntime*>& active_jobs() override { return active_; }
  [[nodiscard]] Rng& policy_rng() override { return rng_policy_; }
  [[nodiscard]] PlacementIndex* placement_index() override {
    return index_ ? &*index_ : nullptr;
  }
  [[nodiscard]] ThreadPool* worker_pool() override { return pool_ ? &*pool_ : nullptr; }
  [[nodiscard]] ShardStats* shard_stats() override { return &parallel_stats_; }
  [[nodiscard]] Recorder* recorder() override { return rec_; }

  bool place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                  ServerId server) override {
    return place(job, phase, task, server, /*speculative=*/false);
  }

  bool place_speculative_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                              ServerId server) override {
    return place(job, phase, task, server, /*speculative=*/true);
  }

  void request_wakeup(SimTime slot) override {
    ++result_.stats.timer_wakeups_requested;
    const SimTime target = std::max(slot, now_ + 1);
    if (target == pending_timer_slot_) return;  // already registered
    push_event(SimEvent{target, EvKind::kTimer});
    ++pending_timer_count_;
    pending_timer_slot_ = target;
    trace(TraceEv::kWakeupRequested, -1, -1, -1, -1, -1, target);
  }

  void set_server_quarantined(ServerId server_id, bool quarantined) override {
    Server& server = cluster_.server(static_cast<std::size_t>(server_id));
    if (server.is_quarantined() == quarantined) return;  // idempotent
    server.set_quarantined(quarantined);
    // Index candidacy invariant: a server is indexed iff it is up AND not
    // quarantined.  When the server is down the crash/repair path owns the
    // index transition, so only touch the index for an up server here.
    if (quarantined) {
      ++result_.stats.servers_quarantined;
      if (index_ && !server.is_down()) index_->on_server_down(server_id);
      trace(TraceEv::kQuarantineEnter, -1, -1, -1, -1, server_id);
    } else {
      ++result_.stats.quarantine_exits;
      if (index_ && !server.is_down()) index_->on_server_up(server_id);
      trace(TraceEv::kQuarantineExit, -1, -1, -1, -1, server_id);
    }
  }

  void defer_retry(SimTime release_slot) override {
    deferred_this_invocation_ = true;
    request_wakeup(release_slot);
  }

  void note_retry_issued(long long backoff_slots) override {
    ++result_.stats.retries_issued;
    result_.stats.backoff_slots_waited += backoff_slots;
  }

  void note_clone_budget_degraded(int effective, int configured) override {
    ++result_.stats.clone_budget_degradations;
    trace(TraceEv::kCloneBudgetDegraded, -1, -1, -1, -1, -1,
          (static_cast<std::int64_t>(effective) << 16) |
              static_cast<std::int64_t>(configured));
  }

 private:
  static std::uint64_t splitmix_seed(std::uint64_t seed, std::uint64_t tag) {
    std::uint64_t s = seed ^ (tag * 0x9E3779B97F4A7C15ULL);
    return splitmix64(s);
  }

  void push_event(const SimEvent& event) {
    events_.push(event, event_shard_for(event.server, event.job_index,
                                        events_.shard_count(), cluster_.size(),
                                        jobs_.size()));
  }
  void push_completion(SimTime slot, const JobRuntime& job, PhaseIndex phase,
                       std::int32_t task, std::int32_t copy, std::uint32_t generation) {
    SimEvent e;
    e.slot = slot;
    e.kind = EvKind::kCompletion;
    e.job_index = static_cast<std::int32_t>(&job - jobs_.data());
    e.phase = phase;
    e.task = task;
    e.copy = copy;
    e.generation = generation;
    push_event(e);
  }

  bool place(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task, ServerId server,
             bool speculative);
  void process_arrivals();
  void drain_failures();
  void drain_completions();
  void handle_copy_finish(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                          std::size_t copy_index);
  void handle_work_event(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                         std::uint32_t generation);
  void complete_task(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task);
  void end_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                CopyRuntime& copy, bool killed);
  void complete_phase(JobRuntime& job, PhaseRuntime& phase);
  void complete_job(JobRuntime& job);
  void sample_utilization();
  void record_event(SimEventKind kind, JobId job = -1, PhaseIndex phase = -1,
                    int task = -1, std::int32_t server = -1) {
    if (!config_.record_events) return;
    result_.events.push_back(SimEventRecord{
        static_cast<double>(now_) * config_.slot_seconds, kind, job, phase, task, server});
  }
  /// Flight-recorder hook: one predicted-not-taken branch when recording is
  /// off (rec_ is null by default).
  void trace(TraceEv type, JobId job = -1, PhaseIndex phase = -1,
             std::int32_t task = -1, std::int32_t copy = -1,
             std::int32_t server = -1, std::int64_t aux = 0) {
    if (!rec_) return;
    TraceRecord r;
    r.slot = now_;
    r.type = type;
    r.job = job;
    r.phase = phase;
    r.task = task;
    r.copy = copy;
    r.server = server;
    r.aux = aux;
    rec_->append(r);
  }
  void validate_placeable(const JobSpec& spec) const;
  void seed_failures();
  void fail_server(ServerId server_id);
  void apply_server_down(ServerId server_id);
  void apply_server_up(ServerId server_id);
  void inject_copy_fault();
  void push_machine_event(SimTime delay, EvKind kind, std::int32_t target) {
    SimEvent e;
    e.slot = now_ + delay;
    e.kind = kind;
    e.server = target;
    push_event(e);
  }
  [[nodiscard]] bool any_copy_active() const { return active_copy_count_ > 0; }
  /// True when the heap holds anything that can change simulation state
  /// (timer wakeups alone cannot: they only re-invoke the scheduler).
  [[nodiscard]] bool state_events_pending() const {
    return events_.size() > pending_timer_count_;
  }

  Cluster cluster_;
  SimConfig config_;
  /// Incremental free-capacity index over cluster_, kept in lockstep with
  /// every allocate/release/failure/repair below (absent when
  /// config_.use_placement_index is off).
  std::optional<PlacementIndex> index_;
  LocalityModel locality_;
  BackgroundLoadProcess background_;
  Rng rng_root_;
  Rng rng_workload_;
  Rng rng_exec_;
  Rng rng_policy_;
  Rng rng_failure_;
  /// Fault-matrix delay draws + down-source bookkeeping; absent on a
  /// healthy run.  Holds a reference to rng_failure_ above.
  std::optional<FaultEngine> faults_;
  Recorder* rec_;  ///< flight recorder, null unless SimConfig::recorder set
  /// Worker pool of the parallel scheduling core (absent when
  /// config_.threads resolves to a single thread) and the shard-count /
  /// imbalance accumulator its sharded scans note into.
  std::optional<ThreadPool> pool_;
  ShardStats parallel_stats_;

  /// Struct-of-arrays backing store for all job/phase/task/copy state; the
  /// jobs_ reference below preserves the historical vector-of-jobs surface
  /// (indexing, `&job - jobs_.data()` event payloads) over its flat jobs
  /// array.
  RuntimeStore store_;
  std::vector<JobRuntime>& jobs_ = store_.jobs();
  std::vector<std::int32_t> arrival_order_;  // job indices by arrival slot
  std::size_t next_arrival_ = 0;
  std::vector<JobRuntime*> active_;
  /// The event heap: completions, failures, repairs and timer wakeups in a
  /// single deterministic total order, sharded by server/job range behind a
  /// loser-tree merge frontier (sim/event_heap.h).
  ShardedEventHeap<SimEvent> events_;
  std::size_t pending_timer_count_ = 0;
  SimTime pending_timer_slot_ = kNever;  ///< dedupe: last timer slot still queued

  SimTime now_ = 0;
  Scheduler* scheduler_ = nullptr;  ///< valid during run()
  long long active_copy_count_ = 0;
  bool placed_this_invocation_ = false;
  /// Set via defer_retry(): the policy held at least one task back on
  /// purpose this invocation (retry backoff), so an otherwise-idle slot is
  /// not a stall.
  bool deferred_this_invocation_ = false;
  bool arrivals_this_slot_ = false;
  int jobs_remaining_ = 0;

  SimResult result_;
};

void Simulator::Impl::validate_placeable(const JobSpec& spec) const {
  for (const auto& phase : spec.phases) {
    bool fits_somewhere = false;
    for (const auto& server : cluster_.servers()) {
      if (phase.demand.fits_within(server.capacity())) {
        fits_somewhere = true;
        break;
      }
    }
    if (!fits_somewhere) {
      throw std::invalid_argument("Simulator: job " + std::to_string(spec.id) + " phase '" +
                                  phase.name + "' demand " + phase.demand.to_string() +
                                  " exceeds every server capacity");
    }
  }
}

bool Simulator::Impl::place(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                            ServerId server_id, bool speculative) {
  SimStats& stats = result_.stats;
  ++stats.placement_attempts;
  if (job.finished || !job.arrived) {
    ++stats.rejected_job_not_ready;
    return false;
  }
  if (!phase.runnable() || task.finished) {
    ++stats.rejected_phase_not_runnable;
    return false;
  }
  // The cap applies to *concurrent* copies: after a machine failure kills a
  // task's copies it may be re-placed even though dead copies remain on
  // record.
  if (task.active_copies() >= config_.max_copies_per_task) {
    ++stats.rejected_copy_cap;
    return false;
  }
  if (server_id < 0 || static_cast<std::size_t>(server_id) >= cluster_.size()) {
    ++stats.rejected_invalid_server;
    return false;
  }

  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  if (!server.allocate(task.demand)) {
    ++stats.rejected_no_capacity;
    return false;
  }
  if (index_) index_->on_allocation_changed(server_id);
  server.note_copy_started();
  ++stats.placements_accepted;

  const bool first_copy = task.copies.empty();
  // A task with no running copy is either brand new or a failure
  // re-execution; either way this placement satisfies its needs-placement
  // state (and is not redundancy, so it must not count as a clone).
  const bool had_active_sibling = task.active_copies() > 0;
  CopyRuntime copy;
  copy.server = server_id;
  copy.start = now_;
  copy.active = true;
  copy.locality = locality_.classify(task.block, server_id);

  if (config_.model == ExecutionModel::kStochastic) {
    const double base =
        sample_copy_base_seconds(phase, task.ref.task, first_copy, rng_exec_);
    // Fail-slow degradation multiplies the realized duration; the healthy
    // factor is exactly 1.0, so this is bit-identical when faults are off.
    const double seconds =
        scale_copy_seconds(
            base, server.base_speed(), locality_.penalty(copy.locality),
            background_.slowdown(static_cast<std::size_t>(server_id),
                                 static_cast<double>(now_) * config_.slot_seconds)) *
        server.slow_factor();
    copy.base_seconds = seconds;
    copy.finish = now_ + seconds_to_slots(seconds, config_.slot_seconds);
    task.copies.push_back(copy);
    push_completion(copy.finish, job, phase.index, task.ref.task,
                    static_cast<std::int32_t>(task.copies.size() - 1), 0);
  } else {
    // Work-based: roll accrued work to now, then re-predict with the larger
    // copy set and invalidate the previous prediction.
    accrue_work(task, phase, now_, config_.slot_seconds);
    task.copies.push_back(copy);
    ++task.generation;
    const SimTime finish = predict_work_finish(task, phase, now_, config_.slot_seconds);
    push_completion(finish, job, phase.index, task.ref.task, -1, task.generation);
  }

  ++active_copy_count_;
  ++phase.active_copies;
  if (!had_active_sibling) --phase.unscheduled_tasks;
  placed_this_invocation_ = true;

  if (task.first_start == kNever) task.first_start = now_;
  if (job.first_start == kNever) job.first_start = now_;
  if (had_active_sibling) {
    if (speculative) {
      ++job.speculative_launched;
    } else {
      ++job.clones_launched;
    }
    if (!task.ever_cloned && !speculative) {
      task.ever_cloned = true;
      ++job.tasks_with_clones;
    }
  }
  record_event(!had_active_sibling ? SimEventKind::kCopyPlaced
               : speculative       ? SimEventKind::kSpeculativePlaced
                                   : SimEventKind::kClonePlaced,
               job.id, phase.index, task.ref.task, server_id);
  trace(!had_active_sibling ? TraceEv::kCopyPlaced
        : speculative       ? TraceEv::kSpeculativePlaced
                            : TraceEv::kClonePlaced,
        job.id, phase.index, task.ref.task,
        static_cast<std::int32_t>(task.copies.size() - 1), server_id,
        static_cast<std::int64_t>(task.copies.back().locality));
  ++result_.total_copies_launched;
  return true;
}

void Simulator::Impl::end_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                               CopyRuntime& copy, bool killed) {
  if (!copy.active) return;
  copy.active = false;
  copy.killed = killed;
  if (killed) {
    ++result_.stats.copies_killed;
  } else {
    ++result_.stats.copies_finished;
  }
  record_event(killed ? SimEventKind::kCopyKilled : SimEventKind::kCopyFinished,
               job.id, phase.index, task.ref.task, copy.server);
  trace(killed ? TraceEv::kCopyKilled : TraceEv::kCopyFinished, job.id, phase.index,
        task.ref.task, static_cast<std::int32_t>(&copy - task.copies.data()),
        copy.server, now_ - copy.start);
  Server& server = cluster_.server(static_cast<std::size_t>(copy.server));
  server.release(task.demand);
  if (index_) index_->on_allocation_changed(copy.server);
  server.note_copy_finished();
  --active_copy_count_;
  --phase.active_copies;
  const double duration_seconds =
      static_cast<double>(now_ - copy.start) * config_.slot_seconds;
  job.resource_seconds +=
      normalized_sum(task.demand, cluster_.total_capacity()) * duration_seconds;
}

void Simulator::Impl::complete_task(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task) {
  task.finished = true;
  task.finish_slot = now_;
  job.invalidate_remaining_cache();  // remaining_tasks is about to change
  ++result_.total_tasks_completed;
  record_event(SimEventKind::kTaskCompleted, job.id, phase.index, task.ref.task);
  trace(TraceEv::kTaskCompleted, job.id, phase.index, task.ref.task, -1, -1,
        task.total_copies());

  // Delay-assignment clone handling (Section 5): optionally keep the
  // best-locality sibling when a downstream phase will consume this task's
  // output; kill the rest.
  CopyRuntime* keep = nullptr;
  if (config_.kill_policy == CloneKillPolicy::kKeepBestLocality && phase.has_children) {
    for (auto& c : task.copies) {
      if (!c.active) continue;
      if (keep == nullptr ||
          static_cast<int>(c.locality) < static_cast<int>(keep->locality) ||
          (c.locality == keep->locality && c.start < keep->start)) {
        keep = &c;
      }
    }
  }
  for (auto& c : task.copies) {
    if (c.active && &c != keep) end_copy(job, phase, task, c, /*killed=*/true);
  }

  if (config_.record_tasks) {
    TaskRecord record;
    record.ref = task.ref;
    record.first_start_seconds = static_cast<double>(task.first_start) * config_.slot_seconds;
    record.finish_seconds = static_cast<double>(now_) * config_.slot_seconds;
    record.copies = task.total_copies();
    result_.tasks.push_back(record);
  }

  if (--phase.remaining_tasks == 0) complete_phase(job, phase);
}

void Simulator::Impl::complete_phase(JobRuntime& job, PhaseRuntime& phase) {
  phase.finished = true;
  phase.finish_slot = now_;
  job.invalidate_remaining_cache();
  record_event(SimEventKind::kPhaseCompleted, job.id, phase.index);
  trace(TraceEv::kPhaseCompleted, job.id, phase.index);
  // Unlock children (Eq. 7).
  for (auto& other : job.phases) {
    for (const auto parent : other.spec->parents) {
      if (parent == phase.index) --other.unfinished_parents;
    }
  }
  // Kept-for-locality copies of this phase are no longer useful once the
  // phase completes; terminate them so resources free up.
  for (auto& task : phase.tasks) {
    for (auto& c : task.copies) {
      if (c.active) end_copy(job, phase, task, c, /*killed=*/true);
    }
  }
  if (scheduler_ != nullptr) scheduler_->on_phase_completed(*this, job, phase);
  if (--job.remaining_phases == 0) complete_job(job);
}

void Simulator::Impl::complete_job(JobRuntime& job) {
  job.finished = true;
  job.finish_slot = now_;
  record_event(SimEventKind::kJobCompleted, job.id);
  trace(TraceEv::kJobCompleted, job.id);
  if (scheduler_ != nullptr) scheduler_->on_job_completed(*this, job);
  --jobs_remaining_;
  // Every phase is complete, so every copy has ended: hand the job's copy
  // extents back to the slab for the next arrival to reuse.  Stale heap
  // events referencing these copies are screened out by the finished-job
  // guard in drain_completions.
  for (auto& phase : job.phases) {
    for (auto& task : phase.tasks) task.copies.release_storage();
  }
}

void Simulator::Impl::handle_copy_finish(JobRuntime& job, PhaseRuntime& phase,
                                         TaskRuntime& task, std::size_t copy_index) {
  CopyRuntime& copy = task.copies[copy_index];
  if (!copy.active || copy.finish != now_) return;  // stale (killed or rescheduled)
  end_copy(job, phase, task, copy, /*killed=*/false);
  // Feedback for online learning: only natural finishes are reported
  // (killed copies are censored by their surviving sibling).
  if (scheduler_ != nullptr && config_.model == ExecutionModel::kStochastic) {
    scheduler_->on_copy_finished(*this, job, phase, task, copy);
  }
  if (!task.finished) complete_task(job, phase, task);
  // else: a kept best-locality copy ran to completion; nothing more to do.
}

void Simulator::Impl::handle_work_event(JobRuntime& job, PhaseRuntime& phase,
                                        TaskRuntime& task, std::uint32_t generation) {
  if (task.finished || generation != task.generation) return;  // stale prediction
  accrue_work(task, phase, now_, config_.slot_seconds);
  if (task.work_done_seconds + 1e-9 < phase.spec->theta_seconds) {
    // Copy set shrank since prediction (cannot happen today: copies only
    // end at completion in the work model) — re-predict defensively.
    const SimTime finish = predict_work_finish(task, phase, now_, config_.slot_seconds);
    if (finish != kNever) {
      push_completion(finish, job, phase.index, task.ref.task, -1, task.generation);
    }
    return;
  }
  for (auto& c : task.copies) {
    if (c.active) end_copy(job, phase, task, c, /*killed=*/false);
  }
  complete_task(job, phase, task);
}

void Simulator::Impl::seed_failures() {
  if (!faults_) return;
  for (const auto& timer : faults_->seed()) {
    EvKind kind = EvKind::kServerFailure;
    switch (timer.cls) {
      case FaultClass::kCrash: kind = EvKind::kServerFailure; break;
      case FaultClass::kRack: kind = EvKind::kRackFailure; break;
      case FaultClass::kFailSlow: kind = EvKind::kFailSlowOnset; break;
      case FaultClass::kCopyFault: kind = EvKind::kCopyFault; break;
    }
    push_machine_event(timer.slot, kind, timer.target);
  }
}

void Simulator::Impl::fail_server(ServerId server_id) {
  // Kill every running copy on the failed machine.  Tasks left with no
  // running copy fall back into the needs-placement pool so schedulers
  // re-place them (from the surviving input-block replica in the locality
  // model's terms).
  for (JobRuntime* job : active_) {
    for (auto& phase : job->phases) {
      if (phase.active_copies == 0) continue;
      for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
        TaskRuntime& task = phase.tasks[t];
        bool killed_any = false;
        for (auto& copy : task.copies) {
          if (copy.active && copy.server == server_id) {
            if (config_.model == ExecutionModel::kWorkBased) {
              accrue_work(task, phase, now_, config_.slot_seconds);
            }
            end_copy(*job, phase, task, copy, /*killed=*/true);
            ++result_.stats.copies_killed_by_faults;
            result_.stats.work_seconds_lost +=
                static_cast<double>(now_ - copy.start) * config_.slot_seconds;
            if (scheduler_ != nullptr) {
              scheduler_->on_copy_fault(*this, *job, phase, task, server_id);
            }
            killed_any = true;
          }
        }
        if (!killed_any || task.finished) continue;
        if (config_.model == ExecutionModel::kWorkBased) {
          ++task.generation;
          const SimTime finish =
              predict_work_finish(task, phase, now_, config_.slot_seconds);
          if (finish != kNever) {
            push_completion(finish, *job, phase.index, task.ref.task, -1,
                            task.generation);
          }
        }
        if (task.needs_placement()) {
          ++phase.unscheduled_tasks;
          phase.first_unscheduled_hint =
              std::min(phase.first_unscheduled_hint, static_cast<int>(t));
        }
      }
    }
  }
}

void Simulator::Impl::apply_server_down(ServerId server_id) {
  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  server.set_down(true);
  // Deindex before fail_server kills the hosted copies: the releases that
  // follow land on a down (unindexed) server and are no-ops for the index
  // until the repair re-indexes from live state.  A quarantined server is
  // already out of the index; on_server_down is idempotent either way.
  if (index_) index_->on_server_down(server_id);
  record_event(SimEventKind::kServerFailed, -1, -1, -1, server_id);
  trace(TraceEv::kServerFailed, -1, -1, -1, -1, server_id);
  fail_server(server_id);
  if (scheduler_ != nullptr) scheduler_->on_server_failed(*this, server_id);
}

void Simulator::Impl::apply_server_up(ServerId server_id) {
  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  server.set_down(false);
  // Candidacy invariant: indexed iff up && !quarantined — a server repaired
  // while still quarantined stays out until the policy releases it.
  if (index_ && !server.is_quarantined()) index_->on_server_up(server_id);
  record_event(SimEventKind::kServerRepaired, -1, -1, -1, server_id);
  trace(TraceEv::kServerRepaired, -1, -1, -1, -1, server_id);
  if (scheduler_ != nullptr) scheduler_->on_server_repaired(*this, server_id);
}

void Simulator::Impl::drain_failures() {
  // Machine-state events sort before everything else at a slot, so they
  // form a prefix of the heap's due events.  Every branch re-arms its fault
  // process unconditionally — even when the FaultEngine absorbed the edge
  // (server already down via another class, or a duplicate event) — so the
  // per-class timer chains stay self-sustaining and the failure stream's
  // draw order is a pure function of heap pop order.
  while (!events_.empty() && events_.top().slot <= now_ && events_.top().group() == 0) {
    const SimEvent e = events_.top();
    events_.pop();
    switch (e.kind) {
      case EvKind::kServerRepair: {
        ++result_.stats.events_server_repair;
        if (faults_->mark_up(e.server, FaultClass::kCrash)) apply_server_up(e.server);
        push_machine_event(faults_->crash_failure_delay(), EvKind::kServerFailure,
                           e.server);
        break;
      }
      case EvKind::kServerFailure: {
        ++result_.stats.events_server_failure;
        if (faults_->mark_down(e.server, FaultClass::kCrash)) apply_server_down(e.server);
        push_machine_event(faults_->crash_repair_delay(), EvKind::kServerRepair,
                           e.server);
        break;
      }
      case EvKind::kRackRepair: {
        ++result_.stats.events_rack_repair;
        for (const ServerId member : faults_->rack_members(e.server)) {
          if (faults_->mark_up(member, FaultClass::kRack)) apply_server_up(member);
        }
        push_machine_event(faults_->rack_failure_delay(), EvKind::kRackFailure, e.server);
        break;
      }
      case EvKind::kRackFailure: {
        ++result_.stats.events_rack_failure;
        for (const ServerId member : faults_->rack_members(e.server)) {
          if (faults_->mark_down(member, FaultClass::kRack)) apply_server_down(member);
        }
        push_machine_event(faults_->rack_repair_delay(), EvKind::kRackRepair, e.server);
        break;
      }
      case EvKind::kFailSlowRecover: {
        ++result_.stats.events_fail_slow_recover;
        cluster_.server(static_cast<std::size_t>(e.server)).set_slow_factor(1.0);
        trace(TraceEv::kServerRestored, -1, -1, -1, -1, e.server);
        if (scheduler_ != nullptr) scheduler_->on_server_restored(*this, e.server);
        push_machine_event(faults_->fail_slow_onset_delay(), EvKind::kFailSlowOnset,
                           e.server);
        break;
      }
      case EvKind::kFailSlowOnset: {
        ++result_.stats.events_fail_slow_onset;
        const double factor = faults_->slowdown_factor();
        cluster_.server(static_cast<std::size_t>(e.server)).set_slow_factor(factor);
        trace(TraceEv::kServerDegraded, -1, -1, -1, -1, e.server,
              static_cast<std::int64_t>(factor * 100.0));
        if (scheduler_ != nullptr) scheduler_->on_server_degraded(*this, e.server, factor);
        push_machine_event(faults_->fail_slow_recovery_delay(), EvKind::kFailSlowRecover,
                           e.server);
        break;
      }
      default:
        break;  // unreachable: group 0 holds only the kinds above
    }
  }
}

void Simulator::Impl::inject_copy_fault() {
  ++result_.stats.events_copy_fault;
  if (active_copy_count_ > 0) {
    // Uniform victim among all running copies: walk the active jobs in
    // deterministic (arrival) order counting down to the picked index.
    long long k = static_cast<long long>(
        faults_->pick(static_cast<std::size_t>(active_copy_count_)));
    [&] {
      for (JobRuntime* job : active_) {
        for (auto& phase : job->phases) {
          if (phase.active_copies == 0) continue;
          if (k >= phase.active_copies) {
            k -= phase.active_copies;
            continue;
          }
          for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
            TaskRuntime& task = phase.tasks[t];
            for (auto& copy : task.copies) {
              if (!copy.active) continue;
              if (k-- > 0) continue;
              const auto copy_index = static_cast<std::int32_t>(&copy - task.copies.data());
              const ServerId server_id = copy.server;
              if (config_.model == ExecutionModel::kWorkBased) {
                accrue_work(task, phase, now_, config_.slot_seconds);
              }
              end_copy(*job, phase, task, copy, /*killed=*/true);
              ++result_.stats.copies_killed_by_faults;
              result_.stats.work_seconds_lost +=
                  static_cast<double>(now_ - copy.start) * config_.slot_seconds;
              // end_copy already recorded the kill itself; this record
              // names the cause.
              trace(TraceEv::kCopyFault, job->id, phase.index, task.ref.task,
                    copy_index, server_id);
              if (scheduler_ != nullptr) {
                scheduler_->on_copy_fault(*this, *job, phase, task, server_id);
              }
              if (!task.finished) {
                if (config_.model == ExecutionModel::kWorkBased) {
                  ++task.generation;
                  const SimTime finish =
                      predict_work_finish(task, phase, now_, config_.slot_seconds);
                  if (finish != kNever) {
                    push_completion(finish, *job, phase.index, task.ref.task, -1,
                                    task.generation);
                  }
                }
                if (task.needs_placement()) {
                  ++phase.unscheduled_tasks;
                  phase.first_unscheduled_hint =
                      std::min(phase.first_unscheduled_hint, static_cast<int>(t));
                }
              }
              return;
            }
          }
        }
      }
    }();
  }
  // Re-arm the cluster-wide timer whether or not a victim existed, so the
  // process keeps ticking through idle stretches.
  push_machine_event(faults_->copy_fault_delay(), EvKind::kCopyFault, kInvalidServer);
}

void Simulator::Impl::process_arrivals() {
  while (next_arrival_ < arrival_order_.size()) {
    JobRuntime& job = jobs_[static_cast<std::size_t>(arrival_order_[next_arrival_])];
    if (job.arrival > now_) break;
    job.arrived = true;
    active_.push_back(&job);
    record_event(SimEventKind::kJobArrival, job.id);
    trace(TraceEv::kJobArrival, job.id);
    ++result_.stats.events_job_arrival;
    ++next_arrival_;
    arrivals_this_slot_ = true;
  }
}

void Simulator::Impl::drain_completions() {
  while (!events_.empty() && events_.top().slot <= now_) {
    const SimEvent e = events_.top();
    events_.pop();
    if (e.kind == EvKind::kTimer) {
      ++result_.stats.events_timer;
      --pending_timer_count_;
      if (pending_timer_slot_ == e.slot) pending_timer_slot_ = kNever;
      trace(TraceEv::kTimerFired);
      continue;  // a timer's only effect is that this slot is visited
    }
    if (e.kind == EvKind::kCopyFault) {
      // Sorts after machine events and before completions at a slot: a
      // victim's same-slot natural finish is stale by the time it pops.
      inject_copy_fault();
      continue;
    }
    JobRuntime& job = jobs_[static_cast<std::size_t>(e.job_index)];
    if (job.finished) {
      // The job's copy extents were recycled at completion; every event
      // still in flight for it was already stale (inactive copy or moved-on
      // generation), so count it and move on without touching copy storage.
      ++(e.copy >= 0 ? result_.stats.events_copy_finish
                     : result_.stats.events_work_finish);
      continue;
    }
    PhaseRuntime& phase = job.phases[static_cast<std::size_t>(e.phase)];
    TaskRuntime& task = phase.tasks[static_cast<std::size_t>(e.task)];
    if (e.copy >= 0) {
      ++result_.stats.events_copy_finish;
      handle_copy_finish(job, phase, task, static_cast<std::size_t>(e.copy));
    } else {
      ++result_.stats.events_work_finish;
      handle_work_event(job, phase, task, e.generation);
    }
  }
}

void Simulator::Impl::sample_utilization() {
  if (!config_.record_utilization) return;
  const Resources used = cluster_.total_used();
  const Resources total = cluster_.total_capacity();
  UtilizationSample sample;
  sample.seconds = static_cast<double>(now_) * config_.slot_seconds;
  sample.cpu = total.cpu > 0 ? used.cpu / total.cpu : 0.0;
  sample.mem = total.mem > 0 ? used.mem / total.mem : 0.0;
  result_.utilization.push_back(sample);
}

SimResult Simulator::Impl::run(const std::vector<JobSpec>& specs, Scheduler& scheduler) {
  const auto wall_start = std::chrono::steady_clock::now();
  result_ = SimResult{};
  result_.scheduler = scheduler.name();
  result_.slot_seconds = config_.slot_seconds;

  store_.clear();
  store_.reserve_for(specs);  // exact: materialization below never relocates
  for (const auto& spec : specs) {
    validate_placeable(spec);
    (void)store_.materialize(spec, config_.slot_seconds, locality_, rng_workload_);
  }
  jobs_remaining_ = static_cast<int>(jobs_.size());

  arrival_order_.resize(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    arrival_order_[i] = static_cast<std::int32_t>(i);
  }
  std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return jobs_[static_cast<std::size_t>(a)].arrival <
                            jobs_[static_cast<std::size_t>(b)].arrival;
                   });
  next_arrival_ = 0;
  active_.clear();
  events_.reset(static_cast<std::size_t>(config_.event_shards));
  pending_timer_count_ = 0;
  pending_timer_slot_ = kNever;
  now_ = 0;
  active_copy_count_ = 0;

  seed_failures();
  scheduler_ = &scheduler;
  scheduler.reset();

  while (jobs_remaining_ > 0) {
    if (now_ > config_.max_slots) {
      throw std::runtime_error("Simulator: exceeded max_slots safety valve at slot " +
                               std::to_string(now_));
    }
    ++result_.stats.slots_visited;
    arrivals_this_slot_ = false;
    drain_failures();
    process_arrivals();
    drain_completions();
    // Drop finished jobs from the active list (keep arrival order).
    std::erase_if(active_, [](const JobRuntime* j) { return j->finished; });

    placed_this_invocation_ = false;
    deferred_this_invocation_ = false;
    if (!active_.empty()) {
      if (arrivals_this_slot_) scheduler.on_job_arrival(*this);
      ++result_.stats.scheduler_invocations;
      trace(TraceEv::kSchedulerInvoked, -1, -1, -1, -1, -1,
            static_cast<std::int64_t>(active_.size()));
      scheduler.schedule(*this);
      sample_utilization();
    }

    if (jobs_remaining_ == 0) break;

    // Fast-forward to the next slot anything can happen at: the earliest of
    // the next arrival and the event heap's top (completions, failures,
    // repairs and requested timer wakeups all live there).
    SimTime next = config_.max_slots + 1;
    if (next_arrival_ < arrival_order_.size()) {
      next = std::min(next,
                      jobs_[static_cast<std::size_t>(arrival_order_[next_arrival_])].arrival);
    }
    if (!events_.empty()) next = std::min(next, events_.top().slot);

    if (!any_copy_active() && next_arrival_ >= arrival_order_.size() &&
        !state_events_pending()) {
      // Pending work, no running copies, no future arrivals, and nothing in
      // the heap that could change state (pending timer wakeups do not
      // count: re-invoking a scheduler that just declined to place on an
      // idle cluster cannot help): if the policy also placed nothing we are
      // stuck — unless it explicitly deferred via defer_retry, in which
      // case the registered wakeup will re-invoke it when backoff expires.
      if (!placed_this_invocation_ && !deferred_this_invocation_) {
        throw std::runtime_error(
            "Simulator: scheduler '" + scheduler.name() + "' stalled at slot " +
            std::to_string(now_) + " with " + std::to_string(jobs_remaining_) +
            " unfinished job(s) and idle cluster");
      }
    }
    if (next <= now_) {
      throw std::logic_error("Simulator: time failed to advance");
    }
    result_.stats.slots_fast_forwarded += next - now_ - 1;
    now_ = next;
  }

  // Build records.
  result_.jobs.reserve(jobs_.size());
  double makespan = 0.0;
  for (const auto& job : jobs_) {
    JobRecord rec;
    rec.id = job.id;
    rec.name = job.spec->name;
    rec.app = job.spec->app;
    rec.arrival_seconds = static_cast<double>(job.arrival) * config_.slot_seconds;
    rec.first_start_seconds = static_cast<double>(job.first_start) * config_.slot_seconds;
    rec.finish_seconds = static_cast<double>(job.finish_slot) * config_.slot_seconds;
    rec.total_tasks = job.total_tasks();
    rec.clones_launched = job.clones_launched;
    rec.speculative_launched = job.speculative_launched;
    rec.tasks_with_clones = job.tasks_with_clones;
    rec.resource_seconds = job.resource_seconds;
    makespan = std::max(makespan, rec.finish_seconds);
    result_.jobs.push_back(std::move(rec));
  }
  result_.makespan_seconds = makespan;
  // Conservation inputs for the chaos invariants: with every job complete,
  // no allocation and no active copy may survive the run.
  for (const auto& server : cluster_.servers()) {
    result_.stats.leaked_cpu += server.used().cpu;
    result_.stats.leaked_mem += server.used().mem;
  }
  result_.stats.leaked_active_copies = active_copy_count_;
  if (index_) {
    result_.stats.index_queries = index_->counters().queries;
    result_.stats.index_servers_scanned = index_->counters().servers_scanned;
    result_.stats.index_updates = index_->counters().updates;
    result_.stats.index_batch_hits = index_->counters().batch_hits;
    result_.stats.index_batch_rebuilds = index_->counters().batch_rebuilds;
  }
  {
    const CopySlab::Counters& slab = store_.copy_slab().counters();
    result_.stats.copy_slab_acquires = static_cast<long long>(slab.acquires);
    result_.stats.copy_slab_reuses = static_cast<long long>(slab.reuses);
    result_.stats.copy_slab_blocks = static_cast<long long>(slab.block_allocations);
    result_.stats.runtime_store_bytes = static_cast<long long>(store_.memory_bytes());
    result_.stats.server_table_bytes = static_cast<long long>(cluster_.table().memory_bytes());
    result_.stats.bytes_per_server =
        cluster_.empty() ? 0.0
                         : static_cast<double>(result_.stats.server_table_bytes) /
                               static_cast<double>(cluster_.size());
    result_.stats.peak_rss_bytes = process_peak_rss_bytes();
  }
  result_.stats.parallel_sections = parallel_stats_.sections;
  result_.stats.parallel_shards = parallel_stats_.shards;
  result_.stats.parallel_items = parallel_stats_.items;
  result_.stats.parallel_max_shard_items = parallel_stats_.max_shard_items;
  result_.stats.parallel_arena_acquires = parallel_stats_.arena_acquires;
  result_.stats.parallel_arena_reuses = parallel_stats_.arena_reuses;
  result_.stats.parallel_arena_grows = parallel_stats_.arena_grows;
  result_.stats.threads_configured = config_.threads;
  result_.stats.threads_resolved =
      pool_ ? static_cast<long long>(pool_->size()) : 1;
  if (rec_) {
    result_.stats.recorder_records = static_cast<long long>(rec_->records_written());
    result_.stats.recorder_bytes = static_cast<long long>(rec_->bytes_written());
    result_.stats.recorder_evictions = static_cast<long long>(rec_->evictions());
    result_.stats.recorder_hash = rec_->hash();
  }
  result_.stats.wall_clock_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return std::move(result_);
}

Simulator::Simulator(Cluster cluster, SimConfig config)
    : prototype_(std::move(cluster)), config_(config) {
  config_.validate();
  if (prototype_.empty()) throw std::invalid_argument("Simulator: empty cluster");
}

Simulator::~Simulator() = default;

SimResult Simulator::run(const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  // A fresh Impl per run keeps runs independent and exception-safe.
  Impl impl(prototype_, config_);
  return impl.run(jobs, scheduler);
}

SimResult simulate(const Cluster& cluster, const SimConfig& config,
                   const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  Simulator sim(cluster, config);
  return sim.run(jobs, scheduler);
}

}  // namespace dollymp
