#include "dollymp/sim/simulator.h"

#include <stdexcept>

#include "dollymp/sim/sim_core.h"

namespace dollymp {

Simulator::Simulator(Cluster cluster, SimConfig config)
    : prototype_(std::move(cluster)), config_(config) {
  config_.validate();
  if (prototype_.empty()) throw std::invalid_argument("Simulator: empty cluster");
}

Simulator::~Simulator() = default;

SimResult Simulator::run(const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  // A fresh core per run keeps runs independent and exception-safe.  This
  // is the legacy batch sequence verbatim: everything ingested up front,
  // one unbounded step, then the result tail — the 36 golden flight-stream
  // hashes pin the claim that the extraction changed nothing.
  SimCore core(prototype_, config_);
  core.ingest(jobs);
  core.begin(scheduler);
  (void)core.step_until(SimCore::kUnbounded);
  return core.finish();
}

SimResult simulate(const Cluster& cluster, const SimConfig& config,
                   const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  Simulator sim(cluster, config);
  return sim.run(jobs, scheduler);
}

}  // namespace dollymp
