#include "dollymp/sim/faults.h"

#include <algorithm>
#include <stdexcept>

#include "dollymp/common/distributions.h"
#include "dollymp/common/state_io.h"
#include "dollymp/sim/execution.h"

namespace dollymp {

const char* to_string(FaultClass cls) {
  switch (cls) {
    case FaultClass::kCrash: return "crash";
    case FaultClass::kRack: return "rack";
    case FaultClass::kFailSlow: return "fail-slow";
    case FaultClass::kCopyFault: return "copy-fault";
  }
  return "?";
}

FaultEngine::FaultEngine(const Cluster& cluster, const FailureConfig& crash,
                         const FaultConfig& faults, double slot_seconds, Rng& rng)
    : crash_(crash), faults_(faults), slot_seconds_(slot_seconds), rng_(rng) {
  down_mask_.assign(cluster.size(), 0);
  rack_members_.resize(static_cast<std::size_t>(std::max(cluster.rack_count(), 0)));
  for (const auto& server : cluster.servers()) {
    const auto rack = static_cast<std::size_t>(server.rack());
    if (rack >= rack_members_.size()) rack_members_.resize(rack + 1);
    rack_members_[rack].push_back(server.id());
  }
}

SimTime FaultEngine::exponential_delay_slots(double mean_seconds) {
  // The legacy failure-delay draw, verbatim: exponential sample floored at
  // one slot.  Crash-class draws must stay bit-identical to the
  // pre-fault-matrix simulator when crash_dist is exponential.
  const ExponentialDist dist(mean_seconds);
  const double seconds = std::max(slot_seconds_, dist.sample(rng_));
  return seconds_to_slots(seconds, slot_seconds_);
}

SimTime FaultEngine::delay_slots(const FaultDelaySpec& spec) {
  if (spec.dist == FaultDelayDist::kWeibull) {
    const WeibullDist dist(spec.mean_seconds, spec.weibull_shape);
    const double seconds = std::max(slot_seconds_, dist.sample(rng_));
    return seconds_to_slots(seconds, slot_seconds_);
  }
  return exponential_delay_slots(spec.mean_seconds);
}

SimTime FaultEngine::crash_failure_delay() {
  if (faults_.crash_dist == FaultDelayDist::kWeibull) {
    const WeibullDist dist(crash_.mean_time_to_failure_seconds, faults_.crash_weibull_shape);
    const double seconds = std::max(slot_seconds_, dist.sample(rng_));
    return seconds_to_slots(seconds, slot_seconds_);
  }
  return exponential_delay_slots(crash_.mean_time_to_failure_seconds);
}

SimTime FaultEngine::crash_repair_delay() {
  // Repairs always use the exponential family (MTTR is a service-time
  // model, and keeping it fixed preserves the legacy draw for the default
  // crash_dist while Weibull lifetimes stay available).
  return exponential_delay_slots(crash_.mean_repair_seconds);
}

SimTime FaultEngine::rack_failure_delay() { return delay_slots(faults_.rack.time_to_failure); }
SimTime FaultEngine::rack_repair_delay() { return delay_slots(faults_.rack.repair); }
SimTime FaultEngine::fail_slow_onset_delay() {
  return delay_slots(faults_.fail_slow.time_to_onset);
}
SimTime FaultEngine::fail_slow_recovery_delay() {
  return delay_slots(faults_.fail_slow.recovery);
}
SimTime FaultEngine::copy_fault_delay() { return delay_slots(faults_.copy.inter_fault); }

std::vector<FaultEngine::Timer> FaultEngine::seed() {
  std::vector<Timer> timers;
  // Order is load-bearing: crash per-server draws come first so a
  // crash-only run consumes the failure stream exactly like the legacy
  // seed_failures() loop did.
  if (crash_.enabled) {
    for (std::size_t s = 0; s < down_mask_.size(); ++s) {
      timers.push_back({crash_failure_delay(), FaultClass::kCrash,
                        static_cast<std::int32_t>(s)});
    }
  }
  if (faults_.rack.enabled) {
    for (std::size_t r = 0; r < rack_members_.size(); ++r) {
      if (rack_members_[r].empty()) continue;
      timers.push_back({rack_failure_delay(), FaultClass::kRack,
                        static_cast<std::int32_t>(r)});
    }
  }
  if (faults_.fail_slow.enabled) {
    for (std::size_t s = 0; s < down_mask_.size(); ++s) {
      timers.push_back({fail_slow_onset_delay(), FaultClass::kFailSlow,
                        static_cast<std::int32_t>(s)});
    }
  }
  if (faults_.copy.enabled) {
    timers.push_back({copy_fault_delay(), FaultClass::kCopyFault, -1});
  }
  return timers;
}

bool FaultEngine::mark_down(ServerId server, FaultClass source) {
  auto& mask = down_mask_[static_cast<std::size_t>(server)];
  const auto bit = static_cast<std::uint8_t>(1U << static_cast<unsigned>(source));
  const bool was_up = mask == 0;
  mask |= bit;
  return was_up;
}

bool FaultEngine::mark_up(ServerId server, FaultClass source) {
  auto& mask = down_mask_[static_cast<std::size_t>(server)];
  const auto bit = static_cast<std::uint8_t>(1U << static_cast<unsigned>(source));
  if ((mask & bit) == 0) return false;  // duplicate repair: absorb
  mask &= static_cast<std::uint8_t>(~bit);
  return mask == 0;
}

void FaultEngine::save_state(StateWriter& w) const { w.pod_vec(down_mask_); }

void FaultEngine::load_state(StateReader& r) {
  std::vector<std::uint8_t> mask;
  r.pod_vec(mask);
  if (mask.size() != down_mask_.size()) {
    throw std::runtime_error("snapshot: fault-engine server count mismatch");
  }
  down_mask_ = std::move(mask);
}

}  // namespace dollymp
