#include "dollymp/sim/execution.h"

#include <cmath>
#include <stdexcept>

namespace dollymp {

double sample_copy_base_seconds(const PhaseRuntime& phase, int task_index,
                                bool is_first_copy, Rng& rng) {
  const auto& pool = phase.duration_pool;
  if (pool.empty()) throw std::logic_error("execution: empty duration pool");
  if (is_first_copy) {
    if (static_cast<std::size_t>(task_index) >= pool.size()) {
      throw std::out_of_range("execution: task index outside duration pool");
    }
    return pool[static_cast<std::size_t>(task_index)];
  }
  return pool[rng.below(pool.size())];
}

double scale_copy_seconds(double base_seconds, double server_base_speed,
                          double locality_penalty, double background_slowdown) {
  if (server_base_speed <= 0.0) throw std::logic_error("execution: server speed must be > 0");
  return base_seconds * locality_penalty * background_slowdown / server_base_speed;
}

SimTime seconds_to_slots(double seconds, double slot_seconds) {
  if (slot_seconds <= 0.0) throw std::invalid_argument("execution: slot_seconds > 0");
  const double slots = std::ceil(seconds / slot_seconds - 1e-9);
  return slots < 1.0 ? 1 : static_cast<SimTime>(slots);
}

void accrue_work(TaskRuntime& task, const PhaseRuntime& phase, SimTime now,
                 double slot_seconds) {
  if (now <= task.work_updated_at) return;
  const int r = task.active_copies();
  if (r > 0) {
    double rate = phase.speedup(static_cast<double>(r));
    // Gang rack-spread penalty slows the work rate (guarded so the exact
    // historical arithmetic is untouched for non-gang phases).
    if (phase.gang_penalty != 1.0) rate /= phase.gang_penalty;
    task.work_done_seconds +=
        rate * slot_seconds * static_cast<double>(now - task.work_updated_at);
  }
  task.work_updated_at = now;
}

SimTime predict_work_finish(const TaskRuntime& task, const PhaseRuntime& phase, SimTime now,
                            double slot_seconds) {
  const int r = task.active_copies();
  if (r <= 0) return kNever;
  const double remaining = phase.spec->theta_seconds - task.work_done_seconds;
  if (remaining <= 0.0) return now;
  double rate = phase.speedup(static_cast<double>(r)) * slot_seconds;
  if (phase.gang_penalty != 1.0) rate /= phase.gang_penalty;
  const double slots = std::ceil(remaining / rate - 1e-9);
  return now + (slots < 1.0 ? 1 : static_cast<SimTime>(slots));
}

}  // namespace dollymp
