#include "dollymp/sim/types.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace dollymp {

namespace {

void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

/// Shared checks for one fault delay: positive mean, positive Weibull shape
/// when that family is selected.  `what` names the field in the message.
void check_delay(const FaultDelaySpec& spec, const char* what) {
  require(spec.mean_seconds > 0.0,
          std::string("SimConfig: ") + what + " mean must be > 0");
  if (spec.dist == FaultDelayDist::kWeibull) {
    require(spec.weibull_shape > 0.0,
            std::string("SimConfig: ") + what + " Weibull shape must be > 0");
  }
}

}  // namespace

const char* to_string(ExecutionModel model) {
  switch (model) {
    case ExecutionModel::kStochastic: return "stochastic";
    case ExecutionModel::kWorkBased: return "work-based";
  }
  return "?";
}

const char* to_string(CloneKillPolicy policy) {
  switch (policy) {
    case CloneKillPolicy::kKillImmediately: return "kill-immediately";
    case CloneKillPolicy::kKeepBestLocality: return "keep-best-locality";
  }
  return "?";
}

const char* to_string(FaultDelayDist dist) {
  switch (dist) {
    case FaultDelayDist::kExponential: return "exponential";
    case FaultDelayDist::kWeibull: return "weibull";
  }
  return "?";
}

void SimConfig::validate() const {
  // The first two texts match the Simulator constructor's historical
  // messages so callers keying on them keep working.
  require(slot_seconds > 0.0, "SimConfig: slot_seconds must be > 0");
  require(max_copies_per_task >= 1, "SimConfig: max_copies_per_task must be >= 1");
  require(max_slots >= 1, "SimConfig: max_slots must be >= 1");
  require(sigma_factor >= 0.0, "SimConfig: sigma_factor must be >= 0");
  require(threads >= 0, "SimConfig: threads must be >= 0 (0 = hardware concurrency)");
  // More workers than any plausible machine has hardware threads is a typo
  // (e.g. threads=1000 for threads=10), not a tuning choice — each worker
  // pins a stack and an OS thread for the whole run.
  require(threads <= 512, "SimConfig: threads must be <= 512");
  require(event_shards >= 1 && event_shards <= 64,
          "SimConfig: event_shards must be in [1, 64]");
  require(resource_dims >= 2 &&
              resource_dims <= static_cast<int>(Resources::kMaxDims),
          "SimConfig: resource_dims must be in [2, Resources::kMaxDims]");
  require(gang_spread_penalty >= 0.0 && std::isfinite(gang_spread_penalty),
          "SimConfig: gang_spread_penalty must be finite and >= 0");
  // Infinity slips past the `> 0` checks above; a non-finite slot length or
  // sigma factor turns every derived time into NaN soup downstream.
  require(std::isfinite(slot_seconds), "SimConfig: slot_seconds must be finite");
  require(std::isfinite(sigma_factor), "SimConfig: sigma_factor must be finite");
  // batch_placement with use_placement_index=false is deliberately legal:
  // batching lives inside the index, so without one the knob is inert (the
  // sweep toggles them independently).  The placement knobs therefore need
  // no cross-check — but the modulation processes they feed do:
  if (background.enabled) {
    require(background.mean_interval_seconds > 0.0,
            "SimConfig: background.mean_interval_seconds must be > 0");
    require(background.contention_probability >= 0.0 &&
                background.contention_probability <= 1.0,
            "SimConfig: background.contention_probability must be in [0, 1]");
    require(background.slowdown_shape > 0.0,
            "SimConfig: background.slowdown_shape must be > 0");
    require(background.max_slowdown >= 1.0,
            "SimConfig: background.max_slowdown must be >= 1");
  }
  if (locality.enabled) {
    require(locality.replicas >= 1, "SimConfig: locality.replicas must be >= 1");
    require(locality.rack_penalty >= 1.0,
            "SimConfig: locality.rack_penalty must be >= 1");
    require(locality.off_rack_penalty >= 1.0,
            "SimConfig: locality.off_rack_penalty must be >= 1");
  }

  // Mean repair/recovery delays that exceed the simulation horizon make the
  // run overwhelmingly likely to trip the max_slots safety valve with every
  // machine down — reject up front with a message naming the culprit.
  const double horizon_seconds = static_cast<double>(max_slots) * slot_seconds;

  if (failures.enabled) {
    require(failures.mean_time_to_failure_seconds > 0.0,
            "SimConfig: failures.mean_time_to_failure_seconds must be > 0");
    require(failures.mean_repair_seconds > 0.0,
            "SimConfig: failures.mean_repair_seconds must be > 0");
    require(failures.mean_repair_seconds <= horizon_seconds,
            "SimConfig: failures.mean_repair_seconds exceeds the max_slots horizon");
    if (faults.crash_dist == FaultDelayDist::kWeibull) {
      require(faults.crash_weibull_shape > 0.0,
              "SimConfig: crash_weibull_shape must be > 0");
    }
  }
  if (faults.rack.enabled) {
    check_delay(faults.rack.time_to_failure, "rack time_to_failure");
    check_delay(faults.rack.repair, "rack repair");
    require(faults.rack.repair.mean_seconds <= horizon_seconds,
            "SimConfig: rack repair mean exceeds the max_slots horizon");
  }
  if (faults.fail_slow.enabled) {
    require(faults.fail_slow.slowdown_factor >= 1.0,
            "SimConfig: fail_slow.slowdown_factor must be >= 1");
    check_delay(faults.fail_slow.time_to_onset, "fail-slow time_to_onset");
    check_delay(faults.fail_slow.recovery, "fail-slow recovery");
    require(faults.fail_slow.recovery.mean_seconds <= horizon_seconds,
            "SimConfig: fail-slow recovery mean exceeds the max_slots horizon");
  }
  if (faults.copy.enabled) {
    check_delay(faults.copy.inter_fault, "copy-fault inter_fault");
  }
}

}  // namespace dollymp
