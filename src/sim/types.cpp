#include "dollymp/sim/types.h"

namespace dollymp {

// Currently header-only types; this TU anchors the module and provides
// string helpers for diagnostics.

const char* to_string(ExecutionModel model) {
  switch (model) {
    case ExecutionModel::kStochastic: return "stochastic";
    case ExecutionModel::kWorkBased: return "work-based";
  }
  return "?";
}

const char* to_string(CloneKillPolicy policy) {
  switch (policy) {
    case CloneKillPolicy::kKillImmediately: return "kill-immediately";
    case CloneKillPolicy::kKeepBestLocality: return "keep-best-locality";
  }
  return "?";
}

}  // namespace dollymp
