#include "dollymp/sim/runtime_store.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dollymp/common/state_io.h"

namespace dollymp {

namespace {

/// Pool size for a phase: at least kMinPoolSize entries so that clones of
/// tasks in tiny phases still re-draw an independent duration (a literal
/// 1-entry pool would pin every clone to its original's time and make
/// cloning a single-task job a no-op, contradicting the paper's Fig. 2
/// example).
constexpr int kMinPoolSize = 16;

int pool_size_for(const PhaseSpec& ps) { return std::max(ps.task_count, kMinPoolSize); }

}  // namespace

void RuntimeStore::reserve_for(const std::vector<JobSpec>& specs) {
  std::size_t n_phases = 0;
  std::size_t n_tasks = 0;
  std::size_t n_pool = 0;
  for (const auto& spec : specs) {
    n_phases += spec.phases.size();
    for (const auto& ps : spec.phases) {
      n_tasks += static_cast<std::size_t>(ps.task_count);
      n_pool += static_cast<std::size_t>(pool_size_for(ps));
    }
  }
  // Growing capacity relocates the flat arrays, which silently invalidates
  // every RtSpan bound into them.  A batch run reserves once before any
  // views exist; a streaming run reserves before EVERY ingest chunk with
  // live jobs already bound — so relocation here must rebind, exactly as
  // materialize() does for growth it causes itself.
  const PhaseRuntime* phases_before = phases_.data();
  const TaskRuntime* tasks_before = tasks_.data();
  const double* durations_before = durations_.data();

  jobs_.reserve(jobs_.size() + specs.size());
  job_extents_.reserve(job_extents_.size() + specs.size());
  phases_.reserve(phases_.size() + n_phases);
  phase_extents_.reserve(phase_extents_.size() + n_phases);
  tasks_.reserve(tasks_.size() + n_tasks);
  durations_.reserve(durations_.size() + n_pool);

  if (phases_.data() != phases_before || tasks_.data() != tasks_before ||
      durations_.data() != durations_before) {
    rebind_views();
  }
}

std::size_t RuntimeStore::materialize(const JobSpec& spec, double slot_seconds,
                                      const LocalityModel& locality, Rng& rng) {
  if (slot_seconds <= 0.0) throw std::invalid_argument("materialize: slot_seconds > 0");
  spec.validate();

  // Service-mode slot reuse: a released slot of the same shape is rebuilt
  // in place — no array growth, no relocation, identical RNG draw order.
  if (!free_slots_.empty()) {
    shape_scratch_.clear();
    for (const auto& ps : spec.phases) {
      shape_scratch_.push_back(static_cast<std::uint32_t>(ps.task_count));
    }
    const auto it = free_slots_.find(shape_scratch_);
    if (it != free_slots_.end() && !it->second.empty()) {
      const std::size_t job_index = it->second.back();
      it->second.pop_back();
      if (it->second.empty()) free_slots_.erase(it);
      rematerialize(job_index, spec, slot_seconds, locality, rng);
      return job_index;
    }
  }

  const PhaseRuntime* phases_before = phases_.data();
  const TaskRuntime* tasks_before = tasks_.data();
  const double* durations_before = durations_.data();

  const std::size_t job_index = jobs_.size();
  jobs_.emplace_back();
  JobExtent job_extent;
  job_extent.phase_begin = static_cast<std::uint32_t>(phases_.size());
  job_extent.phase_count = static_cast<std::uint32_t>(spec.phases.size());

  {
    JobRuntime& job = jobs_.back();
    job.spec = &spec;
    job.id = spec.id;
    job.arrival = static_cast<SimTime>(std::llround(spec.arrival_seconds / slot_seconds));
    job.remaining_phases = static_cast<int>(spec.phases.size());
  }

  for (std::size_t k = 0; k < spec.phases.size(); ++k) {
    const PhaseSpec& ps = spec.phases[k];
    phases_.emplace_back();
    PhaseRuntime& phase = phases_.back();
    PhaseExtent extent;
    phase.index = static_cast<PhaseIndex>(k);
    phase.spec = &ps;
    phase.remaining_tasks = ps.task_count;
    phase.unscheduled_tasks = ps.task_count;
    phase.unfinished_parents = static_cast<int>(ps.parents.size());
    for (const auto parent : ps.parents) {
      phases_[job_extent.phase_begin + static_cast<std::size_t>(parent)].has_children = true;
    }
    phase.speedup = SpeedupFunction::from_stats(ps.theta_seconds, ps.sigma_seconds);

    // Pre-sample the phase's duration pool into the shared flat array.
    // With sigma == 0 the pool is constant theta; otherwise Pareto fitted
    // to (theta, sigma), matching how the paper derives the speedup
    // function from the same fit.
    const int pool_size = pool_size_for(ps);
    extent.pool_begin = static_cast<std::uint32_t>(durations_.size());
    extent.pool_count = static_cast<std::uint32_t>(pool_size);
    if (ps.sigma_seconds <= 0.0) {
      durations_.insert(durations_.end(), static_cast<std::size_t>(pool_size),
                        ps.theta_seconds);
    } else {
      const ParetoDist dist =
          ParetoDist::fit(ps.theta_seconds, ps.sigma_seconds / ps.theta_seconds);
      for (int i = 0; i < pool_size; ++i) {
        durations_.push_back(dist.sample(rng));
      }
    }

    extent.task_begin = static_cast<std::uint32_t>(tasks_.size());
    extent.task_count = static_cast<std::uint32_t>(ps.task_count);
    for (int i = 0; i < ps.task_count; ++i) {
      tasks_.emplace_back();
      TaskRuntime& task = tasks_.back();
      task.ref = TaskRef{spec.id, static_cast<PhaseIndex>(k), i};
      task.demand = ps.demand;
      task.copies.bind(&slab_);
      task.block = locality.place_block(rng);
    }
    phase_extents_.push_back(extent);
  }
  job_extents_.push_back(job_extent);

  if (phases_.data() != phases_before || tasks_.data() != tasks_before ||
      durations_.data() != durations_before) {
    rebind_views();
  } else {
    // No relocation: bind just the new job's spans.
    JobRuntime& job = jobs_[job_index];
    job.phases.assign(phases_.data() + job_extent.phase_begin, job_extent.phase_count);
    for (std::size_t k = 0; k < job_extent.phase_count; ++k) {
      PhaseRuntime& phase = phases_[job_extent.phase_begin + k];
      const PhaseExtent& extent = phase_extents_[job_extent.phase_begin + k];
      phase.tasks.assign(tasks_.data() + extent.task_begin, extent.task_count);
      phase.duration_pool.assign(durations_.data() + extent.pool_begin, extent.pool_count);
    }
  }
  return job_index;
}

void RuntimeStore::rematerialize(std::size_t job_index, const JobSpec& spec,
                                 double slot_seconds, const LocalityModel& locality,
                                 Rng& rng) {
  const JobExtent& job_extent = job_extents_[job_index];

  JobRuntime& job = jobs_[job_index];
  job = JobRuntime{};  // RtSpan members are plain views; reassign below
  job.spec = &spec;
  job.id = spec.id;
  job.arrival = static_cast<SimTime>(std::llround(spec.arrival_seconds / slot_seconds));
  job.remaining_phases = static_cast<int>(spec.phases.size());
  job.phases.assign(phases_.data() + job_extent.phase_begin, job_extent.phase_count);

  // has_children is cross-phase state: clear all before the parent loops.
  for (std::size_t k = 0; k < job_extent.phase_count; ++k) {
    phases_[job_extent.phase_begin + k].has_children = false;
  }

  for (std::size_t k = 0; k < spec.phases.size(); ++k) {
    const PhaseSpec& ps = spec.phases[k];
    PhaseRuntime& phase = phases_[job_extent.phase_begin + k];
    const PhaseExtent& extent = phase_extents_[job_extent.phase_begin + k];
    phase.index = static_cast<PhaseIndex>(k);
    phase.spec = &ps;
    phase.remaining_tasks = ps.task_count;
    phase.unscheduled_tasks = ps.task_count;
    phase.first_unscheduled_hint = 0;
    phase.active_copies = 0;
    phase.finished = false;
    phase.finish_slot = kNever;
    phase.gang_penalty = 1.0;
    phase.unfinished_parents = static_cast<int>(ps.parents.size());
    for (const auto parent : ps.parents) {
      phases_[job_extent.phase_begin + static_cast<std::size_t>(parent)].has_children = true;
    }
    phase.speedup = SpeedupFunction::from_stats(ps.theta_seconds, ps.sigma_seconds);

    // Identical draw order to the append path: the phase's pool samples
    // first, then per-task block placements.
    if (ps.sigma_seconds <= 0.0) {
      std::fill_n(durations_.begin() + extent.pool_begin, extent.pool_count,
                  ps.theta_seconds);
    } else {
      const ParetoDist dist =
          ParetoDist::fit(ps.theta_seconds, ps.sigma_seconds / ps.theta_seconds);
      for (std::uint32_t i = 0; i < extent.pool_count; ++i) {
        durations_[extent.pool_begin + i] = dist.sample(rng);
      }
    }
    phase.duration_pool.assign(durations_.data() + extent.pool_begin, extent.pool_count);
    phase.tasks.assign(tasks_.data() + extent.task_begin, extent.task_count);

    for (int i = 0; i < ps.task_count; ++i) {
      TaskRuntime& task = tasks_[extent.task_begin + static_cast<std::size_t>(i)];
      task.ref = TaskRef{spec.id, static_cast<PhaseIndex>(k), i};
      task.demand = ps.demand;
      task.copies.release_storage();  // extent already released at completion; idempotent
      task.block = locality.place_block(rng);
      task.finished = false;
      task.ever_cloned = false;
      task.finish_slot = kNever;
      task.first_start = kNever;
      task.work_done_seconds = 0.0;
      task.work_updated_at = 0;
      task.generation = 0;
    }
  }
}

void RuntimeStore::release_job(std::size_t job_index) {
  // The spec may be dropped by the caller once its jobs are recycled; null
  // the pointer so any dangling read trips immediately.
  jobs_[job_index].spec = nullptr;
  const JobExtent& job_extent = job_extents_[job_index];
  shape_scratch_.clear();
  for (std::size_t k = 0; k < job_extent.phase_count; ++k) {
    shape_scratch_.push_back(phase_extents_[job_extent.phase_begin + k].task_count);
  }
  free_slots_[shape_scratch_].push_back(static_cast<std::uint32_t>(job_index));
}

std::size_t RuntimeStore::free_slot_count() const {
  std::size_t n = 0;
  for (const auto& [shape, slots] : free_slots_) n += slots.size();
  return n;
}

std::vector<std::uint8_t> RuntimeStore::free_mask() const {
  std::vector<std::uint8_t> mask(jobs_.size(), 0);
  for (const auto& [shape, slots] : free_slots_) {
    for (const std::uint32_t slot : slots) mask[slot] = 1;
  }
  return mask;
}

void RuntimeStore::rebind_views() {
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    jobs_[j].phases.assign(phases_.data() + job_extents_[j].phase_begin,
                           job_extents_[j].phase_count);
  }
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    phases_[p].tasks.assign(tasks_.data() + phase_extents_[p].task_begin,
                            phase_extents_[p].task_count);
    phases_[p].duration_pool.assign(durations_.data() + phase_extents_[p].pool_begin,
                                    phase_extents_[p].pool_count);
  }
}

void RuntimeStore::save_state(StateWriter& w) const {
  w.section(0x53544F52u);  // 'STOR'
  w.pod_vec(durations_);
  w.pod_vec(job_extents_);
  w.pod_vec(phase_extents_);

  w.u64(jobs_.size());
  for (const JobRuntime& job : jobs_) {
    w.i32(job.id);
    w.i64(job.arrival);
    w.b(job.arrived);
    w.b(job.finished);
    w.i64(job.finish_slot);
    w.i64(job.first_start);
    w.i32(job.remaining_phases);
    w.i32(job.clones_launched);
    w.i32(job.speculative_launched);
    w.f64(job.resource_seconds);
    w.i32(job.tasks_with_clones);
    w.i32(job.pending_events);
    w.i64(job.ingest_seq);
  }

  w.u64(phases_.size());
  for (const PhaseRuntime& phase : phases_) {
    w.i32(phase.index);
    w.i32(phase.remaining_tasks);
    w.i32(phase.unfinished_parents);
    w.b(phase.has_children);
    w.i32(phase.unscheduled_tasks);
    w.i32(phase.first_unscheduled_hint);
    w.i32(phase.active_copies);
    w.b(phase.finished);
    w.i64(phase.finish_slot);
    w.f64(phase.gang_penalty);
    // spec pointer and speedup are rebuilt from the job's spec on load;
    // tasks/duration_pool spans from the extents.
  }

  w.u64(tasks_.size());
  for (const TaskRuntime& task : tasks_) {
    w.pod(task.ref);
    w.pod(task.demand);
    w.pod_vec(task.block.replicas);
    w.b(task.finished);
    w.b(task.ever_cloned);
    w.i64(task.finish_slot);
    w.i64(task.first_start);
    w.f64(task.work_done_seconds);
    w.i64(task.work_updated_at);
    w.u32(task.generation);
    w.u32(static_cast<std::uint32_t>(task.copies.size()));
    for (const CopyRuntime& copy : task.copies) w.pod(copy);
  }

  // Free-slot pool: indices only; shapes are recomputed from the extents.
  std::vector<std::uint32_t> free;
  for (const auto& [shape, slots] : free_slots_) {
    free.insert(free.end(), slots.begin(), slots.end());
  }
  w.pod_vec(free);
}

void RuntimeStore::load_state(StateReader& r, const std::vector<const JobSpec*>& specs) {
  r.section(0x53544F52u);  // 'STOR'
  clear();
  r.pod_vec(durations_);
  r.pod_vec(job_extents_);
  r.pod_vec(phase_extents_);

  const std::uint64_t n_jobs = r.u64();
  if (n_jobs != specs.size() || n_jobs != job_extents_.size()) {
    throw std::runtime_error("snapshot: runtime-store job count mismatch");
  }
  jobs_.resize(n_jobs);
  for (JobRuntime& job : jobs_) {
    job.id = r.i32();
    job.arrival = r.i64();
    job.arrived = r.b();
    job.finished = r.b();
    job.finish_slot = r.i64();
    job.first_start = r.i64();
    job.remaining_phases = r.i32();
    job.clones_launched = r.i32();
    job.speculative_launched = r.i32();
    job.resource_seconds = r.f64();
    job.tasks_with_clones = r.i32();
    job.pending_events = r.i32();
    job.ingest_seq = r.i64();
    job.invalidate_remaining_cache();
  }

  const std::uint64_t n_phases = r.u64();
  if (n_phases != phase_extents_.size()) {
    throw std::runtime_error("snapshot: runtime-store phase count mismatch");
  }
  phases_.resize(n_phases);
  for (PhaseRuntime& phase : phases_) {
    phase.index = r.i32();
    phase.remaining_tasks = r.i32();
    phase.unfinished_parents = r.i32();
    phase.has_children = r.b();
    phase.unscheduled_tasks = r.i32();
    phase.first_unscheduled_hint = r.i32();
    phase.active_copies = r.i32();
    phase.finished = r.b();
    phase.finish_slot = r.i64();
    phase.gang_penalty = r.f64();
  }

  const std::uint64_t n_tasks = r.u64();
  tasks_.resize(n_tasks);
  for (TaskRuntime& task : tasks_) {
    r.pod(task.ref);
    r.pod(task.demand);
    r.pod_vec(task.block.replicas);
    task.finished = r.b();
    task.ever_cloned = r.b();
    task.finish_slot = r.i64();
    task.first_start = r.i64();
    task.work_done_seconds = r.f64();
    task.work_updated_at = r.i64();
    task.generation = r.u32();
    const std::uint32_t copies = r.u32();
    task.copies.bind(&slab_);
    for (std::uint32_t c = 0; c < copies; ++c) {
      CopyRuntime copy;
      r.pod(copy);
      task.copies.push_back(copy);  // re-acquires a slab extent; layout not semantic
    }
  }

  // Rebind spec pointers and the spec-derived speedup from the supplied
  // per-slot specs, then every span from the extents.
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const JobSpec* spec = specs[j];
    jobs_[j].spec = spec;
    const JobExtent& extent = job_extents_[j];
    if (spec->phases.size() != extent.phase_count) {
      throw std::runtime_error("snapshot: runtime-store phase extent mismatch");
    }
    for (std::size_t k = 0; k < extent.phase_count; ++k) {
      PhaseRuntime& phase = phases_[extent.phase_begin + k];
      phase.spec = &spec->phases[k];
      phase.speedup =
          SpeedupFunction::from_stats(spec->phases[k].theta_seconds,
                                      spec->phases[k].sigma_seconds);
    }
  }
  rebind_views();

  std::vector<std::uint32_t> free;
  r.pod_vec(free);
  for (const std::uint32_t slot : free) {
    if (slot >= jobs_.size()) {
      throw std::runtime_error("snapshot: runtime-store free slot out of range");
    }
    release_job(slot);
  }
}

std::size_t RuntimeStore::memory_bytes() const {
  return jobs_.capacity() * sizeof(JobRuntime) +
         phases_.capacity() * sizeof(PhaseRuntime) +
         tasks_.capacity() * sizeof(TaskRuntime) +
         durations_.capacity() * sizeof(double) +
         job_extents_.capacity() * sizeof(JobExtent) +
         phase_extents_.capacity() * sizeof(PhaseExtent) + slab_.memory_bytes();
}

void RuntimeStore::clear() {
  // Task CopyLists hold slab extents; drop them before the slab's blocks.
  tasks_.clear();
  jobs_.clear();
  phases_.clear();
  durations_.clear();
  job_extents_.clear();
  phase_extents_.clear();
  free_slots_.clear();
  slab_.clear();
}

}  // namespace dollymp
