#include "dollymp/sim/runtime_store.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dollymp {

namespace {

/// Pool size for a phase: at least kMinPoolSize entries so that clones of
/// tasks in tiny phases still re-draw an independent duration (a literal
/// 1-entry pool would pin every clone to its original's time and make
/// cloning a single-task job a no-op, contradicting the paper's Fig. 2
/// example).
constexpr int kMinPoolSize = 16;

int pool_size_for(const PhaseSpec& ps) { return std::max(ps.task_count, kMinPoolSize); }

}  // namespace

void RuntimeStore::reserve_for(const std::vector<JobSpec>& specs) {
  std::size_t n_phases = 0;
  std::size_t n_tasks = 0;
  std::size_t n_pool = 0;
  for (const auto& spec : specs) {
    n_phases += spec.phases.size();
    for (const auto& ps : spec.phases) {
      n_tasks += static_cast<std::size_t>(ps.task_count);
      n_pool += static_cast<std::size_t>(pool_size_for(ps));
    }
  }
  jobs_.reserve(jobs_.size() + specs.size());
  job_extents_.reserve(job_extents_.size() + specs.size());
  phases_.reserve(phases_.size() + n_phases);
  phase_extents_.reserve(phase_extents_.size() + n_phases);
  tasks_.reserve(tasks_.size() + n_tasks);
  durations_.reserve(durations_.size() + n_pool);
}

std::size_t RuntimeStore::materialize(const JobSpec& spec, double slot_seconds,
                                      const LocalityModel& locality, Rng& rng) {
  if (slot_seconds <= 0.0) throw std::invalid_argument("materialize: slot_seconds > 0");
  spec.validate();

  const PhaseRuntime* phases_before = phases_.data();
  const TaskRuntime* tasks_before = tasks_.data();
  const double* durations_before = durations_.data();

  const std::size_t job_index = jobs_.size();
  jobs_.emplace_back();
  JobExtent job_extent;
  job_extent.phase_begin = static_cast<std::uint32_t>(phases_.size());
  job_extent.phase_count = static_cast<std::uint32_t>(spec.phases.size());

  {
    JobRuntime& job = jobs_.back();
    job.spec = &spec;
    job.id = spec.id;
    job.arrival = static_cast<SimTime>(std::llround(spec.arrival_seconds / slot_seconds));
    job.remaining_phases = static_cast<int>(spec.phases.size());
  }

  for (std::size_t k = 0; k < spec.phases.size(); ++k) {
    const PhaseSpec& ps = spec.phases[k];
    phases_.emplace_back();
    PhaseRuntime& phase = phases_.back();
    PhaseExtent extent;
    phase.index = static_cast<PhaseIndex>(k);
    phase.spec = &ps;
    phase.remaining_tasks = ps.task_count;
    phase.unscheduled_tasks = ps.task_count;
    phase.unfinished_parents = static_cast<int>(ps.parents.size());
    for (const auto parent : ps.parents) {
      phases_[job_extent.phase_begin + static_cast<std::size_t>(parent)].has_children = true;
    }
    phase.speedup = SpeedupFunction::from_stats(ps.theta_seconds, ps.sigma_seconds);

    // Pre-sample the phase's duration pool into the shared flat array.
    // With sigma == 0 the pool is constant theta; otherwise Pareto fitted
    // to (theta, sigma), matching how the paper derives the speedup
    // function from the same fit.
    const int pool_size = pool_size_for(ps);
    extent.pool_begin = static_cast<std::uint32_t>(durations_.size());
    extent.pool_count = static_cast<std::uint32_t>(pool_size);
    if (ps.sigma_seconds <= 0.0) {
      durations_.insert(durations_.end(), static_cast<std::size_t>(pool_size),
                        ps.theta_seconds);
    } else {
      const ParetoDist dist =
          ParetoDist::fit(ps.theta_seconds, ps.sigma_seconds / ps.theta_seconds);
      for (int i = 0; i < pool_size; ++i) {
        durations_.push_back(dist.sample(rng));
      }
    }

    extent.task_begin = static_cast<std::uint32_t>(tasks_.size());
    extent.task_count = static_cast<std::uint32_t>(ps.task_count);
    for (int i = 0; i < ps.task_count; ++i) {
      tasks_.emplace_back();
      TaskRuntime& task = tasks_.back();
      task.ref = TaskRef{spec.id, static_cast<PhaseIndex>(k), i};
      task.demand = ps.demand;
      task.copies.bind(&slab_);
      task.block = locality.place_block(rng);
    }
    phase_extents_.push_back(extent);
  }
  job_extents_.push_back(job_extent);

  if (phases_.data() != phases_before || tasks_.data() != tasks_before ||
      durations_.data() != durations_before) {
    rebind_views();
  } else {
    // No relocation: bind just the new job's spans.
    JobRuntime& job = jobs_[job_index];
    job.phases.assign(phases_.data() + job_extent.phase_begin, job_extent.phase_count);
    for (std::size_t k = 0; k < job_extent.phase_count; ++k) {
      PhaseRuntime& phase = phases_[job_extent.phase_begin + k];
      const PhaseExtent& extent = phase_extents_[job_extent.phase_begin + k];
      phase.tasks.assign(tasks_.data() + extent.task_begin, extent.task_count);
      phase.duration_pool.assign(durations_.data() + extent.pool_begin, extent.pool_count);
    }
  }
  return job_index;
}

void RuntimeStore::rebind_views() {
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    jobs_[j].phases.assign(phases_.data() + job_extents_[j].phase_begin,
                           job_extents_[j].phase_count);
  }
  for (std::size_t p = 0; p < phases_.size(); ++p) {
    phases_[p].tasks.assign(tasks_.data() + phase_extents_[p].task_begin,
                            phase_extents_[p].task_count);
    phases_[p].duration_pool.assign(durations_.data() + phase_extents_[p].pool_begin,
                                    phase_extents_[p].pool_count);
  }
}

std::size_t RuntimeStore::memory_bytes() const {
  return jobs_.capacity() * sizeof(JobRuntime) +
         phases_.capacity() * sizeof(PhaseRuntime) +
         tasks_.capacity() * sizeof(TaskRuntime) +
         durations_.capacity() * sizeof(double) +
         job_extents_.capacity() * sizeof(JobExtent) +
         phase_extents_.capacity() * sizeof(PhaseExtent) + slab_.memory_bytes();
}

void RuntimeStore::clear() {
  // Task CopyLists hold slab extents; drop them before the slab's blocks.
  tasks_.clear();
  jobs_.clear();
  phases_.clear();
  durations_.clear();
  job_extents_.clear();
  phase_extents_.clear();
  slab_.clear();
}

}  // namespace dollymp
