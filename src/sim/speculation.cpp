#include "dollymp/sim/speculation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dollymp/common/thread_pool.h"
#include "dollymp/obs/recorder.h"

namespace dollymp {

namespace {

using Candidate = SpeculationScratch::Candidate;
using ScanUnit = SpeculationScratch::ScanUnit;
using ShardScan = SpeculationScratch::ShardScan;

/// Earliest slot at which `task` satisfies the overrun predicate
/// elapsed / theta >= slow_factor, i.e. the slot this pass would first
/// consider it a straggler.  Computed in closed form then fixed up against
/// the exact floating-point predicate so the wakeup lands on precisely the
/// slot the old every-slot polling would have acted on.
SimTime overrun_crossing_slot(const TaskRuntime& task, double theta_seconds,
                              double slot_seconds, double slow_factor) {
  const auto overdue = [&](SimTime t) {
    const double elapsed = static_cast<double>(t - task.first_start) * slot_seconds;
    return elapsed / theta_seconds >= slow_factor;
  };
  SimTime cross = task.first_start +
                  static_cast<SimTime>(std::ceil(slow_factor * theta_seconds / slot_seconds));
  while (!overdue(cross)) ++cross;
  while (cross > task.first_start && overdue(cross - 1)) --cross;
  return cross;
}

}  // namespace

std::size_t SpeculationScratch::capacity_bytes() const {
  std::size_t bytes = units.capacity() * sizeof(ScanUnit) +
                      scans.capacity() * sizeof(ShardScan) +
                      candidates.capacity() * sizeof(Candidate);
  for (const auto& s : scans) {
    bytes += s.candidates.capacity() * sizeof(Candidate) +
             s.norm_contributions.capacity() * sizeof(double);
  }
  return bytes;
}

int run_speculation_pass(SchedulerContext& ctx, const SpeculationConfig& config) {
  return run_speculation_pass(ctx, config, nullptr);
}

int run_speculation_pass(SchedulerContext& ctx, const SpeculationConfig& config,
                         SpeculationScratch* scratch) {
  if (!config.enabled) return 0;
  // Degradation ladder level >= 2: backup copies are pure extra load when
  // the cluster is saturated, so the sweep is suspended until the service
  // governor steps back down (level 0/1 — including every batch run —
  // leaves the pass untouched).
  if (ctx.overload_level() >= 2) return 0;

  SpeculationScratch local;
  SpeculationScratch& arena = scratch != nullptr ? *scratch : local;
  const std::size_t capacity_before = arena.capacity_bytes();

  // Resource budget for concurrently running backups.
  const Resources total = ctx.cluster().total_capacity();
  const SimTime now = ctx.now();
  const double slot_seconds = ctx.slot_seconds();

  // Scan units — one per (job, runnable phase) past the finished-fraction
  // gate, in job/phase order.  The per-unit task walk is read-only, so the
  // units shard across the worker pool; each shard collects its candidates,
  // its budget contributions *in scan order*, and its earliest crossing.
  // Concatenating shard results in ascending shard order reproduces the
  // sequential scan exactly: candidates arrive in the same order the serial
  // walk pushes them (so the stable-input sort below sees identical input),
  // and the budget contributions are re-summed serially in that same order,
  // keeping the floating-point accumulation bit-identical.  next_crossing
  // is an integer min, safe under any merge order.
  auto& units = arena.units;
  units.clear();
  for (JobRuntime* job : ctx.active_jobs()) {
    for (auto& phase : job->phases) {
      if (!phase.runnable()) continue;
      const int finished_tasks = phase.spec->task_count - phase.remaining_tasks;
      const double finished_fraction =
          static_cast<double>(finished_tasks) / static_cast<double>(phase.spec->task_count);
      if (finished_fraction < config.min_finished_fraction) continue;
      units.push_back({job, &phase});
    }
  }

  const auto scan_unit = [&](const ScanUnit& unit, ShardScan& out) {
    JobRuntime* job = unit.job;
    PhaseRuntime& phase = *unit.phase;
    for (auto& task : phase.tasks) {
      if (task.finished || !task.running()) continue;
      if (task.first_start == kNever) continue;
      const int copies = task.total_copies();
      if (copies > config.max_backups_per_task) {
        // already backed up: its extra copies count against the budget
        out.norm_contributions.push_back(normalized_sum(task.demand, total) *
                                         static_cast<double>(copies - 1));
        continue;
      }
      const double elapsed = static_cast<double>(now - task.first_start) * slot_seconds;
      const double overrun = elapsed / phase.spec->theta_seconds;
      if (overrun >= config.slow_factor) {
        out.candidates.push_back({job, &phase, &task, overrun});
      } else {
        // Not yet a straggler: the only slot at which that can change
        // with no intervening event is its threshold crossing.  (Tasks
        // gated out by min_finished_fraction need no timer: the gate
        // only opens at a completion, which invokes the scheduler.)
        const SimTime cross = overrun_crossing_slot(task, phase.spec->theta_seconds,
                                                    slot_seconds, config.slow_factor);
        if (out.next_crossing == kNever || cross < out.next_crossing) {
          out.next_crossing = cross;
        }
      }
    }
  };

  ThreadPool* pool = ctx.worker_pool();
  const std::size_t shards = shard_count(pool, units.size());
  const std::size_t scan_slots = std::max<std::size_t>(shards, 1);
  auto& scans = arena.scans;
  if (scans.size() < scan_slots) scans.resize(scan_slots);
  for (std::size_t s = 0; s < scan_slots; ++s) {
    scans[s].candidates.clear();
    scans[s].norm_contributions.clear();
    scans[s].next_crossing = kNever;
  }
  run_shards(pool, shards, units.size(),
             [&](std::size_t s, std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) scan_unit(units[i], scans[s]);
             });
  if (ShardStats* stats = ctx.shard_stats()) stats->note(shards, units.size());

  // Ordered merge: shard order == sequential scan order.  (Only the first
  // scan_slots entries were written; an arena reused across passes may
  // retain more slots than this pass dispatched.)
  double backup_norm_in_use = 0.0;
  auto& candidates = arena.candidates;
  candidates.clear();
  SimTime next_crossing = kNever;
  for (std::size_t s = 0; s < scan_slots; ++s) {
    const ShardScan& scan = scans[s];
    candidates.insert(candidates.end(), scan.candidates.begin(), scan.candidates.end());
    for (const double contribution : scan.norm_contributions) {
      backup_norm_in_use += contribution;
    }
    if (scan.next_crossing != kNever &&
        (next_crossing == kNever || scan.next_crossing < next_crossing)) {
      next_crossing = scan.next_crossing;
    }
  }
  if (next_crossing != kNever) ctx.request_wakeup(next_crossing);

  // Most overdue first — LATE's "longest approximate time to end".
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.overrun > b.overrun; });

  int launched = 0;
  for (const auto& c : candidates) {
    if (backup_norm_in_use >= config.capacity_fraction_cap * 2.0) break;  // 2 dims
    const ServerId server = best_fit_server(ctx, c.task->demand);
    if (server == kInvalidServer) break;
    if (ctx.place_speculative_copy(*c.job, *c.phase, *c.task, server)) {
      backup_norm_in_use += normalized_sum(c.task->demand, total);
      ++launched;
    }
  }
  // Flight-recorder summary of this sweep: how many stragglers crossed the
  // overrun threshold and how many backups actually launched, packed into
  // one record (candidates in the high bits, launches in the low 16).
  if (Recorder* rec = ctx.recorder(); rec != nullptr && !candidates.empty()) {
    TraceRecord r;
    r.slot = ctx.now();
    r.type = TraceEv::kSpeculationPass;
    r.aux = (static_cast<std::int64_t>(candidates.size()) << 16) |
            static_cast<std::int64_t>(launched & 0xFFFF);
    rec->append(r);
  }
  // Arena accounting: a caller-retained scratch that served a parallel pass
  // counts as one acquisition, grown iff any backing buffer allocated.
  if (scratch != nullptr && shards >= 2) {
    if (ShardStats* stats = ctx.shard_stats()) {
      stats->note_arena(arena.capacity_bytes() > capacity_before);
    }
  }
  return launched;
}

}  // namespace dollymp
