#include "dollymp/sim/sim_core.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "dollymp/common/distributions.h"
#include "dollymp/common/resources.h"
#include "dollymp/common/state_io.h"
#include "dollymp/common/stats.h"
#include "dollymp/sim/execution.h"

namespace dollymp {

namespace {

// Snapshot section tags (fourcc).  A reader that hits the wrong tag fails
// with the tag name instead of silently misparsing the stream.
constexpr std::uint32_t kTagCore = 0x434F5245u;   // 'CORE'
constexpr std::uint32_t kTagCluster = 0x434C5553u;  // 'CLUS'
constexpr std::uint32_t kTagBackground = 0x424B4744u;  // 'BKGD'
constexpr std::uint32_t kTagSpecs = 0x53504543u;  // 'SPEC'
constexpr std::uint32_t kTagArrivals = 0x41525256u;  // 'ARRV'
constexpr std::uint32_t kTagHeap = 0x48454150u;   // 'HEAP'
constexpr std::uint32_t kTagStats = 0x53544154u;  // 'STAT'
constexpr std::uint32_t kTagScheduler = 0x53434844u;  // 'SCHD'

void save_job_spec(StateWriter& w, const JobSpec& spec) {
  w.i32(spec.id);
  w.str(spec.name);
  w.str(spec.app);
  w.f64(spec.arrival_seconds);
  w.u64(spec.phases.size());
  for (const PhaseSpec& ps : spec.phases) {
    w.str(ps.name);
    w.i32(ps.task_count);
    w.pod(ps.demand);
    w.f64(ps.theta_seconds);
    w.f64(ps.sigma_seconds);
    w.b(ps.gang);
    w.pod_vec(ps.parents);
  }
}

JobSpec load_job_spec(StateReader& r) {
  JobSpec spec;
  spec.id = r.i32();
  spec.name = r.str();
  spec.app = r.str();
  spec.arrival_seconds = r.f64();
  spec.phases.resize(r.u64());
  for (PhaseSpec& ps : spec.phases) {
    ps.name = r.str();
    ps.task_count = r.i32();
    r.pod(ps.demand);
    ps.theta_seconds = r.f64();
    ps.sigma_seconds = r.f64();
    ps.gang = r.b();
    r.pod_vec(ps.parents);
  }
  return spec;
}

/// Stand-in spec written for a recycled (free) job slot: the slot's spec
/// pointer was nulled at release, but the restore path still needs a spec
/// of matching shape to rebind against before the slot is re-released.
JobSpec placeholder_spec(const JobRuntime& job) {
  JobSpec spec;
  spec.id = job.id;
  spec.name = "(recycled)";
  spec.phases.reserve(job.phases.size());
  for (const PhaseRuntime& phase : job.phases) {
    PhaseSpec ps;
    ps.name = "(recycled)";
    ps.task_count = static_cast<int>(phase.tasks.size());
    ps.theta_seconds = 1.0;
    spec.phases.push_back(std::move(ps));
  }
  return spec;
}

}  // namespace

SimCore::SimCore(Cluster cluster, const SimConfig& config)
    : cluster_(std::move(cluster)),
      config_(config),
      locality_(config.locality, cluster_),
      background_(config.background, cluster_.size(), splitmix_seed(config.seed, 0xB6)),
      rng_root_(config.seed),
      rec_(config.recorder) {
  rng_workload_ = rng_root_.split(1);
  rng_exec_ = rng_root_.split(2);
  rng_policy_ = rng_root_.split(3);
  rng_failure_ = rng_root_.split(4);
  if (config_.use_placement_index) index_.emplace(cluster_);
  if (config_.failures.enabled || config_.faults.any_enabled()) {
    faults_.emplace(cluster_, config_.failures, config_.faults, config_.slot_seconds,
                    rng_failure_);
  }
  // The deterministic parallel core's worker pool: threads == 1 (the
  // default) keeps the exact sequential path with no pool; 0 resolves to
  // hardware_concurrency inside ThreadPool.  A resolved single-worker
  // pool is dropped again — one worker cannot shard, so the sharded call
  // sites would run inline anyway and the thread would only idle.
  if (config_.threads != 1) {
    pool_.emplace(static_cast<std::size_t>(config_.threads));
    if (pool_->size() < 2) pool_.reset();
  }
  if (index_) {
    index_->set_parallelism(worker_pool(), &parallel_stats_);
    index_->set_batching(config_.batch_placement);
  }
  events_.reset(static_cast<std::size_t>(config_.event_shards));
}

// ---- streaming driver ------------------------------------------------------

void SimCore::ingest(const std::vector<JobSpec>& specs) {
  if (!wall_start_) wall_start_ = std::chrono::steady_clock::now();
  if (specs.empty()) return;

  // The active list holds pointers into jobs_; remember indices in case the
  // flat array relocates (the store rebinds its own spans, not ours).
  const JobRuntime* jobs_before = jobs_.data();
  std::vector<std::size_t> active_idx;
  active_idx.reserve(active_.size());
  for (const JobRuntime* j : active_) {
    active_idx.push_back(static_cast<std::size_t>(j - jobs_before));
  }

  store_.reserve_for(specs);
  const std::size_t order_before = arrival_order_.size();
  for (const auto& spec : specs) {
    validate_placeable(spec);
    const std::size_t index =
        store_.materialize(spec, config_.slot_seconds, locality_, rng_workload_);
    JobRuntime& job = jobs_[index];
    job.ingest_seq = next_ingest_seq_++;
    job.pending_events = 0;
    arrival_order_.push_back(static_cast<std::int32_t>(index));
    ++jobs_remaining_;
    ++totals_.jobs_ingested;
  }
  if (jobs_.data() != jobs_before) {
    for (std::size_t k = 0; k < active_.size(); ++k) {
      active_[k] = jobs_.data() + active_idx[k];
    }
  }

  // Sort the new entries by arrival (stable: ties keep ingestion order,
  // exactly like the batch path's one global stable_sort) and merge them
  // into the unconsumed suffix.
  const auto by_arrival = [this](std::int32_t a, std::int32_t b) {
    return jobs_[static_cast<std::size_t>(a)].arrival <
           jobs_[static_cast<std::size_t>(b)].arrival;
  };
  std::stable_sort(arrival_order_.begin() + static_cast<std::ptrdiff_t>(order_before),
                   arrival_order_.end(), by_arrival);
  if (order_before > next_arrival_) {
    std::inplace_merge(arrival_order_.begin() + static_cast<std::ptrdiff_t>(next_arrival_),
                       arrival_order_.begin() + static_cast<std::ptrdiff_t>(order_before),
                       arrival_order_.end(), by_arrival);
  }
  // Drop the consumed prefix once it dominates, so the order array is
  // bounded by pending arrivals on an unbounded stream.
  if (next_arrival_ > 1024 && next_arrival_ > arrival_order_.size() / 2) {
    arrival_order_.erase(arrival_order_.begin(),
                         arrival_order_.begin() + static_cast<std::ptrdiff_t>(next_arrival_));
    next_arrival_ = 0;
  }
}

void SimCore::begin(Scheduler& scheduler) {
  if (started_) throw std::logic_error("SimCore: begin() called twice");
  if (!wall_start_) wall_start_ = std::chrono::steady_clock::now();
  result_.scheduler = scheduler.name();
  result_.slot_seconds = config_.slot_seconds;
  seed_failures();
  scheduler_ = &scheduler;
  scheduler.reset();
  started_ = true;
}

StepOutcome SimCore::step_until(SimTime horizon) {
  if (!started_) throw std::logic_error("SimCore: step_until() before begin()");
  for (;;) {
    if (first_visit_) {
      // Slot 0 is visited unconditionally, exactly like the legacy loop's
      // first iteration (a scheduler may have work even before arrivals).
      if (!streaming_ && jobs_remaining_ == 0) return StepOutcome::kFinished;
      if (streaming_ && jobs_remaining_ == 0 && events_.empty() &&
          next_arrival_ >= arrival_order_.size()) {
        return StepOutcome::kIdle;
      }
      if (now_ > horizon) return StepOutcome::kHorizonReached;
      first_visit_ = false;
    } else {
      if (!streaming_ && jobs_remaining_ == 0) return StepOutcome::kFinished;

      // Fast-forward to the next slot anything can happen at: the earliest
      // of the next arrival and the event heap's top (completions,
      // failures, repairs and requested timer wakeups all live there).
      SimTime next = config_.max_slots + 1;
      if (next_arrival_ < arrival_order_.size()) {
        next = std::min(
            next, jobs_[static_cast<std::size_t>(arrival_order_[next_arrival_])].arrival);
      }
      if (!events_.empty()) next = std::min(next, events_.top().slot);

      if (streaming_ && jobs_remaining_ == 0 && events_.empty() &&
          next_arrival_ >= arrival_order_.size()) {
        return StepOutcome::kIdle;
      }
      if (jobs_remaining_ > 0 && source_exhausted_ && !any_copy_active() &&
          next_arrival_ >= arrival_order_.size() && !state_events_pending()) {
        // Pending work, no running copies, no future arrivals, and nothing
        // in the heap that could change state (pending timer wakeups do not
        // count: re-invoking a scheduler that just declined to place on an
        // idle cluster cannot help): if the policy also placed nothing we
        // are stuck — unless it explicitly deferred via defer_retry, in
        // which case the registered wakeup will re-invoke it when backoff
        // expires.
        if (!placed_this_invocation_ && !deferred_this_invocation_) {
          throw std::runtime_error(
              "Simulator: scheduler '" + scheduler_->name() + "' stalled at slot " +
              std::to_string(now_) + " with " + std::to_string(jobs_remaining_) +
              " unfinished job(s) and idle cluster");
        }
      }
      // Pause WITHOUT advancing: resuming recomputes the due slot fresh, so
      // jobs ingested while paused can still land between now_ and next.
      if (next > horizon) return StepOutcome::kHorizonReached;
      if (next <= now_) {
        throw std::logic_error("Simulator: time failed to advance");
      }
      result_.stats.slots_fast_forwarded += next - now_ - 1;
      now_ = next;
    }
    if (now_ > config_.max_slots) {
      throw std::runtime_error("Simulator: exceeded max_slots safety valve at slot " +
                               std::to_string(now_));
    }
    visit_slot();
  }
}

void SimCore::visit_slot() {
  ++result_.stats.slots_visited;
  arrivals_this_slot_ = false;
  drain_failures();
  process_arrivals();
  drain_completions();
  // Drop finished jobs from the active list (keep arrival order).
  std::erase_if(active_, [](const JobRuntime* j) { return j->finished; });

  placed_this_invocation_ = false;
  deferred_this_invocation_ = false;
  if (!active_.empty()) {
    if (arrivals_this_slot_) scheduler_->on_job_arrival(*this);
    ++result_.stats.scheduler_invocations;
    trace(TraceEv::kSchedulerInvoked, -1, -1, -1, -1, -1,
          static_cast<std::int64_t>(active_.size()));
    scheduler_->schedule(*this);
    sample_utilization();
  }
}

SimResult SimCore::finish() {
  // Build records.  In recycle mode the per-job runtime slots no longer
  // cover every arrival (that is the point), so the aggregate totals_ are
  // the outcome record instead.
  if (!recycle_) {
    result_.jobs.reserve(jobs_.size());
    double makespan = 0.0;
    for (const auto& job : jobs_) {
      JobRecord rec;
      rec.id = job.id;
      rec.name = job.spec->name;
      rec.app = job.spec->app;
      rec.arrival_seconds = static_cast<double>(job.arrival) * config_.slot_seconds;
      rec.first_start_seconds = static_cast<double>(job.first_start) * config_.slot_seconds;
      rec.finish_seconds = static_cast<double>(job.finish_slot) * config_.slot_seconds;
      rec.total_tasks = job.total_tasks();
      rec.clones_launched = job.clones_launched;
      rec.speculative_launched = job.speculative_launched;
      rec.tasks_with_clones = job.tasks_with_clones;
      rec.resource_seconds = job.resource_seconds;
      makespan = std::max(makespan, rec.finish_seconds);
      result_.jobs.push_back(std::move(rec));
    }
    result_.makespan_seconds = makespan;
  } else {
    result_.makespan_seconds = totals_.makespan_seconds;
  }
  // Conservation inputs for the chaos invariants: with every job complete,
  // no allocation and no active copy may survive the run.
  for (const auto& server : cluster_.servers()) {
    result_.stats.leaked_cpu += server.used().cpu();
    result_.stats.leaked_mem += server.used().mem();
  }
  result_.stats.leaked_active_copies = active_copy_count_;
  if (index_) {
    result_.stats.index_queries = index_->counters().queries;
    result_.stats.index_servers_scanned = index_->counters().servers_scanned;
    result_.stats.index_updates = index_->counters().updates;
    result_.stats.index_batch_hits = index_->counters().batch_hits;
    result_.stats.index_batch_rebuilds = index_->counters().batch_rebuilds;
  }
  {
    const CopySlab::Counters& slab = store_.copy_slab().counters();
    result_.stats.copy_slab_acquires = static_cast<long long>(slab.acquires);
    result_.stats.copy_slab_reuses = static_cast<long long>(slab.reuses);
    result_.stats.copy_slab_blocks = static_cast<long long>(slab.block_allocations);
    result_.stats.runtime_store_bytes = static_cast<long long>(store_.memory_bytes());
    result_.stats.server_table_bytes = static_cast<long long>(cluster_.table().memory_bytes());
    result_.stats.bytes_per_server =
        cluster_.empty() ? 0.0
                         : static_cast<double>(result_.stats.server_table_bytes) /
                               static_cast<double>(cluster_.size());
    result_.stats.peak_rss_bytes = process_peak_rss_bytes();
  }
  result_.stats.parallel_sections = parallel_stats_.sections;
  result_.stats.parallel_shards = parallel_stats_.shards;
  result_.stats.parallel_items = parallel_stats_.items;
  result_.stats.parallel_max_shard_items = parallel_stats_.max_shard_items;
  result_.stats.parallel_arena_acquires = parallel_stats_.arena_acquires;
  result_.stats.parallel_arena_reuses = parallel_stats_.arena_reuses;
  result_.stats.parallel_arena_grows = parallel_stats_.arena_grows;
  result_.stats.threads_configured = config_.threads;
  result_.stats.threads_resolved =
      pool_ ? static_cast<long long>(pool_->size()) : 1;
  if (rec_) {
    result_.stats.recorder_records = static_cast<long long>(rec_->records_written());
    result_.stats.recorder_bytes = static_cast<long long>(rec_->bytes_written());
    result_.stats.recorder_evictions = static_cast<long long>(rec_->evictions());
    result_.stats.recorder_hash = rec_->hash();
  }
  result_.stats.wall_clock_seconds =
      wall_start_
          ? std::chrono::duration<double>(std::chrono::steady_clock::now() - *wall_start_)
                .count()
          : 0.0;
  return std::move(result_);
}

void SimCore::maybe_recycle(JobRuntime& job) {
  if (!recycle_ || !job.finished || job.pending_events > 0) return;
  recycled_.push_back(RecycledJob{job.ingest_seq, job.id});
  store_.release_job(static_cast<std::size_t>(&job - jobs_.data()));
}

void SimCore::take_recycled(std::vector<RecycledJob>& out) {
  out.insert(out.end(), recycled_.begin(), recycled_.end());
  recycled_.clear();
}

// ---- SchedulerContext ------------------------------------------------------

bool SimCore::place_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                         ServerId server) {
  return place(job, phase, task, server, /*speculative=*/false);
}

bool SimCore::place_speculative_copy(JobRuntime& job, PhaseRuntime& phase,
                                     TaskRuntime& task, ServerId server) {
  return place(job, phase, task, server, /*speculative=*/true);
}

bool SimCore::place_gang(JobRuntime& job, PhaseRuntime& phase) {
  SimStats& stats = result_.stats;
  if (phase.spec == nullptr || !phase.spec->gang) return false;
  if (job.finished || !job.arrived || !phase.runnable()) return false;
  if (phase.unscheduled_tasks == 0) return false;

  // Probe: tentatively reserve a best-fit server per pending task, in task
  // order.  Reservations go through the live cluster (and index) so every
  // subsequent query sees the gang's own footprint.  Nothing downstream of
  // the reservation happens yet — no RNG draw, no completion event, no
  // placement record — so a rollback is invisible to the decision stream
  // (only the placement-query trace records of the probe remain, exactly
  // like any other query that failed to turn into a placement).
  gang_scratch_.clear();
  bool complete = true;
  for (auto& task : phase.tasks) {
    if (!task.needs_placement()) continue;
    const ServerId server_id = best_fit_server(*this, task.demand);
    if (server_id == kInvalidServer) {
      complete = false;
      break;
    }
    Server& server = cluster_.server(static_cast<std::size_t>(server_id));
    if (!server.allocate(task.demand)) {
      complete = false;
      break;
    }
    if (index_) index_->on_allocation_changed(server_id);
    gang_scratch_.emplace_back(&task, server_id);
  }

  if (!complete) {
    // All-or-nothing: release every tentative reservation, newest first.
    // Demands are added and subtracted as the exact same doubles, so the
    // cluster's used vectors return to their prior values bit for bit.
    for (auto it = gang_scratch_.rbegin(); it != gang_scratch_.rend(); ++it) {
      cluster_.server(static_cast<std::size_t>(it->second)).release(it->first->demand);
      if (index_) index_->on_allocation_changed(it->second);
    }
    ++stats.gang_rollbacks;
    trace(TraceEv::kGangRollback, job.id, phase.index, -1, -1, -1,
          static_cast<std::int64_t>(gang_scratch_.size()));
    gang_scratch_.clear();
    return false;
  }

  // The wave's rack-spread penalty: every copy of a gang split across R
  // racks pays the all-reduce cost of crossing R-1 rack switches.
  gang_rack_scratch_.clear();
  for (const auto& [task, server_id] : gang_scratch_) {
    const int rack = cluster_.server(static_cast<std::size_t>(server_id)).rack();
    if (std::find(gang_rack_scratch_.begin(), gang_rack_scratch_.end(), rack) ==
        gang_rack_scratch_.end()) {
      gang_rack_scratch_.push_back(rack);
    }
  }
  const int racks = static_cast<int>(gang_rack_scratch_.size());
  phase.gang_penalty =
      1.0 + config_.gang_spread_penalty * static_cast<double>(racks - 1);

  // Commit: hand each reserved slot to the normal placement path for full
  // accounting/eventing.  Each reservation is released immediately before
  // place() re-allocates the identical demand on the identical server, so
  // place() cannot run out of capacity here.
  int placed = 0;
  for (const auto& [task, server_id] : gang_scratch_) {
    cluster_.server(static_cast<std::size_t>(server_id)).release(task->demand);
    if (index_) index_->on_allocation_changed(server_id);
    if (!place(job, phase, *task, server_id, /*speculative=*/false)) {
      throw std::logic_error("SimCore: gang commit lost its reservation (job " +
                             std::to_string(job.id) + " phase " +
                             std::to_string(phase.index) + ")");
    }
    ++placed;
  }
  ++stats.gangs_placed;
  stats.gang_tasks_placed += placed;
  if (racks > 1) ++stats.gangs_split_across_racks;
  trace(TraceEv::kGangPlaced, job.id, phase.index, -1, -1, -1,
        (static_cast<std::int64_t>(racks) << 32) | static_cast<std::int64_t>(placed));
  gang_scratch_.clear();
  return true;
}

void SimCore::request_wakeup(SimTime slot) {
  ++result_.stats.timer_wakeups_requested;
  const SimTime target = std::max(slot, now_ + 1);
  if (target == pending_timer_slot_) return;  // already registered
  push_event(SimEvent{target, EvKind::kTimer});
  ++pending_timer_count_;
  pending_timer_slot_ = target;
  trace(TraceEv::kWakeupRequested, -1, -1, -1, -1, -1, target);
}

void SimCore::set_server_quarantined(ServerId server_id, bool quarantined) {
  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  if (server.is_quarantined() == quarantined) return;  // idempotent
  server.set_quarantined(quarantined);
  // Index candidacy invariant: a server is indexed iff it is up AND not
  // quarantined.  When the server is down the crash/repair path owns the
  // index transition, so only touch the index for an up server here.
  if (quarantined) {
    ++result_.stats.servers_quarantined;
    if (index_ && !server.is_down()) index_->on_server_down(server_id);
    trace(TraceEv::kQuarantineEnter, -1, -1, -1, -1, server_id);
  } else {
    ++result_.stats.quarantine_exits;
    if (index_ && !server.is_down()) index_->on_server_up(server_id);
    trace(TraceEv::kQuarantineExit, -1, -1, -1, -1, server_id);
  }
}

void SimCore::defer_retry(SimTime release_slot) {
  deferred_this_invocation_ = true;
  request_wakeup(release_slot);
}

int SimCore::live_servers() const {
  int live = 0;
  for (std::size_t s = 0; s < cluster_.size(); ++s) {
    const Server& server = cluster_.server(s);
    if (!server.is_down() && !server.is_quarantined()) ++live;
  }
  return live;
}

void SimCore::note_arrival_shed(JobId job, int tenant_class, int reason) {
  switch (reason) {
    case 0: ++result_.stats.arrivals_shed_admission; break;
    case 1: ++result_.stats.arrivals_shed_watermark; break;
    default: ++result_.stats.arrivals_shed_overload; break;
  }
  trace(TraceEv::kArrivalShed, job, -1, -1, -1, -1,
        (static_cast<std::int64_t>(reason) << 8) |
            static_cast<std::int64_t>(tenant_class));
}

void SimCore::note_overload_transition(int from_level, int to_level) {
  ++result_.stats.overload_transitions;
  result_.stats.overload_level_max =
      std::max<long long>(result_.stats.overload_level_max, to_level);
  trace(TraceEv::kOverloadLevelChanged, -1, -1, -1, -1, -1,
        (static_cast<std::int64_t>(to_level) << 8) |
            static_cast<std::int64_t>(from_level));
  overload_level_ = to_level;
}

void SimCore::note_retry_issued(long long backoff_slots) {
  ++result_.stats.retries_issued;
  result_.stats.backoff_slots_waited += backoff_slots;
}

void SimCore::note_clone_budget_degraded(int effective, int configured) {
  ++result_.stats.clone_budget_degradations;
  trace(TraceEv::kCloneBudgetDegraded, -1, -1, -1, -1, -1,
        (static_cast<std::int64_t>(effective) << 16) |
            static_cast<std::int64_t>(configured));
}

// ---- event plumbing --------------------------------------------------------

void SimCore::push_event(const SimEvent& event) {
  events_.push(event, event_shard_for(event.server, event.job_index,
                                      events_.shard_count(), cluster_.size(),
                                      jobs_.size()));
}

void SimCore::push_completion(SimTime slot, JobRuntime& job, PhaseIndex phase,
                              std::int32_t task, std::int32_t copy,
                              std::uint32_t generation) {
  SimEvent e;
  e.slot = slot;
  e.kind = EvKind::kCompletion;
  e.job_index = static_cast<std::int32_t>(&job - jobs_.data());
  e.phase = phase;
  e.task = task;
  e.copy = copy;
  e.generation = generation;
  // Recycling bookkeeping: the slot cannot be reused while this event is in
  // flight (drain_completions decrements when it pops).
  ++job.pending_events;
  push_event(e);
}

void SimCore::push_machine_event(SimTime delay, EvKind kind, std::int32_t target) {
  SimEvent e;
  e.slot = now_ + delay;
  e.kind = kind;
  e.server = target;
  push_event(e);
}

void SimCore::record_event(SimEventKind kind, JobId job, PhaseIndex phase, int task,
                           std::int32_t server) {
  if (!config_.record_events) return;
  result_.events.push_back(SimEventRecord{
      static_cast<double>(now_) * config_.slot_seconds, kind, job, phase, task, server});
}

void SimCore::trace(TraceEv type, JobId job, PhaseIndex phase, std::int32_t task,
                    std::int32_t copy, std::int32_t server, std::int64_t aux) {
  if (!rec_) return;
  TraceRecord r;
  r.slot = now_;
  r.type = type;
  r.job = job;
  r.phase = phase;
  r.task = task;
  r.copy = copy;
  r.server = server;
  r.aux = aux;
  rec_->append(r);
}

void SimCore::validate_placeable(const JobSpec& spec) const {
  for (const auto& phase : spec.phases) {
    bool fits_somewhere = false;
    for (const auto& server : cluster_.servers()) {
      if (phase.demand.fits_within(server.capacity())) {
        fits_somewhere = true;
        break;
      }
    }
    if (!fits_somewhere) {
      throw std::invalid_argument("Simulator: job " + std::to_string(spec.id) + " phase '" +
                                  phase.name + "' demand " + phase.demand.to_string() +
                                  " exceeds every server capacity");
    }
    // A gang phase must fit collectively on an otherwise-empty cluster or
    // it could never commit, deadlocking the run once it reaches the head.
    // All tasks share one demand, so the check is a per-server copy count.
    if (phase.gang && phase.task_count > 1) {
      long long slots = 0;
      for (const auto& server : cluster_.servers()) {
        long long per_server = -1;
        for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
          if (phase.demand[d] <= 0.0) continue;
          const auto fit = static_cast<long long>(
              server.capacity()[d] / phase.demand[d] + 1e-9);
          per_server = per_server < 0 ? fit : std::min(per_server, fit);
        }
        slots += per_server < 0 ? static_cast<long long>(phase.task_count) : per_server;
        if (slots >= phase.task_count) break;
      }
      if (slots < phase.task_count) {
        throw std::invalid_argument(
            "Simulator: job " + std::to_string(spec.id) + " gang phase '" + phase.name +
            "' (" + std::to_string(phase.task_count) + " tasks of " +
            phase.demand.to_string() + ") cannot fit on the cluster even when empty");
      }
    }
  }
}

// ---- placement and completion ---------------------------------------------

bool SimCore::place(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                    ServerId server_id, bool speculative) {
  SimStats& stats = result_.stats;
  ++stats.placement_attempts;
  if (job.finished || !job.arrived) {
    ++stats.rejected_job_not_ready;
    return false;
  }
  if (!phase.runnable() || task.finished) {
    ++stats.rejected_phase_not_runnable;
    return false;
  }
  // The cap applies to *concurrent* copies: after a machine failure kills a
  // task's copies it may be re-placed even though dead copies remain on
  // record.
  if (task.active_copies() >= config_.max_copies_per_task) {
    ++stats.rejected_copy_cap;
    return false;
  }
  if (server_id < 0 || static_cast<std::size_t>(server_id) >= cluster_.size()) {
    ++stats.rejected_invalid_server;
    return false;
  }

  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  if (!server.allocate(task.demand)) {
    ++stats.rejected_no_capacity;
    return false;
  }
  if (index_) index_->on_allocation_changed(server_id);
  server.note_copy_started();
  ++stats.placements_accepted;

  const bool first_copy = task.copies.empty();
  // A task with no running copy is either brand new or a failure
  // re-execution; either way this placement satisfies its needs-placement
  // state (and is not redundancy, so it must not count as a clone).
  const bool had_active_sibling = task.active_copies() > 0;
  CopyRuntime copy;
  copy.server = server_id;
  copy.start = now_;
  copy.active = true;
  copy.locality = locality_.classify(task.block, server_id);

  if (config_.model == ExecutionModel::kStochastic) {
    const double base =
        sample_copy_base_seconds(phase, task.ref.task, first_copy, rng_exec_);
    // Fail-slow degradation multiplies the realized duration; the healthy
    // factor is exactly 1.0, so this is bit-identical when faults are off.
    double seconds =
        scale_copy_seconds(
            base, server.base_speed(), locality_.penalty(copy.locality),
            background_.slowdown(static_cast<std::size_t>(server_id),
                                 static_cast<double>(now_) * config_.slot_seconds)) *
        server.slow_factor();
    // Gang rack-spread penalty (guarded: exactly 1.0 for non-gang phases,
    // keeping the historical arithmetic untouched).
    if (phase.gang_penalty != 1.0) seconds *= phase.gang_penalty;
    copy.base_seconds = seconds;
    copy.finish = now_ + seconds_to_slots(seconds, config_.slot_seconds);
    task.copies.push_back(copy);
    push_completion(copy.finish, job, phase.index, task.ref.task,
                    static_cast<std::int32_t>(task.copies.size() - 1), 0);
  } else {
    // Work-based: roll accrued work to now, then re-predict with the larger
    // copy set and invalidate the previous prediction.
    accrue_work(task, phase, now_, config_.slot_seconds);
    task.copies.push_back(copy);
    ++task.generation;
    const SimTime finish = predict_work_finish(task, phase, now_, config_.slot_seconds);
    push_completion(finish, job, phase.index, task.ref.task, -1, task.generation);
  }

  ++active_copy_count_;
  ++phase.active_copies;
  if (!had_active_sibling) --phase.unscheduled_tasks;
  placed_this_invocation_ = true;

  if (task.first_start == kNever) task.first_start = now_;
  if (job.first_start == kNever) job.first_start = now_;
  if (had_active_sibling) {
    if (speculative) {
      ++job.speculative_launched;
    } else {
      ++job.clones_launched;
    }
    if (!task.ever_cloned && !speculative) {
      task.ever_cloned = true;
      ++job.tasks_with_clones;
    }
  }
  record_event(!had_active_sibling ? SimEventKind::kCopyPlaced
               : speculative       ? SimEventKind::kSpeculativePlaced
                                   : SimEventKind::kClonePlaced,
               job.id, phase.index, task.ref.task, server_id);
  trace(!had_active_sibling ? TraceEv::kCopyPlaced
        : speculative       ? TraceEv::kSpeculativePlaced
                            : TraceEv::kClonePlaced,
        job.id, phase.index, task.ref.task,
        static_cast<std::int32_t>(task.copies.size() - 1), server_id,
        static_cast<std::int64_t>(task.copies.back().locality));
  ++result_.total_copies_launched;
  return true;
}

void SimCore::end_copy(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                       CopyRuntime& copy, bool killed) {
  if (!copy.active) return;
  copy.active = false;
  copy.killed = killed;
  if (killed) {
    ++result_.stats.copies_killed;
  } else {
    ++result_.stats.copies_finished;
  }
  record_event(killed ? SimEventKind::kCopyKilled : SimEventKind::kCopyFinished,
               job.id, phase.index, task.ref.task, copy.server);
  trace(killed ? TraceEv::kCopyKilled : TraceEv::kCopyFinished, job.id, phase.index,
        task.ref.task, static_cast<std::int32_t>(&copy - task.copies.data()),
        copy.server, now_ - copy.start);
  Server& server = cluster_.server(static_cast<std::size_t>(copy.server));
  server.release(task.demand);
  if (index_) index_->on_allocation_changed(copy.server);
  server.note_copy_finished();
  --active_copy_count_;
  --phase.active_copies;
  const double duration_seconds =
      static_cast<double>(now_ - copy.start) * config_.slot_seconds;
  job.resource_seconds +=
      normalized_sum(task.demand, cluster_.total_capacity()) * duration_seconds;
}

void SimCore::complete_task(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task) {
  task.finished = true;
  task.finish_slot = now_;
  job.invalidate_remaining_cache();  // remaining_tasks is about to change
  ++result_.total_tasks_completed;
  record_event(SimEventKind::kTaskCompleted, job.id, phase.index, task.ref.task);
  trace(TraceEv::kTaskCompleted, job.id, phase.index, task.ref.task, -1, -1,
        task.total_copies());

  // Delay-assignment clone handling (Section 5): optionally keep the
  // best-locality sibling when a downstream phase will consume this task's
  // output; kill the rest.
  CopyRuntime* keep = nullptr;
  if (config_.kill_policy == CloneKillPolicy::kKeepBestLocality && phase.has_children) {
    for (auto& c : task.copies) {
      if (!c.active) continue;
      if (keep == nullptr ||
          static_cast<int>(c.locality) < static_cast<int>(keep->locality) ||
          (c.locality == keep->locality && c.start < keep->start)) {
        keep = &c;
      }
    }
  }
  for (auto& c : task.copies) {
    if (c.active && &c != keep) end_copy(job, phase, task, c, /*killed=*/true);
  }

  if (config_.record_tasks) {
    TaskRecord record;
    record.ref = task.ref;
    record.first_start_seconds = static_cast<double>(task.first_start) * config_.slot_seconds;
    record.finish_seconds = static_cast<double>(now_) * config_.slot_seconds;
    record.copies = task.total_copies();
    result_.tasks.push_back(record);
  }

  if (--phase.remaining_tasks == 0) complete_phase(job, phase);
}

void SimCore::complete_phase(JobRuntime& job, PhaseRuntime& phase) {
  phase.finished = true;
  phase.finish_slot = now_;
  job.invalidate_remaining_cache();
  record_event(SimEventKind::kPhaseCompleted, job.id, phase.index);
  trace(TraceEv::kPhaseCompleted, job.id, phase.index);
  // Unlock children (Eq. 7).
  for (auto& other : job.phases) {
    for (const auto parent : other.spec->parents) {
      if (parent == phase.index) --other.unfinished_parents;
    }
  }
  // Kept-for-locality copies of this phase are no longer useful once the
  // phase completes; terminate them so resources free up.
  for (auto& task : phase.tasks) {
    for (auto& c : task.copies) {
      if (c.active) end_copy(job, phase, task, c, /*killed=*/true);
    }
  }
  if (scheduler_ != nullptr) scheduler_->on_phase_completed(*this, job, phase);
  if (--job.remaining_phases == 0) complete_job(job);
}

void SimCore::complete_job(JobRuntime& job) {
  job.finished = true;
  job.finish_slot = now_;
  record_event(SimEventKind::kJobCompleted, job.id);
  trace(TraceEv::kJobCompleted, job.id);
  if (scheduler_ != nullptr) scheduler_->on_job_completed(*this, job);
  --jobs_remaining_;
  ++totals_.jobs_completed;
  const double response_seconds =
      static_cast<double>(job.finish_slot - job.arrival) * config_.slot_seconds;
  totals_.response_seconds_sum += response_seconds;
  if (slo_ != nullptr) slo_->observe(response_seconds);
  totals_.makespan_seconds =
      std::max(totals_.makespan_seconds,
               static_cast<double>(job.finish_slot) * config_.slot_seconds);
  totals_.clones_launched += job.clones_launched;
  totals_.speculative_launched += job.speculative_launched;
  // Every phase is complete, so every copy has ended: hand the job's copy
  // extents back to the slab for the next arrival to reuse.  Stale heap
  // events referencing these copies are screened out by the finished-job
  // guard in drain_completions.
  for (auto& phase : job.phases) {
    for (auto& task : phase.tasks) task.copies.release_storage();
  }
}

void SimCore::handle_copy_finish(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                                 std::size_t copy_index) {
  CopyRuntime& copy = task.copies[copy_index];
  if (!copy.active || copy.finish != now_) return;  // stale (killed or rescheduled)
  end_copy(job, phase, task, copy, /*killed=*/false);
  // Feedback for online learning: only natural finishes are reported
  // (killed copies are censored by their surviving sibling).
  if (scheduler_ != nullptr && config_.model == ExecutionModel::kStochastic) {
    scheduler_->on_copy_finished(*this, job, phase, task, copy);
  }
  if (!task.finished) complete_task(job, phase, task);
  // else: a kept best-locality copy ran to completion; nothing more to do.
}

void SimCore::handle_work_event(JobRuntime& job, PhaseRuntime& phase, TaskRuntime& task,
                                std::uint32_t generation) {
  if (task.finished || generation != task.generation) return;  // stale prediction
  accrue_work(task, phase, now_, config_.slot_seconds);
  if (task.work_done_seconds + 1e-9 < phase.spec->theta_seconds) {
    // Copy set shrank since prediction (cannot happen today: copies only
    // end at completion in the work model) — re-predict defensively.
    const SimTime finish = predict_work_finish(task, phase, now_, config_.slot_seconds);
    if (finish != kNever) {
      push_completion(finish, job, phase.index, task.ref.task, -1, task.generation);
    }
    return;
  }
  for (auto& c : task.copies) {
    if (c.active) end_copy(job, phase, task, c, /*killed=*/false);
  }
  complete_task(job, phase, task);
}

// ---- failures --------------------------------------------------------------

void SimCore::seed_failures() {
  if (!faults_) return;
  for (const auto& timer : faults_->seed()) {
    EvKind kind = EvKind::kServerFailure;
    switch (timer.cls) {
      case FaultClass::kCrash: kind = EvKind::kServerFailure; break;
      case FaultClass::kRack: kind = EvKind::kRackFailure; break;
      case FaultClass::kFailSlow: kind = EvKind::kFailSlowOnset; break;
      case FaultClass::kCopyFault: kind = EvKind::kCopyFault; break;
    }
    push_machine_event(timer.slot, kind, timer.target);
  }
}

void SimCore::fail_server(ServerId server_id) {
  // Kill every running copy on the failed machine.  Tasks left with no
  // running copy fall back into the needs-placement pool so schedulers
  // re-place them (from the surviving input-block replica in the locality
  // model's terms).
  for (JobRuntime* job : active_) {
    for (auto& phase : job->phases) {
      if (phase.active_copies == 0) continue;
      for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
        TaskRuntime& task = phase.tasks[t];
        bool killed_any = false;
        for (auto& copy : task.copies) {
          if (copy.active && copy.server == server_id) {
            if (config_.model == ExecutionModel::kWorkBased) {
              accrue_work(task, phase, now_, config_.slot_seconds);
            }
            end_copy(*job, phase, task, copy, /*killed=*/true);
            ++result_.stats.copies_killed_by_faults;
            result_.stats.work_seconds_lost +=
                static_cast<double>(now_ - copy.start) * config_.slot_seconds;
            if (scheduler_ != nullptr) {
              scheduler_->on_copy_fault(*this, *job, phase, task, server_id);
            }
            killed_any = true;
          }
        }
        if (!killed_any || task.finished) continue;
        if (config_.model == ExecutionModel::kWorkBased) {
          ++task.generation;
          const SimTime finish =
              predict_work_finish(task, phase, now_, config_.slot_seconds);
          if (finish != kNever) {
            push_completion(finish, *job, phase.index, task.ref.task, -1,
                            task.generation);
          }
        }
        if (task.needs_placement()) {
          ++phase.unscheduled_tasks;
          phase.first_unscheduled_hint =
              std::min(phase.first_unscheduled_hint, static_cast<int>(t));
        }
      }
    }
  }
}

void SimCore::apply_server_down(ServerId server_id) {
  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  server.set_down(true);
  // Deindex before fail_server kills the hosted copies: the releases that
  // follow land on a down (unindexed) server and are no-ops for the index
  // until the repair re-indexes from live state.  A quarantined server is
  // already out of the index; on_server_down is idempotent either way.
  if (index_) index_->on_server_down(server_id);
  record_event(SimEventKind::kServerFailed, -1, -1, -1, server_id);
  trace(TraceEv::kServerFailed, -1, -1, -1, -1, server_id);
  fail_server(server_id);
  if (scheduler_ != nullptr) scheduler_->on_server_failed(*this, server_id);
}

void SimCore::apply_server_up(ServerId server_id) {
  Server& server = cluster_.server(static_cast<std::size_t>(server_id));
  server.set_down(false);
  // Candidacy invariant: indexed iff up && !quarantined — a server repaired
  // while still quarantined stays out until the policy releases it.
  if (index_ && !server.is_quarantined()) index_->on_server_up(server_id);
  record_event(SimEventKind::kServerRepaired, -1, -1, -1, server_id);
  trace(TraceEv::kServerRepaired, -1, -1, -1, -1, server_id);
  if (scheduler_ != nullptr) scheduler_->on_server_repaired(*this, server_id);
}

void SimCore::drain_failures() {
  // Machine-state events sort before everything else at a slot, so they
  // form a prefix of the heap's due events.  Every branch re-arms its fault
  // process unconditionally — even when the FaultEngine absorbed the edge
  // (server already down via another class, or a duplicate event) — so the
  // per-class timer chains stay self-sustaining and the failure stream's
  // draw order is a pure function of heap pop order.
  while (!events_.empty() && events_.top().slot <= now_ && events_.top().group() == 0) {
    const SimEvent e = events_.top();
    events_.pop();
    switch (e.kind) {
      case EvKind::kServerRepair: {
        ++result_.stats.events_server_repair;
        if (faults_->mark_up(e.server, FaultClass::kCrash)) apply_server_up(e.server);
        push_machine_event(faults_->crash_failure_delay(), EvKind::kServerFailure,
                           e.server);
        break;
      }
      case EvKind::kServerFailure: {
        ++result_.stats.events_server_failure;
        if (faults_->mark_down(e.server, FaultClass::kCrash)) apply_server_down(e.server);
        push_machine_event(faults_->crash_repair_delay(), EvKind::kServerRepair,
                           e.server);
        break;
      }
      case EvKind::kRackRepair: {
        ++result_.stats.events_rack_repair;
        for (const ServerId member : faults_->rack_members(e.server)) {
          if (faults_->mark_up(member, FaultClass::kRack)) apply_server_up(member);
        }
        push_machine_event(faults_->rack_failure_delay(), EvKind::kRackFailure, e.server);
        break;
      }
      case EvKind::kRackFailure: {
        ++result_.stats.events_rack_failure;
        for (const ServerId member : faults_->rack_members(e.server)) {
          if (faults_->mark_down(member, FaultClass::kRack)) apply_server_down(member);
        }
        push_machine_event(faults_->rack_repair_delay(), EvKind::kRackRepair, e.server);
        break;
      }
      case EvKind::kFailSlowRecover: {
        ++result_.stats.events_fail_slow_recover;
        cluster_.server(static_cast<std::size_t>(e.server)).set_slow_factor(1.0);
        trace(TraceEv::kServerRestored, -1, -1, -1, -1, e.server);
        if (scheduler_ != nullptr) scheduler_->on_server_restored(*this, e.server);
        push_machine_event(faults_->fail_slow_onset_delay(), EvKind::kFailSlowOnset,
                           e.server);
        break;
      }
      case EvKind::kFailSlowOnset: {
        ++result_.stats.events_fail_slow_onset;
        const double factor = faults_->slowdown_factor();
        cluster_.server(static_cast<std::size_t>(e.server)).set_slow_factor(factor);
        trace(TraceEv::kServerDegraded, -1, -1, -1, -1, e.server,
              static_cast<std::int64_t>(factor * 100.0));
        if (scheduler_ != nullptr) scheduler_->on_server_degraded(*this, e.server, factor);
        push_machine_event(faults_->fail_slow_recovery_delay(), EvKind::kFailSlowRecover,
                           e.server);
        break;
      }
      default:
        break;  // unreachable: group 0 holds only the kinds above
    }
  }
}

void SimCore::inject_copy_fault() {
  ++result_.stats.events_copy_fault;
  if (active_copy_count_ > 0) {
    // Uniform victim among all running copies: walk the active jobs in
    // deterministic (arrival) order counting down to the picked index.
    long long k = static_cast<long long>(
        faults_->pick(static_cast<std::size_t>(active_copy_count_)));
    [&] {
      for (JobRuntime* job : active_) {
        for (auto& phase : job->phases) {
          if (phase.active_copies == 0) continue;
          if (k >= phase.active_copies) {
            k -= phase.active_copies;
            continue;
          }
          for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
            TaskRuntime& task = phase.tasks[t];
            for (auto& copy : task.copies) {
              if (!copy.active) continue;
              if (k-- > 0) continue;
              const auto copy_index = static_cast<std::int32_t>(&copy - task.copies.data());
              const ServerId server_id = copy.server;
              if (config_.model == ExecutionModel::kWorkBased) {
                accrue_work(task, phase, now_, config_.slot_seconds);
              }
              end_copy(*job, phase, task, copy, /*killed=*/true);
              ++result_.stats.copies_killed_by_faults;
              result_.stats.work_seconds_lost +=
                  static_cast<double>(now_ - copy.start) * config_.slot_seconds;
              // end_copy already recorded the kill itself; this record
              // names the cause.
              trace(TraceEv::kCopyFault, job->id, phase.index, task.ref.task,
                    copy_index, server_id);
              if (scheduler_ != nullptr) {
                scheduler_->on_copy_fault(*this, *job, phase, task, server_id);
              }
              if (!task.finished) {
                if (config_.model == ExecutionModel::kWorkBased) {
                  ++task.generation;
                  const SimTime finish =
                      predict_work_finish(task, phase, now_, config_.slot_seconds);
                  if (finish != kNever) {
                    push_completion(finish, *job, phase.index, task.ref.task, -1,
                                    task.generation);
                  }
                }
                if (task.needs_placement()) {
                  ++phase.unscheduled_tasks;
                  phase.first_unscheduled_hint =
                      std::min(phase.first_unscheduled_hint, static_cast<int>(t));
                }
              }
              return;
            }
          }
        }
      }
    }();
  }
  // Re-arm the cluster-wide timer whether or not a victim existed, so the
  // process keeps ticking through idle stretches.
  push_machine_event(faults_->copy_fault_delay(), EvKind::kCopyFault, kInvalidServer);
}

// ---- per-slot draining -----------------------------------------------------

void SimCore::process_arrivals() {
  while (next_arrival_ < arrival_order_.size()) {
    JobRuntime& job = jobs_[static_cast<std::size_t>(arrival_order_[next_arrival_])];
    if (job.arrival > now_) break;
    job.arrived = true;
    active_.push_back(&job);
    record_event(SimEventKind::kJobArrival, job.id);
    trace(TraceEv::kJobArrival, job.id);
    ++result_.stats.events_job_arrival;
    ++next_arrival_;
    arrivals_this_slot_ = true;
  }
}

void SimCore::drain_completions() {
  while (!events_.empty() && events_.top().slot <= now_) {
    const SimEvent e = events_.top();
    events_.pop();
    if (e.kind == EvKind::kTimer) {
      ++result_.stats.events_timer;
      --pending_timer_count_;
      if (pending_timer_slot_ == e.slot) pending_timer_slot_ = kNever;
      trace(TraceEv::kTimerFired);
      continue;  // a timer's only effect is that this slot is visited
    }
    if (e.kind == EvKind::kCopyFault) {
      // Sorts after machine events and before completions at a slot: a
      // victim's same-slot natural finish is stale by the time it pops.
      inject_copy_fault();
      continue;
    }
    JobRuntime& job = jobs_[static_cast<std::size_t>(e.job_index)];
    if (job.finished) {
      // The job's copy extents were recycled at completion; every event
      // still in flight for it was already stale (inactive copy or moved-on
      // generation), so count it and move on without touching copy storage.
      ++(e.copy >= 0 ? result_.stats.events_copy_finish
                     : result_.stats.events_work_finish);
      --job.pending_events;
      maybe_recycle(job);
      continue;
    }
    PhaseRuntime& phase = job.phases[static_cast<std::size_t>(e.phase)];
    TaskRuntime& task = phase.tasks[static_cast<std::size_t>(e.task)];
    if (e.copy >= 0) {
      ++result_.stats.events_copy_finish;
      handle_copy_finish(job, phase, task, static_cast<std::size_t>(e.copy));
    } else {
      ++result_.stats.events_work_finish;
      handle_work_event(job, phase, task, e.generation);
    }
    --job.pending_events;
    maybe_recycle(job);
  }
}

void SimCore::sample_utilization() {
  if (!config_.record_utilization) return;
  const Resources used = cluster_.total_used();
  const Resources total = cluster_.total_capacity();
  UtilizationSample sample;
  sample.seconds = static_cast<double>(now_) * config_.slot_seconds;
  sample.cpu = total.cpu() > 0 ? used.cpu() / total.cpu() : 0.0;
  sample.mem = total.mem() > 0 ? used.mem() / total.mem() : 0.0;
  result_.utilization.push_back(sample);
}

// ---- checkpoint / restore --------------------------------------------------

void SimCore::save_state(StateWriter& w) const {
  w.section(kTagCore);
  w.i64(now_);
  w.b(first_visit_);
  w.b(streaming_);
  w.b(recycle_);
  w.b(source_exhausted_);
  w.i32(jobs_remaining_);
  w.i64(active_copy_count_);
  w.b(placed_this_invocation_);
  w.b(deferred_this_invocation_);
  w.b(arrivals_this_slot_);
  w.u64(pending_timer_count_);
  w.i64(pending_timer_slot_);
  w.i64(next_ingest_seq_);
  for (const Rng* rng : {&rng_root_, &rng_workload_, &rng_exec_, &rng_policy_,
                         &rng_failure_}) {
    for (const std::uint64_t word : rng->state()) w.u64(word);
  }

  w.section(kTagCluster);
  cluster_.save_state(w);
  w.b(faults_.has_value());
  if (faults_) faults_->save_state(w);
  w.section(kTagBackground);
  background_.save_state(w);

  // Per-slot JobSpecs: the runtime records reference them by pointer, so a
  // restored core owns deserialized copies.  Free (recycled) slots get a
  // shape-matching placeholder — their nulled spec pointer must not be
  // dereferenced, and the restore path re-releases them anyway.
  const std::vector<std::uint8_t> free = store_.free_mask();
  w.section(kTagSpecs);
  w.u64(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (free[i] != 0) {
      save_job_spec(w, placeholder_spec(jobs_[i]));
    } else {
      save_job_spec(w, *jobs_[i].spec);
    }
  }
  store_.save_state(w);

  w.section(kTagArrivals);
  w.u64(arrival_order_.size() - next_arrival_);
  for (std::size_t i = next_arrival_; i < arrival_order_.size(); ++i) {
    w.i32(arrival_order_[i]);
  }
  w.u64(active_.size());
  for (const JobRuntime* j : active_) {
    w.i32(static_cast<std::int32_t>(j - jobs_.data()));
  }

  // The pending event *set*: the comparator is a total order over every
  // payload field, so re-pushing in any enumeration order reproduces the
  // exact pop sequence (docs/ALGORITHMS.md §19).
  w.section(kTagHeap);
  w.u64(events_.size());
  events_.for_each([&w](const SimEvent& e) { w.pod(e); });

  w.b(rec_ != nullptr);
  if (rec_) {
    w.u64(rec_->records_written());
    w.u64(rec_->hash());
  }

  w.section(kTagStats);
  w.pod(result_.stats);
  w.i64(result_.total_copies_launched);
  w.i64(result_.total_tasks_completed);
  w.pod(totals_);
  w.pod_vec(recycled_);

  // Length-prefixed scheduler blob so a policy-switch restore can skip it
  // without knowing the writing policy's format.
  w.section(kTagScheduler);
  const std::size_t len_at = w.reserve_u64();
  const std::size_t before = w.size();
  scheduler_->save_state(w);
  w.patch_u64(len_at, w.size() - before);
}

std::vector<const JobSpec*> SimCore::job_spec_pointers() const {
  std::vector<const JobSpec*> specs;
  specs.reserve(jobs_.size());
  for (const JobRuntime& job : jobs_) specs.push_back(job.spec);
  return specs;
}

void SimCore::load_state(StateReader& r, bool load_scheduler,
                         const std::vector<const JobSpec*>* shared_specs) {
  if (!started_) throw std::logic_error("SimCore: load_state() before begin()");
  r.section(kTagCore);
  now_ = r.i64();
  first_visit_ = r.b();
  streaming_ = r.b();
  recycle_ = r.b();
  source_exhausted_ = r.b();
  jobs_remaining_ = r.i32();
  active_copy_count_ = r.i64();
  placed_this_invocation_ = r.b();
  deferred_this_invocation_ = r.b();
  arrivals_this_slot_ = r.b();
  pending_timer_count_ = static_cast<std::size_t>(r.u64());
  pending_timer_slot_ = r.i64();
  next_ingest_seq_ = r.i64();
  for (Rng* rng : {&rng_root_, &rng_workload_, &rng_exec_, &rng_policy_, &rng_failure_}) {
    std::array<std::uint64_t, 4> words;
    for (auto& word : words) word = r.u64();
    rng->set_state(words);
  }

  r.section(kTagCluster);
  cluster_.load_state(r);
  const bool had_faults = r.b();
  if (had_faults != faults_.has_value()) {
    throw std::runtime_error(
        std::string("snapshot: fault configuration mismatch (snapshot ") +
        (had_faults ? "has" : "lacks") + " a fault engine)");
  }
  if (faults_) faults_->load_state(r);
  r.section(kTagBackground);
  background_.load_state(r);

  r.section(kTagSpecs);
  const std::size_t slot_count = static_cast<std::size_t>(r.u64());
  if (shared_specs != nullptr && shared_specs->size() != slot_count) {
    throw std::runtime_error("snapshot: shared spec table size mismatch");
  }
  std::vector<const JobSpec*> specs;
  specs.reserve(slot_count);
  for (std::size_t i = 0; i < slot_count; ++i) {
    JobSpec parsed = load_job_spec(r);
    const JobSpec* external =
        shared_specs != nullptr ? (*shared_specs)[i] : nullptr;
    if (external != nullptr) {
      // Fork path: the stream copy only advanced the reader; the slot binds
      // to the parent's spec so the workload bytes are shared, not cloned.
      specs.push_back(external);
    } else {
      owned_specs_.push_back(std::move(parsed));
      specs.push_back(&owned_specs_.back());
    }
  }
  store_.load_state(r, specs);

  r.section(kTagArrivals);
  arrival_order_.resize(static_cast<std::size_t>(r.u64()));
  for (auto& index : arrival_order_) index = r.i32();
  next_arrival_ = 0;
  active_.resize(static_cast<std::size_t>(r.u64()));
  for (auto& job : active_) {
    job = jobs_.data() + static_cast<std::size_t>(r.i32());
  }

  r.section(kTagHeap);
  events_.reset(static_cast<std::size_t>(config_.event_shards));
  const std::size_t event_count = static_cast<std::size_t>(r.u64());
  for (std::size_t i = 0; i < event_count; ++i) {
    SimEvent e;
    r.pod(e);
    push_event(e);
  }

  const bool had_recorder = r.b();
  std::uint64_t rec_records = 0;
  std::uint64_t rec_hash = 0;
  if (had_recorder) {
    rec_records = r.u64();
    rec_hash = r.u64();
  }
  if (rec_ != nullptr) {
    if (!had_recorder) {
      throw std::runtime_error(
          "snapshot: recorder stream missing (snapshot was taken without a recorder)");
    }
    rec_->restore_stream(rec_records, rec_hash);
  }

  r.section(kTagStats);
  r.pod(result_.stats);
  result_.total_copies_launched = r.i64();
  result_.total_tasks_completed = r.i64();
  r.pod(totals_);
  r.pod_vec(recycled_);

  // The placement index is derived state: rebuild it from the restored
  // cluster.  PlacementIndex's constructor indexes every up server; the
  // candidacy invariant is up && !quarantined, so deindex up-but-
  // quarantined servers explicitly.
  if (config_.use_placement_index) {
    index_.emplace(cluster_);
    index_->set_parallelism(worker_pool(), &parallel_stats_);
    index_->set_batching(config_.batch_placement);
    for (std::size_t s = 0; s < cluster_.size(); ++s) {
      const Server& server = cluster_.server(s);
      if (!server.is_down() && server.is_quarantined()) {
        index_->on_server_down(static_cast<ServerId>(s));
      }
    }
  }

  r.section(kTagScheduler);
  const std::uint64_t blob_len = r.u64();
  if (load_scheduler) {
    const std::size_t before = r.remaining();
    scheduler_->load_state(r);
    if (before - r.remaining() != blob_len) {
      throw std::runtime_error("snapshot: scheduler blob length mismatch");
    }
  } else {
    r.skip(static_cast<std::size_t>(blob_len));
  }
}

}  // namespace dollymp
