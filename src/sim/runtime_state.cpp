#include "dollymp/sim/runtime_state.h"

#include <algorithm>

namespace dollymp {

int TaskRuntime::active_copies() const {
  int n = 0;
  for (const auto& c : copies) n += c.active ? 1 : 0;
  return n;
}

JobProgress JobRuntime::progress() const {
  JobProgress p;
  p.remaining_tasks.reserve(phases.size());
  p.phase_finished.reserve(phases.size());
  for (const auto& phase : phases) {
    p.remaining_tasks.push_back(phase.remaining_tasks);
    p.phase_finished.push_back(phase.finished);
  }
  return p;
}

double JobRuntime::remaining_volume(const Resources& cluster_total,
                                    double sigma_factor) const {
  if (volume_cache_valid_ && volume_cache_sigma_ == sigma_factor &&
      volume_cache_total_ == cluster_total) {
    return volume_cache_value_;
  }
  volume_cache_value_ =
      job_effective_volume_remaining(*spec, progress(), cluster_total, sigma_factor);
  volume_cache_sigma_ = sigma_factor;
  volume_cache_total_ = cluster_total;
  volume_cache_valid_ = true;
  return volume_cache_value_;
}

double JobRuntime::remaining_length(double sigma_factor) const {
  if (length_cache_valid_ && length_cache_sigma_ == sigma_factor) {
    return length_cache_value_;
  }
  length_cache_value_ = job_effective_length_remaining(*spec, progress(), sigma_factor);
  length_cache_sigma_ = sigma_factor;
  length_cache_valid_ = true;
  return length_cache_value_;
}

double JobRuntime::max_dominant_share(const Resources& cluster_total) const {
  double share = 0.0;
  for (const auto& phase : phases) {
    if (phase.finished) continue;
    share = std::max(share, phase.spec->demand.dominant_share(cluster_total));
  }
  return share;
}

bool JobRuntime::has_runnable_work() const {
  for (const auto& phase : phases) {
    if (!phase.runnable()) continue;
    for (const auto& task : phase.tasks) {
      if (!task.finished && !task.scheduled()) return true;
    }
  }
  return false;
}

}  // namespace dollymp
