#include "dollymp/sim/runtime_state.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dollymp {

int TaskRuntime::active_copies() const {
  int n = 0;
  for (const auto& c : copies) n += c.active ? 1 : 0;
  return n;
}

JobProgress JobRuntime::progress() const {
  JobProgress p;
  p.remaining_tasks.reserve(phases.size());
  p.phase_finished.reserve(phases.size());
  for (const auto& phase : phases) {
    p.remaining_tasks.push_back(phase.remaining_tasks);
    p.phase_finished.push_back(phase.finished);
  }
  return p;
}

double JobRuntime::remaining_volume(const Resources& cluster_total,
                                    double sigma_factor) const {
  if (volume_cache_valid_ && volume_cache_sigma_ == sigma_factor &&
      volume_cache_total_ == cluster_total) {
    return volume_cache_value_;
  }
  volume_cache_value_ =
      job_effective_volume_remaining(*spec, progress(), cluster_total, sigma_factor);
  volume_cache_sigma_ = sigma_factor;
  volume_cache_total_ = cluster_total;
  volume_cache_valid_ = true;
  return volume_cache_value_;
}

double JobRuntime::remaining_length(double sigma_factor) const {
  if (length_cache_valid_ && length_cache_sigma_ == sigma_factor) {
    return length_cache_value_;
  }
  length_cache_value_ = job_effective_length_remaining(*spec, progress(), sigma_factor);
  length_cache_sigma_ = sigma_factor;
  length_cache_valid_ = true;
  return length_cache_value_;
}

double JobRuntime::max_dominant_share(const Resources& cluster_total) const {
  double share = 0.0;
  for (const auto& phase : phases) {
    if (phase.finished) continue;
    share = std::max(share, phase.spec->demand.dominant_share(cluster_total));
  }
  return share;
}

bool JobRuntime::has_runnable_work() const {
  for (const auto& phase : phases) {
    if (!phase.runnable()) continue;
    for (const auto& task : phase.tasks) {
      if (!task.finished && !task.scheduled()) return true;
    }
  }
  return false;
}

JobRuntime materialize_job(const JobSpec& spec, double slot_seconds,
                           const LocalityModel& locality, Rng& rng) {
  if (slot_seconds <= 0.0) throw std::invalid_argument("materialize_job: slot_seconds > 0");
  spec.validate();

  JobRuntime job;
  job.spec = &spec;
  job.id = spec.id;
  job.arrival = static_cast<SimTime>(std::llround(spec.arrival_seconds / slot_seconds));
  job.phases.resize(spec.phases.size());
  job.remaining_phases = static_cast<int>(spec.phases.size());

  for (std::size_t k = 0; k < spec.phases.size(); ++k) {
    const PhaseSpec& ps = spec.phases[k];
    PhaseRuntime& phase = job.phases[k];
    phase.index = static_cast<PhaseIndex>(k);
    phase.spec = &ps;
    phase.remaining_tasks = ps.task_count;
    phase.unscheduled_tasks = ps.task_count;
    phase.unfinished_parents = static_cast<int>(ps.parents.size());
    for (const auto parent : ps.parents) {
      job.phases[static_cast<std::size_t>(parent)].has_children = true;
    }
    phase.speedup = SpeedupFunction::from_stats(ps.theta_seconds, ps.sigma_seconds);

    // Pre-sample the phase's duration pool.  With sigma == 0 the pool is
    // constant theta; otherwise Pareto fitted to (theta, sigma), matching
    // how the paper derives the speedup function from the same fit.  The
    // pool holds at least kMinPoolSize entries so that clones of tasks in
    // tiny phases still re-draw an independent duration (a literal 1-entry
    // pool would pin every clone to its original's time and make cloning a
    // single-task job a no-op, contradicting the paper's Fig. 2 example).
    constexpr int kMinPoolSize = 16;
    const int pool_size = std::max(ps.task_count, kMinPoolSize);
    phase.duration_pool.reserve(static_cast<std::size_t>(pool_size));
    if (ps.sigma_seconds <= 0.0) {
      phase.duration_pool.assign(static_cast<std::size_t>(pool_size), ps.theta_seconds);
    } else {
      const ParetoDist dist =
          ParetoDist::fit(ps.theta_seconds, ps.sigma_seconds / ps.theta_seconds);
      for (int i = 0; i < pool_size; ++i) {
        phase.duration_pool.push_back(dist.sample(rng));
      }
    }

    phase.tasks.resize(static_cast<std::size_t>(ps.task_count));
    for (int i = 0; i < ps.task_count; ++i) {
      TaskRuntime& task = phase.tasks[static_cast<std::size_t>(i)];
      task.ref = TaskRef{spec.id, static_cast<PhaseIndex>(k), i};
      task.demand = ps.demand;
      task.block = locality.place_block(rng);
    }
  }
  return job;
}

}  // namespace dollymp
