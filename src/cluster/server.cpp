#include "dollymp/cluster/server.h"

#include <stdexcept>

namespace dollymp {

bool Server::allocate(const Resources& demand) {
  if (!demand.non_negative()) {
    throw std::invalid_argument("Server::allocate: negative demand");
  }
  if (!can_fit(demand)) return false;
  used_ += demand;
  return true;
}

void Server::release(const Resources& demand) {
  if (!demand.non_negative()) {
    throw std::invalid_argument("Server::release: negative demand");
  }
  used_ -= demand;
  used_ = used_.clamped();
}

}  // namespace dollymp
