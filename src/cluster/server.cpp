#include "dollymp/cluster/server.h"

#include <stdexcept>

namespace dollymp {

void ServerTable::reserve(std::size_t servers) {
  capacity_.reserve(servers);
  used_.reserve(servers);
  base_speed_.reserve(servers);
  slow_factor_.reserve(servers);
  rack_.reserve(servers);
  running_copies_.reserve(servers);
  model_.reserve(servers);
  flags_.reserve(servers);
}

std::uint16_t ServerTable::intern_model(const std::string& model) {
  // Linear scan: inventories use a handful of machine shapes, so this
  // beats hashing and keeps the table a plain vector.
  for (std::size_t i = 0; i < model_names_.size(); ++i) {
    if (model_names_[i] == model) return static_cast<std::uint16_t>(i);
  }
  if (model_names_.size() >= 65535) {
    throw std::length_error("ServerTable: too many distinct server models");
  }
  model_names_.push_back(model);
  return static_cast<std::uint16_t>(model_names_.size() - 1);
}

ServerId ServerTable::add(const ServerSpec& spec) {
  const ServerId id = static_cast<ServerId>(capacity_.size());
  capacity_.push_back(spec.capacity);
  used_.emplace_back();
  base_speed_.push_back(spec.base_speed);
  slow_factor_.push_back(1.0);
  rack_.push_back(spec.rack);
  running_copies_.push_back(0);
  model_.push_back(intern_model(spec.model));
  flags_.push_back(0);
  return id;
}

bool Server::allocate(const Resources& demand) {
  if (!demand.non_negative()) {
    throw std::invalid_argument("Server::allocate: negative demand");
  }
  if (!can_fit(demand)) return false;
  table_->used_[row()] += demand;
  return true;
}

void Server::release(const Resources& demand) {
  if (!demand.non_negative()) {
    throw std::invalid_argument("Server::release: negative demand");
  }
  Resources& used = table_->used_[row()];
  // Releasing more than is allocated means double-release or a mismatched
  // demand vector — a layout bug that the clamp below would otherwise
  // silently absorb.  The epsilon tolerates float noise from fractional
  // demands (which the clamp exists to tidy).
  DMP_DEBUG_CHECK(used.cpu - demand.cpu >= -1e-6 && used.mem - demand.mem >= -1e-6,
                  "Server::release: allocation counter underflow");
  used -= demand;
  used = used.clamped();
}

}  // namespace dollymp
