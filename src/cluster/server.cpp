#include "dollymp/cluster/server.h"

#include <stdexcept>

#include "dollymp/common/state_io.h"

namespace dollymp {

void ServerTable::reserve(std::size_t servers) {
  capacity_.reserve(servers);
  used_.reserve(servers);
  base_speed_.reserve(servers);
  slow_factor_.reserve(servers);
  rack_.reserve(servers);
  running_copies_.reserve(servers);
  model_.reserve(servers);
  flags_.reserve(servers);
}

std::uint16_t ServerTable::intern_model(const std::string& model) {
  // Linear scan: inventories use a handful of machine shapes, so this
  // beats hashing and keeps the table a plain vector.
  for (std::size_t i = 0; i < model_names_.size(); ++i) {
    if (model_names_[i] == model) return static_cast<std::uint16_t>(i);
  }
  if (model_names_.size() >= 65535) {
    throw std::length_error("ServerTable: too many distinct server models");
  }
  model_names_.push_back(model);
  return static_cast<std::uint16_t>(model_names_.size() - 1);
}

ServerId ServerTable::add(const ServerSpec& spec) {
  const ServerId id = static_cast<ServerId>(capacity_.size());
  capacity_.push_back(spec.capacity);
  used_.emplace_back();
  base_speed_.push_back(spec.base_speed);
  slow_factor_.push_back(1.0);
  rack_.push_back(spec.rack);
  running_copies_.push_back(0);
  model_.push_back(intern_model(spec.model));
  flags_.push_back(0);
  return id;
}

void ServerTable::save_state(StateWriter& w) const {
  w.pod_vec(capacity_);
  w.pod_vec(used_);
  w.pod_vec(base_speed_);
  w.pod_vec(slow_factor_);
  w.pod_vec(rack_);
  w.pod_vec(running_copies_);
  w.pod_vec(model_);
  w.pod_vec(flags_);
  w.u64(model_names_.size());
  for (const std::string& name : model_names_) w.str(name);
}

void ServerTable::load_state(StateReader& r) {
  r.pod_vec(capacity_);
  r.pod_vec(used_);
  r.pod_vec(base_speed_);
  r.pod_vec(slow_factor_);
  r.pod_vec(rack_);
  r.pod_vec(running_copies_);
  r.pod_vec(model_);
  r.pod_vec(flags_);
  const std::uint64_t names = r.u64();
  model_names_.clear();
  model_names_.reserve(names);
  for (std::uint64_t i = 0; i < names; ++i) model_names_.push_back(r.str());
  const std::size_t n = capacity_.size();
  if (used_.size() != n || base_speed_.size() != n || slow_factor_.size() != n ||
      rack_.size() != n || running_copies_.size() != n || model_.size() != n ||
      flags_.size() != n) {
    throw std::runtime_error("snapshot: server-table column length mismatch");
  }
}

bool Server::allocate(const Resources& demand) {
  if (!demand.non_negative()) {
    throw std::invalid_argument("Server::allocate: negative demand");
  }
  if (!can_fit(demand)) return false;
  table_->used_[row()] += demand;
  return true;
}

void Server::release(const Resources& demand) {
  if (!demand.non_negative()) {
    throw std::invalid_argument("Server::release: negative demand");
  }
  Resources& used = table_->used_[row()];
  // Releasing more than is allocated means double-release or a mismatched
  // demand vector — a layout bug that the clamp below would otherwise
  // silently absorb.  The epsilon tolerates float noise from fractional
  // demands (which the clamp exists to tidy).
  DMP_DEBUG_CHECK([&] {
                    for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
                      if (used[d] - demand[d] < -1e-6) return false;
                    }
                    return true;
                  }(),
                  "Server::release: allocation counter underflow");
  used -= demand;
  used = used.clamped();
}

}  // namespace dollymp
