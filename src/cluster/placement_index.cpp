#include "dollymp/cluster/placement_index.h"

#include <algorithm>
#include <functional>

#include "dollymp/common/thread_pool.h"

namespace dollymp {

namespace {

/// The shared winner comparator: reproduces an ascending-id linear scan with
/// a strict `score > best` test, i.e. max score with lowest-id tie break.
inline bool beats(double score, ServerId id, double best_score, ServerId best) {
  return score > best_score || (score == best_score && id < best);
}

/// Server::can_fit for an up member, evaluated once per group: members share
/// a value-identical used vector, so the expression answers for all of them.
inline bool group_fits(const Resources& used, const Resources& demand,
                       const Resources& capacity) {
  return (used + demand).fits_within(capacity);
}

/// Server::free(), evaluated once per group — the same float expression on
/// value-identical inputs yields the member servers' exact free vector.
inline Resources group_free(const Resources& capacity, const Resources& used) {
  return (capacity - used).clamped();
}

}  // namespace

PlacementIndex::PlacementIndex(const Cluster& cluster) : cluster_(&cluster) {
  const std::size_t n = cluster.size();
  class_of_.assign(n, -1);
  group_of_.assign(n, kNoGroup);
  multiplier_.assign(n, 1.0);

  int max_rack = -1;
  for (const auto& server : cluster.servers()) max_rack = std::max(max_rack, server.rack());
  rack_classes_.assign(static_cast<std::size_t>(max_rack + 1), {});

  for (const auto& server : cluster.servers()) {
    const auto id = static_cast<std::size_t>(server.id());
    std::int32_t cls = -1;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      if (classes_[c].capacity == server.capacity()) {
        cls = static_cast<std::int32_t>(c);
        break;
      }
    }
    if (cls < 0) {
      cls = static_cast<std::int32_t>(classes_.size());
      ResourceClass rc;
      rc.capacity = server.capacity();
      classes_.push_back(std::move(rc));
    }
    class_of_[id] = cls;
    // Hierarchical level: bucket by (rack, class), first-seen class order
    // within each rack.  Ascending server ids keep each bucket sorted.
    auto& buckets = rack_classes_[static_cast<std::size_t>(server.rack())];
    RackClassBucket* bucket = nullptr;
    for (auto& b : buckets) {
      if (b.cls == cls) {
        bucket = &b;
        break;
      }
    }
    if (bucket == nullptr) {
      buckets.push_back({cls, 0, {}});
      bucket = &buckets.back();
    }
    bucket->members.push_back(server.id());
  }
  // Index descending so each insert appends at the tail of its group's
  // descending member vector — O(1) instead of a full-vector shift.
  for (std::size_t i = cluster.size(); i-- > 0;) {
    const Server& server = cluster.server(i);
    if (!server.is_down()) index_server(server.id());
  }
}

PlacementIndex::RackClassBucket& PlacementIndex::bucket_of(ServerId id) {
  const auto i = static_cast<std::size_t>(id);
  const int rack = cluster_->server(i).rack();
  for (auto& bucket : rack_classes_[static_cast<std::size_t>(rack)]) {
    if (bucket.cls == class_of_[i]) return bucket;
  }
  // Unreachable: every server was bucketed at construction.
  return rack_classes_[static_cast<std::size_t>(rack)].front();
}

std::int32_t PlacementIndex::group_for(ResourceClass& cls, const Resources& used) {
  // Exact per-dimension key (see the equality-policy note in resources.h):
  // lexicographic over all dimensions, which reproduces the historical
  // (cpu, mem) pair ordering when the extra dimensions are all zero.
  const std::array<double, Resources::kMaxDims>& key = used.dims;
  const auto it = cls.lookup.find(key);
  if (it != cls.lookup.end()) return it->second;
  const auto gid = static_cast<std::int32_t>(cls.groups.size());
  Group group;
  group.used = used;
  cls.groups.push_back(std::move(group));
  cls.lookup.emplace(key, gid);
  // A new pool slot is the one event that can add a candidate the batched
  // walks have not captured; everything else only churns member lists.
  ++pool_generation_;
  return gid;
}

void PlacementIndex::set_batching(bool on) {
  batching_ = on;
  if (on) {
    batch_.resize(kBatchSlots);
  } else {
    batch_.clear();
    batch_.shrink_to_fit();
  }
  for (auto& cache : batch_) cache.valid = false;
  batch_clock_ = 0;
}

const PlacementIndex::BatchCache& PlacementIndex::batched_walk(
    const Resources& demand) const {
  BatchCache* slot = nullptr;
  for (auto& cache : batch_) {
    if (cache.valid && cache.demand == demand) {
      slot = &cache;
      break;
    }
  }
  if (slot != nullptr && slot->generation == pool_generation_) {
    ++counters_.batch_hits;
    return *slot;
  }
  if (slot == nullptr) {
    slot = &batch_[batch_clock_];
    batch_clock_ = (batch_clock_ + 1) % batch_.size();
  }
  ++counters_.batch_rebuilds;
  slot->demand = demand;
  slot->generation = pool_generation_;
  slot->valid = true;
  slot->entries.clear();
  // Capture every pool group — active or drained — that fits: fit and score
  // depend only on the slot's immutable used vector, so a group draining
  // and refilling later is still answered by this walk.
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const ResourceClass& cls = classes_[c];
    if (!demand.fits_within(cls.capacity)) continue;
    for (std::size_t g = 0; g < cls.groups.size(); ++g) {
      const Group& group = cls.groups[g];
      if (!group_fits(group.used, demand, cls.capacity)) continue;
      slot->entries.push_back({static_cast<std::int32_t>(c), static_cast<std::int32_t>(g),
                               demand.dot(group_free(cls.capacity, group.used))});
    }
  }
  return *slot;
}

void PlacementIndex::add_member(ResourceClass& cls, std::int32_t gid, ServerId id) {
  Group& group = cls.groups[static_cast<std::size_t>(gid)];
  if (group.members.empty()) {
    group.prev = kNoGroup;
    group.next = cls.active_head;
    if (cls.active_head != kNoGroup) {
      cls.groups[static_cast<std::size_t>(cls.active_head)].prev = gid;
    }
    cls.active_head = gid;
  }
  // Members are sorted DESCENDING: the tie-break winner (lowest id) is
  // back(), and — because queries prefer low ids — allocation churn
  // concentrates at low ids, whose insert/erase shifts only the short
  // low-id suffix.  Ascending order would memmove the entire million-entry
  // idle group on every touch of its front.
  group.members.insert(std::lower_bound(group.members.begin(), group.members.end(), id,
                                        std::greater<ServerId>()),
                       id);
}

void PlacementIndex::remove_member(ResourceClass& cls, std::int32_t gid, ServerId id) {
  Group& group = cls.groups[static_cast<std::size_t>(gid)];
  group.members.erase(std::lower_bound(group.members.begin(), group.members.end(), id,
                                       std::greater<ServerId>()));
  if (group.members.empty()) {
    // Unlink from the active list but keep the pool slot and the vector's
    // capacity: churn revisits the same used vectors, so steady-state
    // maintenance never allocates.
    if (group.prev != kNoGroup) {
      cls.groups[static_cast<std::size_t>(group.prev)].next = group.next;
    } else {
      cls.active_head = group.next;
    }
    if (group.next != kNoGroup) {
      cls.groups[static_cast<std::size_t>(group.next)].prev = group.prev;
    }
    group.prev = group.next = kNoGroup;
  }
}

void PlacementIndex::index_server(ServerId id) {
  const auto i = static_cast<std::size_t>(id);
  ResourceClass& cls = classes_[static_cast<std::size_t>(class_of_[i])];
  const std::int32_t gid = group_for(cls, cluster_->server(i).used());
  add_member(cls, gid, id);
  group_of_[i] = gid;
  ++bucket_of(id).up_count;
}

void PlacementIndex::deindex_server(ServerId id) {
  const auto i = static_cast<std::size_t>(id);
  ResourceClass& cls = classes_[static_cast<std::size_t>(class_of_[i])];
  remove_member(cls, group_of_[i], id);
  group_of_[i] = kNoGroup;
  --bucket_of(id).up_count;
}

void PlacementIndex::on_allocation_changed(ServerId id) {
  ++counters_.updates;
  const auto i = static_cast<std::size_t>(id);
  const std::int32_t old_gid = group_of_[i];
  if (old_gid == kNoGroup) return;  // down: re-indexed on repair
  ResourceClass& cls = classes_[static_cast<std::size_t>(class_of_[i])];
  const Resources& used = cluster_->server(i).used();
  if (cls.groups[static_cast<std::size_t>(old_gid)].used == used) return;
  remove_member(cls, old_gid, id);
  const std::int32_t gid = group_for(cls, used);
  add_member(cls, gid, id);
  group_of_[i] = gid;
}

void PlacementIndex::on_server_down(ServerId id) {
  ++counters_.updates;
  if (group_of_[static_cast<std::size_t>(id)] == kNoGroup) return;
  deindex_server(id);
}

void PlacementIndex::on_server_up(ServerId id) {
  ++counters_.updates;
  if (group_of_[static_cast<std::size_t>(id)] != kNoGroup) return;
  index_server(id);
}

void PlacementIndex::set_multiplier(ServerId id, double weight) {
  double& slot = multiplier_[static_cast<std::size_t>(id)];
  nonneutral_ += static_cast<int>(weight != 1.0) - static_cast<int>(slot != 1.0);
  slot = weight;
}

double PlacementIndex::multiplier(ServerId id) const {
  return multiplier_[static_cast<std::size_t>(id)];
}

ServerId PlacementIndex::best_fit(const Resources& demand) const {
  ++counters_.queries;
  ServerId best = kInvalidServer;
  double best_score = -1.0;
  if (batching_) {
    // Replay the cached walk: drained groups drop out via members.empty(),
    // so the candidate set is exactly the active fitting groups and the
    // precomputed scores are the unbatched expressions — same winner.
    for (const BatchEntry& e : batched_walk(demand).entries) {
      const Group& group =
          classes_[static_cast<std::size_t>(e.cls)].groups[static_cast<std::size_t>(e.gid)];
      if (group.members.empty()) continue;
      ++counters_.servers_scanned;
      const ServerId id = group.members.back();
      if (beats(e.score, id, best_score, best)) {
        best_score = e.score;
        best = id;
      }
    }
    return best;
  }
  for (const auto& cls : classes_) {
    if (!demand.fits_within(cls.capacity)) continue;
    for (std::int32_t gid = cls.active_head; gid != kNoGroup;
         gid = cls.groups[static_cast<std::size_t>(gid)].next) {
      const Group& group = cls.groups[static_cast<std::size_t>(gid)];
      ++counters_.servers_scanned;
      if (!group_fits(group.used, demand, cls.capacity)) continue;
      const double score = demand.dot(group_free(cls.capacity, group.used));
      const ServerId id = group.members.back();
      if (beats(score, id, best_score, best)) {
        best_score = score;
        best = id;
      }
    }
  }
  return best;
}

ServerId PlacementIndex::first_fit(const Resources& demand) const {
  ++counters_.queries;
  ServerId best = kInvalidServer;
  if (batching_) {
    for (const BatchEntry& e : batched_walk(demand).entries) {
      const Group& group =
          classes_[static_cast<std::size_t>(e.cls)].groups[static_cast<std::size_t>(e.gid)];
      if (group.members.empty()) continue;
      ++counters_.servers_scanned;
      const ServerId id = group.members.back();
      if (best == kInvalidServer || id < best) best = id;
    }
    return best;
  }
  for (const auto& cls : classes_) {
    if (!demand.fits_within(cls.capacity)) continue;
    for (std::int32_t gid = cls.active_head; gid != kNoGroup;
         gid = cls.groups[static_cast<std::size_t>(gid)].next) {
      const Group& group = cls.groups[static_cast<std::size_t>(gid)];
      ++counters_.servers_scanned;
      if (!group_fits(group.used, demand, cls.capacity)) continue;
      const ServerId id = group.members.back();
      if (best == kInvalidServer || id < best) best = id;
    }
  }
  return best;
}

ServerId PlacementIndex::locality_aware(const LocalityModel& locality,
                                        const BlockPlacement& block,
                                        const Resources& demand) const {
  ++counters_.queries;
  // Node-local replica first, in replica order — same as the linear helper.
  for (const ServerId replica : block.replicas) {
    ++counters_.servers_scanned;
    if (cluster_->server(static_cast<std::size_t>(replica)).can_fit(demand)) {
      return replica;
    }
  }
  // Rack-local pass.  classify() == kRack requires sharing a rack with a
  // replica (and locality enabled, replicas present), so enumerating the
  // replicas' rack member lists covers exactly the linear scan's candidates;
  // the explicit tie break makes enumeration order irrelevant.
  ServerId best_rack = kInvalidServer;
  double best_rack_score = -1.0;
  if (locality.config().enabled && !block.replicas.empty()) {
    for (std::size_t r = 0; r < block.replicas.size(); ++r) {
      const int rack =
          cluster_->server(static_cast<std::size_t>(block.replicas[r])).rack();
      bool seen = false;
      for (std::size_t q = 0; q < r && !seen; ++q) {
        seen = cluster_->server(static_cast<std::size_t>(block.replicas[q])).rack() == rack;
      }
      if (seen) continue;
      // Hierarchical walk: a bucket whose class cannot hold the demand, or
      // whose members are all down/quarantined, is pruned whole — every
      // pruned member would have failed can_fit, and `beats` makes the
      // remaining enumeration order irrelevant.
      for (const auto& bucket : rack_classes_[static_cast<std::size_t>(rack)]) {
        if (bucket.up_count == 0) continue;
        if (!demand.fits_within(classes_[static_cast<std::size_t>(bucket.cls)].capacity)) {
          continue;
        }
        for (const ServerId id : bucket.members) {
          ++counters_.servers_scanned;
          const Server& server = cluster_->server(static_cast<std::size_t>(id));
          if (!server.can_fit(demand)) continue;
          if (locality.classify(block, id) != LocalityLevel::kRack) continue;
          const double score = demand.dot(server.free());
          if (beats(score, id, best_rack_score, best_rack)) {
            best_rack_score = score;
            best_rack = id;
          }
        }
      }
    }
  }
  if (best_rack != kInvalidServer) return best_rack;
  return best_fit(demand);
}

ServerId PlacementIndex::weighted_best_fit(const Resources& demand,
                                           const BlockPlacement* boost_block) const {
  ++counters_.queries;
  ServerId best = kInvalidServer;
  double best_score = -1.0;
  const auto consider = [&](ServerId id, double score) {
    if (beats(score, id, best_score, best)) {
      best_score = score;
      best = id;
    }
  };
  if (nonneutral_ == 0) {
    // Every multiplier is exactly 1.0, so non-replica members of a group are
    // score-tied and the lowest id stands in for all of them.  A replica's
    // 1.25 boost can only raise its score above its group's, so overlaying
    // each fitting replica as its own candidate keeps the candidate set's
    // maximum under `beats` equal to the full linear scan's winner.  (A
    // replica that is also a group representative appears twice, but its
    // boosted entry dominates its plain one, so the duplicate is inert.)
    if (batching_) {
      for (const BatchEntry& e : batched_walk(demand).entries) {
        const Group& group = classes_[static_cast<std::size_t>(e.cls)]
                                 .groups[static_cast<std::size_t>(e.gid)];
        if (group.members.empty()) continue;
        ++counters_.servers_scanned;
        consider(group.members.back(), e.score);
      }
    } else {
      for (const auto& cls : classes_) {
        if (!demand.fits_within(cls.capacity)) continue;
        for (std::int32_t gid = cls.active_head; gid != kNoGroup;
             gid = cls.groups[static_cast<std::size_t>(gid)].next) {
          const Group& group = cls.groups[static_cast<std::size_t>(gid)];
          ++counters_.servers_scanned;
          if (!group_fits(group.used, demand, cls.capacity)) continue;
          consider(group.members.back(),
                   demand.dot(group_free(cls.capacity, group.used)));
        }
      }
    }
    if (boost_block != nullptr) {
      for (const ServerId replica : boost_block->replicas) {
        ++counters_.servers_scanned;
        const Server& server = cluster_->server(static_cast<std::size_t>(replica));
        if (!server.can_fit(demand)) continue;
        consider(replica, demand.dot(server.free()) * 1.25);
      }
    }
    return best;
  }
  // Straggler-aware multipliers are per server, so members must be scored
  // individually — but the fit test and the base score still collapse to
  // one evaluation per group.  The fitting groups are gathered into spans
  // first (same class/active-list/member order as the direct nested walk),
  // then the flattened member range is scored — serially, or sharded
  // across the worker pool.  Per-member scores are pure (no accumulation),
  // and `beats` is a strict total order over (score, id), so the maximum
  // of per-shard maxima equals the serial walk's winner bit for bit
  // regardless of shard count.
  scratch_spans_.clear();
  scratch_offsets_.clear();
  std::size_t total_members = 0;
  for (const auto& cls : classes_) {
    if (!demand.fits_within(cls.capacity)) continue;
    for (std::int32_t gid = cls.active_head; gid != kNoGroup;
         gid = cls.groups[static_cast<std::size_t>(gid)].next) {
      const Group& group = cls.groups[static_cast<std::size_t>(gid)];
      if (!group_fits(group.used, demand, cls.capacity)) continue;
      scratch_spans_.push_back({&group, demand.dot(group_free(cls.capacity, group.used))});
      scratch_offsets_.push_back(total_members);
      total_members += group.members.size();
    }
  }
  counters_.servers_scanned += total_members;

  // Score members [begin, end) of the flattened span range into a local
  // winner — the shared body of the serial and sharded paths.
  const auto scan_range = [&](std::size_t begin, std::size_t end, ServerId& out_best,
                              double& out_score) {
    ServerId local_best = kInvalidServer;
    double local_score = -1.0;
    std::size_t span = static_cast<std::size_t>(
        std::upper_bound(scratch_offsets_.begin(), scratch_offsets_.end(), begin) -
        scratch_offsets_.begin() - 1);
    std::size_t i = begin;
    while (i < end) {
      const WeightedSpan& ws = scratch_spans_[span];
      const std::size_t span_begin = scratch_offsets_[span];
      const std::size_t span_end = span_begin + ws.group->members.size();
      const std::size_t stop = std::min(end, span_end);
      for (; i < stop; ++i) {
        const ServerId id = ws.group->members[i - span_begin];
        double score = ws.base * multiplier_[static_cast<std::size_t>(id)];
        if (boost_block != nullptr) {
          for (const ServerId replica : boost_block->replicas) {
            if (replica == id) {
              score *= 1.25;
              break;
            }
          }
        }
        if (beats(score, id, local_score, local_best)) {
          local_score = score;
          local_best = id;
        }
      }
      ++span;
    }
    out_best = local_best;
    out_score = local_score;
  };

  const std::size_t shards = shard_count(pool_, total_members);
  if (shards < 2) {
    ServerId serial_best = kInvalidServer;
    double serial_score = -1.0;
    if (total_members > 0) scan_range(0, total_members, serial_best, serial_score);
    if (serial_best != kInvalidServer) consider(serial_best, serial_score);
    return best;
  }
  scratch_best_.assign(shards, kInvalidServer);
  scratch_score_.assign(shards, -1.0);
  run_shards(pool_, shards, total_members,
             [&](std::size_t s, std::size_t begin, std::size_t end) {
               scan_range(begin, end, scratch_best_[s], scratch_score_[s]);
             });
  for (std::size_t s = 0; s < shards; ++s) {
    if (scratch_best_[s] != kInvalidServer) consider(scratch_best_[s], scratch_score_[s]);
  }
  if (shard_stats_ != nullptr) shard_stats_->note(shards, total_members);
  return best;
}

std::vector<ServerId> PlacementIndex::fitting_candidates(const Resources& demand) const {
  std::vector<ServerId> out;
  for (const auto& cls : classes_) {
    if (!demand.fits_within(cls.capacity)) continue;
    for (std::int32_t gid = cls.active_head; gid != kNoGroup;
         gid = cls.groups[static_cast<std::size_t>(gid)].next) {
      const Group& group = cls.groups[static_cast<std::size_t>(gid)];
      if (!group_fits(group.used, demand, cls.capacity)) continue;
      out.insert(out.end(), group.members.begin(), group.members.end());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dollymp
