#include "dollymp/cluster/cluster.h"

#include <algorithm>

namespace dollymp {

Cluster::Cluster() : table_(std::make_unique<ServerTable>()) {}

Cluster::Cluster(const std::vector<ServerGroup>& groups) : Cluster() {
  std::size_t count = 0;
  for (const auto& group : groups) count += static_cast<std::size_t>(group.count);
  reserve(count);
  for (const auto& group : groups) {
    for (int i = 0; i < group.count; ++i) add_server(group.spec);
  }
}

Cluster::Cluster(const Cluster& other)
    : table_(std::make_unique<ServerTable>(other.table())),
      total_(other.total_),
      rack_count_(other.rack_count_) {
  servers_.reserve(other.servers_.size());
  for (std::size_t i = 0; i < other.servers_.size(); ++i) {
    servers_.emplace_back(table_.get(), static_cast<ServerId>(i));
  }
}

Cluster& Cluster::operator=(const Cluster& other) {
  if (this == &other) return *this;
  *table_ = other.table();
  total_ = other.total_;
  rack_count_ = other.rack_count_;
  servers_.clear();
  servers_.reserve(other.servers_.size());
  for (std::size_t i = 0; i < other.servers_.size(); ++i) {
    servers_.emplace_back(table_.get(), static_cast<ServerId>(i));
  }
  return *this;
}

void Cluster::save_state(StateWriter& w) const { table_->save_state(w); }

void Cluster::load_state(StateReader& r) {
  table_->load_state(r);
  servers_.clear();
  servers_.reserve(table_->size());
  total_ = {};
  rack_count_ = 0;
  for (std::size_t i = 0; i < table_->size(); ++i) {
    servers_.emplace_back(table_.get(), static_cast<ServerId>(i));
    total_ += servers_.back().capacity();
    rack_count_ = std::max(rack_count_, servers_.back().rack() + 1);
  }
}

void Cluster::add_server(ServerSpec spec) {
  rack_count_ = std::max(rack_count_, spec.rack + 1);
  total_ += spec.capacity;
  const ServerId id = table_->add(spec);
  servers_.emplace_back(table_.get(), id);
}

void Cluster::reserve(std::size_t servers) {
  table_->reserve(servers);
  servers_.reserve(servers);
}

Resources Cluster::total_free() const {
  Resources free;
  for (const auto& s : servers_) free += s.free();
  return free;
}

Resources Cluster::total_used() const {
  Resources used;
  for (const auto& s : servers_) used += s.used();
  return used;
}

double Cluster::utilization() const {
  if (servers_.empty()) return 0.0;
  const Resources used = total_used();
  double util = 0.0;
  for (std::size_t d = 0; d < Resources::kMaxDims; ++d) {
    if (total_[d] > 0.0) util = std::max(util, used[d] / total_[d]);
  }
  return util;
}

void Cluster::reset_allocations() {
  for (auto& s : servers_) s.reset();
}

Cluster Cluster::paper30() {
  // Section 6.1: 2 powerful (24c/48GB), 7 normal (16c/32-64GB), 21 small
  // (8c/16GB); 2 + 7 + 21 = 30 nodes; 2*24 + 7*16 + 21*8 = 328 cores.
  // Memory for the 7 normal nodes alternates 32/64 GB ("32-64GB").
  std::vector<ServerGroup> groups;
  groups.push_back({ServerSpec{{24, 48}, 1.6, 0, "power-24c"}, 2});
  for (int i = 0; i < 7; ++i) {
    const double mem = (i % 2 == 0) ? 32.0 : 64.0;
    groups.push_back({ServerSpec{{16, mem}, 1.25, i < 4 ? 0 : 1, "normal-16c"}, 1});
  }
  groups.push_back({ServerSpec{{8, 16}, 1.0, 1, "small-8c"}, 11});
  groups.push_back({ServerSpec{{8, 16}, 1.0, 0, "small-8c"}, 10});
  return Cluster(groups);
}

Cluster Cluster::google_like(std::size_t servers) {
  // Google 2011 trace machine mix (normalized): roughly half mid-size
  // machines, a band of large ones and a long tail of small ones.  We use
  // three platform classes with speeds spanning the heterogeneity the trace
  // analysis reports, spread over racks of 40.
  Cluster cluster;
  cluster.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    const int rack = static_cast<int>(i / 40);
    const std::size_t r = i % 10;
    if (r < 5) {
      cluster.add_server(ServerSpec{{16, 32}, 1.0, rack, "mid-16c"});
    } else if (r < 8) {
      cluster.add_server(ServerSpec{{32, 64}, 1.3, rack, "big-32c"});
    } else {
      cluster.add_server(ServerSpec{{8, 16}, 0.8, rack, "small-8c"});
    }
  }
  return cluster;
}

Cluster Cluster::google_trace(std::size_t servers) {
  // Full-scale inventory for the Section 6.3 trace replays: the paper
  // simulates >30,000 servers.  Four platform classes (the Borg trace
  // collapses to a handful of machine shapes) over racks of 48; class
  // proportions per 20 machines: 8 standard, 6 large, 3 very large, 3
  // small, with base speeds spanning the reported heterogeneity.  The
  // struct-of-arrays ServerTable keeps this linear-time and ~70 bytes per
  // server, so 300K and 1M-server inventories (the bench/scale_step.cpp
  // gate) build in milliseconds.
  Cluster cluster;
  cluster.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    const int rack = static_cast<int>(i / 48);
    const std::size_t r = i % 20;
    if (r < 8) {
      cluster.add_server(ServerSpec{{12, 48}, 1.0, rack, "std-12c"});
    } else if (r < 14) {
      cluster.add_server(ServerSpec{{24, 96}, 1.15, rack, "big-24c"});
    } else if (r < 17) {
      cluster.add_server(ServerSpec{{48, 192}, 1.3, rack, "huge-48c"});
    } else {
      cluster.add_server(ServerSpec{{8, 24}, 0.85, rack, "small-8c"});
    }
  }
  return cluster;
}

Cluster Cluster::gpu_pods(std::size_t servers) {
  // Mixed ML/analytics inventory: per 8 machines, 2 are 8-GPU training
  // nodes (the A100-pod shape: fat CPU/memory host feeding 8 accelerators)
  // and 6 are CPU-only workers, over racks of 16 so a typical 8-rank gang
  // fits inside one rack when the packing cooperates — which makes the
  // rack-spread penalty of split gangs observable rather than constant.
  Cluster cluster;
  cluster.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    const int rack = static_cast<int>(i / 16);
    const std::size_t r = i % 8;
    if (r < 2) {
      cluster.add_server(ServerSpec{{64.0, 256.0, 8.0}, 1.2, rack, "gpu-8x"});
    } else {
      cluster.add_server(ServerSpec{{16.0, 64.0}, 1.0, rack, "cpu-16c"});
    }
  }
  return cluster;
}

Cluster Cluster::single(Resources capacity, double base_speed) {
  Cluster cluster;
  cluster.add_server(ServerSpec{capacity, base_speed, 0, "single"});
  return cluster;
}

Cluster Cluster::uniform(std::size_t servers, Resources capacity, double base_speed) {
  Cluster cluster;
  cluster.reserve(servers);
  for (std::size_t i = 0; i < servers; ++i) {
    cluster.add_server(ServerSpec{capacity, base_speed, static_cast<int>(i / 40), "uniform"});
  }
  return cluster;
}

}  // namespace dollymp
