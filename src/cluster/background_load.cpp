#include "dollymp/cluster/background_load.h"

#include <stdexcept>

#include "dollymp/common/state_io.h"

namespace dollymp {

BackgroundLoadProcess::BackgroundLoadProcess(BackgroundLoadConfig config,
                                             std::size_t num_servers, std::uint64_t seed)
    : config_(config) {
  if (config_.mean_interval_seconds <= 0.0) {
    throw std::invalid_argument("BackgroundLoad: mean interval must be > 0");
  }
  if (config_.max_slowdown < 1.0) {
    throw std::invalid_argument("BackgroundLoad: max slowdown must be >= 1");
  }
  states_.resize(num_servers);
  reset(seed);
}

void BackgroundLoadProcess::reset(std::uint64_t seed) {
  Rng root(seed);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    states_[i] = State{};
    states_[i].rng = root.split(i + 1);
    // Desynchronize renewal times across servers.
    states_[i].until_seconds = config_.mean_interval_seconds * states_[i].rng.uniform();
  }
}

void BackgroundLoadProcess::renew(State& s, double now) {
  const ExponentialDist interval(config_.mean_interval_seconds);
  while (s.until_seconds <= now) {
    s.until_seconds += std::max(1e-9, interval.sample(s.rng));
    if (config_.enabled && s.rng.chance(config_.contention_probability)) {
      const BoundedParetoDist tail(1.0, config_.slowdown_shape, config_.max_slowdown);
      s.slowdown = tail.sample(s.rng);
    } else {
      s.slowdown = 1.0;
    }
  }
}

void BackgroundLoadProcess::save_state(StateWriter& w) const {
  w.u64(states_.size());
  for (const State& s : states_) {
    w.f64(s.until_seconds);
    w.f64(s.slowdown);
    const auto& rs = s.rng.state();
    for (const std::uint64_t word : rs) w.u64(word);
  }
}

void BackgroundLoadProcess::load_state(StateReader& r) {
  const std::uint64_t n = r.u64();
  if (n != states_.size()) {
    throw std::runtime_error("snapshot: background-load server count mismatch");
  }
  for (State& s : states_) {
    s.until_seconds = r.f64();
    s.slowdown = r.f64();
    std::array<std::uint64_t, 4> rs{};
    for (std::uint64_t& word : rs) word = r.u64();
    s.rng.set_state(rs);
  }
}

double BackgroundLoadProcess::slowdown(std::size_t server, double seconds) {
  if (!config_.enabled) return 1.0;
  State& s = states_.at(server);
  if (seconds >= s.until_seconds) renew(s, seconds);
  return s.slowdown;
}

}  // namespace dollymp
