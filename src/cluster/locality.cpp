#include "dollymp/cluster/locality.h"

#include <algorithm>

namespace dollymp {

const char* to_string(LocalityLevel level) {
  switch (level) {
    case LocalityLevel::kNode: return "NODE";
    case LocalityLevel::kRack: return "RACK";
    case LocalityLevel::kOffRack: return "OFF_RACK";
  }
  return "?";
}

BlockPlacement LocalityModel::place_block(Rng& rng) const {
  BlockPlacement block;
  if (!config_.enabled || num_servers_ == 0) return block;
  const int replicas = std::min<int>(config_.replicas, static_cast<int>(num_servers_));
  block.replicas.reserve(static_cast<std::size_t>(replicas));
  // First replica anywhere; subsequent replicas prefer a different rack
  // (HDFS default policy), falling back to any distinct server.
  while (static_cast<int>(block.replicas.size()) < replicas) {
    const auto candidate = static_cast<ServerId>(rng.below(num_servers_));
    if (std::find(block.replicas.begin(), block.replicas.end(), candidate) !=
        block.replicas.end()) {
      continue;
    }
    if (block.replicas.size() == 1) {
      const int first_rack = racks_[static_cast<std::size_t>(block.replicas[0])];
      const bool other_rack_exists =
          std::any_of(racks_.begin(), racks_.end(), [&](int r) { return r != first_rack; });
      if (other_rack_exists && racks_[static_cast<std::size_t>(candidate)] == first_rack) {
        continue;  // keep sampling until we cross racks
      }
    }
    block.replicas.push_back(candidate);
  }
  return block;
}

LocalityLevel LocalityModel::classify(const BlockPlacement& block, ServerId server) const {
  if (!config_.enabled || block.replicas.empty()) return LocalityLevel::kNode;
  if (std::find(block.replicas.begin(), block.replicas.end(), server) !=
      block.replicas.end()) {
    return LocalityLevel::kNode;
  }
  const int rack = racks_.at(static_cast<std::size_t>(server));
  for (const auto replica : block.replicas) {
    if (racks_.at(static_cast<std::size_t>(replica)) == rack) return LocalityLevel::kRack;
  }
  return LocalityLevel::kOffRack;
}

double LocalityModel::penalty(LocalityLevel level) const {
  if (!config_.enabled) return 1.0;
  switch (level) {
    case LocalityLevel::kNode: return 1.0;
    case LocalityLevel::kRack: return config_.rack_penalty;
    case LocalityLevel::kOffRack: return config_.off_rack_penalty;
  }
  return 1.0;
}

}  // namespace dollymp
