#include "dollymp/job/effective.h"

#include <stdexcept>

#include "dollymp/job/dag.h"

namespace dollymp {

double phase_dominant_share(const PhaseSpec& phase, const Resources& cluster_total) {
  return phase.demand.dominant_share(cluster_total);
}

double job_effective_volume(const JobSpec& job, const Resources& cluster_total,
                            double sigma_factor) {
  double volume = 0.0;
  for (const auto& phase : job.phases) {
    volume += static_cast<double>(phase.task_count) * phase.effective_length(sigma_factor) *
              phase_dominant_share(phase, cluster_total);
  }
  return volume;
}

double job_effective_length(const JobSpec& job, double sigma_factor) {
  return critical_path_length(job, sigma_factor);
}

double job_effective_volume_remaining(const JobSpec& job, const JobProgress& progress,
                                      const Resources& cluster_total, double sigma_factor) {
  if (progress.remaining_tasks.size() != job.phases.size()) {
    throw std::invalid_argument("JobProgress: remaining_tasks size mismatch");
  }
  double volume = 0.0;
  for (std::size_t k = 0; k < job.phases.size(); ++k) {
    const auto& phase = job.phases[k];
    const int remaining = progress.remaining_tasks[k];
    if (remaining < 0 || remaining > phase.task_count) {
      throw std::invalid_argument("JobProgress: remaining task count out of range");
    }
    volume += static_cast<double>(remaining) * phase.effective_length(sigma_factor) *
              phase_dominant_share(phase, cluster_total);
  }
  return volume;
}

double job_effective_length_remaining(const JobSpec& job, const JobProgress& progress,
                                      double sigma_factor) {
  if (progress.phase_finished.size() != job.phases.size()) {
    throw std::invalid_argument("JobProgress: phase_finished size mismatch");
  }
  return remaining_critical_path_length(job, progress.phase_finished, sigma_factor);
}

}  // namespace dollymp
