#include "dollymp/job/dag.h"

#include <algorithm>

namespace dollymp {

std::vector<std::vector<PhaseIndex>> phase_children(const JobSpec& job) {
  std::vector<std::vector<PhaseIndex>> children(job.phases.size());
  for (std::size_t k = 0; k < job.phases.size(); ++k) {
    for (const auto parent : job.phases[k].parents) {
      children[static_cast<std::size_t>(parent)].push_back(static_cast<PhaseIndex>(k));
    }
  }
  return children;
}

std::vector<PhaseIndex> terminal_phases(const JobSpec& job) {
  const auto children = phase_children(job);
  std::vector<PhaseIndex> terminals;
  for (std::size_t k = 0; k < children.size(); ++k) {
    if (children[k].empty()) terminals.push_back(static_cast<PhaseIndex>(k));
  }
  return terminals;
}

std::vector<PhaseIndex> source_phases(const JobSpec& job) {
  std::vector<PhaseIndex> sources;
  for (std::size_t k = 0; k < job.phases.size(); ++k) {
    if (job.phases[k].parents.empty()) sources.push_back(static_cast<PhaseIndex>(k));
  }
  return sources;
}

namespace {

// Shared longest-path DP; `weight(k)` gives the contribution of phase k.
template <typename WeightFn>
std::vector<double> longest_path_dp(const JobSpec& job, WeightFn weight) {
  std::vector<double> best(job.phases.size(), 0.0);
  // Phases are stored in topological order (validated), so one pass works.
  for (std::size_t k = 0; k < job.phases.size(); ++k) {
    double upstream = 0.0;
    for (const auto parent : job.phases[k].parents) {
      upstream = std::max(upstream, best[static_cast<std::size_t>(parent)]);
    }
    best[k] = upstream + weight(k);
  }
  return best;
}

}  // namespace

std::vector<double> longest_path_through(const JobSpec& job, double sigma_factor) {
  return longest_path_dp(
      job, [&](std::size_t k) { return job.phases[k].effective_length(sigma_factor); });
}

double critical_path_length(const JobSpec& job, double sigma_factor) {
  const auto best = longest_path_through(job, sigma_factor);
  return best.empty() ? 0.0 : *std::max_element(best.begin(), best.end());
}

double remaining_critical_path_length(const JobSpec& job, const std::vector<bool>& finished,
                                      double sigma_factor) {
  const auto best = longest_path_dp(job, [&](std::size_t k) {
    const bool done = k < finished.size() && finished[k];
    return done ? 0.0 : job.phases[k].effective_length(sigma_factor);
  });
  return best.empty() ? 0.0 : *std::max_element(best.begin(), best.end());
}

std::vector<PhaseIndex> critical_path(const JobSpec& job, double sigma_factor) {
  const auto best = longest_path_through(job, sigma_factor);
  if (best.empty()) return {};
  // Walk back from the sink with the largest completion length.
  auto current = static_cast<PhaseIndex>(
      std::max_element(best.begin(), best.end()) - best.begin());
  std::vector<PhaseIndex> path{current};
  for (;;) {
    const auto& parents = job.phases[static_cast<std::size_t>(current)].parents;
    if (parents.empty()) break;
    PhaseIndex pick = parents.front();
    for (const auto parent : parents) {
      if (best[static_cast<std::size_t>(parent)] > best[static_cast<std::size_t>(pick)]) {
        pick = parent;
      }
    }
    path.push_back(pick);
    current = pick;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace dollymp
