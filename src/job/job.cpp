#include "dollymp/job/job.h"

#include <stdexcept>

namespace dollymp {

int JobSpec::total_tasks() const {
  int total = 0;
  for (const auto& p : phases) total += p.task_count;
  return total;
}

void JobSpec::validate() const {
  if (phases.empty()) throw std::invalid_argument("JobSpec: job must have >= 1 phase");
  for (std::size_t k = 0; k < phases.size(); ++k) {
    const auto& p = phases[k];
    if (p.task_count < 1) throw std::invalid_argument("JobSpec: phase needs >= 1 task");
    if (!(p.theta_seconds > 0.0)) {
      throw std::invalid_argument("JobSpec: theta must be > 0");
    }
    if (p.sigma_seconds < 0.0) throw std::invalid_argument("JobSpec: sigma must be >= 0");
    if (!p.demand.non_negative() || p.demand.is_zero()) {
      throw std::invalid_argument("JobSpec: per-task demand must be positive");
    }
    for (const auto parent : p.parents) {
      if (parent < 0 || static_cast<std::size_t>(parent) >= phases.size()) {
        throw std::invalid_argument("JobSpec: parent index out of range");
      }
      if (static_cast<std::size_t>(parent) >= k) {
        throw std::invalid_argument(
            "JobSpec: phases must be listed in topological order (parent < child)");
      }
    }
  }
}

JobSpec JobSpec::single_task(JobId id, Resources demand, double theta, double sigma,
                             double arrival) {
  return single_phase(id, 1, demand, theta, sigma, arrival);
}

JobSpec JobSpec::single_phase(JobId id, int tasks, Resources demand, double theta,
                              double sigma, double arrival) {
  JobSpec job;
  job.id = id;
  job.name = "job-" + std::to_string(id);
  job.arrival_seconds = arrival;
  PhaseSpec phase;
  phase.name = "phase0";
  phase.task_count = tasks;
  phase.demand = demand;
  phase.theta_seconds = theta;
  phase.sigma_seconds = sigma;
  job.phases.push_back(std::move(phase));
  return job;
}

}  // namespace dollymp
