#include "dollymp/obs/trace_record.h"

#include <bit>
#include <sstream>

namespace dollymp {

const char* to_string(TraceEv ev) {
  switch (ev) {
    case TraceEv::kJobArrival: return "job-arrival";
    case TraceEv::kCopyPlaced: return "copy-placed";
    case TraceEv::kClonePlaced: return "clone-placed";
    case TraceEv::kSpeculativePlaced: return "speculative-placed";
    case TraceEv::kCopyFinished: return "copy-finished";
    case TraceEv::kCopyKilled: return "copy-killed";
    case TraceEv::kTaskCompleted: return "task-completed";
    case TraceEv::kPhaseCompleted: return "phase-completed";
    case TraceEv::kJobCompleted: return "job-completed";
    case TraceEv::kServerFailed: return "server-failed";
    case TraceEv::kServerRepaired: return "server-repaired";
    case TraceEv::kSchedulerInvoked: return "scheduler-invoked";
    case TraceEv::kWakeupRequested: return "wakeup-requested";
    case TraceEv::kTimerFired: return "timer-fired";
    case TraceEv::kPlacementQuery: return "placement-query";
    case TraceEv::kSpeculationPass: return "speculation-pass";
    case TraceEv::kCopyFault: return "copy-fault";
    case TraceEv::kServerDegraded: return "server-degraded";
    case TraceEv::kServerRestored: return "server-restored";
    case TraceEv::kQuarantineEnter: return "quarantine-enter";
    case TraceEv::kQuarantineExit: return "quarantine-exit";
    case TraceEv::kRetryBackoff: return "retry-backoff";
    case TraceEv::kCloneBudgetDegraded: return "clone-budget-degraded";
    case TraceEv::kArrivalShed: return "arrival-shed";
    case TraceEv::kOverloadLevelChanged: return "overload-level-changed";
    case TraceEv::kGangPlaced: return "gang-placed";
    case TraceEv::kGangRollback: return "gang-rollback";
  }
  return "unknown";
}

namespace {

// One multiply + xor-shift per word — bijective, so any single-bit change
// in any field changes the word's image.  The per-position odd constants
// make the xor-combine below order-sensitive within a record.
constexpr std::uint64_t mix(std::uint64_t v, std::uint64_t k) {
  v *= k;
  v ^= v >> 32;
  return v;
}

}  // namespace

std::uint64_t fold_record_hash(std::uint64_t h, const TraceRecord& r) {
  // Per-append cost matters: the recorder's <5% end-to-end budget is
  // enforced by bench/micro_recorder.cpp.  Two ingredients keep this fast:
  // (a) the payload is packed losslessly into six 64-bit words instead of
  // hashed field-by-field, and (b) the six word mixes are independent (a
  // xor-combine with distinct per-position constants), so they execute
  // with instruction-level parallelism — only the final combine sits on
  // the loop-carried dependency chain through `h`.  seq is deliberately
  // *not* hashed: the recorder stamps it from its own counter, so at any
  // stream position both sides of a replay agree on it by construction.
  const auto u32 = [](std::int32_t v) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
  };
  const std::uint64_t phase = u32(r.phase);
  const std::uint64_t copy = u32(r.copy);
  const std::uint64_t aux = static_cast<std::uint64_t>(r.aux);
  const std::uint64_t score = std::bit_cast<std::uint64_t>(r.score);
  const std::uint64_t rh =
      mix(static_cast<std::uint64_t>(r.slot), 0x9E3779B97F4A7C15ULL) ^
      mix(static_cast<std::uint64_t>(r.type) | (u32(r.job) << 8) | (phase << 40),
          0xBF58476D1CE4E5B9ULL) ^
      mix((phase >> 24) | (u32(r.task) << 8) | (copy << 40), 0x94D049BB133111EBULL) ^
      mix((copy >> 24) | (u32(r.server) << 8) | (aux << 40), 0xD6E8FEB86659FD93ULL) ^
      mix((aux >> 24) | (score << 40), 0xA24BAED4963EE407ULL) ^
      mix(score >> 24, 0x9FB21C651E98DF25ULL);
  h ^= rh;
  h *= 0x100000001B3ULL;
  return h;
}

std::string decode(const TraceRecord& r) {
  std::ostringstream os;
  os << '#' << r.seq << " slot=" << r.slot << ' ' << to_string(r.type);
  if (r.job >= 0) os << " job=" << r.job;
  if (r.phase >= 0) os << " phase=" << r.phase;
  if (r.task >= 0) os << " task=" << r.task;
  if (r.copy >= 0) os << " copy=" << r.copy;
  if (r.server >= 0) os << " server=" << r.server;
  if (r.aux != 0) os << " aux=" << r.aux;
  if (r.score != 0.0) os << " score=" << r.score;
  return os.str();
}

}  // namespace dollymp
