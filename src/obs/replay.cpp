#include "dollymp/obs/replay.h"

#include <algorithm>
#include <sstream>

namespace dollymp {

std::string DivergenceReport::to_string() const {
  std::ostringstream os;
  os << std::hex;
  if (identical) {
    os << "identical: " << std::dec << records_a << " records, hash 0x" << std::hex
       << hash_a;
    return os.str();
  }
  os << "DIVERGED: hash 0x" << hash_a << " vs 0x" << hash_b << std::dec << " ("
     << records_a << " vs " << records_b << " records)\n"
     << "first divergent record at index " << first_divergence << ":\n"
     << "  A: " << lhs << "\n"
     << "  B: " << rhs;
  return os.str();
}

DivergenceReport compare_streams(const std::vector<TraceRecord>& a,
                                 const std::vector<TraceRecord>& b) {
  DivergenceReport report;
  report.records_a = a.size();
  report.records_b = b.size();
  std::uint64_t ha = kTraceHashSeed;
  std::uint64_t hb = kTraceHashSeed;
  for (const auto& r : a) ha = fold_record_hash(ha, r);
  for (const auto& r : b) hb = fold_record_hash(hb, r);
  report.hash_a = ha;
  report.hash_b = hb;

  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(a[i] == b[i])) {
      report.first_divergence = i;
      report.lhs = decode(a[i]);
      report.rhs = decode(b[i]);
      return report;
    }
  }
  if (a.size() != b.size()) {
    report.first_divergence = common;
    report.lhs = common < a.size() ? decode(a[common]) : "<end of stream>";
    report.rhs = common < b.size() ? decode(b[common]) : "<end of stream>";
    return report;
  }
  report.identical = true;
  return report;
}

namespace {

std::vector<TraceRecord> record_run(const Cluster& cluster, SimConfig config,
                                    const std::vector<JobSpec>& jobs,
                                    const SchedulerFactory& factory) {
  Recorder recorder;  // unbounded: divergence localization needs the stream
  config.recorder = &recorder;
  const auto scheduler = factory();
  (void)simulate(cluster, config, jobs, *scheduler);
  return recorder.snapshot();
}

}  // namespace

DivergenceReport verify_replay(const Cluster& cluster, const SimConfig& config,
                               const std::vector<JobSpec>& jobs,
                               const SchedulerFactory& factory) {
  const auto first = record_run(cluster, config, jobs, factory);
  const auto second = record_run(cluster, config, jobs, factory);
  return compare_streams(first, second);
}

DivergenceReport verify_against_log(const Cluster& cluster, const SimConfig& config,
                                    const std::vector<JobSpec>& jobs,
                                    const SchedulerFactory& factory,
                                    const std::vector<TraceRecord>& reference) {
  const auto live = record_run(cluster, config, jobs, factory);
  return compare_streams(live, reference);
}

}  // namespace dollymp
