#include "dollymp/obs/recorder.h"

#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace dollymp {

std::vector<TraceRecord> Recorder::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(buffer_.size());
  if (capacity_ == 0 || buffer_.size() < capacity_) {
    out = buffer_;
  } else {
    out.insert(out.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(head_),
               buffer_.end());
    out.insert(out.end(), buffer_.begin(),
               buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

void Recorder::dump(std::ostream& os) const {
  const auto records = snapshot();
  if (evictions_ > 0) {
    os << "... " << evictions_ << " older record(s) evicted ...\n";
  }
  for (const auto& r : records) os << decode(r) << '\n';
}

namespace {

constexpr char kMagic[8] = {'D', 'M', 'P', 'T', 'R', 'C', '0', '2'};
/// Legacy header without the threads_resolved field; still readable.
constexpr char kMagicV1[8] = {'D', 'M', 'P', 'T', 'R', 'C', '0', '1'};

// Field-by-field packing: the in-memory struct has padding, so raw memcpy
// of the whole struct would serialize (and hash) indeterminate bytes.
template <typename T>
void put(std::string& out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
T take(const char*& p, const char* end) {
  if (p + sizeof(T) > end) throw std::runtime_error("trace log: truncated record");
  T value;
  std::memcpy(&value, p, sizeof(T));
  p += sizeof(T);
  return value;
}

}  // namespace

void save_log(const std::string& path, const std::vector<TraceRecord>& records,
              double slot_seconds, long long threads_resolved) {
  std::string blob;
  blob.reserve(sizeof(kMagic) + 24 + records.size() * kTraceRecordWireBytes);
  blob.append(kMagic, sizeof(kMagic));
  put(blob, slot_seconds);
  put(blob, static_cast<std::int64_t>(threads_resolved));
  put(blob, static_cast<std::uint64_t>(records.size()));
  for (const auto& r : records) {
    put(blob, r.seq);
    put(blob, static_cast<std::int64_t>(r.slot));
    put(blob, static_cast<std::uint8_t>(r.type));
    put(blob, r.job);
    put(blob, r.phase);
    put(blob, r.task);
    put(blob, r.copy);
    put(blob, r.server);
    put(blob, r.aux);
    put(blob, r.score);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out || !out.write(blob.data(), static_cast<std::streamsize>(blob.size()))) {
    throw std::runtime_error("save_log: cannot write " + path);
  }
}

TraceLog load_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_log: cannot open " + path);
  std::string blob((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  const char* p = blob.data();
  const char* end = p + blob.size();
  const bool v2 = blob.size() >= sizeof(kMagic) &&
                  std::memcmp(p, kMagic, sizeof(kMagic)) == 0;
  const bool v1 = !v2 && blob.size() >= sizeof(kMagicV1) &&
                  std::memcmp(p, kMagicV1, sizeof(kMagicV1)) == 0;
  if (!v2 && !v1) {
    throw std::runtime_error("load_log: " + path + " is not a dollymp trace log");
  }
  p += sizeof(kMagic);
  TraceLog log;
  log.slot_seconds = take<double>(p, end);
  if (v2) log.threads_resolved = take<std::int64_t>(p, end);
  const auto count = take<std::uint64_t>(p, end);
  if ((end - p) != static_cast<std::ptrdiff_t>(count * kTraceRecordWireBytes)) {
    throw std::runtime_error("load_log: " + path + " has a corrupt record section");
  }
  log.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceRecord r;
    r.seq = take<std::uint64_t>(p, end);
    r.slot = take<std::int64_t>(p, end);
    r.type = static_cast<TraceEv>(take<std::uint8_t>(p, end));
    r.job = take<JobId>(p, end);
    r.phase = take<PhaseIndex>(p, end);
    r.task = take<std::int32_t>(p, end);
    r.copy = take<std::int32_t>(p, end);
    r.server = take<std::int32_t>(p, end);
    r.aux = take<std::int64_t>(p, end);
    r.score = take<double>(p, end);
    log.records.push_back(r);
  }
  return log;
}

}  // namespace dollymp
