#include "dollymp/obs/chrome_trace.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace dollymp {

namespace {

struct Span {
  JobId job;
  PhaseIndex phase;
  std::int32_t task;
  std::int32_t copy;
  std::int32_t server;
  SimTime start;
  SimTime end;
  TraceEv kind;       ///< the placement record's type
  bool killed;
  bool unterminated;
};

const char* kind_label(TraceEv kind) {
  switch (kind) {
    case TraceEv::kClonePlaced: return "clone";
    case TraceEv::kSpeculativePlaced: return "spec";
    default: return "task";
  }
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

class EventWriter {
 public:
  explicit EventWriter(std::string& out) : out_(out) {}

  /// Begin one trace event object; pairs with close().
  void open(const std::string& name, char ph, double ts_us, int pid, std::int64_t tid) {
    if (!first_) out_ += ",\n";
    first_ = false;
    out_ += R"({"name":")";
    append_escaped(out_, name);
    out_ += R"(","ph":")";
    out_ += ph;
    out_ += R"(","ts":)" + format_number(ts_us);
    out_ += ",\"pid\":" + std::to_string(pid);
    out_ += ",\"tid\":" + std::to_string(tid);
  }

  void field(const std::string& key, const std::string& raw_value) {
    out_ += ",\"" + key + "\":" + raw_value;
  }

  void close() { out_ += "}"; }

  static std::string format_number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
  }

 private:
  std::string& out_;
  bool first_ = true;
};

std::string quoted(const std::string& text) {
  std::string out = "\"";
  append_escaped(out, text);
  out += "\"";
  return out;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceRecord>& records,
                              const ChromeTraceOptions& options) {
  const double us_per_slot = options.slot_seconds * 1e6;

  // Pass 1: pair placements with finish/kill records into spans, collect the
  // instants worth plotting and the set of server lanes.
  std::map<std::array<std::int32_t, 4>, std::pair<TraceEv, SimTime>> open;
  std::vector<Span> spans;
  std::vector<const TraceRecord*> instants;
  std::set<std::int32_t> servers;
  SimTime last_slot = 0;
  for (const auto& r : records) {
    last_slot = std::max(last_slot, r.slot);
    switch (r.type) {
      case TraceEv::kCopyPlaced:
      case TraceEv::kClonePlaced:
      case TraceEv::kSpeculativePlaced:
        open[{r.job, r.phase, r.task, r.copy}] = {r.type, r.slot};
        servers.insert(r.server);
        break;
      case TraceEv::kCopyFinished:
      case TraceEv::kCopyKilled: {
        const auto it = open.find({r.job, r.phase, r.task, r.copy});
        if (it == open.end()) break;  // start evicted from a ring — drop
        spans.push_back(Span{r.job, r.phase, r.task, r.copy, r.server,
                             it->second.second, r.slot, it->second.first,
                             r.type == TraceEv::kCopyKilled, false});
        servers.insert(r.server);
        open.erase(it);
        break;
      }
      case TraceEv::kSchedulerInvoked:
      case TraceEv::kJobArrival:
      case TraceEv::kJobCompleted:
      case TraceEv::kSpeculationPass:
      case TraceEv::kServerFailed:
      case TraceEv::kServerRepaired:
        instants.push_back(&r);
        if (r.server >= 0) servers.insert(r.server);
        break;
      default:
        break;  // queries, wakeups, task/phase records: args-level noise
    }
  }
  for (const auto& [key, start] : open) {  // still running at end of stream
    spans.push_back(Span{key[0], key[1], key[2], key[3], -1, start.second,
                         start.second, start.first, false, true});
  }

  // Straggler classification: duration vs the median of completed
  // (non-killed) spans of the same (job, phase).
  std::map<std::pair<JobId, PhaseIndex>, std::vector<SimTime>> durations;
  for (const auto& s : spans) {
    if (!s.killed && !s.unterminated) {
      durations[{s.job, s.phase}].push_back(s.end - s.start);
    }
  }
  std::map<std::pair<JobId, PhaseIndex>, SimTime> median;
  for (auto& [key, d] : durations) {
    std::sort(d.begin(), d.end());
    median[key] = d[d.size() / 2];
  }

  std::string out;
  out.reserve(256 + spans.size() * 200 + instants.size() * 120);
  out += "{\"traceEvents\":[\n";
  EventWriter w(out);

  // Metadata: process and thread names so Perfetto labels the lanes.
  w.open("process_name", 'M', 0, 0, 0);
  w.field("args", "{\"name\":\"cluster\"}");
  w.close();
  w.open("process_name", 'M', 0, 1, 0);
  w.field("args", "{\"name\":\"scheduler\"}");
  w.close();
  w.open("thread_name", 'M', 0, 1, 0);
  w.field("args", "{\"name\":\"control plane\"}");
  w.close();
  for (const auto server : servers) {
    if (server < 0) continue;
    w.open("thread_name", 'M', 0, 0, server);
    w.field("args", "{\"name\":\"server " + std::to_string(server) + "\"}");
    w.close();
  }

  for (const auto& s : spans) {
    const SimTime dur_slots = s.end - s.start;
    const auto med = median.find({s.job, s.phase});
    const bool straggler = !s.unterminated && med != median.end() &&
                           med->second > 0 &&
                           static_cast<double>(dur_slots) >
                               options.straggler_factor *
                                   static_cast<double>(med->second);
    std::string name = "J" + std::to_string(s.job) + "/P" + std::to_string(s.phase) +
                       "/T" + std::to_string(s.task);
    if (s.kind == TraceEv::kClonePlaced) name += " clone";
    if (s.kind == TraceEv::kSpeculativePlaced) name += " spec";
    std::string cat = kind_label(s.kind);
    if (straggler) cat += ",straggler";

    w.open(name, 'X', static_cast<double>(s.start) * us_per_slot, 0,
           s.unterminated ? 0 : s.server);
    w.field("cat", quoted(cat));
    w.field("dur", EventWriter::format_number(static_cast<double>(dur_slots) * us_per_slot));
    std::string args = "{\"job\":" + std::to_string(s.job) +
                       ",\"phase\":" + std::to_string(s.phase) +
                       ",\"task\":" + std::to_string(s.task) +
                       ",\"copy\":" + std::to_string(s.copy) +
                       ",\"kind\":" + quoted(kind_label(s.kind)) +
                       ",\"outcome\":" +
                       quoted(s.unterminated ? "unterminated"
                              : s.killed     ? "killed"
                                             : "finished") +
                       ",\"straggler\":" + (straggler ? "true" : "false") + "}";
    w.field("args", args);
    w.close();
  }

  for (const TraceRecord* r : instants) {
    const bool server_lane =
        r->type == TraceEv::kServerFailed || r->type == TraceEv::kServerRepaired;
    std::string name = to_string(r->type);
    if (r->job >= 0) name += " J" + std::to_string(r->job);
    w.open(name, 'i', static_cast<double>(r->slot) * us_per_slot,
           server_lane ? 0 : 1, server_lane ? r->server : 0);
    w.field("s", quoted("t"));
    if (r->type == TraceEv::kSpeculationPass) {
      w.field("args", "{\"candidates\":" + std::to_string(r->aux >> 16) +
                          ",\"launched\":" + std::to_string(r->aux & 0xFFFF) + "}");
    }
    w.close();
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace dollymp
