// Trace workflow: synthesize a Google-like trace, save it to CSV, load it
// back (the same entry point a real converted cluster trace would use) and
// replay it under DollyMP on a scaled-down Google-like cluster.
//
// Build & run:  ./build/examples/trace_replay [trace.csv]
// With an argument, replays the given trace file instead of synthesizing.
#include <iostream>

#include "dollymp/cluster/cluster.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/analysis.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_io.h"
#include "dollymp/workload/trace_model.h"

int main(int argc, char** argv) {
  using namespace dollymp;

  std::vector<JobSpec> jobs;
  if (argc > 1) {
    std::cout << "loading trace from " << argv[1] << "\n";
    jobs = load_trace(argv[1]);
  } else {
    // Synthesize 200 jobs with the Google-trace-like model, write them out
    // and read them back — proving the CSV round trip a real trace would
    // take.
    TraceModelConfig model_config;
    model_config.max_tasks_per_phase = 200;
    TraceModel model(model_config, /*seed=*/2026);
    jobs = model.sample_jobs(200);
    assign_poisson_arrivals(jobs, 12.0, 2027);

    const std::string path = "trace_replay_demo.csv";
    save_trace(jobs, path);
    jobs = load_trace(path);
    std::cout << "synthesized, saved and reloaded " << jobs.size() << " jobs ("
              << path << ")\n";
  }

  const Cluster cluster = Cluster::google_like(120);
  std::cout << "\n" << render_workload_report(jobs, cluster);

  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 2026;

  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  const RunSummary summary = summarize(result);

  std::cout << "\nreplay complete under " << result.scheduler << ":\n"
            << "  jobs:            " << summary.jobs << "\n"
            << "  mean flowtime:   " << summary.mean_flowtime << " s\n"
            << "  p95 flowtime:    " << summary.p95_flowtime << " s\n"
            << "  makespan:        " << summary.makespan << " s\n"
            << "  clones launched: " << summary.clones_launched << "\n"
            << "  tasks cloned:    " << summary.cloned_task_fraction * 100.0 << " %\n";
  return 0;
}
