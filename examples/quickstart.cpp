// Quickstart: the smallest end-to-end use of the library.
//
//   1. describe a cluster,
//   2. describe a few jobs (task counts, demands, duration statistics),
//   3. pick a scheduler,
//   4. simulate and read the per-job results.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "dollymp/cluster/cluster.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"

int main() {
  using namespace dollymp;

  // A small heterogeneous cluster: 4 big nodes and 8 small ones.
  Cluster cluster;
  for (int i = 0; i < 4; ++i) {
    cluster.add_server(ServerSpec{{16, 32}, 1.3, 0, "big"});
  }
  for (int i = 0; i < 8; ++i) {
    cluster.add_server(ServerSpec{{8, 16}, 1.0, 1, "small"});
  }

  // Three jobs.  Job 0: a 20-task single-phase job with straggler-prone
  // durations (sigma close to theta).  Job 1: a small map->reduce job.
  // Job 2: a single fat task arriving a minute in.
  std::vector<JobSpec> jobs;
  jobs.push_back(JobSpec::single_phase(/*id=*/0, /*tasks=*/20, /*demand=*/{2, 4},
                                       /*theta=*/60.0, /*sigma=*/50.0));
  JobSpec mapreduce;
  mapreduce.id = 1;
  mapreduce.name = "mapreduce-demo";
  mapreduce.app = "demo";
  mapreduce.phases.push_back({"map", 8, {1, 2}, 45.0, 30.0, {}});
  mapreduce.phases.push_back({"reduce", 2, {2, 6}, 60.0, 20.0, {0}});
  jobs.push_back(mapreduce);
  jobs.push_back(JobSpec::single_task(/*id=*/2, /*demand=*/{8, 16}, /*theta=*/120.0,
                                      /*sigma=*/0.0, /*arrival=*/60.0));

  // DollyMP with the paper's defaults: up to two clones per task,
  // sigma factor r = 1.5.
  DollyMPScheduler scheduler;

  SimConfig config;
  config.slot_seconds = 5.0;  // the paper's slot length
  config.seed = 42;           // everything is reproducible from this

  const SimResult result = simulate(cluster, config, jobs, scheduler);

  std::cout << "scheduler: " << result.scheduler << "\n\n";
  for (const auto& job : result.jobs) {
    std::cout << job.name << ": arrived " << job.arrival_seconds << "s, started "
              << job.first_start_seconds << "s, finished " << job.finish_seconds
              << "s  (flowtime " << job.flowtime() << "s, " << job.clones_launched
              << " clones)\n";
  }
  std::cout << "\ntotal flowtime: " << result.total_flowtime() << " s\n"
            << "makespan:       " << result.makespan_seconds << " s\n"
            << "tasks cloned:   " << result.cloned_task_fraction() * 100.0 << " %\n";
  return 0;
}
