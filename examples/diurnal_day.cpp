// A simulated "day" of diurnal load: arrivals follow a day/night cycle and
// the scheduler comparison is run with the parallel experiment API —
// demonstrating run_comparison/run_replicated and the diurnal arrival
// process.
//
// Build & run:  ./build/examples/diurnal_day
#include <iostream>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/table.h"
#include "dollymp/metrics/experiment.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

int main() {
  using namespace dollymp;

  // A compressed "day": 600 trace-model jobs over a 2-hour sinusoidal
  // cycle; load peaks at ~1.8x the mean and troughs at ~0.2x.
  ComparisonSpec spec;
  spec.cluster = Cluster::google_like(60);
  spec.config.slot_seconds = 5.0;
  spec.config.seed = 7;
  TraceModel model({}, 7);
  spec.jobs = model.sample_jobs(600);
  assign_diurnal_arrivals(spec.jobs, /*mean_gap=*/12.0, /*amplitude=*/0.8,
                          /*period=*/7200.0, /*seed=*/8);

  const std::vector<ComparisonEntry> entries{
      {"capacity", [] { return std::make_unique<CapacityScheduler>(); }},
      {"tetris", [] { return std::make_unique<TetrisScheduler>(); }},
      {"dollymp^2", [] { return std::make_unique<DollyMPScheduler>(); }},
  };

  ThreadPool pool;
  const auto stats = run_replicated(spec, entries, {1, 2, 3, 4, 5}, &pool);

  ConsoleTable table({"scheduler", "mean_flow_s (avg±sd)", "makespan_s",
                      "cloned_task_frac"});
  for (const auto& s : stats) {
    table.add_row({s.name,
                   ConsoleTable::format_double(s.mean_flowtime.mean(), 1) + " ± " +
                       ConsoleTable::format_double(s.mean_flowtime.stddev(), 1),
                   ConsoleTable::format_double(s.makespan.mean(), 0),
                   ConsoleTable::format_double(s.cloned_task_fraction.mean(), 3)});
  }
  std::cout << "diurnal day: 600 jobs, 2h sine cycle, 5 environment seeds\n\n"
            << table.render()
            << "\nDollyMP's cloning throttles itself at the daily peak and opens up "
               "in the trough\n(the Section 4.1 rule) — compare the cloned-task "
               "fraction to a flat-arrival run.\n";
  return 0;
}
