// Failure drill: how does the cluster behave when machines crash mid-run?
//
// Enables the failure-injection model (servers crash at exponential MTBF,
// killing their running copies, and come back after repair) and replays
// the same workload at increasing failure rates under DollyMP, printing
// the flowtime and re-execution cost at each level — plus an excerpt of
// the event trace showing a crash and the resulting re-placements.
//
// Build & run:  ./build/examples/failure_drill
#include <iostream>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/table.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"

int main() {
  using namespace dollymp;

  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(make_wordcount(i, 2.0));
  }
  assign_jittered_arrivals(jobs, 30.0, 0.2, /*seed=*/4);

  ConsoleTable table({"mtbf_s", "mean_flow_s", "makespan_s", "copies_launched",
                      "failure_events"});
  for (const double mtbf : {0.0, 1800.0, 600.0, 200.0}) {
    SimConfig config;
    config.slot_seconds = 5.0;
    config.seed = 4;
    config.record_events = true;
    if (mtbf > 0.0) {
      config.failures.enabled = true;
      config.failures.mean_time_to_failure_seconds = mtbf;
      config.failures.mean_repair_seconds = 120.0;
    }
    DollyMPScheduler scheduler;
    const SimResult result = simulate(cluster, config, jobs, scheduler);
    long long failures = 0;
    for (const auto& e : result.events) {
      failures += e.kind == SimEventKind::kServerFailed ? 1 : 0;
    }
    table.add_labeled_row(mtbf == 0.0 ? "off" : ConsoleTable::format_double(mtbf, 0),
                          {result.mean_flowtime(), result.makespan_seconds,
                           static_cast<double>(result.total_copies_launched),
                           static_cast<double>(failures)},
                          1);

    // For the harshest level, show the first crash in the event trace.
    if (mtbf == 200.0) {
      std::cout << "\nfirst crash in the event trace (mtbf=200s):\n";
      bool crashed = false;
      int shown = 0;
      for (const auto& e : result.events) {
        if (e.kind == SimEventKind::kServerFailed) crashed = true;
        if (!crashed) continue;
        std::cout << "  t=" << e.seconds << "s  " << to_string(e.kind);
        if (e.job >= 0) std::cout << "  job=" << e.job;
        if (e.server >= 0) std::cout << "  server=" << e.server;
        std::cout << "\n";
        if (++shown >= 10) break;
      }
      std::cout << "\n";
    }
  }
  std::cout << table.render()
            << "\nReading: tighter MTBF means more re-executed copies and longer "
               "flowtimes,\nbut every job still completes — tasks that lose all "
               "copies are re-placed.\n";
  return 0;
}
