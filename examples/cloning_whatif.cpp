// What-if analysis: how many clones should a straggler-prone job get?
//
// Sweeps the clone budget for a single map->reduce job whose task durations
// have Pareto-shaped tails, on an otherwise idle cluster, and reports the
// completion-time distribution (across environment seeds) against the
// extra resources consumed — the practical trade-off behind the paper's
// Figs. 1 and 9.
//
// Build & run:  ./build/examples/cloning_whatif
#include <iostream>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/distributions.h"
#include "dollymp/common/stats.h"
#include "dollymp/common/table.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"

int main() {
  using namespace dollymp;

  const Cluster cluster = Cluster::paper30();
  const int kSeeds = 25;

  // The theoretical prediction first: the speedup function fitted from the
  // job's duration statistics (Eqs. 1-3).
  AppConfig app;
  app.straggler_cv = 1.0;
  const JobSpec probe = make_wordcount(0, 4.0, 0.0, app);
  const auto h = SpeedupFunction::from_stats(probe.phases[0].theta_seconds,
                                             probe.phases[0].sigma_seconds);
  std::cout << "fitted Pareto shape alpha = " << h.alpha()
            << "; expected per-task speedups: h(2) = " << h(2.0)
            << ", h(3) = " << h(3.0) << " (cap " << h.upper_bound() << ")\n\n";

  ConsoleTable table({"clone_budget", "mean_completion_s", "p90_completion_s",
                      "worst_completion_s", "mean_resource_s", "resource_overhead"});
  double base_resources = 0.0;
  for (int budget = 0; budget <= 3; ++budget) {
    RunningStats completion;
    RunningStats resources;
    Cdf completion_cdf;
    for (int seed = 0; seed < kSeeds; ++seed) {
      SimConfig config;
      config.slot_seconds = 5.0;
      config.seed = 100 + static_cast<unsigned>(seed);
      config.max_copies_per_task = 1 + budget;
      DollyMPConfig dc;
      dc.clone_budget = budget;
      DollyMPScheduler scheduler(dc);
      const std::vector<JobSpec> jobs{make_wordcount(0, 4.0, 0.0, app)};
      const SimResult result = simulate(cluster, config, jobs, scheduler);
      completion.add(result.jobs[0].running_time());
      completion_cdf.add(result.jobs[0].running_time());
      resources.add(result.jobs[0].resource_seconds);
    }
    if (budget == 0) base_resources = resources.mean();
    table.add_labeled_row(std::to_string(budget),
                          {completion.mean(), completion_cdf.quantile(0.9),
                           completion.max(), resources.mean(),
                           resources.mean() / base_resources - 1.0},
                          2);
  }
  std::cout << table.render()
            << "\nReading: one clone removes most of the straggler tail; the second "
               "stabilizes the p90;\na third mostly burns resources — which is why "
               "DollyMP defaults to two (Section 5).\n";
  return 0;
}
