// A day in the life of a busy analytics cluster: a stream of WordCount and
// PageRank jobs on the paper's 30-node inventory, compared across four
// schedulers.  Demonstrates the workload builders, the scheduler zoo and
// the reporting helpers.
//
// Build & run:  ./build/examples/mapreduce_cluster
#include <iostream>
#include <memory>

#include "dollymp/cluster/cluster.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"

int main() {
  using namespace dollymp;

  const Cluster cluster = Cluster::paper30();
  std::cout << "cluster: " << cluster.size() << " nodes, "
            << cluster.total_capacity().cpu() << " cores, "
            << cluster.total_capacity().mem() << " GB across " << cluster.rack_count()
            << " racks\n";

  // 60 jobs: alternating WordCount (2-6 GB inputs) and 2-iteration PageRank,
  // arriving every ~45 seconds.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 60; ++i) {
    if (i % 2 == 0) {
      jobs.push_back(make_wordcount(i, 2.0 + static_cast<double>(i % 3) * 2.0));
    } else {
      jobs.push_back(make_pagerank(i, 1.0 + static_cast<double>(i % 4) * 0.5, 2));
    }
  }
  assign_jittered_arrivals(jobs, 45.0, 0.3, /*seed=*/7);

  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 7;

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(std::make_unique<CapacityScheduler>());
  schedulers.push_back(std::make_unique<DrfScheduler>());
  schedulers.push_back(std::make_unique<TetrisScheduler>());
  schedulers.push_back(std::make_unique<DollyMPScheduler>());

  std::vector<RunSummary> summaries;
  for (auto& scheduler : schedulers) {
    const SimResult result = simulate(cluster, config, jobs, *scheduler);
    summaries.push_back(summarize(result));
    std::cout << render_cdf_rows(result.scheduler + " flowtime (s)",
                                 flowtime_cdf(result));
  }
  std::cout << "\n" << render_summaries(summaries);
  return 0;
}
