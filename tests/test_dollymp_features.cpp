// Focused tests for DollyMP's configuration surface: clone ordering,
// locality awareness, Corollary 4.1 budgets, priority-class behaviour.
#include <gtest/gtest.h>

#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

SimConfig clean_config(std::uint64_t seed = 1, double slot = 1.0) {
  SimConfig config;
  config.slot_seconds = slot;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

TEST(DollyMPFeatures, CloneBudgetThreeNeedsRaisedSystemCap) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 4, {1, 2}, 40.0, 30.0)};

  SimConfig capped = clean_config(3);
  capped.record_tasks = true;  // default hard cap = 3 copies
  DollyMPScheduler d3a{DollyMPConfig{3}};
  const SimResult with_cap = simulate(cluster, capped, jobs, d3a);
  for (const auto& t : with_cap.tasks) {
    EXPECT_LE(t.copies, 3);
  }

  SimConfig raised = clean_config(3);
  raised.record_tasks = true;
  raised.max_copies_per_task = 4;
  DollyMPScheduler d3b{DollyMPConfig{3}};
  const SimResult without_cap = simulate(cluster, raised, jobs, d3b);
  int max_copies = 0;
  for (const auto& t : without_cap.tasks) max_copies = std::max(max_copies, t.copies);
  EXPECT_EQ(max_copies, 4) << "idle cluster must allow the full 3-clone budget";
}

TEST(DollyMPFeatures, NaiveCloneOrderingStillCompletes) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 2}, 30.0, 20.0, i * 10.0));
  }
  DollyMPConfig dc;
  dc.smallest_first_clones = false;
  DollyMPScheduler scheduler(dc);
  const SimResult result = simulate(cluster, clean_config(5, 5.0), jobs, scheduler);
  EXPECT_EQ(result.jobs.size(), 10u);
}

TEST(DollyMPFeatures, LocalityAwarePrefersReplicaServers) {
  // With locality on, first copies land on a replica server when it fits.
  Cluster cluster = Cluster::uniform(10, {8, 16});
  SimConfig config = clean_config(7);
  config.locality.enabled = true;
  config.record_tasks = true;
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 5, {1, 2}, 20.0, 0.0)};
  DollyMPScheduler scheduler;
  // Run and verify resource accounting stayed sane (placement detail is
  // internal, but the run must use replica-aware paths without error).
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  EXPECT_EQ(result.total_tasks_completed, 5);
}

TEST(DollyMPFeatures, CorollaryBudgetsLimitClonesUnderContention) {
  // Saturated cluster: with Corollary 4.1 budgets on, clone counts are
  // bounded by the class window requirement, so total clones launched can
  // not exceed the flat-budget run.
  const Cluster cluster = Cluster::uniform(3, {4, 8});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 2}, 30.0, 25.0, i * 5.0));
  }
  DollyMPConfig flat;
  flat.clone_budget = 2;
  DollyMPConfig corollary = flat;
  corollary.corollary_clone_counts = true;

  DollyMPScheduler flat_sched(flat);
  DollyMPScheduler corollary_sched(corollary);
  const SimResult flat_result = simulate(cluster, clean_config(9), jobs, flat_sched);
  const SimResult corollary_result =
      simulate(cluster, clean_config(9), jobs, corollary_sched);

  long long flat_clones = 0;
  long long corollary_clones = 0;
  for (const auto& j : flat_result.jobs) flat_clones += j.clones_launched;
  for (const auto& j : corollary_result.jobs) corollary_clones += j.clones_launched;
  EXPECT_LE(corollary_clones, flat_clones);
  EXPECT_EQ(corollary_result.jobs.size(), jobs.size());
}

TEST(DollyMPFeatures, PriorityOrderRespectedOnSingleServer) {
  // Three batch jobs with distinct sizes on a unit server: starts must be
  // ordered by the knapsack priority (short/small first).
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1.0, 1.0}, 32.0),
      JobSpec::single_task(1, {1.0, 1.0}, 2.0),
      JobSpec::single_task(2, {1.0, 1.0}, 8.0),
  };
  SimConfig config = clean_config(11);
  config.record_tasks = true;
  DollyMPScheduler scheduler{DollyMPConfig{0}};
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  EXPECT_LT(result.job(1).first_start_seconds, result.job(2).first_start_seconds);
  EXPECT_LT(result.job(2).first_start_seconds, result.job(0).first_start_seconds);
}

TEST(DollyMPFeatures, OverdueGateBlocksMidLifeClonesUnderLoad) {
  // A saturated cluster with deterministic durations: no task ever becomes
  // overdue (elapsed < theta always at the decision points), tasks launch
  // in waves, so the only permitted clones are launch-time ones — which
  // never fit because the cluster is full.  Expect zero clones.
  const Cluster cluster = Cluster::single({2, 2});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 2, {1, 1}, 10.0, 0.0));
  }
  DollyMPScheduler scheduler;  // budget 2
  const SimResult result = simulate(cluster, clean_config(13), jobs, scheduler);
  for (const auto& j : result.jobs) {
    EXPECT_EQ(j.clones_launched, 0) << "job " << j.id;
  }
}

TEST(DollyMPFeatures, IdleClusterClonesAtLaunch) {
  // One job, plenty of room: every task gets its full clone complement at
  // launch time (the Section 3 simultaneous-clone model).
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  SimConfig config = clean_config(15);
  config.record_tasks = true;
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 4, {1, 2}, 30.0, 20.0)};
  DollyMPScheduler scheduler;  // budget 2
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  for (const auto& t : result.tasks) {
    EXPECT_EQ(t.copies, 3) << "task should run original + 2 clones";
  }
}

TEST(DollyMPFeatures, RecomputeOnCompletionKnob) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 5, {1, 2}, 30.0, 15.0, i * 20.0));
  }
  DollyMPConfig dc;
  dc.recompute_on_completion = true;
  DollyMPScheduler scheduler(dc);
  const SimResult result = simulate(cluster, clean_config(17, 5.0), jobs, scheduler);
  EXPECT_EQ(result.jobs.size(), 8u);
}

TEST(DollyMPFeatures, StragglerAwareWorksWithLocality) {
  Cluster cluster = Cluster::uniform(8, {8, 16});
  SimConfig config = clean_config(19, 5.0);
  config.locality.enabled = true;
  DollyMPConfig dc;
  dc.straggler_aware = true;
  DollyMPScheduler scheduler(dc);
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 2}, 30.0, 20.0, i * 15.0));
  }
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  EXPECT_EQ(result.jobs.size(), 10u);
  EXPECT_NE(scheduler.scorer(), nullptr);
}

}  // namespace
}  // namespace dollymp
