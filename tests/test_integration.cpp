// End-to-end integration: full workloads through the whole stack, plus the
// metrics/report layer.
#include <gtest/gtest.h>

#include "dollymp/metrics/report.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

std::vector<JobSpec> small_mixed_suite(int count, double gap, std::uint64_t seed) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    if (i % 2 == 0) {
      jobs.push_back(make_wordcount(i, 1.0 + (i % 3)));
    } else {
      jobs.push_back(make_pagerank(i, 0.5 + 0.25 * (i % 4), 2));
    }
  }
  assign_jittered_arrivals(jobs, gap, 0.2, seed);
  return jobs;
}

SimConfig standard_config(std::uint64_t seed) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  return config;
}

TEST(Integration, HeavyLoadDollyMPBeatsCapacityOnFlowtime) {
  // The paper's headline: under heavy load DollyMP cuts total flowtime
  // dramatically versus the Capacity scheduler (Fig. 7 reports ~50%).
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(40, 10.0, 7);

  CapacityScheduler capacity;
  DollyMPScheduler dollymp{DollyMPConfig{2}};
  const SimResult cap = simulate(cluster, standard_config(7), jobs, capacity);
  const SimResult dmp = simulate(cluster, standard_config(7), jobs, dollymp);
  EXPECT_LT(dmp.total_flowtime(), cap.total_flowtime())
      << "DollyMP must beat FIFO-style Capacity under load";
}

TEST(Integration, LightLoadAllSchedulersClose) {
  // With ~idle cluster (huge gaps) scheduling policy barely matters; the
  // flowtime difference between policies should be small.
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(8, 600.0, 9);
  CapacityScheduler capacity;
  DollyMPScheduler d0{DollyMPConfig{0}};
  const SimResult cap = simulate(cluster, standard_config(9), jobs, capacity);
  const SimResult dmp = simulate(cluster, standard_config(9), jobs, d0);
  EXPECT_NEAR(dmp.total_flowtime() / cap.total_flowtime(), 1.0, 0.35);
}

TEST(Integration, SummaryFieldsConsistent) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(12, 30.0, 3);
  DollyMPScheduler dollymp;
  const SimResult result = simulate(cluster, standard_config(3), jobs, dollymp);
  const RunSummary s = summarize(result);
  EXPECT_EQ(s.scheduler, "dollymp^2");
  EXPECT_EQ(s.jobs, jobs.size());
  EXPECT_NEAR(s.total_flowtime, result.total_flowtime(), 1e-9);
  EXPECT_NEAR(s.mean_flowtime * static_cast<double>(s.jobs), s.total_flowtime, 1e-6);
  EXPECT_GE(s.p95_flowtime, s.mean_flowtime * 0.1);
  EXPECT_GT(s.makespan, 0.0);
}

TEST(Integration, CdfHelpers) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(10, 30.0, 5);
  TetrisScheduler tetris;
  const SimResult result = simulate(cluster, standard_config(5), jobs, tetris);
  const Cdf flow = flowtime_cdf(result);
  const Cdf run = running_time_cdf(result);
  EXPECT_EQ(flow.count(), jobs.size());
  EXPECT_EQ(run.count(), jobs.size());
  // Flowtime dominates running time distributionally.
  EXPECT_GE(flow.mean(), run.mean());
  EXPECT_GE(flow.quantile(0.9), run.quantile(0.9));
}

TEST(Integration, CumulativeFlowtimeSeriesIsMonotone) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(15, 20.0, 11);
  DollyMPScheduler dollymp;
  const SimResult result = simulate(cluster, standard_config(11), jobs, dollymp);
  const auto series = cumulative_flowtime_series(result);
  ASSERT_EQ(series.size(), jobs.size());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
    EXPECT_GE(series[i].first, series[i - 1].first);
  }
  EXPECT_NEAR(series.back().second, result.total_flowtime(), 1e-6);
}

TEST(Integration, PairedRatiosMatchManualComputation) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(10, 15.0, 13);
  DollyMPScheduler d2{DollyMPConfig{2}};
  DollyMPScheduler d0{DollyMPConfig{0}};
  const SimResult a = simulate(cluster, standard_config(13), jobs, d2);
  const SimResult b = simulate(cluster, standard_config(13), jobs, d0);
  const PairedRatios ratios = paired_ratios(a, b);
  EXPECT_EQ(ratios.flowtime_ratio.count(), jobs.size());
  // Manual check for one job.
  const double expected = a.job(0).flowtime() / b.job(0).flowtime();
  EXPECT_GT(ratios.flowtime_ratio.fraction_at_most(expected), 0.0);
  // Reduction fraction is a proper CDF read-out.
  const double frac = ratios.fraction_flowtime_reduced_by(0.0);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(Integration, PairedRatiosRejectDifferentJobSets) {
  const Cluster cluster = Cluster::paper30();
  auto jobs_a = small_mixed_suite(4, 30.0, 1);
  auto jobs_b = small_mixed_suite(4, 30.0, 1);
  jobs_b[2].id = 999;
  DollyMPScheduler d;
  const SimResult a = simulate(cluster, standard_config(1), jobs_a, d);
  const SimResult b = simulate(cluster, standard_config(1), jobs_b, d);
  EXPECT_THROW((void)paired_ratios(a, b), std::invalid_argument);
}

TEST(Integration, RenderHelpersProduceText) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = small_mixed_suite(6, 60.0, 17);
  DollyMPScheduler d;
  const SimResult result = simulate(cluster, standard_config(17), jobs, d);
  const std::string table = render_summaries({summarize(result)});
  EXPECT_NE(table.find("dollymp^2"), std::string::npos);
  EXPECT_NE(table.find("total_flow_s"), std::string::npos);
  const std::string rows = render_cdf_rows("flow", flowtime_cdf(result));
  EXPECT_NE(rows.find("p50"), std::string::npos);
  EXPECT_NE(rows.find("p100"), std::string::npos);
}

TEST(Integration, MeanFlowtimeReduction) {
  SimResult a;
  a.jobs.push_back({0, "", "", 0.0, 0.0, 50.0, 1, 0, 0, 0, 0.0});
  SimResult b;
  b.jobs.push_back({0, "", "", 0.0, 0.0, 100.0, 1, 0, 0, 0, 0.0});
  EXPECT_DOUBLE_EQ(mean_flowtime_reduction(a, b), 0.5);
  EXPECT_DOUBLE_EQ(mean_flowtime_reduction(b, b), 0.0);
}

TEST(Integration, TraceModelWorkloadRunsEndToEnd) {
  TraceModelConfig tm;
  tm.max_tasks_per_phase = 40;
  tm.cpu_max = 8.0;
  tm.mem_max = 16.0;
  TraceModel model(tm, 31);
  auto jobs = model.sample_jobs(30);
  assign_poisson_arrivals(jobs, 25.0, 32);

  const Cluster cluster = Cluster::google_like(40);
  DollyMPScheduler dollymp;
  const SimResult result = simulate(cluster, standard_config(31), jobs, dollymp);
  EXPECT_EQ(result.jobs.size(), 30u);
  EXPECT_GT(result.cloned_task_fraction(), 0.0)
      << "an underloaded cluster must leave room for clones";
}

}  // namespace
}  // namespace dollymp
