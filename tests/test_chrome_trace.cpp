// Schema checks for the Chrome trace event exporter.  A minimal
// recursive-descent JSON parser (values only, no references) validates the
// output structurally, then the tests assert the trace-event contract:
// metadata names the lanes, X spans carry ts/dur/pid/tid, instants sit on
// the scheduler process, stragglers and clones are flagged by category.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dollymp/obs/chrome_trace.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

// ---- tiny JSON model + parser ---------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    return object.at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object[key.string] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'n': v.string += '\n'; break;
          case 't': v.string += '\t'; break;
          case 'r': v.string += '\r'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            pos_ += 4;       // schema tests never inspect non-ASCII payloads
            v.string += '?';
            break;
          default: throw std::runtime_error("unknown escape");
        }
        continue;
      }
      v.string += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---- fixtures --------------------------------------------------------------

std::vector<TraceRecord> recorded_run(unsigned seed = 3) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 15.0, seed + 100);
  const Cluster cluster = Cluster::google_like(20);
  SimConfig config;
  config.seed = seed;
  Recorder recorder;
  config.recorder = &recorder;
  DollyMPScheduler scheduler;
  (void)simulate(cluster, config, jobs, scheduler);
  return recorder.snapshot();
}

JsonValue parse_trace(const std::vector<TraceRecord>& records,
                      ChromeTraceOptions options = {}) {
  const std::string json = chrome_trace_json(records, options);
  return JsonParser(json).parse();
}

TEST(ChromeTrace, EmitsParsableTraceEventObject) {
  const JsonValue root = parse_trace(recorded_run());
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  EXPECT_TRUE(root.has("displayTimeUnit"));
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  EXPECT_GT(events.array.size(), 10u);
  for (const auto& ev : events.array) {
    ASSERT_EQ(ev.kind, JsonValue::Kind::kObject);
    ASSERT_TRUE(ev.has("ph"));
    ASSERT_TRUE(ev.has("pid"));
    const std::string ph = ev.at("ph").string;
    EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i") << "unknown phase " << ph;
    if (ph == "X") {
      EXPECT_TRUE(ev.has("name"));
      EXPECT_TRUE(ev.has("ts"));
      EXPECT_TRUE(ev.has("dur"));
      EXPECT_TRUE(ev.has("tid"));
      EXPECT_TRUE(ev.has("cat"));
      EXPECT_EQ(ev.at("pid").number, 0.0);  // spans live on the cluster process
    } else if (ph == "i") {
      EXPECT_TRUE(ev.has("ts"));
      EXPECT_TRUE(ev.has("s"));
    }
  }
}

TEST(ChromeTrace, MetadataNamesProcessesAndServerLanes) {
  const JsonValue root = parse_trace(recorded_run());
  bool saw_cluster = false;
  bool saw_scheduler = false;
  int server_lanes = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string != "M") continue;
    const std::string name = ev.at("name").string;
    if (name == "process_name") {
      const std::string pname = ev.at("args").at("name").string;
      if (ev.at("pid").number == 0.0 && pname == "cluster") saw_cluster = true;
      if (ev.at("pid").number == 1.0 && pname == "scheduler") saw_scheduler = true;
    } else if (name == "thread_name" && ev.at("pid").number == 0.0) {
      EXPECT_EQ(ev.at("args").at("name").string.rfind("server ", 0), 0u);
      ++server_lanes;
    }
  }
  EXPECT_TRUE(saw_cluster);
  EXPECT_TRUE(saw_scheduler);
  EXPECT_GT(server_lanes, 0);
}

TEST(ChromeTrace, SpansUseSlotSecondsAndLandOnTheirServerLane) {
  const auto records = recorded_run();
  ChromeTraceOptions options;
  options.slot_seconds = 2.0;
  const JsonValue root = parse_trace(records, options);

  int spans = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string != "X") continue;
    ++spans;
    // ts is µs; with slot_seconds=2 every slot boundary is a multiple of 2e6.
    const double ts = ev.at("ts").number;
    EXPECT_EQ(ts, 2.0e6 * std::floor(ts / 2.0e6 + 0.5)) << "ts off slot grid";
    EXPECT_GE(ev.at("dur").number, 0.0);
    const JsonValue& args = ev.at("args");
    ASSERT_TRUE(args.has("job"));
    ASSERT_TRUE(args.has("outcome"));
    const std::string outcome = args.at("outcome").string;
    EXPECT_TRUE(outcome == "finished" || outcome == "killed" ||
                outcome == "unterminated");
    // The lane (tid) is the server the copy-placed record named.
    EXPECT_GE(ev.at("tid").number, 0.0);
  }
  EXPECT_GT(spans, 0);
}

TEST(ChromeTrace, SchedulerInstantsSitOnProcessOne) {
  const JsonValue root = parse_trace(recorded_run());
  int scheduler_instants = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string != "i") continue;
    if (ev.at("pid").number == 1.0 &&
        ev.at("name").string == "scheduler-invoked") {
      ++scheduler_instants;
    }
  }
  EXPECT_GT(scheduler_instants, 0);
}

TEST(ChromeTrace, StragglerCategoryFlagsOutlierSpans) {
  // Hand-build a stream: four same-phase tasks, three finish in 2 slots, one
  // takes 20 — far beyond 1.5x the median, so it must carry the straggler cat.
  std::vector<TraceRecord> records;
  std::uint64_t seq = 0;
  const auto place = [&](int task, SimTime at) {
    TraceRecord r;
    r.seq = seq++;
    r.slot = at;
    r.type = TraceEv::kCopyPlaced;
    r.job = 0;
    r.phase = 0;
    r.task = task;
    r.copy = 0;
    r.server = task;
    records.push_back(r);
  };
  const auto finish = [&](int task, SimTime at) {
    TraceRecord r;
    r.seq = seq++;
    r.slot = at;
    r.type = TraceEv::kCopyFinished;
    r.job = 0;
    r.phase = 0;
    r.task = task;
    r.copy = 0;
    r.server = task;
    records.push_back(r);
  };
  for (int t = 0; t < 4; ++t) place(t, 0);
  for (int t = 0; t < 3; ++t) finish(t, 2);
  finish(3, 20);

  const JsonValue root = parse_trace(records);
  int stragglers = 0;
  int normal = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string != "X") continue;
    const std::string cat = ev.at("cat").string;
    if (cat.find("straggler") != std::string::npos) {
      ++stragglers;
      EXPECT_EQ(ev.at("args").at("task").number, 3.0);
      EXPECT_EQ(ev.at("args").at("straggler").boolean, true);
    } else {
      ++normal;
    }
  }
  EXPECT_EQ(stragglers, 1);
  EXPECT_EQ(normal, 3);
}

TEST(ChromeTrace, TolerantOfRingTruncatedStreams) {
  // Drop the front half of a real stream (simulating ring eviction): the
  // exporter must still produce valid JSON and simply skip orphaned ends.
  auto records = recorded_run();
  ASSERT_GT(records.size(), 40u);
  records.erase(records.begin(),
                records.begin() + static_cast<std::ptrdiff_t>(records.size() / 2));
  const JsonValue root = parse_trace(records);
  EXPECT_EQ(root.at("traceEvents").kind, JsonValue::Kind::kArray);
  EXPECT_GT(root.at("traceEvents").array.size(), 0u);
}

TEST(ChromeTrace, EmptyStreamStillValid) {
  const JsonValue root = parse_trace({});
  ASSERT_TRUE(root.has("traceEvents"));
  // Only process metadata, no spans or instants.
  for (const auto& ev : root.at("traceEvents").array) {
    EXPECT_EQ(ev.at("ph").string, "M");
  }
}

}  // namespace
}  // namespace dollymp
