// Online straggler-aware server scoring (learn/server_scorer.h) and its
// integration into DollyMP (the paper's Section 8 future work).
#include <gtest/gtest.h>

#include "dollymp/learn/server_scorer.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

TEST(ServerScorer, ColdServersAreNeutral) {
  const ServerScorer scorer(4);
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_NEAR(scorer.estimated_slowdown(s), 1.0, 1e-9);
    EXPECT_EQ(scorer.samples(s), 0u);
    EXPECT_NEAR(scorer.placement_weight(s), 1.0, 1e-9);
  }
}

TEST(ServerScorer, ConvergesToTrueSlowdown) {
  ServerScorer scorer(2);
  for (int i = 0; i < 100; ++i) {
    scorer.observe(0, 10.0, 30.0);  // consistently 3x slow
    scorer.observe(1, 10.0, 10.0);  // nominal
  }
  EXPECT_NEAR(scorer.estimated_slowdown(0), 3.0, 0.1);
  EXPECT_NEAR(scorer.estimated_slowdown(1), 1.0, 0.05);
  EXPECT_GT(scorer.placement_weight(1), scorer.placement_weight(0));
}

TEST(ServerScorer, ForgetsOldContention) {
  ServerScorer scorer(1);
  for (int i = 0; i < 50; ++i) scorer.observe(0, 10.0, 40.0);
  const double contended = scorer.estimated_slowdown(0);
  EXPECT_GT(contended, 2.5);
  // Contention passes; the EWMA must recover.
  for (int i = 0; i < 50; ++i) scorer.observe(0, 10.0, 10.0);
  EXPECT_LT(scorer.estimated_slowdown(0), 1.2);
}

TEST(ServerScorer, PriorDampensFirstSamples) {
  ServerScorer scorer(1);
  scorer.observe(0, 10.0, 80.0);  // one 8x outlier
  // One sample against a pseudo-weight of 3 must not swing the estimate
  // anywhere near 8.
  EXPECT_LT(scorer.estimated_slowdown(0), 3.5);
  EXPECT_EQ(scorer.samples(0), 1u);
}

TEST(ServerScorer, ClampsAndIgnoresJunk) {
  ServerScorer scorer(1);
  scorer.observe(0, 10.0, 1e9);  // absurd ratio clamps at max_slowdown
  EXPECT_LE(scorer.estimated_slowdown(0), 16.0);
  const double before = scorer.estimated_slowdown(0);
  scorer.observe(0, 0.0, 10.0);   // ignored
  scorer.observe(0, 10.0, -1.0);  // ignored
  EXPECT_DOUBLE_EQ(scorer.estimated_slowdown(0), before);
  EXPECT_EQ(scorer.samples(0), 1u);
}

TEST(ServerScorer, BoundsChecking) {
  ServerScorer scorer(2);
  EXPECT_THROW(scorer.observe(2, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(scorer.observe(-1, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW((void)scorer.estimated_slowdown(5), std::out_of_range);
  EXPECT_THROW((void)scorer.samples(5), std::out_of_range);
}

TEST(ServerScorer, ConfigValidation) {
  ServerScorerConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(ServerScorer(1, bad), std::invalid_argument);
  ServerScorerConfig bad2;
  bad2.max_slowdown = 0.5;
  EXPECT_THROW(ServerScorer(1, bad2), std::invalid_argument);
}

TEST(ServerScorer, ResetClearsState) {
  ServerScorer scorer(1);
  for (int i = 0; i < 20; ++i) scorer.observe(0, 10.0, 50.0);
  scorer.reset();
  EXPECT_NEAR(scorer.estimated_slowdown(0), 1.0, 1e-9);
  EXPECT_EQ(scorer.samples(0), 0u);
}

// ---- integration: DollyMP learns to avoid a chronically slow server -------

Cluster cluster_with_lemon() {
  // One "lemon" running at 1/5 speed, listed first so blind best-fit
  // placement regularly lands work on it, plus three healthy servers.
  Cluster cluster;
  cluster.add_server(ServerSpec{{8, 16}, 0.2, 0, "lemon"});
  cluster.add_server(ServerSpec{{8, 16}, 1.0, 0, "good"});
  cluster.add_server(ServerSpec{{8, 16}, 1.0, 0, "good"});
  cluster.add_server(ServerSpec{{8, 16}, 1.0, 0, "good"});
  return cluster;
}

std::vector<JobSpec> steady_stream(int count) {
  // 10 tasks per job: enough that every server (including the lemon)
  // receives work under blind placement.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 10, {2, 4}, 30.0, 10.0, i * 20.0));
  }
  return jobs;
}

SimConfig lemon_config(std::uint64_t seed) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

TEST(StragglerAware, LearnsTheLemonServer) {
  const Cluster cluster = cluster_with_lemon();
  DollyMPConfig dc;
  dc.straggler_aware = true;
  DollyMPScheduler scheduler(dc);
  const SimResult result = simulate(cluster, lemon_config(3), steady_stream(40), scheduler);
  (void)result;
  ASSERT_NE(scheduler.scorer(), nullptr);
  const ServerScorer& scorer = *scheduler.scorer();
  // The lemon (server 0) must have a clearly higher slowdown estimate than
  // every healthy server.
  ASSERT_GT(scorer.samples(0), 0u) << "the lemon must have received some work";
  for (ServerId s = 1; s < 4; ++s) {
    EXPECT_GT(scorer.estimated_slowdown(0), scorer.estimated_slowdown(s) * 1.5)
        << "server " << s;
  }
}

TEST(StragglerAware, ImprovesFlowtimeWithLemonServer) {
  const Cluster cluster = cluster_with_lemon();
  double aware_total = 0.0;
  double blind_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    DollyMPConfig aware_cfg;
    aware_cfg.straggler_aware = true;
    DollyMPScheduler aware(aware_cfg);
    DollyMPScheduler blind;
    const auto jobs = steady_stream(40);
    aware_total += simulate(cluster, lemon_config(seed), jobs, aware).total_flowtime();
    blind_total += simulate(cluster, lemon_config(seed), jobs, blind).total_flowtime();
  }
  EXPECT_LT(aware_total, blind_total)
      << "learned placement must beat blind placement with a lemon server";
}

TEST(StragglerAware, ScorerAbsentWhenDisabled) {
  const Cluster cluster = cluster_with_lemon();
  DollyMPScheduler scheduler;  // default: straggler_aware = false
  (void)simulate(cluster, lemon_config(1), steady_stream(5), scheduler);
  EXPECT_EQ(scheduler.scorer(), nullptr);
}

}  // namespace
}  // namespace dollymp
