// Differential/invariant harness for gang scheduling (PhaseSpec::gang).
//
// A gang phase models a synchronous data-parallel training step: a partial
// world cannot make progress through an all-reduce, so placement is
// all-or-nothing — one probe wave either commits every pending task
// atomically or rolls back every tentative allocation.  The suites below
// lock that down from the outside:
//
//   * the flight-recorder stream shows no partial gang: in a healthy run
//     every gang phase's first copies land in the SAME slot, as one wave;
//   * rollbacks leak nothing — contended runs with observed kGangRollback
//     records still drain with zero leaked CPU/GPU/memory and exact
//     wave-size accounting;
//   * completion conservation holds across the fault matrix (crash, rack,
//     fail-slow): every job finishes and nothing stays allocated;
//   * the deterministic parallel core reproduces the gang stream bit for
//     bit (threads 1 vs 8 stream-hash equality);
//   * a pinned golden hash freezes the gpu scenario's decision stream, the
//     gang counterpart of the 36-entry layout golden matrix (regenerate
//     with this test's failure output if an intentional change lands, and
//     say so in the commit);
//   * a gang that could never fit even on an empty cluster is rejected up
//     front (validate_placeable), not deadlocked on.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/experiment.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

constexpr int kWorld = 8;
constexpr int kSteps = 3;

MlTrainConfig train_config() {
  MlTrainConfig config;
  config.world_size = kWorld;
  config.steps = kSteps;
  return config;
}

/// Analytics stream + gang trainers on the gpu-pod inventory.  Trainer job
/// ids start at `analytics` so tests can tell the populations apart.
std::vector<JobSpec> gpu_workload(int analytics, int trainers, std::uint64_t seed) {
  TraceModel model({}, seed);
  std::vector<JobSpec> jobs = model.sample_jobs(analytics);
  assign_poisson_arrivals(jobs, 15.0, seed + 1);
  for (int k = 0; k < trainers; ++k) {
    jobs.push_back(make_mltrain(analytics + k, 10.0 * k, train_config()));
  }
  return jobs;
}

SimConfig gpu_config(std::uint64_t seed) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.resource_dims = 3;
  return config;
}

struct RunOutput {
  SimResult result;
  std::vector<TraceRecord> records;
  std::uint64_t hash = 0;
};

RunOutput run_recorded(const Cluster& cluster, SimConfig config,
                       const std::vector<JobSpec>& jobs, Scheduler& scheduler) {
  Recorder rec;
  config.recorder = &rec;
  RunOutput out;
  out.result = simulate(cluster, config, jobs, scheduler);
  out.records = rec.snapshot();
  out.hash = rec.hash();
  return out;
}

void expect_all_jobs_complete(const SimResult& result, std::size_t expected) {
  ASSERT_EQ(result.jobs.size(), expected);
  for (const JobRecord& job : result.jobs) {
    EXPECT_GE(job.finish_seconds, job.arrival_seconds)
        << "job " << job.id << " never finished";
  }
}

void expect_no_leaks(const SimStats& stats) {
  EXPECT_EQ(stats.leaked_cpu, 0.0);
  EXPECT_EQ(stats.leaked_mem, 0.0);
  EXPECT_EQ(stats.leaked_active_copies, 0);
}

/// For every gang phase of the trainer jobs, its first-copy placements in
/// the stream must form complete single-slot waves: `world` distinct tasks,
/// all placed at one slot per wave.  `healthy` additionally pins exactly
/// one wave per phase.
void expect_atomic_waves(const std::vector<TraceRecord>& records, int first_trainer,
                         int trainers, bool healthy) {
  // (job, phase) -> slot -> tasks placed at that slot.
  std::map<std::pair<JobId, PhaseIndex>, std::map<SimTime, std::set<std::int32_t>>> waves;
  for (const TraceRecord& r : records) {
    if (r.type != TraceEv::kCopyPlaced) continue;
    if (r.job < first_trainer || r.job >= first_trainer + trainers) continue;
    if (r.phase == 0) continue;  // the CPU-only setup phase is not a gang
    waves[{r.job, r.phase}][r.slot].insert(r.task);
  }
  ASSERT_EQ(waves.size(), static_cast<std::size_t>(trainers) * kSteps)
      << "every gang phase must be placed at least once";
  for (const auto& [key, by_slot] : waves) {
    if (healthy) {
      ASSERT_EQ(by_slot.size(), 1u)
          << "job " << key.first << " phase " << key.second
          << ": a healthy gang phase is placed in exactly one wave";
    }
    std::set<std::int32_t> all_tasks;
    for (const auto& [slot, tasks] : by_slot) {
      // No partial gang: in a healthy run each wave is disjoint from the
      // previous ones and covers the full world at once.  Under faults a
      // killed task legitimately reappears in a later re-execution wave.
      for (std::int32_t t : tasks) {
        const bool fresh = all_tasks.insert(t).second;
        if (healthy) {
          EXPECT_TRUE(fresh) << "task replaced without a fault";
        }
      }
      EXPECT_LE(tasks.size(), static_cast<std::size_t>(kWorld));
      if (healthy) {
        EXPECT_EQ(tasks.size(), static_cast<std::size_t>(kWorld))
            << "job " << key.first << " phase " << key.second << " slot " << slot
            << ": partial gang in the trace stream";
      }
    }
    EXPECT_EQ(all_tasks.size(), static_cast<std::size_t>(kWorld))
        << "job " << key.first << " phase " << key.second;
  }
}

TEST(GangPlacement, AllOrNothingInTraceStream) {
  const Cluster cluster = Cluster::gpu_pods(32);
  const auto jobs = gpu_workload(10, 3, 42);
  for (const char* policy : {"dollymp2", "capacity", "drf"}) {
    std::unique_ptr<Scheduler> sched;
    if (std::string(policy) == "capacity") sched = std::make_unique<CapacityScheduler>();
    else if (std::string(policy) == "drf") sched = std::make_unique<DrfScheduler>();
    else sched = std::make_unique<DollyMPScheduler>(DollyMPConfig{});
    const RunOutput run = run_recorded(cluster, gpu_config(7), jobs, *sched);
    SCOPED_TRACE(policy);
    expect_all_jobs_complete(run.result, jobs.size());
    expect_no_leaks(run.result.stats);
    expect_atomic_waves(run.records, 10, 3, /*healthy=*/true);
    // Wave accounting: healthy runs commit full worlds only.
    EXPECT_EQ(run.result.stats.gangs_placed,
              static_cast<long long>(3) * kSteps);
    EXPECT_EQ(run.result.stats.gang_tasks_placed,
              run.result.stats.gangs_placed * kWorld);
  }
}

TEST(GangPlacement, RollbackReleasesEveryTentativeAllocation) {
  // Two 8-GPU nodes and six trainers racing for them: probe waves must
  // fail and roll back, and the run must still drain leak-free with exact
  // accounting.  Cloning (dollymp2) keeps partial-GPU states in play so
  // rollbacks happen mid-probe, exercising the reverse-release path.
  const Cluster cluster = Cluster::gpu_pods(8);
  std::vector<JobSpec> jobs;
  for (int k = 0; k < 6; ++k) {
    jobs.push_back(make_mltrain(k, 0.0, train_config()));
  }
  DollyMPScheduler sched{DollyMPConfig{}};
  const RunOutput run = run_recorded(cluster, gpu_config(3), jobs, sched);

  EXPECT_GT(run.result.stats.gang_rollbacks, 0) << "scenario must contend";
  long long rollback_records = 0;
  for (const TraceRecord& r : run.records) {
    if (r.type == TraceEv::kGangRollback) ++rollback_records;
  }
  EXPECT_EQ(rollback_records, run.result.stats.gang_rollbacks);

  expect_all_jobs_complete(run.result, jobs.size());
  expect_no_leaks(run.result.stats);
  expect_atomic_waves(run.records, 0, 6, /*healthy=*/true);
  EXPECT_EQ(run.result.stats.gang_tasks_placed,
            run.result.stats.gangs_placed * kWorld);
}

TEST(GangPlacement, CompletionConservationUnderFaultMatrix) {
  const Cluster cluster = Cluster::gpu_pods(32);
  const auto jobs = gpu_workload(6, 2, 13);
  for (const char* preset : {"crash", "rack", "failslow"}) {
    const SweepFaultPreset faults = make_fault_preset(preset);
    SimConfig config = gpu_config(11);
    config.failures = faults.failures;
    config.faults = faults.faults;
    DollyMPScheduler sched{DollyMPConfig{}};
    const RunOutput run = run_recorded(cluster, config, jobs, sched);
    SCOPED_TRACE(preset);
    expect_all_jobs_complete(run.result, jobs.size());
    expect_no_leaks(run.result.stats);
    // Faults may force re-execution waves (smaller than the world), but
    // never a wave that exceeds it, and at least one full wave per phase
    // happened.
    EXPECT_GE(run.result.stats.gangs_placed, static_cast<long long>(2) * kSteps);
    EXPECT_LE(run.result.stats.gang_tasks_placed,
              run.result.stats.gangs_placed * kWorld);
    expect_atomic_waves(run.records, 6, 2, /*healthy=*/false);
  }
}

TEST(GangDeterminism, StreamHashIdenticalAcrossThreadCounts) {
  const Cluster cluster = Cluster::gpu_pods(32);
  const auto jobs = gpu_workload(10, 3, 42);
  std::uint64_t reference_hash = 0;
  std::uint64_t reference_records = 0;
  for (const int threads : {1, 8}) {
    SimConfig config = gpu_config(7);
    config.threads = threads;
    DollyMPScheduler sched{DollyMPConfig{}};
    Recorder rec;
    config.recorder = &rec;
    (void)simulate(cluster, config, jobs, sched);
    if (threads == 1) {
      reference_hash = rec.hash();
      reference_records = rec.records_written();
      continue;
    }
    EXPECT_EQ(rec.hash(), reference_hash)
        << "threads=" << threads << " diverged from the sequential gang stream";
    EXPECT_EQ(rec.records_written(), reference_records);
  }
}

// Golden stream hash for the gpu scenario — the gang counterpart of the
// 36-entry matrix in test_layout_equivalence.cpp.  Generated by this exact
// configuration; if an INTENTIONAL scheduling change lands, rerun the test,
// take the new value from the failure message, and say so in the commit.
constexpr std::uint64_t kGpuGoldenHash = 0x9ec92696d9f1919bULL;
constexpr std::uint64_t kGpuGoldenRecords = 3003ULL;

TEST(GangDeterminism, GpuScenarioGoldenPinned) {
  const Cluster cluster = Cluster::gpu_pods(32);
  const auto jobs = gpu_workload(10, 3, 42);
  DollyMPScheduler sched{DollyMPConfig{}};
  const RunOutput run = run_recorded(cluster, gpu_config(7), jobs, sched);
  EXPECT_EQ(run.hash, kGpuGoldenHash)
      << "gpu scenario stream hash changed: 0x" << std::hex << run.hash;
  EXPECT_EQ(run.records.size(), kGpuGoldenRecords)
      << "gpu scenario record count changed: " << std::dec << run.records.size();
}

TEST(GangValidation, ImpossibleGangRejectedUpFront) {
  // 8 ranks wanting a GPU each on a GPU-less inventory: the collective-fit
  // check must reject the workload before the run, not stall forever.
  const Cluster cluster = Cluster::uniform(16, {16.0, 64.0});
  std::vector<JobSpec> jobs = {make_mltrain(0, 0.0, train_config())};
  DollyMPScheduler sched{DollyMPConfig{}};
  SimConfig config = gpu_config(1);
  EXPECT_THROW((void)simulate(cluster, config, jobs, sched), std::invalid_argument);
}

TEST(GangValidation, SpreadPenaltySlowsSplitGangs) {
  // Same trainer, two inventories: one where the whole gang fits a single
  // 8-GPU node (penalty 1.0) and one of single-GPU machines where every
  // wave must span servers and racks.  With gang_spread_penalty > 0 the
  // split run's trainer takes strictly longer.
  std::vector<JobSpec> jobs = {make_mltrain(0, 0.0, train_config())};

  SimConfig config = gpu_config(5);
  config.gang_spread_penalty = 0.3;

  const Cluster pod = Cluster::gpu_pods(8);
  DollyMPScheduler sched_pod{DollyMPConfig{}};
  const SimResult on_pod = simulate(pod, config, jobs, sched_pod);

  Cluster scattered;
  for (int i = 0; i < 16; ++i) {
    scattered.add_server(ServerSpec{{8.0, 32.0, 1.0}, 1.2, i / 2, "gpu-1x"});
  }
  DollyMPScheduler sched_scattered{DollyMPConfig{}};
  const SimResult split = simulate(scattered, config, jobs, sched_scattered);

  EXPECT_EQ(on_pod.stats.gangs_split_across_racks, 0);
  EXPECT_GT(split.stats.gangs_split_across_racks, 0);
  EXPECT_GT(split.job(0).finish_seconds, on_pod.job(0).finish_seconds);
}

}  // namespace
}  // namespace dollymp
