// Accounting precision under failures: re-executions are not clones, the
// unscheduled-task counters stay exact, and clone statistics remain
// meaningful under churn.
#include <gtest/gtest.h>

#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "acct-fifo"; }
  void schedule(SchedulerContext& ctx) override {
    for (JobRuntime* job : ctx.active_jobs()) place_job_greedy(ctx, *job);
  }
};

TEST(FailureAccounting, ReexecutionsAreNotClones) {
  // FIFO never clones; with failures on, every extra copy is a
  // re-execution and the clone counters must stay at zero.
  const Cluster cluster = Cluster::uniform(4, {8, 16});
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 3;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 200.0;
  config.failures.mean_repair_seconds = 60.0;
  config.record_events = true;

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {2, 4}, 60.0, 0.0, i * 20.0));
  }
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, config, jobs, fifo);

  long long failures = 0;
  long long kills = 0;
  for (const auto& e : result.events) {
    failures += e.kind == SimEventKind::kServerFailed ? 1 : 0;
    kills += e.kind == SimEventKind::kCopyKilled ? 1 : 0;
  }
  ASSERT_GT(failures, 0) << "test needs at least one crash to be meaningful";
  ASSERT_GT(kills, 0);
  for (const auto& j : result.jobs) {
    EXPECT_EQ(j.clones_launched, 0) << "job " << j.id;
    EXPECT_EQ(j.tasks_with_clones, 0) << "job " << j.id;
  }
  // Re-executions made total copies exceed the task count.
  EXPECT_GT(result.total_copies_launched, result.total_tasks_completed);
}

TEST(FailureAccounting, ReexecutionAppearsAsCopyPlacedEvent) {
  const Cluster cluster = Cluster::uniform(3, {8, 16});
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 7;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 150.0;
  config.failures.mean_repair_seconds = 50.0;
  config.record_events = true;

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 15; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {2, 4}, 80.0, 0.0, i * 25.0));
  }
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, config, jobs, fifo);
  long long placed = 0;
  long long clone_events = 0;
  for (const auto& e : result.events) {
    placed += e.kind == SimEventKind::kCopyPlaced ? 1 : 0;
    clone_events += e.kind == SimEventKind::kClonePlaced ? 1 : 0;
  }
  EXPECT_EQ(clone_events, 0) << "FIFO re-executions must be plain placements";
  EXPECT_EQ(placed, result.total_copies_launched);
}

TEST(FailureAccounting, ClonesStillCountedWithFailures) {
  // DollyMP with clones AND failures: tasks_with_clones counts exactly the
  // tasks that at some point had a redundant sibling.
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 9;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 500.0;
  config.failures.mean_repair_seconds = 100.0;

  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 4, {1, 2}, 40.0, 30.0, i * 40.0));
  }
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  long long with_clones = 0;
  long long clones = 0;
  for (const auto& j : result.jobs) {
    with_clones += j.tasks_with_clones;
    clones += j.clones_launched;
    EXPECT_LE(j.tasks_with_clones, j.total_tasks);
  }
  EXPECT_GT(clones, 0);
  EXPECT_GT(with_clones, 0);
  EXPECT_LE(with_clones, clones) << "each cloned task launched >= 1 clone";
}

}  // namespace
}  // namespace dollymp
