// Property-style invariant sweeps: every scheduler, several seeds and both
// execution models must preserve the simulator's global invariants.
#include <gtest/gtest.h>

#include <memory>

#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

std::unique_ptr<Scheduler> make_scheduler(const std::string& kind) {
  if (kind == "capacity") return std::make_unique<CapacityScheduler>();
  if (kind == "drf") return std::make_unique<DrfScheduler>();
  if (kind == "tetris") return std::make_unique<TetrisScheduler>();
  if (kind == "carbyne") return std::make_unique<CarbyneScheduler>();
  if (kind == "srpt") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSrpt, 1.5, 0});
  }
  if (kind == "svf") {
    return std::make_unique<SimplePriorityScheduler>(
        SimplePriorityConfig{SimplePriorityRule::kSvf, 1.5, 0});
  }
  if (kind == "dollymp0") return std::make_unique<DollyMPScheduler>(DollyMPConfig{0});
  if (kind == "dollymp2") return std::make_unique<DollyMPScheduler>(DollyMPConfig{2});
  if (kind == "dollymp2-aware") {
    DollyMPConfig config;
    config.clone_budget = 2;
    config.straggler_aware = true;
    return std::make_unique<DollyMPScheduler>(config);
  }
  if (kind == "hopper") return std::make_unique<HopperScheduler>();
  throw std::invalid_argument("unknown scheduler " + kind);
}

std::vector<JobSpec> mixed_workload(std::uint64_t seed) {
  TraceModelConfig tm;
  tm.small_tasks_median = 4.0;
  tm.large_tasks_median = 20.0;
  tm.max_tasks_per_phase = 60;
  tm.cpu_max = 6.0;
  tm.mem_max = 12.0;
  TraceModel model(tm, seed);
  auto jobs = model.sample_jobs(25);
  jobs.push_back(make_wordcount(100, 2.0));
  jobs.push_back(make_pagerank(101, 1.0, 2));
  assign_jittered_arrivals(jobs, 30.0, 0.3, seed + 1);
  return jobs;
}

struct Case {
  std::string scheduler;
  std::uint64_t seed;
};

class SchedulerInvariantSweep : public testing::TestWithParam<Case> {};

TEST_P(SchedulerInvariantSweep, CompletesAllJobsWithInvariantsIntact) {
  const auto& [kind, seed] = GetParam();
  const Cluster cluster = Cluster::paper30();
  const auto jobs = mixed_workload(seed);

  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.record_utilization = true;
  config.record_tasks = true;

  auto scheduler = make_scheduler(kind);
  const SimResult result = simulate(cluster, config, jobs, *scheduler);

  // Every job completes exactly once.
  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (const auto& j : result.jobs) {
    ASSERT_GE(j.first_start_seconds, j.arrival_seconds) << kind;
    ASSERT_GT(j.finish_seconds, j.arrival_seconds) << kind;
    ASSERT_GE(j.flowtime(), j.running_time()) << kind;
    ASSERT_GE(j.resource_seconds, 0.0) << kind;
    ASSERT_GE(j.clones_launched, 0) << kind;
  }

  // Capacity constraint (Eq. 5) held at every sampled instant.
  ASSERT_FALSE(result.utilization.empty());
  for (const auto& u : result.utilization) {
    ASSERT_LE(u.cpu, 1.0 + 1e-9) << kind;
    ASSERT_LE(u.mem, 1.0 + 1e-9) << kind;
  }

  // Hard per-task copy cap respected.
  for (const auto& t : result.tasks) {
    ASSERT_LE(t.copies, config.max_copies_per_task) << kind;
    ASSERT_GE(t.copies, 1) << kind;
  }

  // Makespan is the last finish.
  double last = 0.0;
  for (const auto& j : result.jobs) last = std::max(last, j.finish_seconds);
  ASSERT_DOUBLE_EQ(result.makespan_seconds, last);
}

TEST_P(SchedulerInvariantSweep, DeterministicAcrossRuns) {
  const auto& [kind, seed] = GetParam();
  const Cluster cluster = Cluster::paper30();
  const auto jobs = mixed_workload(seed);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;

  auto s1 = make_scheduler(kind);
  auto s2 = make_scheduler(kind);
  const SimResult a = simulate(cluster, config, jobs, *s1);
  const SimResult b = simulate(cluster, config, jobs, *s2);
  ASSERT_DOUBLE_EQ(a.total_flowtime(), b.total_flowtime()) << kind;
  ASSERT_DOUBLE_EQ(a.total_resource_seconds(), b.total_resource_seconds()) << kind;
}

std::string case_name(const testing::TestParamInfo<Case>& info) {
  std::string name = info.param.scheduler + "_seed" + std::to_string(info.param.seed);
  for (auto& c : name) {
    if (c == '-') c = '_';  // gtest param names must be alphanumeric
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariantSweep,
    testing::Values(Case{"capacity", 1}, Case{"capacity", 2}, Case{"drf", 1},
                    Case{"drf", 2}, Case{"tetris", 1}, Case{"tetris", 2},
                    Case{"carbyne", 1}, Case{"carbyne", 2}, Case{"srpt", 1},
                    Case{"svf", 1}, Case{"dollymp0", 1}, Case{"dollymp0", 2},
                    Case{"dollymp2", 1}, Case{"dollymp2", 2}, Case{"dollymp2", 3},
                    Case{"dollymp2-aware", 1}, Case{"hopper", 1}, Case{"hopper", 2}),
    case_name);

// Failure churn: the same invariants must survive machine crashes for a
// representative policy subset.
class FailureInvariantSweep : public testing::TestWithParam<Case> {};

TEST_P(FailureInvariantSweep, InvariantsSurviveCrashes) {
  const auto& [kind, seed] = GetParam();
  const Cluster cluster = Cluster::paper30();
  const auto jobs = mixed_workload(seed);

  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.record_utilization = true;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 900.0;
  config.failures.mean_repair_seconds = 150.0;

  auto scheduler = make_scheduler(kind);
  const SimResult result = simulate(cluster, config, jobs, *scheduler);
  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (const auto& u : result.utilization) {
    ASSERT_LE(u.cpu, 1.0 + 1e-9) << kind;
    ASSERT_LE(u.mem, 1.0 + 1e-9) << kind;
  }
}

INSTANTIATE_TEST_SUITE_P(CrashChurn, FailureInvariantSweep,
                         testing::Values(Case{"capacity", 4}, Case{"tetris", 4},
                                         Case{"dollymp2", 4}, Case{"drf", 4},
                                         Case{"carbyne", 4}, Case{"hopper", 4}),
                         case_name);

// Clone budgets: DollyMP^r never launches more than r clones per task.
class CloneBudgetSweep : public testing::TestWithParam<int> {};

TEST_P(CloneBudgetSweep, BudgetRespected) {
  const int budget = GetParam();
  const Cluster cluster = Cluster::paper30();
  auto jobs = mixed_workload(11);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 11;
  config.max_copies_per_task = 4;  // cap above any tested budget
  config.record_tasks = true;

  DollyMPScheduler scheduler{DollyMPConfig{budget}};
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  for (const auto& t : result.tasks) {
    ASSERT_LE(t.copies, 1 + budget);
  }
  if (budget == 0) {
    for (const auto& j : result.jobs) {
      ASSERT_EQ(j.clones_launched, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, CloneBudgetSweep, testing::Values(0, 1, 2, 3));

// Work-based model: same invariants hold with the deterministic mean-field
// execution.
class WorkModelSweep : public testing::TestWithParam<const char*> {};

TEST_P(WorkModelSweep, CompletesUnderWorkModel) {
  const Cluster cluster = Cluster::paper30();
  auto jobs = mixed_workload(5);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 5;
  config.model = ExecutionModel::kWorkBased;
  config.record_utilization = true;

  auto scheduler = make_scheduler(GetParam());
  const SimResult result = simulate(cluster, config, jobs, *scheduler);
  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (const auto& u : result.utilization) {
    ASSERT_LE(u.cpu, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Models, WorkModelSweep,
                         testing::Values("capacity", "tetris", "dollymp2"));

}  // namespace
}  // namespace dollymp
