// Paired-seed equivalence tests for the incremental placement index.
//
// The tentpole contract: with config.use_placement_index flipped and
// nothing else changed, every policy must make bit-identical decisions —
// same job records, same event trace — because the index answers every
// placement query with exactly the server the linear scan would have
// picked (same float score expression, same lowest-id tie-break).  These
// tests mirror the control-plane refactor's paired-polling pattern: run
// the same seed twice, indexed vs linear, and diff everything.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

SimConfig base_config(std::uint64_t seed = 1) {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

void expect_identical_outcomes(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobRecord& ja = a.jobs[i];
    const JobRecord& jb = b.jobs[i];
    EXPECT_EQ(ja.id, jb.id);
    EXPECT_EQ(ja.arrival_seconds, jb.arrival_seconds);
    EXPECT_EQ(ja.first_start_seconds, jb.first_start_seconds) << "job " << ja.id;
    EXPECT_EQ(ja.finish_seconds, jb.finish_seconds) << "job " << ja.id;
    EXPECT_EQ(ja.clones_launched, jb.clones_launched) << "job " << ja.id;
    EXPECT_EQ(ja.speculative_launched, jb.speculative_launched) << "job " << ja.id;
    EXPECT_EQ(ja.tasks_with_clones, jb.tasks_with_clones) << "job " << ja.id;
    EXPECT_EQ(ja.resource_seconds, jb.resource_seconds) << "job " << ja.id;
  }
  EXPECT_EQ(a.total_copies_launched, b.total_copies_launched);
  EXPECT_EQ(a.total_tasks_completed, b.total_tasks_completed);
}

void expect_identical_event_traces(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const SimEventRecord& ea = a.events[i];
    const SimEventRecord& eb = b.events[i];
    EXPECT_EQ(ea.seconds, eb.seconds) << "event " << i;
    EXPECT_EQ(ea.kind, eb.kind) << "event " << i;
    EXPECT_EQ(ea.job, eb.job) << "event " << i;
    EXPECT_EQ(ea.phase, eb.phase) << "event " << i;
    EXPECT_EQ(ea.task, eb.task) << "event " << i;
    EXPECT_EQ(ea.server, eb.server) << "event " << i;
  }
}

std::vector<JobSpec> straggler_workload(std::uint64_t seed, int count = 8) {
  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 15.0, seed + 100);
  return jobs;
}

std::vector<JobSpec> trace_workload(int count, std::uint64_t seed) {
  TraceModelConfig model_config;
  model_config.max_tasks_per_phase = 40;
  TraceModel model(model_config, seed);
  auto jobs = model.sample_jobs(count);
  assign_poisson_arrivals(jobs, 8.0, seed + 1);
  return jobs;
}

/// Run the same (cluster, config, jobs, scheduler) pair with the index on
/// and off and require bit-identical outcomes.  The counters double as a
/// sanity check that the indexed run actually exercised the index.
void expect_index_equivalence(const Cluster& cluster, const SimConfig& config,
                              const std::vector<JobSpec>& jobs,
                              const std::function<std::unique_ptr<Scheduler>()>& make,
                              bool expect_queries = true) {
  SimConfig fast_config = config;
  fast_config.use_placement_index = true;
  fast_config.record_events = true;
  SimConfig slow_config = config;
  slow_config.use_placement_index = false;
  slow_config.record_events = true;

  const auto fast_sched = make();
  const auto slow_sched = make();
  const SimResult fast = simulate(cluster, fast_config, jobs, *fast_sched);
  const SimResult slow = simulate(cluster, slow_config, jobs, *slow_sched);

  expect_identical_outcomes(fast, slow);
  expect_identical_event_traces(fast, slow);
  if (expect_queries) {
    EXPECT_GT(fast.stats.index_queries, 0) << "indexed run never queried the index";
  }
  EXPECT_EQ(slow.stats.index_queries, 0) << "linear run must not touch the index";
}

std::function<std::unique_ptr<Scheduler>()> dollymp_factory(DollyMPConfig config) {
  return [config] { return std::make_unique<DollyMPScheduler>(config); };
}

// ---- DollyMP, every configuration knob -------------------------------------

TEST(PlacementEquivalence, DollyMPDefault) {
  expect_index_equivalence(Cluster::paper30(), base_config(11), straggler_workload(11),
                           dollymp_factory({}));
}

TEST(PlacementEquivalence, DollyMPNoClones) {
  DollyMPConfig config;
  config.clone_budget = 0;
  expect_index_equivalence(Cluster::paper30(), base_config(12), straggler_workload(12),
                           dollymp_factory(config));
}

TEST(PlacementEquivalence, DollyMPStragglerAware) {
  DollyMPConfig config;
  config.straggler_aware = true;
  expect_index_equivalence(Cluster::paper30(), base_config(13), straggler_workload(13),
                           dollymp_factory(config));
}

TEST(PlacementEquivalence, DollyMPStragglerAwareTraceWorkload) {
  DollyMPConfig config;
  config.straggler_aware = true;
  SimConfig sim = base_config(21);
  sim.slot_seconds = 5.0;
  expect_index_equivalence(Cluster::google_like(60), sim, trace_workload(24, 21),
                           dollymp_factory(config));
}

TEST(PlacementEquivalence, DollyMPCorollaryCloneCounts) {
  DollyMPConfig config;
  config.corollary_clone_counts = true;
  config.recompute_on_completion = true;
  expect_index_equivalence(Cluster::paper30(), base_config(14), straggler_workload(14, 12),
                           dollymp_factory(config));
}

TEST(PlacementEquivalence, DollyMPLocalityOff) {
  DollyMPConfig config;
  config.locality_aware = false;
  expect_index_equivalence(Cluster::paper30(), base_config(15), straggler_workload(15),
                           dollymp_factory(config));
}

TEST(PlacementEquivalence, DollyMPLargestFirstClones) {
  DollyMPConfig config;
  config.smallest_first_clones = false;
  expect_index_equivalence(Cluster::paper30(), base_config(16), straggler_workload(16),
                           dollymp_factory(config));
}

TEST(PlacementEquivalence, DollyMPWithLocalityModel) {
  // Heavy enough that replicas saturate and placement falls through to the
  // indexed best-fit (a light load is absorbed entirely by the replica
  // fast path and never queries).
  SimConfig sim = base_config(17);
  sim.locality.enabled = true;
  sim.slot_seconds = 5.0;
  expect_index_equivalence(Cluster::google_like(60), sim, trace_workload(80, 17),
                           dollymp_factory({}));
}

// ---- the baseline policies -------------------------------------------------

TEST(PlacementEquivalence, Capacity) {
  expect_index_equivalence(Cluster::paper30(), base_config(31), straggler_workload(31),
                           [] { return std::make_unique<CapacityScheduler>(); });
}

TEST(PlacementEquivalence, Drf) {
  expect_index_equivalence(Cluster::paper30(), base_config(32), straggler_workload(32),
                           [] { return std::make_unique<DrfScheduler>(); });
}

TEST(PlacementEquivalence, Tetris) {
  // Tetris scores (server, candidate) pairs itself, so it never queries
  // the index — the run must still be bit-identical with maintenance on.
  expect_index_equivalence(
      Cluster::paper30(), base_config(33), straggler_workload(33),
      [] { return std::make_unique<TetrisScheduler>(); }, /*expect_queries=*/false);
}

TEST(PlacementEquivalence, Hopper) {
  expect_index_equivalence(Cluster::paper30(), base_config(34), straggler_workload(34),
                           [] { return std::make_unique<HopperScheduler>(); });
}

TEST(PlacementEquivalence, Carbyne) {
  expect_index_equivalence(Cluster::paper30(), base_config(35), straggler_workload(35),
                           [] { return std::make_unique<CarbyneScheduler>(); });
}

TEST(PlacementEquivalence, SrptWithClones) {
  SimplePriorityConfig config;
  config.clone_budget = 2;
  expect_index_equivalence(Cluster::paper30(), base_config(36), straggler_workload(36),
                           [config] { return std::make_unique<SimplePriorityScheduler>(config); });
}

// ---- failures and repairs --------------------------------------------------

TEST(PlacementEquivalence, DollyMPWithFailures) {
  SimConfig sim = base_config(41);
  sim.slot_seconds = 5.0;
  sim.failures.enabled = true;
  sim.failures.mean_time_to_failure_seconds = 300.0;
  sim.failures.mean_repair_seconds = 60.0;
  expect_index_equivalence(Cluster::google_like(40), sim, trace_workload(20, 41),
                           dollymp_factory({}));
}

TEST(PlacementEquivalence, CapacityWithFailures) {
  SimConfig sim = base_config(42);
  sim.slot_seconds = 5.0;
  sim.failures.enabled = true;
  sim.failures.mean_time_to_failure_seconds = 300.0;
  sim.failures.mean_repair_seconds = 60.0;
  expect_index_equivalence(Cluster::google_like(40), sim, trace_workload(20, 42),
                           [] { return std::make_unique<CapacityScheduler>(); });
}

// ---- allocation read paths -------------------------------------------------

// The O(#phases) job_active_allocation must agree with the per-copy scan
// at every scheduling decision, not just in hand-built fixtures: probe it
// live from inside a DRF run (DRF reads the allocation on every offer).
class AllocationProbeScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "alloc-probe"; }
  void schedule(SchedulerContext& ctx) override {
    for (JobRuntime* job : ctx.active_jobs()) {
      EXPECT_EQ(job_active_allocation(*job), job_active_allocation_scan(*job))
          << "job " << job->id;
    }
    inner_.schedule(ctx);
    for (JobRuntime* job : ctx.active_jobs()) {
      EXPECT_EQ(job_active_allocation(*job), job_active_allocation_scan(*job))
          << "job " << job->id;
    }
  }

 private:
  DrfScheduler inner_;
};

TEST(PlacementEquivalence, ActiveAllocationMatchesScanThroughoutRun) {
  AllocationProbeScheduler probe;
  const SimResult result =
      simulate(Cluster::paper30(), base_config(51), straggler_workload(51), probe);
  EXPECT_GT(result.total_tasks_completed, 0);
}

}  // namespace
}  // namespace dollymp
