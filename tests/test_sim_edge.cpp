// Simulator edge cases: event ordering corners, multi-sink DAGs, arrival
// ties, KeepBestLocality semantics, utilization accounting.
#include <gtest/gtest.h>

#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/scheduler.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "edge-fifo"; }
  void schedule(SchedulerContext& ctx) override {
    for (JobRuntime* job : ctx.active_jobs()) place_job_greedy(ctx, *job);
  }
};

SimConfig quiet(std::uint64_t seed = 1, double slot = 1.0) {
  SimConfig config;
  config.slot_seconds = slot;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

TEST(SimEdge, ArrivalExactlyAtCompletionSlot) {
  // Job 1 arrives at t = 10, the instant job 0 finishes: the freed
  // resources must be usable the same slot.
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1, 1}, 10.0),
      JobSpec::single_task(1, {1, 1}, 5.0, 0.0, 10.0),
  };
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet(), jobs, fifo);
  EXPECT_DOUBLE_EQ(result.job(1).first_start_seconds, 10.0);
  EXPECT_DOUBLE_EQ(result.job(1).flowtime(), 5.0);
}

TEST(SimEdge, SimultaneousArrivalsKeepSpecOrder) {
  // Same arrival slot: the active list (and FIFO service) follows spec
  // order via the stable sort.
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(5, {1, 1}, 10.0, 0.0, 0.0),
      JobSpec::single_task(3, {1, 1}, 10.0, 0.0, 0.0),
      JobSpec::single_task(9, {1, 1}, 10.0, 0.0, 0.0),
  };
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet(), jobs, fifo);
  EXPECT_DOUBLE_EQ(result.job(5).finish_seconds, 10.0);
  EXPECT_DOUBLE_EQ(result.job(3).finish_seconds, 20.0);
  EXPECT_DOUBLE_EQ(result.job(9).finish_seconds, 30.0);
}

TEST(SimEdge, MultiSinkDagCompletesWithLastSink) {
  // Fork: one source phase feeding two independent sinks of different
  // lengths; the job finishes with the longer sink (Eq. 8 generalized).
  const Cluster cluster = Cluster::uniform(2, {4, 4});
  JobSpec job;
  job.id = 0;
  job.phases.push_back({"src", 1, {1, 1}, 5.0, 0.0, {}});
  job.phases.push_back({"sink-short", 1, {1, 1}, 3.0, 0.0, {0}});
  job.phases.push_back({"sink-long", 1, {1, 1}, 12.0, 0.0, {0}});
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet(), {job}, fifo);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 5.0 + 12.0);
}

TEST(SimEdge, SubSlotTaskStillTakesOneSlot) {
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 0.5)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet(1, 5.0), jobs, fifo);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 5.0);
}

TEST(SimEdge, ManyPhasesChain) {
  // A 40-phase chain of single deterministic tasks: finish = 40 * theta.
  const Cluster cluster = Cluster::single({2, 2});
  JobSpec job;
  job.id = 0;
  for (int k = 0; k < 40; ++k) {
    PhaseSpec p{"p" + std::to_string(k), 1, {1, 1}, 2.0, 0.0, {}};
    if (k > 0) p.parents = {static_cast<PhaseIndex>(k - 1)};
    job.phases.push_back(p);
  }
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet(), {job}, fifo);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 80.0);
}

TEST(SimEdge, KeepBestLocalityCopyIsChargedUntilPhaseEnd) {
  // Under kKeepBestLocality with a downstream phase, the surviving sibling
  // keeps running after the first finish; once the phase completes, it is
  // terminated and its usage charged.  With kKillImmediately the sibling
  // ends at first finish.  Compare resource seconds on a deterministic
  // duration gap: original finishes at 10, clone would run to 30.
  Cluster cluster = Cluster::uniform(2, {1, 1});
  JobSpec job;
  job.id = 0;
  job.phases.push_back({"up", 2, {1, 1}, 20.0, 18.0, {}});
  job.phases.push_back({"down", 1, {1, 1}, 5.0, 0.0, {0}});

  class OneCloneScheduler final : public Scheduler {
   public:
    [[nodiscard]] std::string name() const override { return "one-clone"; }
    void schedule(SchedulerContext& ctx) override {
      for (JobRuntime* j : ctx.active_jobs()) {
        for (auto& phase : j->phases) {
          if (!phase.runnable()) continue;
          while (TaskRuntime* task = next_unscheduled_task(phase)) {
            const ServerId s = best_fit_server(ctx.cluster(), task->demand);
            if (s == kInvalidServer || !ctx.place_copy(*j, phase, *task, s)) break;
          }
          if (phase.index == 0) {
            for (auto& task : phase.tasks) {
              if (!task.finished && task.running() && task.total_copies() < 2) {
                const ServerId s = best_fit_server(ctx.cluster(), task.demand);
                if (s != kInvalidServer) (void)ctx.place_copy(*j, phase, task, s);
              }
            }
          }
        }
      }
    }
  };

  SimConfig keep = quiet(21);
  keep.kill_policy = CloneKillPolicy::kKeepBestLocality;
  SimConfig kill = quiet(21);
  kill.kill_policy = CloneKillPolicy::kKillImmediately;
  OneCloneScheduler s1;
  OneCloneScheduler s2;
  const SimResult kept = simulate(cluster, keep, {job}, s1);
  const SimResult killed = simulate(cluster, kill, {job}, s2);
  EXPECT_GE(kept.jobs[0].resource_seconds, killed.jobs[0].resource_seconds);
  // Identical completion time either way (the kept copy is redundant).
  EXPECT_DOUBLE_EQ(kept.jobs[0].finish_seconds, killed.jobs[0].finish_seconds);
}

TEST(SimEdge, UtilizationSampledOnlyWhileActive) {
  const Cluster cluster = Cluster::single({4, 4});
  SimConfig config = quiet(23);
  config.record_utilization = true;
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 5.0, 0.0, 100.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, config, jobs, fifo);
  // No samples before the job arrives (the simulator fast-forwards).
  for (const auto& u : result.utilization) {
    EXPECT_GE(u.seconds, 100.0);
  }
}

TEST(SimEdge, ZeroSigmaJobsUnaffectedByEnvironmentSeed) {
  // Deterministic durations + no background/locality: two different seeds
  // give identical results (randomness only enters via the environment).
  const Cluster cluster = Cluster::uniform(4, {4, 4});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 3, {1, 1}, 10.0, 0.0, i * 3.0));
  }
  FifoScheduler f1;
  FifoScheduler f2;
  SimConfig a = quiet(1);
  SimConfig b = quiet(999);
  const SimResult ra = simulate(cluster, a, jobs, f1);
  const SimResult rb = simulate(cluster, b, jobs, f2);
  for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.jobs[i].finish_seconds, rb.jobs[i].finish_seconds);
  }
}

TEST(SimEdge, MaxSlotsSafetyValve) {
  const Cluster cluster = Cluster::single({1, 1});
  SimConfig config = quiet(25);
  config.max_slots = 3;  // job needs 10 slots
  FifoScheduler fifo;
  Simulator sim(cluster, config);
  EXPECT_THROW((void)sim.run({JobSpec::single_task(0, {1, 1}, 10.0)}, fifo),
               std::runtime_error);
}

TEST(SimEdge, LargeFanoutPhase) {
  // 500 tiny tasks across 20 servers: waves of 80 concurrent tasks.
  const Cluster cluster = Cluster::uniform(20, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 500, {1, 2}, 6.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet(27, 2.0), jobs, fifo);
  // ceil(500 / 80) = 7 waves * 6s (3 slots of 2s) = 42s.
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 42.0);
  EXPECT_EQ(result.total_tasks_completed, 500);
}

TEST(SimEdge, RerunningSimulatorObjectIsIndependent) {
  const Cluster cluster = Cluster::single({2, 2});
  SimConfig config = quiet(29);
  Simulator sim(cluster, config);
  FifoScheduler fifo;
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0)};
  const SimResult a = sim.run(jobs, fifo);
  const SimResult b = sim.run(jobs, fifo);
  EXPECT_DOUBLE_EQ(a.jobs[0].finish_seconds, b.jobs[0].finish_seconds);
  EXPECT_EQ(a.total_copies_launched, b.total_copies_launched);
}

}  // namespace
}  // namespace dollymp
