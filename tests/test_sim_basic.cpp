#include "dollymp/sim/simulator.h"

#include <gtest/gtest.h>

#include "dollymp/sched/scheduler.h"

namespace dollymp {
namespace {

/// Minimal FIFO policy for controlled experiments.
class FifoScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "test-fifo"; }
  void schedule(SchedulerContext& ctx) override {
    for (JobRuntime* job : ctx.active_jobs()) place_job_greedy(ctx, *job);
  }
};

/// Tries to launch `copies` copies of every task immediately (for cap and
/// cloning tests).
class EagerCloneScheduler final : public Scheduler {
 public:
  explicit EagerCloneScheduler(int copies) : copies_(copies) {}
  [[nodiscard]] std::string name() const override { return "test-eager-clone"; }
  void schedule(SchedulerContext& ctx) override {
    for (JobRuntime* job : ctx.active_jobs()) {
      for (auto& phase : job->phases) {
        if (!phase.runnable()) continue;
        for (auto& task : phase.tasks) {
          while (!task.finished && task.total_copies() < copies_) {
            const ServerId server = best_fit_server(ctx.cluster(), task.demand);
            if (server == kInvalidServer) break;
            if (!ctx.place_copy(*job, phase, task, server)) break;
          }
        }
      }
    }
  }

 private:
  int copies_;
};

/// Never places anything (stall detection test).
class LazyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "test-lazy"; }
  void schedule(SchedulerContext&) override {}
};

SimConfig quiet_config(double slot = 1.0) {
  SimConfig config;
  config.slot_seconds = slot;
  config.seed = 1;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.record_utilization = true;
  return config;
}

TEST(Simulator, SingleDeterministicTask) {
  const Cluster cluster = Cluster::single({4, 8});
  // sigma = 0: duration pool is constant theta = 10 s.
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet_config(), jobs, fifo);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 10.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].flowtime(), 10.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].running_time(), 10.0);
  EXPECT_DOUBLE_EQ(result.makespan_seconds, 10.0);
  EXPECT_EQ(result.total_tasks_completed, 1);
  EXPECT_EQ(result.total_copies_launched, 1);
}

TEST(Simulator, SlotRoundingCeils) {
  const Cluster cluster = Cluster::single({4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 12.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet_config(5.0), jobs, fifo);
  // 12 s at 5 s slots -> 3 slots -> 15 s.
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 15.0);
}

TEST(Simulator, ArrivalRespected) {
  const Cluster cluster = Cluster::single({4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 5.0, 0.0, 100.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet_config(), jobs, fifo);
  EXPECT_DOUBLE_EQ(result.jobs[0].first_start_seconds, 100.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].flowtime(), 5.0);
}

TEST(Simulator, PhasePrecedenceEnforced) {
  const Cluster cluster = Cluster::single({16, 32});
  JobSpec job;
  job.id = 0;
  job.name = "two-phase";
  job.phases.push_back({"map", 3, {1, 1}, 10.0, 0.0, {}});
  job.phases.push_back({"reduce", 1, {1, 1}, 5.0, 0.0, {0}});
  SimConfig config = quiet_config();
  config.record_tasks = true;
  FifoScheduler fifo;
  Simulator sim(cluster, config);
  const SimResult result = sim.run({job}, fifo);
  // Maps finish at 10; reduce starts at 10, ends at 15.
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 15.0);
  for (const auto& task : result.tasks) {
    if (task.ref.phase == 1) {
      EXPECT_GE(task.first_start_seconds, 10.0);
    }
  }
}

TEST(Simulator, QueueingWhenClusterFull) {
  // Server fits one task at a time; two identical 10 s jobs at t = 0.
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0),
                                  JobSpec::single_task(1, {1, 1}, 10.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(cluster, quiet_config(), jobs, fifo);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 10.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].finish_seconds, 20.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].wait_time(), 10.0);
}

TEST(Simulator, UnplaceableJobThrows) {
  const Cluster cluster = Cluster::single({4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {100, 1}, 10.0)};
  FifoScheduler fifo;
  Simulator sim(cluster, quiet_config());
  EXPECT_THROW((void)sim.run(jobs, fifo), std::invalid_argument);
}

TEST(Simulator, StallDetection) {
  const Cluster cluster = Cluster::single({4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0)};
  LazyScheduler lazy;
  Simulator sim(cluster, quiet_config());
  EXPECT_THROW((void)sim.run(jobs, lazy), std::runtime_error);
}

TEST(Simulator, HardCopyCapEnforced) {
  const Cluster cluster = Cluster::uniform(10, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 50.0, 10.0)};
  SimConfig config = quiet_config();
  config.max_copies_per_task = 3;
  EagerCloneScheduler eager(10);  // tries to launch 10 copies
  Simulator sim(cluster, config);
  const SimResult result = sim.run(jobs, eager);
  EXPECT_EQ(result.total_copies_launched, 3);
  EXPECT_EQ(result.jobs[0].clones_launched, 2);
  EXPECT_EQ(result.jobs[0].tasks_with_clones, 1);
}

TEST(Simulator, DeterministicGivenSeed) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 2}, 30.0, 20.0, i * 5.0));
  }
  SimConfig config = quiet_config(5.0);
  config.background.enabled = true;
  config.locality.enabled = true;
  FifoScheduler fifo;
  const SimResult a = simulate(cluster, config, jobs, fifo);
  const SimResult b = simulate(cluster, config, jobs, fifo);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds);
    EXPECT_DOUBLE_EQ(a.jobs[i].resource_seconds, b.jobs[i].resource_seconds);
  }
}

TEST(Simulator, DifferentSeedsGiveDifferentRealizations) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 2}, 30.0, 25.0, 0.0));
  }
  SimConfig config = quiet_config(5.0);
  FifoScheduler fifo;
  config.seed = 1;
  const SimResult a = simulate(cluster, config, jobs, fifo);
  config.seed = 2;
  const SimResult b = simulate(cluster, config, jobs, fifo);
  // Slot quantization can make aggregate sums collide; require that the
  // realization differs somewhere observable.
  bool any_difference = false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    any_difference |= a.jobs[i].finish_seconds != b.jobs[i].finish_seconds;
    any_difference |= a.jobs[i].resource_seconds != b.jobs[i].resource_seconds;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Simulator, CloneNeverHurtsWithConstantDurations) {
  // sigma = 0: all copies take exactly theta, cloning changes nothing in
  // completion time (min of equals).
  const Cluster cluster = Cluster::uniform(4, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0)};
  FifoScheduler fifo;
  EagerCloneScheduler eager(3);
  const SimResult plain = simulate(cluster, quiet_config(), jobs, fifo);
  const SimResult cloned = simulate(cluster, quiet_config(), jobs, eager);
  EXPECT_DOUBLE_EQ(plain.jobs[0].finish_seconds, cloned.jobs[0].finish_seconds);
  // But cloning costs resources.
  EXPECT_GT(cloned.jobs[0].resource_seconds, plain.jobs[0].resource_seconds);
}

TEST(Simulator, CloningReducesMeanCompletionUnderStragglers) {
  // High-variance tasks: min-of-copies cuts the tail.  Average over seeds.
  const Cluster cluster = Cluster::uniform(4, {4, 8});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 30.0, 30.0)};
  double plain_total = 0.0;
  double cloned_total = 0.0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    SimConfig config = quiet_config();
    config.seed = seed;
    FifoScheduler fifo;
    EagerCloneScheduler eager(3);
    plain_total += simulate(cluster, config, jobs, fifo).jobs[0].finish_seconds;
    cloned_total += simulate(cluster, config, jobs, eager).jobs[0].finish_seconds;
  }
  EXPECT_LT(cloned_total, plain_total);
}

TEST(Simulator, FasterServerShortensTasks) {
  Cluster fast;
  fast.add_server(ServerSpec{{4, 8}, 2.0, 0, "fast"});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0)};
  FifoScheduler fifo;
  const SimResult result = simulate(fast, quiet_config(), jobs, fifo);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 5.0);
}

TEST(Simulator, UtilizationSamplesBounded) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 10, {2, 4}, 40.0, 20.0, i * 2.0));
  }
  SimConfig config = quiet_config(5.0);
  EagerCloneScheduler eager(3);
  const SimResult result = simulate(cluster, config, jobs, eager);
  ASSERT_FALSE(result.utilization.empty());
  for (const auto& u : result.utilization) {
    ASSERT_LE(u.cpu, 1.0 + 1e-9);
    ASSERT_LE(u.mem, 1.0 + 1e-9);
    ASSERT_GE(u.cpu, 0.0);
  }
}

TEST(Simulator, ResourceSecondsAccountsAllCopies) {
  const Cluster cluster = Cluster::uniform(3, {1, 1});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, 10.0)};
  EagerCloneScheduler eager(3);
  const SimResult result = simulate(cluster, quiet_config(), jobs, eager);
  // Three copies, each 10 s, each using 1/3 of CPU + 1/3 of memory.
  EXPECT_NEAR(result.jobs[0].resource_seconds, 3.0 * 10.0 * (1.0 / 3.0 + 1.0 / 3.0), 1e-9);
}

TEST(Simulator, WorkBasedModelMatchesEq6) {
  // theta = 10 s, slot 1 s.  alpha = 3 -> h(2) = (3 - 1/2) / 2 = 1.25.
  // With two copies from t = 0 the task needs ceil(10 / 1.25) = 8 slots.
  const double theta = 10.0;
  const double alpha = 3.0;
  // cv^2 = 1/(alpha(alpha-2)) = 1/3.
  const double sigma = theta / std::sqrt(3.0);
  const Cluster cluster = Cluster::uniform(2, {1, 1});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, theta, sigma)};
  SimConfig config = quiet_config();
  config.model = ExecutionModel::kWorkBased;

  FifoScheduler fifo;
  const SimResult one_copy = simulate(cluster, config, jobs, fifo);
  EXPECT_DOUBLE_EQ(one_copy.jobs[0].finish_seconds, 10.0);

  EagerCloneScheduler eager(2);
  const SimResult two_copies = simulate(cluster, config, jobs, eager);
  EXPECT_DOUBLE_EQ(two_copies.jobs[0].finish_seconds, 8.0);
  (void)alpha;
}

TEST(Simulator, WorkBasedLateCloneStillHelps) {
  // One copy for 4 slots (work 4), then a clone joins: remaining 6 work at
  // rate 1.25 -> ceil(6/1.25) = 5 more slots -> finish at 9.
  class LateCloneScheduler final : public Scheduler {
   public:
    [[nodiscard]] std::string name() const override { return "late-clone"; }
    void schedule(SchedulerContext& ctx) override {
      for (JobRuntime* job : ctx.active_jobs()) {
        for (auto& phase : job->phases) {
          for (auto& task : phase.tasks) {
            if (task.finished) continue;
            if (!task.scheduled()) {
              (void)ctx.place_copy(*job, phase, task,
                                   best_fit_server(ctx.cluster(), task.demand));
            } else if (ctx.now() >= 4 && task.total_copies() < 2) {
              (void)ctx.place_copy(*job, phase, task,
                                   best_fit_server(ctx.cluster(), task.demand));
            }
          }
        }
      }
      // Time-triggered policy under the event-driven control plane: ask to
      // be woken at the clone deadline instead of polling every slot.
      if (ctx.now() < 4) ctx.request_wakeup(4);
    }
  };

  const double theta = 10.0;
  const double sigma = theta / std::sqrt(3.0);  // alpha = 3
  const Cluster cluster = Cluster::uniform(2, {1, 1});
  const std::vector<JobSpec> jobs{JobSpec::single_task(0, {1, 1}, theta, sigma)};
  SimConfig config = quiet_config();
  config.model = ExecutionModel::kWorkBased;
  LateCloneScheduler late;
  const SimResult result = simulate(cluster, config, jobs, late);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_seconds, 9.0);
}

TEST(Simulator, KeepBestLocalityChargesKeptCopy) {
  // Two-phase job so the map phase "has children"; under kKeepBestLocality
  // the surviving sibling keeps running after first finish and costs more
  // resource-seconds than under kKillImmediately.
  const Cluster cluster = Cluster::uniform(4, {2, 2});
  JobSpec job;
  job.id = 0;
  job.phases.push_back({"map", 2, {1, 1}, 20.0, 15.0, {}});
  job.phases.push_back({"reduce", 1, {1, 1}, 5.0, 0.0, {0}});

  SimConfig kill = quiet_config();
  kill.kill_policy = CloneKillPolicy::kKillImmediately;
  SimConfig keep = quiet_config();
  keep.kill_policy = CloneKillPolicy::kKeepBestLocality;

  EagerCloneScheduler eager(2);
  const SimResult killed = simulate(cluster, kill, {job}, eager);
  const SimResult kept = simulate(cluster, keep, {job}, eager);
  EXPECT_GE(kept.jobs[0].resource_seconds, killed.jobs[0].resource_seconds);
}

TEST(Simulator, RecordsTasksWhenAsked) {
  const Cluster cluster = Cluster::single({8, 8});
  SimConfig config = quiet_config();
  config.record_tasks = true;
  FifoScheduler fifo;
  Simulator sim(cluster, config);
  const SimResult result = sim.run({JobSpec::single_phase(0, 3, {1, 1}, 10.0)}, fifo);
  EXPECT_EQ(result.tasks.size(), 3u);
}

TEST(Simulator, ConfigValidation) {
  SimConfig bad;
  bad.slot_seconds = 0.0;
  EXPECT_THROW(Simulator(Cluster::single({1, 1}), bad), std::invalid_argument);
  SimConfig bad2;
  bad2.max_copies_per_task = 0;
  EXPECT_THROW(Simulator(Cluster::single({1, 1}), bad2), std::invalid_argument);
  EXPECT_THROW(Simulator(Cluster{}, SimConfig{}), std::invalid_argument);
}

TEST(Simulator, JobRecordLookup) {
  const Cluster cluster = Cluster::single({4, 4});
  FifoScheduler fifo;
  const SimResult result =
      simulate(cluster, quiet_config(), {JobSpec::single_task(7, {1, 1}, 5.0)}, fifo);
  EXPECT_EQ(result.job(7).id, 7);
  EXPECT_THROW(result.job(99), std::out_of_range);
}

}  // namespace
}  // namespace dollymp
