// Parameterized property sweeps over the probability machinery — the
// invariants every distribution and the speedup model must satisfy across
// the whole parameter range the workloads use.
#include <gtest/gtest.h>

#include <cmath>

#include "dollymp/common/distributions.h"
#include "dollymp/common/stats.h"

namespace dollymp {
namespace {

// ---- Pareto across shapes ----------------------------------------------------

class ParetoShapeSweep : public testing::TestWithParam<double> {};

TEST_P(ParetoShapeSweep, QuantileIsMonotoneAndInvertsTail) {
  const ParetoDist d(2.0, GetParam());
  double prev = 0.0;
  for (double u = 0.0; u < 1.0; u += 0.05) {
    const double x = d.quantile(u);
    ASSERT_GE(x, prev);
    ASSERT_GE(x, d.scale());
    ASSERT_NEAR(1.0 - d.tail(x), u, 1e-9);
    prev = x;
  }
}

TEST_P(ParetoShapeSweep, SamplesRespectSupportAndTailMass) {
  const ParetoDist d(1.0, GetParam());
  Rng rng(static_cast<std::uint64_t>(GetParam() * 100));
  int above_median = 0;
  const int n = 20000;
  const double median = d.quantile(0.5);
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 1.0);
    above_median += x > median ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(above_median) / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParetoShapeSweep,
                         testing::Values(1.1, 1.5, 2.0, 2.5, 3.5, 6.0));

// ---- fit round trips across CV -----------------------------------------------

class FitCvSweep : public testing::TestWithParam<double> {};

TEST_P(FitCvSweep, ParetoFitRoundTrips) {
  const double cv = GetParam();
  const ParetoDist d = ParetoDist::fit(100.0, cv);
  EXPECT_NEAR(d.mean(), 100.0, 1e-9);
  EXPECT_NEAR(d.stddev() / d.mean(), cv, 1e-9);
}

TEST_P(FitCvSweep, SpeedupInvariantsAcrossCv) {
  const double cv = GetParam();
  const auto h = SpeedupFunction::from_stats(50.0, cv * 50.0);
  ASSERT_FALSE(h.degenerate());
  EXPECT_DOUBLE_EQ(h(1.0), 1.0);
  double prev = 1.0;
  double prev_gain = 1e9;
  for (int x = 2; x <= 16; ++x) {
    const double cur = h(static_cast<double>(x));
    ASSERT_GT(cur, prev);
    ASSERT_LT(cur - prev, prev_gain);
    ASSERT_LT(cur, h.upper_bound());
    prev_gain = cur - prev;
    prev = cur;
  }
  // Heavier tails (larger cv -> smaller alpha) gain more from cloning.
  if (cv > 0.3) {
    const auto lighter = SpeedupFunction::from_stats(50.0, 0.25 * 50.0);
    EXPECT_GT(h(2.0), lighter(2.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Cvs, FitCvSweep, testing::Values(0.25, 0.5, 0.9, 1.3, 2.0));

// ---- bounded Pareto honours its cap across configurations --------------------

class BoundedParetoSweep : public testing::TestWithParam<double> {};

TEST_P(BoundedParetoSweep, SupportAndMeanBounds) {
  const double upper = GetParam();
  const BoundedParetoDist d(1.0, 1.8, upper);
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, upper);
    stats.add(x);
  }
  EXPECT_GT(stats.mean(), 1.0);
  EXPECT_LT(stats.mean(), upper);
  EXPECT_NEAR(stats.mean(), d.mean(), 0.05 * d.mean());
}

INSTANTIATE_TEST_SUITE_P(Uppers, BoundedParetoSweep, testing::Values(2.0, 4.0, 8.0, 20.0));

// ---- min-of-copies vs h(x) across copy counts ---------------------------------

class MinOfCopiesSweep : public testing::TestWithParam<int> {};

TEST_P(MinOfCopiesSweep, SampledSpeedupMatchesEq3) {
  const int copies = GetParam();
  const double alpha = 2.4;
  const ParetoDist d(1.0, alpha);
  const SpeedupFunction h(alpha);
  Rng rng(static_cast<std::uint64_t>(copies));
  RunningStats mins;
  for (int i = 0; i < 150000; ++i) {
    double best = d.sample(rng);
    for (int c = 1; c < copies; ++c) best = std::min(best, d.sample(rng));
    mins.add(best);
  }
  EXPECT_NEAR(d.mean() / mins.mean(), h(copies), 0.03);
}

INSTANTIATE_TEST_SUITE_P(Copies, MinOfCopiesSweep, testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace dollymp
