#include "dollymp/common/resources.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dollymp {
namespace {

TEST(Resources, DefaultIsZero) {
  const Resources r;
  EXPECT_EQ(r.cpu(), 0.0);
  EXPECT_EQ(r.mem(), 0.0);
  EXPECT_TRUE(r.is_zero());
}

TEST(Resources, Arithmetic) {
  const Resources a{4, 8};
  const Resources b{1, 2};
  EXPECT_EQ(a + b, Resources(5, 10));
  EXPECT_EQ(a - b, Resources(3, 6));
  EXPECT_EQ(a * 2.0, Resources(8, 16));
  EXPECT_EQ(2.0 * a, Resources(8, 16));
  Resources c = a;
  c += b;
  EXPECT_EQ(c, Resources(5, 10));
  c -= b;
  EXPECT_EQ(c, a);
  c *= 0.5;
  EXPECT_EQ(c, Resources(2, 4));
}

TEST(Resources, FitsWithin) {
  const Resources cap{8, 16};
  EXPECT_TRUE(Resources(8, 16).fits_within(cap));
  EXPECT_TRUE(Resources(0, 0).fits_within(cap));
  EXPECT_FALSE(Resources(8.1, 16).fits_within(cap));
  EXPECT_FALSE(Resources(8, 16.1).fits_within(cap));
  EXPECT_FALSE(Resources(9, 1).fits_within(cap));
}

TEST(Resources, FitsWithinToleratesFloatNoise) {
  // Repeated add/subtract cycles must not make an exact fill fail.
  Resources used{0, 0};
  const Resources demand{0.1, 0.3};
  for (int i = 0; i < 10; ++i) used += demand;
  EXPECT_TRUE(used.fits_within(Resources{1.0, 3.0}));
}

TEST(Resources, Dot) {
  EXPECT_DOUBLE_EQ(Resources(2, 3).dot({4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(Resources(0, 0).dot({4, 5}), 0.0);
}

TEST(Resources, DominantShare) {
  const Resources total{100, 200};
  // CPU dominant.
  EXPECT_DOUBLE_EQ(Resources(10, 10).dominant_share(total), 0.1);
  // Memory dominant.
  EXPECT_DOUBLE_EQ(Resources(1, 100).dominant_share(total), 0.5);
  // Equal shares.
  EXPECT_DOUBLE_EQ(Resources(50, 100).dominant_share(total), 0.5);
}

TEST(Resources, DominantShareZeroCapacityDimensionIgnored) {
  EXPECT_DOUBLE_EQ(Resources(10, 0).dominant_share({100, 0}), 0.1);
  EXPECT_DOUBLE_EQ(Resources(0, 0).dominant_share({0, 0}), 0.0);
}

TEST(Resources, MinMaxClamp) {
  const Resources a{4, 1};
  const Resources b{2, 3};
  EXPECT_EQ(a.min(b), Resources(2, 1));
  EXPECT_EQ(a.max(b), Resources(4, 3));
  EXPECT_EQ(Resources(-1, 2).clamped(), Resources(0, 2));
  EXPECT_EQ(Resources(1, -2).clamped(), Resources(1, 0));
}

TEST(Resources, NonNegative) {
  EXPECT_TRUE(Resources(0, 0).non_negative());
  EXPECT_TRUE(Resources(1, 2).non_negative());
  EXPECT_FALSE(Resources(-0.001, 2).non_negative());
}

TEST(Resources, Streaming) {
  std::ostringstream os;
  os << Resources{4, 8};
  EXPECT_EQ(os.str(), "(4 cores, 8 GB)");
  EXPECT_EQ(Resources(4, 8).to_string(), "(4 cores, 8 GB)");
}

TEST(Resources, NormalizedSum) {
  const Resources total{100, 200};
  EXPECT_DOUBLE_EQ(normalized_sum({10, 20}, total), 0.1 + 0.1);
  EXPECT_DOUBLE_EQ(normalized_sum({0, 0}, total), 0.0);
  // Zero-capacity dimensions contribute nothing.
  EXPECT_DOUBLE_EQ(normalized_sum({10, 20}, {100, 0}), 0.1);
}

}  // namespace
}  // namespace dollymp
