#include <gtest/gtest.h>

#include "dollymp/job/dag.h"
#include "dollymp/job/effective.h"
#include "dollymp/job/job.h"

namespace dollymp {
namespace {

// A diamond DAG:        0
//                      / \
//                     1   2
//                      \ /
//                       3
JobSpec diamond_job() {
  JobSpec job;
  job.id = 1;
  job.name = "diamond";
  PhaseSpec a{"a", 4, {1, 2}, 10.0, 2.0, {}};
  PhaseSpec b{"b", 2, {2, 4}, 20.0, 4.0, {0}};
  PhaseSpec c{"c", 3, {1, 1}, 5.0, 0.0, {0}};
  PhaseSpec d{"d", 1, {1, 2}, 8.0, 1.0, {1, 2}};
  job.phases = {a, b, c, d};
  return job;
}

TEST(JobSpec, ValidateAcceptsDiamond) { EXPECT_NO_THROW(diamond_job().validate()); }

TEST(JobSpec, ValidateRejectsEmpty) {
  JobSpec job;
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(JobSpec, ValidateRejectsBadPhase) {
  JobSpec job = JobSpec::single_task(1, {1, 1}, 10.0);
  job.phases[0].task_count = 0;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = JobSpec::single_task(1, {1, 1}, 10.0);
  job.phases[0].theta_seconds = 0.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = JobSpec::single_task(1, {1, 1}, 10.0);
  job.phases[0].sigma_seconds = -1.0;
  EXPECT_THROW(job.validate(), std::invalid_argument);

  job = JobSpec::single_task(1, {0, 0}, 10.0);
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(JobSpec, ValidateRejectsBadParents) {
  JobSpec job = diamond_job();
  job.phases[1].parents = {5};
  EXPECT_THROW(job.validate(), std::invalid_argument);
  // Forward reference (cycle-equivalent under topological storage).
  job = diamond_job();
  job.phases[1].parents = {2};
  EXPECT_THROW(job.validate(), std::invalid_argument);
  job = diamond_job();
  job.phases[0].parents = {0};
  EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(JobSpec, TotalTasksAndHelpers) {
  EXPECT_EQ(diamond_job().total_tasks(), 10);
  const JobSpec single = JobSpec::single_task(7, {2, 4}, 30.0, 3.0, 100.0);
  EXPECT_EQ(single.total_tasks(), 1);
  EXPECT_DOUBLE_EQ(single.arrival_seconds, 100.0);
  EXPECT_EQ(single.phases.size(), 1u);
  const JobSpec multi = JobSpec::single_phase(8, 5, {1, 1}, 10.0);
  EXPECT_EQ(multi.total_tasks(), 5);
}

TEST(PhaseSpec, EffectiveLength) {
  PhaseSpec p{"p", 1, {1, 1}, 10.0, 4.0, {}};
  EXPECT_DOUBLE_EQ(p.effective_length(1.5), 16.0);
  EXPECT_DOUBLE_EQ(p.effective_length(0.0), 10.0);
}

TEST(Dag, ChildrenAndTerminalsAndSources) {
  const JobSpec job = diamond_job();
  const auto children = phase_children(job);
  ASSERT_EQ(children.size(), 4u);
  EXPECT_EQ(children[0], (std::vector<PhaseIndex>{1, 2}));
  EXPECT_EQ(children[1], (std::vector<PhaseIndex>{3}));
  EXPECT_EQ(children[3], (std::vector<PhaseIndex>{}));
  EXPECT_EQ(terminal_phases(job), (std::vector<PhaseIndex>{3}));
  EXPECT_EQ(source_phases(job), (std::vector<PhaseIndex>{0}));
}

TEST(Dag, CriticalPathLength) {
  const JobSpec job = diamond_job();
  // r=0: path a(10) -> b(20) -> d(8) = 38 beats a -> c -> d = 23.
  EXPECT_DOUBLE_EQ(critical_path_length(job, 0.0), 38.0);
  // r=1.5: a=13, b=26, c=5, d=9.5 -> 48.5.
  EXPECT_DOUBLE_EQ(critical_path_length(job, 1.5), 48.5);
}

TEST(Dag, CriticalPathNodes) {
  const JobSpec job = diamond_job();
  EXPECT_EQ(critical_path(job, 0.0), (std::vector<PhaseIndex>{0, 1, 3}));
}

TEST(Dag, RemainingCriticalPath) {
  const JobSpec job = diamond_job();
  // Phase 0 finished: longest remaining chain is b -> d = 28 (r=0).
  EXPECT_DOUBLE_EQ(remaining_critical_path_length(job, {true, false, false, false}, 0.0),
                   28.0);
  // Phases 0 and 1 finished: c -> d? No — c depends only on 0; chain becomes
  // max(c=5, d=8) along c->d = 13.
  EXPECT_DOUBLE_EQ(
      remaining_critical_path_length(job, {true, true, false, false}, 0.0), 13.0);
  // Everything finished: zero.
  EXPECT_DOUBLE_EQ(remaining_critical_path_length(job, {true, true, true, true}, 0.0),
                   0.0);
}

TEST(Effective, PhaseDominantShare) {
  PhaseSpec p{"p", 1, {10, 20}, 10.0, 0.0, {}};
  // cpu share 10/100 = 0.1, mem share 20/400 = 0.05 -> 0.1.
  EXPECT_DOUBLE_EQ(phase_dominant_share(p, {100, 400}), 0.1);
}

TEST(Effective, JobEffectiveVolumeEq14) {
  const JobSpec job = diamond_job();
  const Resources total{100, 100};
  // v = sum n * e * d with r = 0:
  //  a: 4 * 10 * max(1/100, 2/100)=0.02 -> 0.8
  //  b: 2 * 20 * 0.04 -> 1.6
  //  c: 3 * 5 * 0.01 -> 0.15
  //  d: 1 * 8 * 0.02 -> 0.16
  EXPECT_NEAR(job_effective_volume(job, total, 0.0), 0.8 + 1.6 + 0.15 + 0.16, 1e-12);
}

TEST(Effective, JobEffectiveLengthMatchesCriticalPath) {
  const JobSpec job = diamond_job();
  EXPECT_DOUBLE_EQ(job_effective_length(job, 1.5), critical_path_length(job, 1.5));
}

TEST(Effective, RemainingVolumeEq16) {
  const JobSpec job = diamond_job();
  const Resources total{100, 100};
  JobProgress progress;
  progress.remaining_tasks = {0, 1, 3, 1};  // phase a done, b half done
  progress.phase_finished = {true, false, false, false};
  // v(t) = 0 + 1*20*0.04 + 3*5*0.01 + 1*8*0.02 = 0.8 + 0.15 + 0.16.
  EXPECT_NEAR(job_effective_volume_remaining(job, progress, total, 0.0),
              0.8 + 0.15 + 0.16, 1e-12);
  EXPECT_DOUBLE_EQ(job_effective_length_remaining(job, progress, 0.0), 28.0);
}

TEST(Effective, ProgressValidation) {
  const JobSpec job = diamond_job();
  JobProgress bad;
  bad.remaining_tasks = {1, 1};  // wrong size
  bad.phase_finished = {false, false};
  EXPECT_THROW(job_effective_volume_remaining(job, bad, {10, 10}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(job_effective_length_remaining(job, bad, 0.0), std::invalid_argument);

  JobProgress out_of_range;
  out_of_range.remaining_tasks = {99, 0, 0, 0};
  out_of_range.phase_finished = {false, false, false, false};
  EXPECT_THROW(job_effective_volume_remaining(job, out_of_range, {10, 10}, 0.0),
               std::invalid_argument);
}

TEST(Dag, ChainJobCriticalPathIsSum) {
  JobSpec job;
  job.id = 2;
  for (int k = 0; k < 5; ++k) {
    PhaseSpec p{"p" + std::to_string(k), 2, {1, 1}, 10.0, 0.0, {}};
    if (k > 0) p.parents = {static_cast<PhaseIndex>(k - 1)};
    job.phases.push_back(p);
  }
  job.validate();
  EXPECT_DOUBLE_EQ(critical_path_length(job, 0.0), 50.0);
  EXPECT_EQ(critical_path(job, 0.0).size(), 5u);
}

}  // namespace
}  // namespace dollymp
