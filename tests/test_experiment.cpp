// The experiment runner: paired comparisons and seed replication, serial
// and parallel paths.
#include "dollymp/metrics/experiment.h"

#include <gtest/gtest.h>

#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

ComparisonSpec make_spec(std::uint64_t seed = 1) {
  ComparisonSpec spec;
  spec.cluster = Cluster::paper30();
  spec.config.slot_seconds = 5.0;
  spec.config.seed = seed;
  for (int i = 0; i < 10; ++i) {
    spec.jobs.push_back(make_wordcount(i, 1.0 + (i % 2)));
  }
  assign_jittered_arrivals(spec.jobs, 40.0, 0.2, seed);
  return spec;
}

std::vector<ComparisonEntry> entries() {
  return {
      {"capacity", [] { return std::make_unique<CapacityScheduler>(); }},
      {"tetris", [] { return std::make_unique<TetrisScheduler>(); }},
      {"dollymp2", [] { return std::make_unique<DollyMPScheduler>(); }},
  };
}

TEST(Experiment, SerialComparisonReturnsInOrder) {
  const auto results = run_comparison(make_spec(), entries());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].scheduler, "capacity");
  EXPECT_EQ(results[1].scheduler, "tetris");
  EXPECT_EQ(results[2].scheduler, "dollymp2");
  for (const auto& r : results) {
    EXPECT_EQ(r.jobs.size(), 10u);
  }
}

TEST(Experiment, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const auto serial = run_comparison(make_spec(), entries());
  const auto parallel = run_comparison(make_spec(), entries(), &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].scheduler, parallel[i].scheduler);
    EXPECT_DOUBLE_EQ(serial[i].total_flowtime(), parallel[i].total_flowtime());
    EXPECT_DOUBLE_EQ(serial[i].makespan_seconds, parallel[i].makespan_seconds);
  }
}

TEST(Experiment, PairedEnvironment) {
  // All schedulers face the same realization: the per-job first-copy
  // durations are identical, so a do-nothing-different scheduler pair gets
  // identical results.
  const auto spec = make_spec(9);
  const std::vector<ComparisonEntry> twins{
      {"a", [] { return std::make_unique<TetrisScheduler>(); }},
      {"b", [] { return std::make_unique<TetrisScheduler>(); }},
  };
  const auto results = run_comparison(spec, twins);
  EXPECT_DOUBLE_EQ(results[0].total_flowtime(), results[1].total_flowtime());
}

TEST(Experiment, ReplicatedStatsShape) {
  ThreadPool pool(4);
  const auto stats =
      run_replicated(make_spec(), entries(), {1, 2, 3, 4}, &pool);
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.total_flowtime.count(), 4u);
    EXPECT_GT(s.total_flowtime.mean(), 0.0);
    EXPECT_GT(s.makespan.min(), 0.0);
    // Different seeds produce at least some variation.
    EXPECT_GT(s.total_flowtime.max(), s.total_flowtime.min());
  }
  // DollyMP^2 proactively clones far more tasks than Capacity's reactive
  // speculation backs up (tasks_with_clones counts either kind of second
  // copy).
  EXPECT_GT(stats[2].cloned_task_fraction.mean(),
            stats[0].cloned_task_fraction.mean());
  // Tetris has neither cloning nor speculation.
  EXPECT_DOUBLE_EQ(stats[1].cloned_task_fraction.mean(), 0.0);
}

TEST(Experiment, ReplicatedSerialMatchesParallel) {
  ThreadPool pool(3);
  const auto serial = run_replicated(make_spec(), entries(), {5, 6});
  const auto parallel = run_replicated(make_spec(), entries(), {5, 6}, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].total_flowtime.mean(), parallel[i].total_flowtime.mean());
  }
}

TEST(Experiment, NullFactoryThrows) {
  auto spec = make_spec();
  const std::vector<ComparisonEntry> bad{{"null", [] {
    return std::unique_ptr<Scheduler>{};
  }}};
  EXPECT_THROW((void)run_comparison(spec, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dollymp
