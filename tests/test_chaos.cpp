// Chaos invariant matrix: every fault class x policy x seed combination
// must satisfy the five hard invariants the dollymp_chaos tool gates on —
// completion, no leaked allocations, copy conservation, bounded makespan
// degradation, and replay determinism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"

namespace dollymp {
namespace {

enum class Faults { kCrash, kRack, kFailSlow, kCopyFault, kAll };
enum class Policy { kBase, kResilient };

SimConfig chaos_config(std::uint64_t seed, Faults faults) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  if (faults == Faults::kCrash || faults == Faults::kAll) {
    config.failures.enabled = true;
    config.failures.mean_time_to_failure_seconds = 500.0;
    config.failures.mean_repair_seconds = 100.0;
  }
  if (faults == Faults::kRack || faults == Faults::kAll) {
    config.faults.rack.enabled = true;
    config.faults.rack.time_to_failure.mean_seconds = 1200.0;
    config.faults.rack.repair.mean_seconds = 150.0;
  }
  if (faults == Faults::kFailSlow || faults == Faults::kAll) {
    config.faults.fail_slow.enabled = true;
    config.faults.fail_slow.slowdown_factor = 3.0;
    config.faults.fail_slow.time_to_onset.mean_seconds = 500.0;
    config.faults.fail_slow.recovery.mean_seconds = 250.0;
  }
  if (faults == Faults::kCopyFault || faults == Faults::kAll) {
    config.faults.copy.enabled = true;
    config.faults.copy.inter_fault.mean_seconds = 90.0;
  }
  return config;
}

SchedulerFactory factory_for(Policy policy) {
  if (policy == Policy::kBase) {
    return [] { return std::make_unique<DollyMPScheduler>(); };
  }
  DollyMPConfig config;
  config.resilience.enabled = true;
  config.resilience.flap_threshold = 2.0;
  return [config] { return std::make_unique<DollyMPScheduler>(config); };
}

std::vector<JobSpec> chaos_workload(std::uint64_t seed) {
  TraceModelConfig model_config;
  model_config.max_tasks_per_phase = 20;
  TraceModel model(model_config, seed);
  auto jobs = model.sample_jobs(14);
  assign_poisson_arrivals(jobs, 12.0, seed + 1);
  return jobs;
}

/// Run one scenario and assert all five chaos invariants.
void run_chaos_scenario(Faults faults, Policy policy, std::uint64_t seed) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = chaos_workload(seed);
  const SchedulerFactory factory = factory_for(policy);
  const SimConfig config = chaos_config(seed, faults);
  ASSERT_NO_THROW(config.validate());

  const auto scheduler = factory();
  const SimResult result = simulate(cluster, config, jobs, *scheduler);

  // 1. Every job completes.
  ASSERT_EQ(result.jobs.size(), jobs.size());
  for (const auto& j : result.jobs) {
    EXPECT_GE(j.finish_seconds, j.arrival_seconds) << "job " << j.id;
    EXPECT_GE(j.first_start_seconds, 0.0) << "job " << j.id;
  }

  // 2. No leaked allocations after the last job.
  EXPECT_EQ(result.stats.leaked_cpu, 0.0);
  EXPECT_EQ(result.stats.leaked_mem, 0.0);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);

  // 3. Copy conservation: every launch ends in a finish or a kill.
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);

  // 4. Bounded degradation versus the healthy twin (generous bound: the
  // invariant catches livelock/runaway, not performance regressions).
  SimConfig healthy = config;
  healthy.failures.enabled = false;
  healthy.faults = FaultConfig{};
  const auto healthy_scheduler = factory();
  const SimResult baseline = simulate(cluster, healthy, jobs, *healthy_scheduler);
  EXPECT_LE(result.makespan_seconds, baseline.makespan_seconds * 50.0 + 1800.0);

  // 5. Replay determinism: bit-identical record stream on a re-run.
  const DivergenceReport replay = verify_replay(cluster, config, jobs, factory);
  EXPECT_TRUE(replay.identical) << replay.to_string();
}

// ---- the matrix: 5 fault classes x 2 policies + extra seeds ----------------

TEST(Chaos, CrashBase) { run_chaos_scenario(Faults::kCrash, Policy::kBase, 1); }
TEST(Chaos, CrashResilient) { run_chaos_scenario(Faults::kCrash, Policy::kResilient, 1); }
TEST(Chaos, RackBase) { run_chaos_scenario(Faults::kRack, Policy::kBase, 2); }
TEST(Chaos, RackResilient) { run_chaos_scenario(Faults::kRack, Policy::kResilient, 2); }
TEST(Chaos, FailSlowBase) { run_chaos_scenario(Faults::kFailSlow, Policy::kBase, 3); }
TEST(Chaos, FailSlowResilient) {
  run_chaos_scenario(Faults::kFailSlow, Policy::kResilient, 3);
}
TEST(Chaos, CopyFaultBase) { run_chaos_scenario(Faults::kCopyFault, Policy::kBase, 4); }
TEST(Chaos, CopyFaultResilient) {
  run_chaos_scenario(Faults::kCopyFault, Policy::kResilient, 4);
}
TEST(Chaos, AllFaultsBase) { run_chaos_scenario(Faults::kAll, Policy::kBase, 5); }
TEST(Chaos, AllFaultsResilient) { run_chaos_scenario(Faults::kAll, Policy::kResilient, 5); }
TEST(Chaos, AllFaultsBaseSecondSeed) { run_chaos_scenario(Faults::kAll, Policy::kBase, 6); }
TEST(Chaos, AllFaultsResilientSecondSeed) {
  run_chaos_scenario(Faults::kAll, Policy::kResilient, 6);
}
TEST(Chaos, AllFaultsResilientThirdSeed) {
  run_chaos_scenario(Faults::kAll, Policy::kResilient, 7);
}

// A healthy-config scenario through the same checker: the invariants are
// not vacuous artifacts of fault handling.
TEST(Chaos, HealthyBaselinePassesSameInvariants) {
  const Cluster cluster = Cluster::paper30();
  const auto jobs = chaos_workload(9);
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = 9;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, jobs, scheduler);
  ASSERT_EQ(result.jobs.size(), jobs.size());
  EXPECT_EQ(result.stats.leaked_cpu, 0.0);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);
  EXPECT_EQ(result.stats.copies_killed_by_faults, 0);
  EXPECT_EQ(result.stats.work_seconds_lost, 0.0);
}

}  // namespace
}  // namespace dollymp
