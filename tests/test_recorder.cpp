// Flight recorder unit tests: ring semantics, incremental stream hashing,
// binary log round-trips, and the recorder counters surfaced through
// SimStats after an instrumented simulation run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dollymp/obs/recorder.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

TraceRecord make_record(SimTime slot, TraceEv type, JobId job = -1) {
  TraceRecord r;
  r.slot = slot;
  r.type = type;
  r.job = job;
  return r;
}

TEST(Recorder, UnboundedKeepsEverythingInOrder) {
  Recorder rec;
  for (int i = 0; i < 100; ++i) {
    rec.append(make_record(i, TraceEv::kJobArrival, i));
  }
  EXPECT_FALSE(rec.bounded());
  EXPECT_EQ(rec.records_written(), 100u);
  EXPECT_EQ(rec.evictions(), 0u);
  EXPECT_EQ(rec.bytes_written(), 100u * kTraceRecordWireBytes);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 100u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);  // seq stamped by the recorder
    EXPECT_EQ(records[i].job, static_cast<JobId>(i));
  }
}

TEST(Recorder, RingKeepsNewestAndCountsEvictions) {
  Recorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.append(make_record(i, TraceEv::kJobArrival, i));
  }
  EXPECT_TRUE(rec.bounded());
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.records_written(), 20u);
  EXPECT_EQ(rec.evictions(), 12u);
  EXPECT_EQ(rec.size(), 8u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 8u);
  // Oldest-first unroll: the retained window is seq 12..19.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 12 + i);
  }
}

TEST(Recorder, RingHashCoversEvictedRecords) {
  // The incremental hash fingerprints the *full* stream: a tiny ring and an
  // unbounded recorder fed the same records must agree.
  Recorder ring(4);
  Recorder full;
  for (int i = 0; i < 50; ++i) {
    const auto r = make_record(i * 3, TraceEv::kCopyPlaced, i % 7);
    ring.append(r);
    full.append(r);
  }
  EXPECT_EQ(ring.hash(), full.hash());
  EXPECT_EQ(ring.records_written(), full.records_written());
}

TEST(Recorder, HashIsOrderSensitive) {
  const auto a = make_record(1, TraceEv::kCopyPlaced, 0);
  const auto b = make_record(1, TraceEv::kCopyFinished, 0);
  Recorder ab;
  ab.append(a);
  ab.append(b);
  Recorder ba;
  ba.append(b);
  ba.append(a);
  EXPECT_NE(ab.hash(), ba.hash());

  Recorder ab2;
  ab2.append(a);
  ab2.append(b);
  EXPECT_EQ(ab.hash(), ab2.hash());
}

TEST(Recorder, HashIsPayloadSensitive) {
  auto r = make_record(7, TraceEv::kPlacementQuery);
  r.server = 3;
  r.score = 1.25;
  Recorder x;
  x.append(r);
  r.score = 1.250001;
  Recorder y;
  y.append(r);
  EXPECT_NE(x.hash(), y.hash());
}

TEST(Recorder, DumpDecodesOldestFirstAndNotesEvictions) {
  Recorder rec(2);
  rec.append(make_record(1, TraceEv::kJobArrival, 4));
  rec.append(make_record(2, TraceEv::kCopyPlaced, 4));
  rec.append(make_record(3, TraceEv::kJobCompleted, 4));
  std::ostringstream os;
  rec.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("1 older record(s) evicted"), std::string::npos);
  EXPECT_NE(text.find("copy-placed"), std::string::npos);
  EXPECT_NE(text.find("job-completed"), std::string::npos);
  EXPECT_EQ(text.find("job-arrival"), std::string::npos);  // evicted
  EXPECT_LT(text.find("copy-placed"), text.find("job-completed"));
}

TEST(Recorder, ClearResetsStreamState) {
  Recorder rec(4);
  rec.append(make_record(1, TraceEv::kJobArrival));
  const auto first_hash = rec.hash();
  rec.clear();
  EXPECT_EQ(rec.records_written(), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.hash(), kTraceHashSeed);
  rec.append(make_record(1, TraceEv::kJobArrival));
  EXPECT_EQ(rec.hash(), first_hash);  // same stream from scratch
}

TEST(TraceLog, SaveLoadRoundTrip) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 17; ++i) {
    auto r = make_record(i * 5, static_cast<TraceEv>(i % 16), i);
    r.phase = i % 3;
    r.task = i;
    r.copy = i % 2;
    r.server = 20 - i;
    r.aux = -i;
    r.score = 0.5 * i;
    r.seq = static_cast<std::uint64_t>(i);
    records.push_back(r);
  }
  const std::string path = ::testing::TempDir() + "dollymp_trace_roundtrip.dmptrc";
  save_log(path, records, 2.5, 4);
  const TraceLog loaded = load_log(path);
  EXPECT_DOUBLE_EQ(loaded.slot_seconds, 2.5);
  EXPECT_EQ(loaded.threads_resolved, 4);
  ASSERT_EQ(loaded.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded.records[i], records[i]) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(TraceLog, ReadsLegacyV1Header) {
  // A DMPTRC01 file has no threads_resolved field: slot_seconds is followed
  // directly by the record count.  Hand-assemble an empty one.
  const std::string path = ::testing::TempDir() + "dollymp_trace_legacy.dmptrc";
  {
    std::ofstream out(path, std::ios::binary);
    out.write("DMPTRC01", 8);
    const double slot_seconds = 3.0;
    out.write(reinterpret_cast<const char*>(&slot_seconds), sizeof(slot_seconds));
    const std::uint64_t count = 0;
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  const TraceLog loaded = load_log(path);
  EXPECT_DOUBLE_EQ(loaded.slot_seconds, 3.0);
  EXPECT_EQ(loaded.threads_resolved, 1) << "legacy files default to serial";
  EXPECT_TRUE(loaded.records.empty());
  std::remove(path.c_str());
}

TEST(TraceLog, RejectsForeignFile) {
  const std::string path = ::testing::TempDir() + "dollymp_trace_bogus.dmptrc";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace log at all";
  }
  EXPECT_THROW((void)load_log(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Recorder, DecodeMentionsEveryMeaningfulField) {
  auto r = make_record(42, TraceEv::kClonePlaced, 3);
  r.seq = 7;
  r.phase = 1;
  r.task = 12;
  r.copy = 2;
  r.server = 23;
  const std::string text = decode(r);
  EXPECT_NE(text.find("#7"), std::string::npos);
  EXPECT_NE(text.find("slot=42"), std::string::npos);
  EXPECT_NE(text.find("clone-placed"), std::string::npos);
  EXPECT_NE(text.find("job=3"), std::string::npos);
  EXPECT_NE(text.find("phase=1"), std::string::npos);
  EXPECT_NE(text.find("task=12"), std::string::npos);
  EXPECT_NE(text.find("copy=2"), std::string::npos);
  EXPECT_NE(text.find("server=23"), std::string::npos);
}

// ---- simulator integration -------------------------------------------------

std::vector<JobSpec> small_workload(int count = 10) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 1}, 20.0, 15.0));
  }
  assign_poisson_arrivals(jobs, 10.0, 77);
  return jobs;
}

TEST(RecorderSim, StatsSurfaceRecorderCounters) {
  const Cluster cluster = Cluster::google_like(20);
  SimConfig config;
  config.seed = 11;
  Recorder recorder;
  config.recorder = &recorder;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, small_workload(), scheduler);

  EXPECT_GT(recorder.records_written(), 0u);
  EXPECT_EQ(result.stats.recorder_records,
            static_cast<long long>(recorder.records_written()));
  EXPECT_EQ(result.stats.recorder_bytes,
            static_cast<long long>(recorder.bytes_written()));
  EXPECT_EQ(result.stats.recorder_evictions, 0);
  EXPECT_EQ(result.stats.recorder_hash, recorder.hash());

  // The stream must witness the run's lifecycle: arrivals, placements,
  // finishes, task/job completions and scheduler invocations.
  bool saw[16] = {};
  for (const auto& r : recorder.snapshot()) {
    saw[static_cast<int>(r.type)] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kJobArrival)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kCopyPlaced)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kCopyFinished)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kTaskCompleted)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kJobCompleted)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kSchedulerInvoked)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceEv::kPlacementQuery)]);
}

TEST(RecorderSim, RecorderOffIsTheDefaultAndRecordsNothing) {
  const Cluster cluster = Cluster::google_like(20);
  SimConfig config;
  config.seed = 11;
  ASSERT_EQ(config.recorder, nullptr);
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, small_workload(), scheduler);
  EXPECT_EQ(result.stats.recorder_records, 0);
  EXPECT_EQ(result.stats.recorder_hash, 0u);
}

TEST(RecorderSim, RingRunMatchesUnboundedHashAndResult) {
  const Cluster cluster = Cluster::google_like(20);
  const auto jobs = small_workload();
  SimConfig config;
  config.seed = 5;

  Recorder full;
  config.recorder = &full;
  DollyMPScheduler a;
  const SimResult ra = simulate(cluster, config, jobs, a);

  Recorder ring(64);
  config.recorder = &ring;
  DollyMPScheduler b;
  const SimResult rb = simulate(cluster, config, jobs, b);

  // Recording mode must not perturb the simulation...
  EXPECT_EQ(ra.makespan_seconds, rb.makespan_seconds);
  EXPECT_EQ(ra.total_copies_launched, rb.total_copies_launched);
  // ...and the ring's full-stream hash must match the unbounded one.
  EXPECT_EQ(full.hash(), ring.hash());
  EXPECT_EQ(full.records_written(), ring.records_written());
  EXPECT_GT(ring.evictions(), 0u);
  EXPECT_EQ(rb.stats.recorder_evictions, static_cast<long long>(ring.evictions()));
}

}  // namespace
}  // namespace dollymp
