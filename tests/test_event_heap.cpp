// Unit differential for the sharded event heap (sim/event_heap.h): the
// tournament-tree merge over per-shard binary heaps must reproduce a single
// std::priority_queue's pop order exactly, for every shard count, as long
// as the shard key is pure in the compared fields (equal-comparing events
// co-shard).  Also pins event_shard_for as the exact inverse of
// shard_range.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <random>
#include <vector>

#include "dollymp/common/thread_pool.h"
#include "dollymp/sim/event_heap.h"

namespace dollymp {
namespace {

/// Miniature event with the same ordering shape as the simulator's: a time
/// plus tie-break fields, compared with a strict total order so that
/// equal-comparing events are field-identical.
struct MiniEvent {
  std::int64_t time;
  std::int32_t key;  ///< shard-pure field (stands in for server/job_index)
  std::int32_t kind;

  bool operator>(const MiniEvent& other) const {
    if (time != other.time) return time > other.time;
    if (key != other.key) return key > other.key;
    return kind > other.kind;
  }
};

std::vector<MiniEvent> random_events(std::size_t count, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<std::int64_t> time(0, 200);  // dense: many ties
  std::uniform_int_distribution<std::int32_t> key(0, 499);
  std::uniform_int_distribution<std::int32_t> kind(0, 6);
  std::vector<MiniEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    events.push_back({time(rng), key(rng), kind(rng)});
  }
  return events;
}

TEST(EventHeap, PopOrderMatchesPriorityQueueForEveryShardCount) {
  const std::size_t entities = 500;
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 8u, 64u}) {
    std::priority_queue<MiniEvent, std::vector<MiniEvent>, std::greater<>> reference;
    ShardedEventHeap<MiniEvent> heap;
    heap.reset(shards);
    EXPECT_EQ(heap.shard_count(), shards);
    for (const MiniEvent& e : random_events(4000, 77)) {
      reference.push(e);
      heap.push(e, event_shard_for(e.key, -1, heap.shard_count(), entities, 0));
    }
    ASSERT_EQ(heap.size(), reference.size());
    while (!reference.empty()) {
      const MiniEvent expected = reference.top();
      reference.pop();
      const MiniEvent actual = heap.top();
      heap.pop();
      // Strict total order: equal-comparing events are field-identical, so
      // field equality is the right assertion.
      ASSERT_EQ(actual.time, expected.time) << "shards=" << shards;
      ASSERT_EQ(actual.key, expected.key) << "shards=" << shards;
      ASSERT_EQ(actual.kind, expected.kind) << "shards=" << shards;
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventHeap, InterleavedPushPopStaysOrdered) {
  std::priority_queue<MiniEvent, std::vector<MiniEvent>, std::greater<>> reference;
  ShardedEventHeap<MiniEvent> heap;
  heap.reset(8);
  std::mt19937 rng(5);
  const auto events = random_events(2000, 6);
  std::size_t next = 0;
  // Event-loop shape: drain a few, then push the next burst (often at
  // times at or before the current frontier).
  while (next < events.size() || !heap.empty()) {
    std::uniform_int_distribution<int> burst(1, 5);
    for (int i = burst(rng); i > 0 && next < events.size(); --i, ++next) {
      reference.push(events[next]);
      heap.push(events[next], event_shard_for(events[next].key, -1, 8, 500, 0));
    }
    for (int i = burst(rng); i > 0 && !heap.empty(); --i) {
      const MiniEvent expected = reference.top();
      reference.pop();
      const MiniEvent actual = heap.top();
      heap.pop();
      ASSERT_EQ(actual.time, expected.time);
      ASSERT_EQ(actual.key, expected.key);
      ASSERT_EQ(actual.kind, expected.kind);
    }
  }
  EXPECT_TRUE(reference.empty());
}

TEST(EventHeap, ResetKeepsWorkingAcrossShardCountChanges) {
  ShardedEventHeap<MiniEvent> heap;  // default: single shard
  heap.push({5, 0, 0}, 0);
  EXPECT_EQ(heap.top().time, 5);
  heap.reset(4);  // drops content
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  heap.push({9, 1, 0}, 3);
  heap.push({2, 2, 0}, 1);
  EXPECT_EQ(heap.top().time, 2);
  heap.pop();
  EXPECT_EQ(heap.top().time, 9);
  heap.pop();
  EXPECT_TRUE(heap.empty());
}

// event_shard_for must be the exact inverse of shard_range: entity i lands
// in the unique shard whose [begin, end) contains i.  Exhaustive over small
// sizes including non-dividing shard counts.
TEST(EventHeap, ShardKeyInvertsShardRange) {
  for (const std::size_t n : {1u, 2u, 3u, 10u, 30u, 97u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u, 64u}) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t got =
            event_shard_for(static_cast<std::int32_t>(i), -1, shards, n, 0);
        ASSERT_LT(got, shards);
        const auto [begin, end] = shard_range(got, shards, n);
        ASSERT_GE(i, begin) << "n=" << n << " shards=" << shards;
        ASSERT_LT(i, end) << "n=" << n << " shards=" << shards;
      }
    }
  }
}

TEST(EventHeap, ShardKeyRouting) {
  // server >= 0 wins over job_index; both negative -> shard 0 (timers).
  EXPECT_EQ(event_shard_for(-1, -1, 8, 100, 100), 0u);
  EXPECT_EQ(event_shard_for(0, -1, 8, 100, 0), 0u);
  // Out-of-range entity ids clamp instead of indexing past the partition
  // (rack indices ride in the server field and can exceed the server count).
  EXPECT_EQ(event_shard_for(1000, -1, 8, 100, 0), 7u);
  // Single shard short-circuits.
  EXPECT_EQ(event_shard_for(42, -1, 1, 100, 0), 0u);
  // job_index keying used when server is invalid.
  const std::size_t by_job = event_shard_for(-1, 50, 8, 100, 100);
  const auto [begin, end] = shard_range(by_job, 8, 100);
  EXPECT_GE(50u, begin);
  EXPECT_LT(50u, end);
}

}  // namespace
}  // namespace dollymp
