// Service-mode acceptance tests (DESIGN.md §4.8): streaming arrival
// determinism, checkpoint/restore bit-identity across the policy × faults ×
// threads matrix, corrupted-snapshot rejection, and copy-on-write what-if
// forks that leave the parent's stream untouched.
#include "dollymp/service/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dollymp/common/state_io.h"
#include "dollymp/service/arrival_source.h"

namespace dollymp {
namespace {

ArrivalConfig light_arrivals() {
  ArrivalConfig arrivals;
  arrivals.rate_per_second = 0.1;
  arrivals.mean_input_gb = 1.0;
  arrivals.seed = 17;
  return arrivals;
}

ServiceConfig service_config(const std::string& policy, bool faults, int threads) {
  ServiceConfig config;
  config.policy = policy;
  config.arrivals = light_arrivals();
  config.sim.seed = 5;
  config.sim.threads = threads;
  if (faults) {
    config.sim.failures.enabled = true;
    config.sim.failures.mean_time_to_failure_seconds = 900.0;
    config.sim.failures.mean_repair_seconds = 120.0;
  }
  return config;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---- arrival source ---------------------------------------------------------

TEST(ArrivalSource, DeterministicForSameConfig) {
  ArrivalSource a(light_arrivals());
  ArrivalSource b(light_arrivals());
  std::vector<JobSpec> ja;
  std::vector<JobSpec> jb;
  EXPECT_EQ(a.emit_until(2000.0, ja), b.emit_until(2000.0, jb));
  ASSERT_EQ(ja.size(), jb.size());
  ASSERT_GT(ja.size(), 0u);
  for (std::size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].id, jb[i].id);
    EXPECT_DOUBLE_EQ(ja[i].arrival_seconds, jb[i].arrival_seconds);
    EXPECT_EQ(ja[i].phases.size(), jb[i].phases.size());
  }
}

TEST(ArrivalSource, ChunkedEmissionMatchesOneShot) {
  ArrivalSource chunked(light_arrivals());
  ArrivalSource oneshot(light_arrivals());
  std::vector<JobSpec> jc;
  std::vector<JobSpec> jo;
  for (double t = 250.0; t <= 2000.0; t += 250.0) chunked.emit_until(t, jc);
  oneshot.emit_until(2000.0, jo);
  ASSERT_EQ(jc.size(), jo.size());
  for (std::size_t i = 0; i < jc.size(); ++i) {
    EXPECT_EQ(jc[i].id, jo[i].id);
    EXPECT_DOUBLE_EQ(jc[i].arrival_seconds, jo[i].arrival_seconds);
  }
}

TEST(ArrivalSource, ArrivalsRespectHorizonAndOrdering) {
  ArrivalSource source(light_arrivals());
  std::vector<JobSpec> jobs;
  source.emit_until(1500.0, jobs);
  ASSERT_GT(jobs.size(), 1u);
  double prev = -1.0;
  for (const auto& job : jobs) {
    EXPECT_LT(job.arrival_seconds, 1500.0);
    EXPECT_GE(job.arrival_seconds, prev);
    prev = job.arrival_seconds;
  }
  // The pending arrival is exactly the first one past the horizon.
  EXPECT_GE(source.next_arrival_seconds(), 1500.0);
}

TEST(ArrivalSource, SaveLoadReproducesContinuation) {
  ArrivalSource original(light_arrivals());
  std::vector<JobSpec> warmup;
  original.emit_until(1000.0, warmup);

  StateWriter w;
  original.save_state(w);
  const auto bytes = w.finish();

  ArrivalSource restored(light_arrivals());
  StateReader r(bytes);
  restored.load_state(r);
  r.expect_done();

  std::vector<JobSpec> cont_a;
  std::vector<JobSpec> cont_b;
  original.emit_until(3000.0, cont_a);
  restored.emit_until(3000.0, cont_b);
  ASSERT_EQ(cont_a.size(), cont_b.size());
  ASSERT_GT(cont_a.size(), 0u);
  for (std::size_t i = 0; i < cont_a.size(); ++i) {
    EXPECT_EQ(cont_a[i].id, cont_b[i].id);
    EXPECT_DOUBLE_EQ(cont_a[i].arrival_seconds, cont_b[i].arrival_seconds);
  }
}

TEST(ArrivalSource, DiurnalAndFlashModulateRate) {
  ArrivalConfig config = light_arrivals();
  config.diurnal_amplitude = 0.5;
  config.diurnal_period_seconds = 1000.0;
  config.flash_multiplier = 4.0;
  config.flash_start_seconds = 5000.0;
  config.flash_duration_seconds = 100.0;
  ArrivalSource source(config);
  // Peak of the sine (t = period/4): rate * 1.5.
  EXPECT_NEAR(source.rate_at(250.0), 0.1 * 1.5, 1e-12);
  // Trough (t = 3*period/4): rate * 0.5.
  EXPECT_NEAR(source.rate_at(750.0), 0.1 * 0.5, 1e-12);
  // Inside the flash window the multiplier applies on top.
  EXPECT_NEAR(source.rate_at(5000.0), source.rate_at(0.0) * 4.0, 1e-12);
  // Just past the window it is gone.
  EXPECT_NEAR(source.rate_at(5100.0), source.rate_at(100.0), 1e-12);
}

TEST(ArrivalSource, HigherRateYieldsMoreArrivals) {
  ArrivalConfig slow = light_arrivals();
  ArrivalConfig fast = light_arrivals();
  fast.rate_per_second = 1.0;
  std::vector<JobSpec> js;
  std::vector<JobSpec> jf;
  ArrivalSource(slow).emit_until(3000.0, js);
  ArrivalSource(fast).emit_until(3000.0, jf);
  EXPECT_GT(jf.size(), js.size() * 3);
}

// ---- validation -------------------------------------------------------------

TEST(ServiceValidation, ArrivalConfigRejectsNonsense) {
  {
    ArrivalConfig config;
    config.rate_per_second = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    ArrivalConfig config;
    config.diurnal_amplitude = 1.0;  // must be < 1 or the rate goes negative
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    ArrivalConfig config;
    config.diurnal_amplitude = 0.3;
    config.diurnal_period_seconds = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    ArrivalConfig config;
    config.flash_multiplier = 2.0;  // surge without a start/duration window
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    ArrivalConfig config;
    config.mean_input_gb = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
}

TEST(ServiceValidation, ServiceConfigRejectsNonsense) {
  {
    ServiceConfig config;
    config.policy = "dollymp9";
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    ServiceConfig config;
    config.pump_slots = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    ServiceConfig config;
    config.checkpoint_interval_seconds = 0.0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
}

TEST(ServiceValidation, UnknownPolicyMessageListsKnownNames) {
  try {
    (void)make_named_policy("dolymp2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dolymp2"), std::string::npos);
    EXPECT_NE(what.find("dollymp0"), std::string::npos);
    EXPECT_NE(what.find("tetris"), std::string::npos);
  }
}

TEST(ServiceValidation, SimConfigCoversModulationKnobs) {
  {
    SimConfig config;
    config.event_shards = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    SimConfig config;
    config.event_shards = 65;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    SimConfig config;
    config.slot_seconds = std::numeric_limits<double>::infinity();
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    SimConfig config;
    config.background.enabled = true;
    config.background.contention_probability = 1.5;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    SimConfig config;
    config.locality.enabled = true;
    config.locality.replicas = 0;
    EXPECT_THROW(config.validate(), std::invalid_argument);
  }
  {
    // batch_placement without the index is deliberately legal (inert knob).
    SimConfig config;
    config.batch_placement = true;
    config.use_placement_index = false;
    EXPECT_NO_THROW(config.validate());
  }
}

// ---- checkpoint/restore matrix ---------------------------------------------

constexpr SimTime kT1 = 120;  // checkpoint point (slots)
constexpr SimTime kT2 = 240;  // comparison horizon (slots)

struct MatrixCell {
  const char* policy;
  bool faults;
  int threads;
};

TEST(ServiceCheckpoint, RestoredRunIsBitIdenticalAcrossMatrix) {
  const std::vector<MatrixCell> cells = {
      {"dollymp2", false, 1}, {"dollymp2", false, 8},
      {"dollymp2", true, 1},  {"dollymp2", true, 8},
      {"drf", false, 1},      {"drf", false, 8},
      {"drf", true, 1},       {"drf", true, 8},
      {"tetris", false, 1},   {"tetris", false, 8},
      {"tetris", true, 1},    {"tetris", true, 8},
  };
  int cell_index = 0;
  for (const auto& cell : cells) {
    SCOPED_TRACE(std::string(cell.policy) + (cell.faults ? "/faults" : "/clean") +
                 "/threads=" + std::to_string(cell.threads));
    const ServiceConfig config = service_config(cell.policy, cell.faults, cell.threads);
    const std::string path =
        temp_path("dollymp_service_ckpt_" + std::to_string(cell_index++) + ".ckpt");

    Session parent(Cluster::paper30(), config);
    parent.run_until(kT1);
    parent.checkpoint(path);
    const std::uint64_t hash_at_t1 = parent.stream_hash();
    parent.run_until(kT2);
    ASSERT_GT(parent.totals().jobs_ingested, 0);

    auto restored = Session::restore(Cluster::paper30(), config, path);
    EXPECT_EQ(restored->clock(), kT1);
    EXPECT_EQ(restored->stream_hash(), hash_at_t1);
    restored->run_until(kT2);

    // The continuation from the snapshot replays the uninterrupted future
    // bit for bit: same stream hash, same record count, same totals.
    EXPECT_EQ(restored->stream_hash(), parent.stream_hash());
    EXPECT_EQ(restored->records_written(), parent.records_written());
    EXPECT_EQ(restored->totals().jobs_ingested, parent.totals().jobs_ingested);
    EXPECT_EQ(restored->totals().jobs_completed, parent.totals().jobs_completed);
    EXPECT_DOUBLE_EQ(restored->totals().response_seconds_sum,
                     parent.totals().response_seconds_sum);
    EXPECT_EQ(restored->totals().clones_launched, parent.totals().clones_launched);
  }
}

TEST(ServiceCheckpoint, CheckpointingDoesNotPerturbTheRun) {
  // The stream is a deterministic function of (config, run_until horizon
  // sequence) — ingest chunk boundaries decide whether a job reuses a
  // recycled slot — so both sessions pause at kT1; only one checkpoints.
  const ServiceConfig config = service_config("dollymp2", false, 1);

  Session plain(Cluster::paper30(), config);
  plain.run_until(kT1);
  plain.run_until(kT2);

  Session observed(Cluster::paper30(), config);
  observed.run_until(kT1);
  observed.checkpoint(temp_path("dollymp_service_noop.ckpt"));
  observed.run_until(kT2);

  EXPECT_EQ(plain.stream_hash(), observed.stream_hash());
  EXPECT_EQ(plain.records_written(), observed.records_written());
}

TEST(ServiceCheckpoint, StreamIsDeterministicForSameHorizonSequence) {
  const ServiceConfig config = service_config("dollymp2", true, 1);
  Session a(Cluster::paper30(), config);
  Session b(Cluster::paper30(), config);
  for (SimTime t = 40; t <= kT2; t += 40) {
    a.run_until(t);
    b.run_until(t);
  }
  EXPECT_EQ(a.stream_hash(), b.stream_hash());
  EXPECT_EQ(a.records_written(), b.records_written());
}

TEST(ServiceCheckpoint, RejectsCorruptedAndTruncatedSnapshots) {
  const ServiceConfig config = service_config("dollymp2", false, 1);
  const std::string path = temp_path("dollymp_service_corrupt.ckpt");
  Session session(Cluster::paper30(), config);
  session.run_until(kT1);
  session.checkpoint(path);

  auto bytes = read_state_file(path);
  ASSERT_GT(bytes.size(), 64u);

  {
    auto corrupted = bytes;
    corrupted[corrupted.size() / 2] ^= 0x40;
    const std::string bad = temp_path("dollymp_service_corrupt_bit.ckpt");
    write_state_file(bad, corrupted);
    EXPECT_THROW((void)Session::restore(Cluster::paper30(), config, bad),
                 std::runtime_error);
  }
  {
    auto truncated = bytes;
    truncated.resize(truncated.size() / 2);
    const std::string bad = temp_path("dollymp_service_truncated.ckpt");
    write_state_file(bad, truncated);
    EXPECT_THROW((void)Session::restore(Cluster::paper30(), config, bad),
                 std::runtime_error);
  }
  {
    EXPECT_THROW(
        (void)Session::restore(Cluster::paper30(), config,
                               temp_path("dollymp_service_missing.ckpt")),
        std::runtime_error);
  }
}

// ---- what-if forks ----------------------------------------------------------

TEST(ServiceFork, SamePolicyForkReplaysParentsFutureAndLeavesParentAlone) {
  const ServiceConfig config = service_config("dollymp2", false, 1);
  Session parent(Cluster::paper30(), config);
  parent.run_until(kT1);
  const std::uint64_t parent_hash_at_fork = parent.stream_hash();
  const std::uint64_t parent_records_at_fork = parent.records_written();

  auto child = parent.fork({});
  EXPECT_EQ(child->clock(), kT1);
  child->run_until(kT2);

  // The parent is untouched by the child's run.
  EXPECT_EQ(parent.clock(), kT1);
  EXPECT_EQ(parent.stream_hash(), parent_hash_at_fork);
  EXPECT_EQ(parent.records_written(), parent_records_at_fork);

  // A same-policy fork IS the parent's own future, bit for bit.
  parent.run_until(kT2);
  EXPECT_EQ(child->stream_hash(), parent.stream_hash());
  EXPECT_EQ(child->records_written(), parent.records_written());
  EXPECT_EQ(child->totals().jobs_completed, parent.totals().jobs_completed);
}

TEST(ServiceFork, PolicySwitchForkDivergesWithoutPerturbingParent) {
  const ServiceConfig config = service_config("dollymp2", false, 1);
  Session parent(Cluster::paper30(), config);
  parent.run_until(kT1);
  const std::uint64_t parent_hash_at_fork = parent.stream_hash();

  Session::ForkOptions options;
  options.policy = "drf";
  auto child = parent.fork(options);
  EXPECT_EQ(child->policy_name(), "drf");
  child->run_until(kT2);
  parent.run_until(kT2);

  EXPECT_EQ(parent.policy_name(), "dollymp2");
  EXPECT_NE(parent.stream_hash(), parent_hash_at_fork);  // parent advanced
  // Different placement policies produce different decision streams.
  EXPECT_NE(child->stream_hash(), parent.stream_hash());
  // Both futures ingest the same arrival stream, though.
  EXPECT_EQ(child->totals().jobs_ingested, parent.totals().jobs_ingested);
}

TEST(ServiceFork, QuarantineForkTakesServersOutOfService) {
  const ServiceConfig config = service_config("dollymp2", false, 1);
  Session parent(Cluster::paper30(), config);
  parent.run_until(kT1);

  Session::ForkOptions options;
  options.quarantine = {0, 1, 2};
  auto child = parent.fork(options);
  child->run_until(kT2);
  parent.run_until(kT2);

  // Losing three servers changes the placement stream.
  EXPECT_NE(child->stream_hash(), parent.stream_hash());
  EXPECT_EQ(child->totals().jobs_ingested, parent.totals().jobs_ingested);
}

TEST(ServiceFork, QuarantineOutOfRangeThrows) {
  const ServiceConfig config = service_config("dollymp2", false, 1);
  Session parent(Cluster::paper30(), config);
  parent.run_until(8);

  Session::ForkOptions options;
  options.quarantine = {100000};
  EXPECT_THROW((void)parent.fork(options), std::invalid_argument);
}

TEST(ServiceFork, ForkSurvivesParentSegmentReaping) {
  // The child holds the parent's spec segments via shared_ptr, so even after
  // the parent reaps every drained segment the child's jobs stay valid.
  const ServiceConfig config = service_config("dollymp2", false, 1);
  Session parent(Cluster::paper30(), config);
  parent.run_until(kT1);
  auto child = parent.fork({});
  // Drain the parent far enough that its early segments are reaped.
  parent.run_until(kT2 * 4);
  child->run_until(kT2);
  EXPECT_GT(child->totals().jobs_completed, 0);
}

// ---- memory bound -----------------------------------------------------------

TEST(ServiceMemory, RetainedSpecsTrackLiveJobsNotTotalArrivals) {
  ServiceConfig config = service_config("dollymp2", false, 1);
  config.arrivals.rate_per_second = 0.2;
  Session session(Cluster::paper30(), config);
  std::size_t peak_retained = 0;
  for (SimTime t = 200; t <= 2400; t += 200) {
    session.run_until(t);
    peak_retained = std::max(peak_retained, session.specs_retained());
  }
  const auto ingested = session.totals().jobs_ingested;
  ASSERT_GT(ingested, 100);
  // Retention is bounded by live jobs plus one pump chunk of granularity —
  // far below total arrivals once the stream is several chunks long.
  EXPECT_LT(peak_retained, static_cast<std::size_t>(ingested));
  EXPECT_GT(session.totals().jobs_completed, 0);
}

}  // namespace
}  // namespace dollymp
