// The Hopper baseline, the extra application builders (TeraSort, SQL
// diamond join) and the fairness metrics.
#include <gtest/gtest.h>

#include "dollymp/job/dag.h"
#include "dollymp/metrics/report.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/apps.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp {
namespace {

SimConfig quiet(std::uint64_t seed, double slot = 5.0) {
  SimConfig config;
  config.slot_seconds = slot;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

// ---- Hopper ----------------------------------------------------------------

TEST(Hopper, CompletesWorkload) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 15; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 6, {1, 2}, 30.0, 20.0, i * 15.0));
  }
  HopperScheduler hopper;
  const SimResult result = simulate(cluster, quiet(1), jobs, hopper);
  ASSERT_EQ(result.jobs.size(), 15u);
  EXPECT_EQ(hopper.name(), "hopper");
}

TEST(Hopper, LaunchesSpeculativeBackups) {
  const Cluster cluster = Cluster::uniform(10, {8, 16});
  const std::vector<JobSpec> jobs{JobSpec::single_phase(0, 20, {1, 1}, 20.0, 30.0)};
  HopperScheduler hopper;
  const SimResult result = simulate(cluster, quiet(2, 1.0), jobs, hopper);
  EXPECT_GT(result.jobs[0].speculative_launched, 0);
}

TEST(Hopper, ReservationHoldsBackCapacityUnderLoad) {
  // Saturating workload: Hopper must leave a slice of capacity unused for
  // backups, so at some scheduler invocations utilization stays below the
  // work-conserving level.  We check the weaker, robust consequence: its
  // flowtime exceeds an otherwise-identical work-conserving FIFO's on a
  // deterministic (no-straggler) workload where reservation is pure waste.
  const Cluster cluster = Cluster::uniform(4, {8, 16});
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {2, 4}, 40.0, 0.0, i * 5.0));
  }
  HopperScheduler hopper;
  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler fifo(cc);
  const SimResult hopper_result = simulate(cluster, quiet(3), jobs, hopper);
  const SimResult fifo_result = simulate(cluster, quiet(3), jobs, fifo);
  EXPECT_GE(hopper_result.total_flowtime(), fifo_result.total_flowtime())
      << "with zero stragglers the reservation can only hurt";
}

TEST(Hopper, SmallVirtualSizeFirst) {
  const Cluster cluster = Cluster::single({1, 1});
  const std::vector<JobSpec> jobs{
      JobSpec::single_task(0, {1, 1}, 50.0),
      JobSpec::single_task(1, {1, 1}, 5.0),
  };
  SimConfig config = quiet(4, 1.0);
  config.record_tasks = true;
  HopperScheduler hopper;
  const SimResult result = simulate(cluster, config, jobs, hopper);
  EXPECT_DOUBLE_EQ(result.job(1).first_start_seconds, 0.0);
  EXPECT_GE(result.job(0).first_start_seconds, 5.0);
}

// ---- TeraSort / SQL join builders ------------------------------------------

TEST(Apps, TeraSortStructure) {
  const JobSpec job = make_terasort(3, 4.0, 10.0);
  EXPECT_EQ(job.app, "terasort");
  ASSERT_EQ(job.phases.size(), 3u);
  EXPECT_EQ(job.phases[0].name, "sample");
  EXPECT_EQ(job.phases[1].name, "partition-sort");
  EXPECT_EQ(job.phases[2].name, "merge");
  // Chain dependencies.
  EXPECT_EQ(job.phases[1].parents, (std::vector<PhaseIndex>{0}));
  EXPECT_EQ(job.phases[2].parents, (std::vector<PhaseIndex>{1}));
  // The sort phase is memory-heavy relative to the maps.
  EXPECT_GT(job.phases[1].demand.mem(), job.phases[0].demand.mem());
  EXPECT_NO_THROW(job.validate());
}

TEST(Apps, SqlJoinIsADiamond) {
  const JobSpec job = make_sql_join(4, 2.0, 1.0);
  ASSERT_EQ(job.phases.size(), 4u);
  // Two independent scans...
  EXPECT_TRUE(job.phases[0].parents.empty());
  EXPECT_TRUE(job.phases[1].parents.empty());
  // ...joined...
  EXPECT_EQ(job.phases[2].parents, (std::vector<PhaseIndex>{0, 1}));
  // ...then aggregated.
  EXPECT_EQ(job.phases[3].parents, (std::vector<PhaseIndex>{2}));
  EXPECT_EQ(source_phases(job).size(), 2u);
  EXPECT_EQ(terminal_phases(job), (std::vector<PhaseIndex>{3}));
}

TEST(Apps, SqlJoinWaitsForBothScans) {
  // Asymmetric scans: the join must not start before the longer one ends.
  AppConfig app;
  app.straggler_cv = 0.0;  // deterministic
  const JobSpec job = make_sql_join(0, 4.0, 0.5, 0.0, app);
  const Cluster cluster = Cluster::uniform(8, {16, 32});
  SimConfig config = quiet(5, 1.0);
  config.record_tasks = true;
  CapacityConfig cc;
  cc.speculation.enabled = false;
  CapacityScheduler fifo(cc);
  const SimResult result = simulate(cluster, config, {job}, fifo);
  double scans_done = 0.0;
  double join_start = 1e18;
  for (const auto& t : result.tasks) {
    if (t.ref.phase <= 1) scans_done = std::max(scans_done, t.finish_seconds);
    if (t.ref.phase == 2) join_start = std::min(join_start, t.first_start_seconds);
  }
  EXPECT_GE(join_start, scans_done);
}

TEST(Apps, NewAppsRunEndToEnd) {
  const Cluster cluster = Cluster::paper30();
  std::vector<JobSpec> jobs;
  jobs.push_back(make_terasort(0, 2.0));
  jobs.push_back(make_sql_join(1, 1.0, 1.0));
  jobs.push_back(make_terasort(2, 0.5));
  assign_fixed_arrivals(jobs, 30.0);
  CapacityScheduler fifo;
  const SimResult result = simulate(cluster, quiet(6), jobs, fifo);
  EXPECT_EQ(result.jobs.size(), 3u);
}

// ---- fairness metrics -------------------------------------------------------

TEST(Fairness, PerfectlyEqualSlowdowns) {
  SimResult r;
  for (int i = 0; i < 4; ++i) {
    JobRecord j;
    j.id = i;
    j.arrival_seconds = 0.0;
    j.first_start_seconds = 10.0;  // everyone waits 10
    j.finish_seconds = 20.0;       // everyone runs 10: slowdown 2.0
    r.jobs.push_back(j);
  }
  EXPECT_NEAR(jain_fairness_of_slowdowns(r), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(slowdown_cdf(r).median(), 2.0);
}

TEST(Fairness, MaximallyUnfair) {
  // One job with a huge slowdown among jobs with slowdown ~0 is bounded
  // below by 1/n; construct: three jobs slowdown 1, one slowdown 100.
  SimResult r;
  for (int i = 0; i < 3; ++i) {
    JobRecord j;
    j.id = i;
    j.first_start_seconds = 0.0;
    j.finish_seconds = 10.0;
    r.jobs.push_back(j);
  }
  JobRecord starved;
  starved.id = 3;
  starved.arrival_seconds = 0.0;
  starved.first_start_seconds = 990.0;
  starved.finish_seconds = 1000.0;  // runs 10, flowtime 1000: slowdown 100
  r.jobs.push_back(starved);
  const double jain = jain_fairness_of_slowdowns(r);
  EXPECT_LT(jain, 0.3);
  EXPECT_GE(jain, 0.25);  // >= 1/n
}

TEST(Fairness, EmptyAndDegenerate) {
  SimResult empty;
  EXPECT_DOUBLE_EQ(jain_fairness_of_slowdowns(empty), 1.0);
  SimResult zero_run;
  JobRecord j;
  j.first_start_seconds = 5.0;
  j.finish_seconds = 5.0;  // zero running time: skipped
  zero_run.jobs.push_back(j);
  EXPECT_DOUBLE_EQ(jain_fairness_of_slowdowns(zero_run), 1.0);
  EXPECT_TRUE(slowdown_cdf(zero_run).empty());
}

}  // namespace
}  // namespace dollymp
