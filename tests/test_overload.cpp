// Overload-protection acceptance tests (DESIGN.md §4.9): deterministic
// token-bucket admission, error-diffusion priority shedding with tenant
// protection, watermark hysteresis, the governor's dwell/one-rung ladder,
// the SLO response-time window, exact shed accounting under a flash crowd,
// and checkpoint/restore bit-identity with every knob on.
#include "dollymp/service/overload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/state_io.h"
#include "dollymp/metrics/slo_window.h"
#include "dollymp/service/session.h"

namespace dollymp {
namespace {

OverloadConfig base_overload() {
  OverloadConfig config;
  config.admission_enabled = true;
  config.bucket_rate_per_second = 1.0;
  config.bucket_burst = 4.0;
  config.high_watermark = 4.0;
  config.low_watermark = 2.0;
  config.num_tenant_classes = 4;
  config.protected_classes = 1;
  config.shed_fraction = 1.0;
  return config;
}

JobSpec arrival(JobId id, double seconds) {
  JobSpec spec;
  spec.id = id;
  spec.arrival_seconds = seconds;
  return spec;
}

// ---- OverloadConfig::validate -----------------------------------------------

TEST(OverloadConfig, DefaultIsDisabledAndValid) {
  OverloadConfig config;
  EXPECT_FALSE(config.any_enabled());
  EXPECT_NO_THROW(config.validate());
}

TEST(OverloadConfig, ValidateRejectsBadKnobs) {
  auto reject = [](auto&& mutate) {
    OverloadConfig config = base_overload();
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  reject([](OverloadConfig& c) { c.bucket_rate_per_second = -1.0; });
  reject([](OverloadConfig& c) { c.bucket_burst = 0.5; });
  reject([](OverloadConfig& c) { c.high_watermark = 0.0; });
  reject([](OverloadConfig& c) { c.low_watermark = -1.0; });
  reject([](OverloadConfig& c) { c.low_watermark = c.high_watermark; });  // unordered
  reject([](OverloadConfig& c) { c.num_tenant_classes = 0; });
  reject([](OverloadConfig& c) { c.protected_classes = -1; });
  reject([](OverloadConfig& c) { c.protected_classes = c.num_tenant_classes + 1; });
  reject([](OverloadConfig& c) { c.shed_fraction = 1.5; });
  reject([](OverloadConfig& c) { c.shed_fraction = -0.1; });
  reject([](OverloadConfig& c) { c.slo_window_size = 0; });
  reject([](OverloadConfig& c) { c.slo_min_samples = 0; });
  reject([](OverloadConfig& c) { c.slo_target_p99_seconds = -5.0; });
  reject([](OverloadConfig& c) { c.enter_level2 = c.enter_level1; });
  reject([](OverloadConfig& c) { c.enter_level3 = c.enter_level2 - 0.1; });
  reject([](OverloadConfig& c) { c.exit_ratio = 0.0; });
  reject([](OverloadConfig& c) { c.exit_ratio = 1.5; });
  reject([](OverloadConfig& c) { c.dwell_evaluations = 0; });
}

// ---- AdmissionGate: token bucket --------------------------------------------

TEST(AdmissionGate, TokenBucketAdmitsBurstThenRateLimits) {
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 1.0;
  config.bucket_burst = 4.0;
  AdmissionGate gate(config);
  // 10 arrivals at t=0: the burst admits 4, the rest bounce off the bucket.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    ShedReason reason{};
    if (gate.admit(arrival(i, 0.0), /*overload_level=*/0, &reason)) {
      ++admitted;
    } else {
      EXPECT_EQ(reason, ShedReason::kTokenBucket);
    }
  }
  EXPECT_EQ(admitted, 4);
  // 3 simulated seconds refill 3 tokens; 5 more arrivals admit exactly 3.
  admitted = 0;
  for (int i = 10; i < 15; ++i) {
    ShedReason reason{};
    if (gate.admit(arrival(i, 3.0), 0, &reason)) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
}

TEST(AdmissionGate, TokenBucketIsDeterministic) {
  // The refill clock is the arrivals' own timestamps — two gates fed the
  // same stream agree decision for decision, whatever the wall clock did.
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 0.7;
  config.bucket_burst = 3.0;
  AdmissionGate a(config);
  AdmissionGate b(config);
  for (int i = 0; i < 200; ++i) {
    const JobSpec spec = arrival(i, static_cast<double>(i) * 0.61);
    ShedReason ra{};
    ShedReason rb{};
    const bool da = a.admit(spec, 0, &ra);
    const bool db = b.admit(spec, 0, &rb);
    EXPECT_EQ(da, db) << "arrival " << i;
    if (!da) {
      EXPECT_EQ(ra, rb);
    }
  }
}

TEST(AdmissionGate, BucketStateSurvivesSaveLoad) {
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 0.7;
  config.bucket_burst = 3.0;
  AdmissionGate original(config);
  for (int i = 0; i < 50; ++i) {
    ShedReason reason{};
    (void)original.admit(arrival(i, static_cast<double>(i) * 0.3), 0, &reason);
  }
  StateWriter w;
  original.save_state(w);
  const auto bytes = w.finish();
  AdmissionGate restored(config);
  StateReader r(bytes);
  restored.load_state(r);
  r.expect_done();
  for (int i = 50; i < 120; ++i) {
    const JobSpec spec = arrival(i, static_cast<double>(i) * 0.3);
    ShedReason ra{};
    ShedReason rb{};
    EXPECT_EQ(original.admit(spec, 0, &ra), restored.admit(spec, 0, &rb));
  }
}

// ---- AdmissionGate: watermark latch + priority shedding ---------------------

TEST(AdmissionGate, WatermarkLatchHasHysteresis) {
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 0.0;  // isolate the latch
  AdmissionGate gate(config);
  EXPECT_FALSE(gate.latched());
  gate.update_watermark(3.9);  // below high: stays open
  EXPECT_FALSE(gate.latched());
  gate.update_watermark(4.0);  // at high: engages
  EXPECT_TRUE(gate.latched());
  gate.update_watermark(3.0);  // between the marks: holds
  EXPECT_TRUE(gate.latched());
  gate.update_watermark(2.0);  // at low: releases
  EXPECT_FALSE(gate.latched());
  gate.update_watermark(3.0);  // between the marks again: stays open
  EXPECT_FALSE(gate.latched());
}

TEST(AdmissionGate, ProtectedTenantClassRidesThroughShedding) {
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 0.0;
  config.num_tenant_classes = 4;
  config.protected_classes = 1;  // class 3 (ids 3 mod 4) is protected
  config.shed_fraction = 1.0;
  AdmissionGate gate(config);
  gate.update_watermark(10.0);  // engage
  ASSERT_TRUE(gate.latched());
  for (int i = 0; i < 40; ++i) {
    ShedReason reason{};
    const bool admitted = gate.admit(arrival(i, 0.0), 0, &reason);
    if (gate.tenant_class(i) == 3) {
      EXPECT_TRUE(admitted) << "protected arrival " << i << " was shed";
    } else {
      EXPECT_FALSE(admitted);
      EXPECT_EQ(reason, ShedReason::kWatermark);
    }
  }
}

TEST(AdmissionGate, ErrorDiffusionShedsExactFraction) {
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 0.0;
  config.protected_classes = 0;
  config.shed_fraction = 0.25;
  AdmissionGate gate(config);
  gate.update_watermark(10.0);
  int shed = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    ShedReason reason{};
    if (!gate.admit(arrival(i, 0.0), 0, &reason)) ++shed;
  }
  // The diffusion accumulator makes the count over n candidates exactly
  // floor/round of n * fraction — not merely close in expectation.
  EXPECT_EQ(shed, 250);
}

TEST(AdmissionGate, EmergencyLevelShedsWithoutLatch) {
  OverloadConfig config = base_overload();
  config.bucket_rate_per_second = 0.0;
  config.protected_classes = 0;
  AdmissionGate gate(config);
  ASSERT_FALSE(gate.latched());
  ShedReason reason{};
  // Ladder rung 3 forces shedding even though the watermark never tripped.
  EXPECT_FALSE(gate.admit(arrival(0, 0.0), /*overload_level=*/3, &reason));
  EXPECT_EQ(reason, ShedReason::kOverload);
  // Below rung 3 and unlatched, everything passes.
  EXPECT_TRUE(gate.admit(arrival(1, 0.0), 2, &reason));
}

// ---- SloWindow --------------------------------------------------------------

TEST(SloWindow, QuantilesOverSlidingWindow) {
  SloWindow window(100);
  EXPECT_EQ(window.count(), 0u);
  EXPECT_DOUBLE_EQ(window.p99(), 0.0);  // empty: no signal
  for (int i = 1; i <= 100; ++i) window.observe(static_cast<double>(i));
  EXPECT_EQ(window.count(), 100u);
  EXPECT_DOUBLE_EQ(window.p50(), 51.0);  // nearest-rank on 1..100
  EXPECT_DOUBLE_EQ(window.p99(), 100.0);
  // 50 more samples slide the window: 51..150 is now resident.
  for (int i = 101; i <= 150; ++i) window.observe(static_cast<double>(i));
  EXPECT_EQ(window.count(), 100u);
  EXPECT_EQ(window.total_observed(), 150);
  EXPECT_DOUBLE_EQ(window.quantile(0.0), 51.0);
  EXPECT_DOUBLE_EQ(window.p99(), 150.0);
}

TEST(SloWindow, SaveLoadRoundTripsMidWrap) {
  SloWindow original(8);
  for (int i = 0; i < 13; ++i) original.observe(static_cast<double>(i) * 1.5);
  StateWriter w;
  original.save_state(w);
  const auto bytes = w.finish();
  SloWindow restored(8);
  StateReader r(bytes);
  restored.load_state(r);
  r.expect_done();
  EXPECT_EQ(restored.count(), original.count());
  EXPECT_EQ(restored.total_observed(), original.total_observed());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(restored.quantile(q), original.quantile(q)) << "q=" << q;
  }
  // Continuations agree too (cursor position was preserved).
  original.observe(42.0);
  restored.observe(42.0);
  EXPECT_DOUBLE_EQ(restored.p50(), original.p50());
}

TEST(SloWindow, LoadRejectsCapacityMismatch) {
  SloWindow original(8);
  original.observe(1.0);
  StateWriter w;
  original.save_state(w);
  const auto bytes = w.finish();
  SloWindow other(16);
  StateReader r(bytes);
  EXPECT_THROW(other.load_state(r), std::runtime_error);
}

TEST(SloWindow, ZeroCapacityRejected) {
  EXPECT_THROW(SloWindow window(0), std::invalid_argument);
}

// ---- OverloadGovernor -------------------------------------------------------

OverloadConfig governor_config() {
  OverloadConfig config;
  config.governor_enabled = true;
  config.high_watermark = 2.0;  // pressure = load_ratio / 2
  config.enter_level1 = 1.0;
  config.enter_level2 = 1.5;
  config.enter_level3 = 2.0;
  config.exit_ratio = 0.8;
  config.dwell_evaluations = 2;
  return config;
}

TEST(OverloadGovernor, ClimbsOneRungPerDwellPeriod) {
  const OverloadConfig config = governor_config();
  OverloadGovernor governor(config);
  const SloWindow window(16);  // empty: pressure is load-only
  const double load = 10.0;    // pressure 5.0: argues for rung 3 immediately
  EXPECT_EQ(governor.evaluate(load, window), 0);  // dwell 1 of 2
  EXPECT_EQ(governor.evaluate(load, window), 1);  // moved ONE rung, not three
  EXPECT_EQ(governor.evaluate(load, window), 1);
  EXPECT_EQ(governor.evaluate(load, window), 2);
  EXPECT_EQ(governor.evaluate(load, window), 2);
  EXPECT_EQ(governor.evaluate(load, window), 3);
  EXPECT_EQ(governor.evaluate(load, window), 3);  // saturates at the top
}

TEST(OverloadGovernor, DescendsWithDwellWhenPressureClears) {
  const OverloadConfig config = governor_config();
  OverloadGovernor governor(config);
  const SloWindow window(16);
  for (int i = 0; i < 6; ++i) (void)governor.evaluate(10.0, window);
  ASSERT_EQ(governor.level(), 3);
  // Pressure 0: argues for rung 0, but the ladder steps down one at a time.
  EXPECT_EQ(governor.evaluate(0.0, window), 3);
  EXPECT_EQ(governor.evaluate(0.0, window), 2);
  EXPECT_EQ(governor.evaluate(0.0, window), 2);
  EXPECT_EQ(governor.evaluate(0.0, window), 1);
  EXPECT_EQ(governor.evaluate(0.0, window), 1);
  EXPECT_EQ(governor.evaluate(0.0, window), 0);
}

TEST(OverloadGovernor, HysteresisBandHoldsTheRung) {
  const OverloadConfig config = governor_config();
  OverloadGovernor governor(config);
  const SloWindow window(16);
  // Climb to rung 1 (enter_level1 = 1.0 → load 2.0 is exactly the gate).
  (void)governor.evaluate(2.0, window);
  (void)governor.evaluate(2.0, window);
  ASSERT_EQ(governor.level(), 1);
  // Pressure 0.9 is below the entry gate but above the exit gate
  // (1.0 * exit_ratio = 0.8): the rung holds no matter how long.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(governor.evaluate(1.8, window), 1);
  // Pressure 0.75 is through the exit gate: rung drops after the dwell.
  (void)governor.evaluate(1.5, window);
  EXPECT_EQ(governor.evaluate(1.5, window), 0);
}

TEST(OverloadGovernor, FlappingTargetNeverMoves) {
  const OverloadConfig config = governor_config();
  OverloadGovernor governor(config);
  const SloWindow window(16);
  // The dwell counter resets whenever the argued direction changes, so an
  // alternating pressure cannot accumulate enough agreement to transition.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(governor.evaluate(i % 2 == 0 ? 10.0 : 0.0, window), 0);
  }
}

TEST(OverloadGovernor, SloPressureEngagesAfterMinSamples) {
  OverloadConfig config = governor_config();
  config.slo_target_p99_seconds = 10.0;
  config.slo_min_samples = 4;
  OverloadGovernor governor(config);
  SloWindow window(16);
  // Load is trivial; response times are 5x the target — but with fewer
  // than min_samples observations the SLO term stays out of the pressure.
  for (int i = 0; i < 3; ++i) window.observe(50.0);
  (void)governor.evaluate(0.1, window);
  EXPECT_LT(governor.last_pressure(), 1.0);
  window.observe(50.0);  // 4th sample: p99/target = 5.0 takes over
  (void)governor.evaluate(0.1, window);
  EXPECT_DOUBLE_EQ(governor.last_pressure(), 5.0);
}

TEST(OverloadGovernor, StateSurvivesSaveLoadMidDwell) {
  const OverloadConfig config = governor_config();
  OverloadGovernor original(config);
  const SloWindow window(16);
  (void)original.evaluate(10.0, window);  // mid-dwell toward rung 1
  StateWriter w;
  original.save_state(w);
  const auto bytes = w.finish();
  OverloadGovernor restored(config);
  StateReader r(bytes);
  restored.load_state(r);
  r.expect_done();
  // The very next evaluation completes the dwell in both.
  EXPECT_EQ(original.evaluate(10.0, window), restored.evaluate(10.0, window));
  EXPECT_EQ(original.level(), 1);
  EXPECT_EQ(restored.level(), 1);
}

// ---- Session-level: flash crowd, shed accounting, bit-identity --------------

ServiceConfig overloaded_service(bool protection) {
  ServiceConfig config;
  config.policy = "dollymp2";
  config.sim.seed = 5;
  config.pump_slots = 64;
  config.arrivals.rate_per_second = 0.25;
  config.arrivals.mean_input_gb = 3.0;
  config.arrivals.seed = 17;
  // 5x surge through the middle of the run — enough to swamp paper30.
  config.arrivals.flash_multiplier = 5.0;
  config.arrivals.flash_start_seconds = 2000.0;
  config.arrivals.flash_duration_seconds = 10000.0;
  if (protection) {
    config.overload.admission_enabled = true;
    config.overload.high_watermark = 2.0;
    config.overload.low_watermark = 1.0;
    config.overload.shed_fraction = 1.0;
    config.overload.num_tenant_classes = 4;
    config.overload.protected_classes = 1;
  }
  return config;
}

TEST(OverloadSession, FlashCrowdShedAccountingIsExact) {
  const SimTime horizon = 1500;
  Session unprotected(Cluster::paper30(), overloaded_service(false));
  Session protected_session(Cluster::paper30(), overloaded_service(true));
  unprotected.run_until(horizon);
  protected_session.run_until(horizon);

  // Conservation: both sessions saw the identical arrival stream (same
  // source seed), and every emitted arrival is either ingested or shed —
  // none vanish, none double-count.
  EXPECT_EQ(unprotected.arrivals_shed(), 0);
  EXPECT_EQ(protected_session.totals().jobs_ingested + protected_session.arrivals_shed(),
            unprotected.totals().jobs_ingested);
  EXPECT_GT(protected_session.arrivals_shed(), 0);

  // The per-reason counters sum to the aggregate.
  const SimStats& stats = protected_session.core().stats();
  EXPECT_EQ(stats.arrivals_shed_admission + stats.arrivals_shed_watermark +
                stats.arrivals_shed_overload,
            protected_session.arrivals_shed());

  // Bounded growth: the protected backlog stays near the watermark band
  // while the unprotected one runs away with the surge.
  EXPECT_LT(protected_session.live_jobs(), unprotected.live_jobs());
  EXPECT_LT(protected_session.load_ratio(), 3.0);
}

TEST(OverloadSession, ShedDecisionsIndependentOfRunUntilGranularity) {
  // The decision stream is a pure function of (config, horizon sequence):
  // as long as every horizon lands on a pump boundary, one big run_until
  // and many small ones produce identical chunking and must not move a
  // single shed decision.  This is the property the supervisor's
  // bit-identical recovery stands on (stride % pump == 0).
  const ServiceConfig config = overloaded_service(true);  // pump_slots = 64
  Session a(Cluster::paper30(), config);
  Session b(Cluster::paper30(), config);
  a.run_until(1280);
  for (SimTime t = 320; t <= 1280; t += 320) b.run_until(t);
  EXPECT_EQ(a.stream_hash(), b.stream_hash());
  EXPECT_EQ(a.arrivals_shed(), b.arrivals_shed());
}

ServiceConfig everything_on_service() {
  ServiceConfig config = overloaded_service(true);
  config.overload.bucket_rate_per_second = 0.4;
  config.overload.bucket_burst = 16.0;
  config.overload.governor_enabled = true;
  config.overload.slo_target_p99_seconds = 400.0;
  config.overload.slo_window_size = 128;
  config.overload.slo_min_samples = 32;
  config.sim.failures.enabled = true;
  config.sim.failures.mean_time_to_failure_seconds = 900.0;
  config.sim.failures.mean_repair_seconds = 120.0;
  return config;
}

TEST(OverloadSession, CheckpointRestoreBitIdenticalWithAllKnobsOn) {
  const std::string path = testing::TempDir() + "/dollymp_overload_ckpt.bin";
  const ServiceConfig config = everything_on_service();
  Session original(Cluster::paper30(), config);
  original.run_until(1024);
  original.checkpoint(path);
  auto restored = Session::restore(Cluster::paper30(), config, path);
  EXPECT_EQ(restored->clock(), original.clock());
  EXPECT_EQ(restored->overload_level(), original.overload_level());
  EXPECT_EQ(restored->arrivals_shed(), original.arrivals_shed());

  original.run_until(2048);
  restored->run_until(2048);
  EXPECT_EQ(restored->stream_hash(), original.stream_hash());
  EXPECT_EQ(restored->records_written(), original.records_written());
  EXPECT_EQ(restored->arrivals_shed(), original.arrivals_shed());
  EXPECT_EQ(restored->totals().jobs_completed, original.totals().jobs_completed);
  std::remove(path.c_str());
}

TEST(OverloadSession, GovernorClimbsAndDegradationShowsInStats) {
  ServiceConfig config = everything_on_service();
  config.overload.admission_enabled = false;  // let the backlog actually build
  config.sim.failures.enabled = false;
  Session session(Cluster::paper30(), config);
  session.run_until(1500);
  const SimStats& stats = session.core().stats();
  // The surge must have pushed the ladder off the ground floor at least
  // once, and every transition is accounted.
  EXPECT_GT(stats.overload_transitions, 0);
  EXPECT_GE(stats.overload_level_max, 1);
  EXPECT_GE(stats.overload_level_max, session.overload_level());
}

TEST(OverloadSession, KnobsOffMatchesPlainSession) {
  // A default OverloadConfig must be a byte-for-byte no-op: same stream,
  // same totals as a session that predates the overload layer entirely.
  ServiceConfig plain = overloaded_service(false);
  ServiceConfig wired = overloaded_service(false);
  wired.overload = OverloadConfig{};  // explicit defaults
  Session a(Cluster::paper30(), plain);
  Session b(Cluster::paper30(), wired);
  a.run_until(1024);
  b.run_until(1024);
  EXPECT_EQ(a.stream_hash(), b.stream_hash());
  EXPECT_EQ(a.records_written(), b.records_written());
  EXPECT_EQ(a.arrivals_shed(), 0);
}

}  // namespace
}  // namespace dollymp
