#include "dollymp/common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dollymp {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(7);
  const auto first = rng();
  rng.reseed(7);
  EXPECT_EQ(rng(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(13), 13u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BelowRoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.range(-2, 2);
    ASSERT_GE(x, -2);
    ASSERT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
  Rng rng2(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.chance(0.0));
  }
}

TEST(Rng, SplitIsDeterministicAndIndependent) {
  const Rng parent(31);
  Rng child1 = parent.split(1);
  Rng child1_again = parent.split(1);
  Rng child2 = parent.split(2);
  EXPECT_EQ(child1(), child1_again());
  // Different tags give different streams.
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_LT(equal, 3);
  (void)child2;
}

TEST(Rng, SplitmixIsPure) {
  std::uint64_t s1 = 5;
  std::uint64_t s2 = 5;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace dollymp
