// Machine-failure injection: servers crash and recover; killed tasks are
// re-placed; all invariants survive.
#include <gtest/gtest.h>

#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

SimConfig failing_config(std::uint64_t seed, double mtbf, double repair) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = mtbf;
  config.failures.mean_repair_seconds = repair;
  return config;
}

std::vector<JobSpec> workload(int count) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 5, {2, 4}, 40.0, 20.0, i * 15.0));
  }
  return jobs;
}

TEST(Failures, AllJobsStillComplete) {
  // Aggressive failures: MTBF comparable to task durations.
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  DollyMPScheduler scheduler;
  const SimResult result =
      simulate(cluster, failing_config(1, 300.0, 60.0), workload(30), scheduler);
  ASSERT_EQ(result.jobs.size(), 30u);
  for (const auto& j : result.jobs) {
    EXPECT_GT(j.finish_seconds, j.arrival_seconds);
  }
}

TEST(Failures, DeterministicGivenSeed) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  DollyMPScheduler s1;
  DollyMPScheduler s2;
  const auto jobs = workload(20);
  const SimResult a = simulate(cluster, failing_config(5, 400.0, 100.0), jobs, s1);
  const SimResult b = simulate(cluster, failing_config(5, 400.0, 100.0), jobs, s2);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds);
  }
}

TEST(Failures, FailuresProlongJobs) {
  // On average, a failing cluster should complete the workload later than a
  // healthy one (re-execution costs time).
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  double failing_total = 0.0;
  double healthy_total = 0.0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    DollyMPScheduler s1;
    DollyMPScheduler s2;
    const auto jobs = workload(15);
    failing_total +=
        simulate(cluster, failing_config(seed, 250.0, 120.0), jobs, s1).total_flowtime();
    SimConfig healthy = failing_config(seed, 250.0, 120.0);
    healthy.failures.enabled = false;
    healthy_total += simulate(cluster, healthy, jobs, s2).total_flowtime();
  }
  EXPECT_GT(failing_total, healthy_total);
}

TEST(Failures, CapacityInvariantHoldsUnderChurn) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  SimConfig config = failing_config(7, 200.0, 80.0);
  config.record_utilization = true;
  TetrisScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(25), scheduler);
  for (const auto& u : result.utilization) {
    ASSERT_LE(u.cpu, 1.0 + 1e-9);
    ASSERT_LE(u.mem, 1.0 + 1e-9);
  }
}

TEST(Failures, WorkBasedModelSurvivesFailures) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  SimConfig config = failing_config(9, 300.0, 100.0);
  config.model = ExecutionModel::kWorkBased;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(15), scheduler);
  ASSERT_EQ(result.jobs.size(), 15u);
}

TEST(Failures, SpeculativeBaselineSurvivesFailures) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  CapacityScheduler scheduler;
  const SimResult result =
      simulate(cluster, failing_config(11, 350.0, 90.0), workload(20), scheduler);
  ASSERT_EQ(result.jobs.size(), 20u);
}

TEST(Failures, DownServerRefusesPlacement) {
  Cluster cluster;
  cluster.add_server(ServerSpec{{8, 16}, 1.0, 0, "s"});
  Server& server = cluster.server(0);
  EXPECT_TRUE(server.can_fit({1, 1}));
  server.set_down(true);
  EXPECT_TRUE(server.is_down());
  EXPECT_FALSE(server.can_fit({1, 1}));
  EXPECT_FALSE(server.allocate({1, 1}));
  server.set_down(false);
  EXPECT_TRUE(server.allocate({1, 1}));
  server.reset();
  EXPECT_FALSE(server.is_down());
}

TEST(Failures, SingleServerClusterRecovers) {
  // Everything dies with the only server; jobs must still finish after the
  // repair.
  const Cluster cluster = Cluster::single({8, 16});
  DollyMPScheduler scheduler;
  const SimResult result =
      simulate(cluster, failing_config(13, 150.0, 50.0), workload(5), scheduler);
  ASSERT_EQ(result.jobs.size(), 5u);
}

}  // namespace
}  // namespace dollymp
