// Shared construction code for the data-layout equivalence gate.
//
// The struct-of-arrays overhaul (RuntimeStore / CopySlab / ServerTable)
// must not change a single scheduling decision: the acceptance bar is
// bit-identical flight-recorder streams against the pre-refactor
// object-per-entity layout.  This header builds the paired-seed matrix —
// 9 policies x {paper30, 3K google-trace} x faults on/off — and both the
// golden-hash generator (run against the old layout) and the permanent
// regression test (run against every future build) include it, so the two
// sides are guaranteed to construct the same runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/carbyne.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sched/drf.h"
#include "dollymp/sched/hopper.h"
#include "dollymp/sched/simple_priority.h"
#include "dollymp/sched/tetris.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"

namespace dollymp::layout_golden {

struct PolicyEntry {
  const char* name;
  SchedulerFactory factory;
};

inline std::vector<PolicyEntry> all_policies() {
  std::vector<PolicyEntry> policies;
  policies.push_back({"capacity", [] { return std::make_unique<CapacityScheduler>(); }});
  policies.push_back({"drf", [] { return std::make_unique<DrfScheduler>(); }});
  policies.push_back({"tetris", [] { return std::make_unique<TetrisScheduler>(); }});
  policies.push_back({"carbyne", [] { return std::make_unique<CarbyneScheduler>(); }});
  policies.push_back({"srpt", [] {
                        SimplePriorityConfig config;
                        config.rule = SimplePriorityRule::kSrpt;
                        return std::make_unique<SimplePriorityScheduler>(config);
                      }});
  policies.push_back({"svf", [] {
                        SimplePriorityConfig config;
                        config.rule = SimplePriorityRule::kSvf;
                        return std::make_unique<SimplePriorityScheduler>(config);
                      }});
  policies.push_back({"hopper", [] { return std::make_unique<HopperScheduler>(); }});
  policies.push_back({"dollymp0", [] {
                        DollyMPConfig config;
                        config.clone_budget = 0;
                        return std::make_unique<DollyMPScheduler>(config);
                      }});
  policies.push_back({"dollymp2", [] {
                        DollyMPConfig config;
                        config.clone_budget = 2;
                        return std::make_unique<DollyMPScheduler>(config);
                      }});
  return policies;
}

/// Small heterogeneous workload for the paper30 inventory (the test_replay
/// shape: high-sigma phases so cloning and speculation fire).
inline std::vector<JobSpec> paper_workload() {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 8, {1, 1}, 20.0, 30.0));
  }
  assign_poisson_arrivals(jobs, 15.0, 109);
  return jobs;
}

/// Wider-demand workload for the 3K-server google-trace inventory: task
/// counts and demand vectors cycle so every machine shape participates.
inline std::vector<JobSpec> trace_workload() {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    const int tasks = 16 + 8 * (i % 4);
    const Resources demand =
        (i % 3 == 0) ? Resources{2, 8} : (i % 3 == 1) ? Resources{4, 16} : Resources{8, 24};
    const double theta = 30.0 + 15.0 * (i % 5);
    jobs.push_back(JobSpec::single_phase(i, tasks, demand, theta, theta * 1.2));
  }
  assign_poisson_arrivals(jobs, 20.0, 211);
  return jobs;
}

inline SimConfig matrix_config(bool faults) {
  SimConfig config;
  config.slot_seconds = 1.0;
  config.seed = 42;
  if (faults) {
    config.failures.enabled = true;
    config.failures.mean_time_to_failure_seconds = 400.0;
    config.failures.mean_repair_seconds = 60.0;
    config.faults.fail_slow.enabled = true;
    config.faults.fail_slow.slowdown_factor = 3.0;
    config.faults.fail_slow.time_to_onset.mean_seconds = 500.0;
    config.faults.fail_slow.recovery.mean_seconds = 250.0;
    config.faults.copy.enabled = true;
    config.faults.copy.inter_fault.mean_seconds = 90.0;
  }
  return config;
}

struct MatrixRun {
  std::string label;
  std::uint64_t hash = 0;
  std::uint64_t records = 0;
};

/// Every run of the paired-seed matrix, in fixed order.  `runner` receives
/// (label, cluster, config, jobs, factory) and returns the stream hash and
/// record count.
template <typename Runner>
std::vector<MatrixRun> run_matrix(Runner&& runner) {
  std::vector<MatrixRun> out;
  const Cluster paper = Cluster::paper30();
  const Cluster trace = Cluster::google_trace(3000);
  const auto paper_jobs = paper_workload();
  const auto trace_jobs = trace_workload();
  for (const auto& policy : all_policies()) {
    for (const bool faults : {false, true}) {
      for (const bool big : {false, true}) {
        MatrixRun run;
        run.label = std::string(policy.name) + (big ? "/google3k" : "/paper30") +
                    (faults ? "/faults" : "/healthy");
        const auto [hash, records] =
            runner(big ? trace : paper, matrix_config(faults),
                   big ? trace_jobs : paper_jobs, policy.factory);
        run.hash = hash;
        run.records = records;
        out.push_back(std::move(run));
      }
    }
  }
  return out;
}

}  // namespace dollymp::layout_golden
