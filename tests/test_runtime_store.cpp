// Differential fuzz for the struct-of-arrays storage layer.
//
// Three layers, each fuzzed against an independent reference model:
//
//   1. CopySlab/CopyList vs std::vector<CopyRuntime> — random interleaved
//      push_back / clear / release_storage / reserve across many lists
//      sharing one slab, with content equality checked after every
//      operation.  Also proves the recycling contract: a warm slab serves
//      steady-state churn from its free lists without new blocks.
//   2. ServerTable-backed Server views vs a plain struct mirror — random
//      allocate / release / copy-counter / flag traffic.
//   3. The full simulator across random scenarios x threads {1, 4} —
//      recorder streams bit-identical and SimStats equal field by field
//      (the test_parallel_fuzz pattern, aimed at the new layout's sharded
//      reads over dense arrays).
#include "dollymp/sim/runtime_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dollymp/cluster/cluster.h"
#include "dollymp/common/rng.h"
#include "dollymp/obs/recorder.h"
#include "dollymp/obs/replay.h"
#include "dollymp/sim/copy_slab.h"
#include "dollymp/sim/simulator.h"
#include "dollymp/workload/arrivals.h"
#include "dollymp/workload/trace_model.h"
#include "layout_golden_matrix.h"

namespace dollymp {
namespace {

// ---------------------------------------------------------------------------
// 1. CopySlab / CopyList vs std::vector mirror
// ---------------------------------------------------------------------------

CopyRuntime make_copy(Rng& rng) {
  CopyRuntime copy;
  copy.server = static_cast<ServerId>(rng.below(1000));
  copy.start = static_cast<SimTime>(rng.below(10000));
  copy.finish = static_cast<SimTime>(rng.below(20000));
  copy.locality = rng.chance(0.5) ? LocalityLevel::kNode : LocalityLevel::kRack;
  copy.active = rng.chance(0.5);
  copy.killed = rng.chance(0.2);
  copy.base_seconds = rng.uniform(1.0, 100.0);
  return copy;
}

void expect_lists_equal(const CopyList& list, const std::vector<CopyRuntime>& mirror,
                        const std::string& label) {
  ASSERT_EQ(list.size(), mirror.size()) << label;
  for (std::size_t i = 0; i < mirror.size(); ++i) {
    EXPECT_EQ(list[i].server, mirror[i].server) << label << " [" << i << "]";
    EXPECT_EQ(list[i].start, mirror[i].start) << label << " [" << i << "]";
    EXPECT_EQ(list[i].finish, mirror[i].finish) << label << " [" << i << "]";
    EXPECT_EQ(list[i].locality, mirror[i].locality) << label << " [" << i << "]";
    EXPECT_EQ(list[i].active, mirror[i].active) << label << " [" << i << "]";
    EXPECT_EQ(list[i].killed, mirror[i].killed) << label << " [" << i << "]";
    EXPECT_EQ(list[i].base_seconds, mirror[i].base_seconds) << label << " [" << i << "]";
  }
}

TEST(CopySlabFuzz, ListsMatchVectorMirror) {
  CopySlab slab;
  constexpr int kLists = 64;
  std::vector<CopyList> lists(kLists);
  std::vector<std::vector<CopyRuntime>> mirrors(kLists);
  for (auto& list : lists) list.bind(&slab);

  Rng rng(0x51ab);
  for (int op = 0; op < 20000; ++op) {
    const std::size_t i = rng.below(kLists);
    const std::string label = "op " + std::to_string(op);
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.70) {
      const CopyRuntime copy = make_copy(rng);
      lists[i].push_back(copy);
      mirrors[i].push_back(copy);
    } else if (roll < 0.80) {
      lists[i].clear();
      mirrors[i].clear();
    } else if (roll < 0.90) {
      lists[i].release_storage();
      mirrors[i].clear();
    } else {
      const std::size_t n = rng.below(16);
      lists[i].reserve(n);  // mirror unaffected: capacity-only
    }
    expect_lists_equal(lists[i], mirrors[i], label);
    // back() and pointer-difference indexing, the idioms the scheduler
    // leans on across extent growth.
    if (!mirrors[i].empty()) {
      EXPECT_EQ(lists[i].back().base_seconds, mirrors[i].back().base_seconds) << label;
      const CopyRuntime& last = lists[i][lists[i].size() - 1];
      EXPECT_EQ(static_cast<std::size_t>(&last - lists[i].data()), lists[i].size() - 1)
          << label;
    }
  }
  const auto& counters = slab.counters();
  EXPECT_GT(counters.acquires, 0u);
  EXPECT_GT(counters.reuses, 0u);  // release_storage churn must recycle
  EXPECT_GT(slab.memory_bytes(), 0u);
}

TEST(CopySlabFuzz, WarmSlabServesChurnWithoutNewBlocks) {
  CopySlab slab;
  Rng rng(0x3417);
  // Warm-up: a generation of lists at the steady-state copy count.
  constexpr int kGeneration = 32;
  constexpr int kCopies = 6;
  const auto run_generation = [&] {
    std::vector<CopyList> lists(kGeneration);
    for (auto& list : lists) {
      list.bind(&slab);
      for (int c = 0; c < kCopies; ++c) list.push_back(make_copy(rng));
    }
    // Lists destruct here -> extents return to the free lists.
  };
  run_generation();
  const std::uint64_t warm_blocks = slab.counters().block_allocations;
  for (int generation = 0; generation < 50; ++generation) run_generation();
  EXPECT_EQ(slab.counters().block_allocations, warm_blocks)
      << "steady-state churn allocated fresh blocks";
  EXPECT_GT(slab.counters().reuses, 0u);
}

TEST(CopySlabFuzz, OversizedExtentThrows) {
  CopySlab slab;
  EXPECT_THROW((void)slab.acquire(CopySlab::kBlockCopies + 1), std::length_error);
}

// ---------------------------------------------------------------------------
// 2. ServerTable vs per-object mirror
// ---------------------------------------------------------------------------

struct MirrorServer {
  Resources capacity;
  Resources used;
  double base_speed = 1.0;
  double slow_factor = 1.0;
  int rack = 0;
  int running_copies = 0;
  bool down = false;
  bool quarantined = false;

  bool can_fit(const Resources& demand) const {
    return !down && !quarantined && (used + demand).fits_within(capacity);
  }
  bool allocate(const Resources& demand) {
    if (!can_fit(demand)) return false;
    used += demand;
    return true;
  }
  void release(const Resources& demand) { used = (used - demand).clamped(); }
};

TEST(ServerTableFuzz, ViewsMatchStructMirror) {
  Rng rng(0x7ab1e);
  Cluster cluster;
  std::vector<MirrorServer> mirror;
  constexpr int kServers = 40;
  for (int i = 0; i < kServers; ++i) {
    ServerSpec spec;
    spec.capacity = {static_cast<double>(rng.range(4, 32)),
                     static_cast<double>(rng.range(8, 64))};
    spec.base_speed = rng.uniform(0.5, 2.0);
    spec.rack = static_cast<int>(rng.below(4));
    spec.model = (i % 3 == 0) ? "m-a" : (i % 3 == 1) ? "m-b" : "m-c";
    cluster.add_server(spec);
    MirrorServer m;
    m.capacity = spec.capacity;
    m.base_speed = spec.base_speed;
    m.rack = spec.rack;
    mirror.push_back(m);
  }
  EXPECT_EQ(cluster.table().distinct_models(), 3u);

  for (int op = 0; op < 20000; ++op) {
    const std::size_t i = rng.below(kServers);
    Server& server = cluster.server(i);
    MirrorServer& m = mirror[i];
    const std::string label = "op " + std::to_string(op);
    const double roll = rng.uniform(0.0, 1.0);
    const Resources demand = {static_cast<double>(rng.range(1, 8)),
                              static_cast<double>(rng.range(1, 16))};
    if (roll < 0.40) {
      EXPECT_EQ(server.allocate(demand), m.allocate(demand)) << label;
    } else if (roll < 0.60) {
      // Only release what is actually held (the simulator's contract).
      if (demand.fits_within(m.used)) {
        server.release(demand);
        m.release(demand);
        if (m.running_copies > 0) {
          server.note_copy_finished();
          --m.running_copies;
        }
      }
    } else if (roll < 0.70) {
      server.note_copy_started();
      ++m.running_copies;
    } else if (roll < 0.80) {
      const bool down = rng.chance(0.5);
      server.set_down(down);
      m.down = down;
    } else if (roll < 0.90) {
      const bool q = rng.chance(0.5);
      server.set_quarantined(q);
      m.quarantined = q;
    } else {
      const double f = rng.chance(0.5) ? 1.0 : rng.uniform(1.5, 4.0);
      server.set_slow_factor(f);
      m.slow_factor = f;
    }
    EXPECT_EQ(server.used().cpu(), m.used.cpu()) << label;
    EXPECT_EQ(server.used().mem(), m.used.mem()) << label;
    EXPECT_EQ(server.is_down(), m.down) << label;
    EXPECT_EQ(server.is_quarantined(), m.quarantined) << label;
    EXPECT_EQ(server.slow_factor(), m.slow_factor) << label;
    EXPECT_EQ(server.can_fit(demand), m.can_fit(demand)) << label;
    EXPECT_EQ(server.base_speed(), m.base_speed) << label;
    EXPECT_EQ(server.rack(), m.rack) << label;
  }
}

TEST(ServerTableFuzz, ModelInterningDeduplicates) {
  Cluster cluster;
  for (int i = 0; i < 100; ++i) {
    ServerSpec spec;
    spec.capacity = {8, 16};
    spec.model = (i % 2 == 0) ? "xeon" : "epyc";
    cluster.add_server(spec);
  }
  EXPECT_EQ(cluster.table().distinct_models(), 2u);
  EXPECT_EQ(cluster.server(0).model(), "xeon");
  EXPECT_EQ(cluster.server(1).model(), "epyc");
  EXPECT_EQ(cluster.server(0).model_id(), cluster.server(2).model_id());
  EXPECT_NE(cluster.server(0).model_id(), cluster.server(1).model_id());
}

// ---------------------------------------------------------------------------
// 3. Randomized end-to-end: policies x faults x threads {1, 4}
// ---------------------------------------------------------------------------

/// Field-by-field SimStats equality (the test_parallel_equivalence list,
/// including the layout counters; peak_rss/wall_clock excluded as
/// host-dependent, parallel_* as shard geometry).
void expect_stats_equal(const SimStats& a, const SimStats& b, const std::string& label) {
#define DMP_EXPECT_FIELD(field) EXPECT_EQ(a.field, b.field) << label << ": " #field
  DMP_EXPECT_FIELD(scheduler_invocations);
  DMP_EXPECT_FIELD(slots_visited);
  DMP_EXPECT_FIELD(slots_fast_forwarded);
  DMP_EXPECT_FIELD(events_copy_finish);
  DMP_EXPECT_FIELD(events_work_finish);
  DMP_EXPECT_FIELD(events_server_failure);
  DMP_EXPECT_FIELD(events_server_repair);
  DMP_EXPECT_FIELD(events_job_arrival);
  DMP_EXPECT_FIELD(placement_attempts);
  DMP_EXPECT_FIELD(placements_accepted);
  DMP_EXPECT_FIELD(recorder_records);
  DMP_EXPECT_FIELD(recorder_hash);
  DMP_EXPECT_FIELD(copies_finished);
  DMP_EXPECT_FIELD(copies_killed);
  DMP_EXPECT_FIELD(leaked_cpu);
  DMP_EXPECT_FIELD(leaked_mem);
  DMP_EXPECT_FIELD(leaked_active_copies);
  DMP_EXPECT_FIELD(copy_slab_acquires);
  DMP_EXPECT_FIELD(copy_slab_reuses);
  DMP_EXPECT_FIELD(copy_slab_blocks);
  DMP_EXPECT_FIELD(runtime_store_bytes);
  DMP_EXPECT_FIELD(server_table_bytes);
  DMP_EXPECT_FIELD(bytes_per_server);
#undef DMP_EXPECT_FIELD
}

TEST(RuntimeStoreFuzz, RandomScenariosThreads1Vs4) {
  Rng rng(0x570FE);
  const auto policies = layout_golden::all_policies();
  const Cluster cluster = Cluster::paper30();
  for (int trial = 0; trial < 10; ++trial) {
    const auto& policy = policies[rng.below(policies.size())];
    const bool faults = rng.chance(0.5);
    const std::string label = "trial " + std::to_string(trial) + "/" + policy.name +
                              (faults ? "/faults" : "/healthy");
    SCOPED_TRACE(label);

    TraceModelConfig model_config;
    model_config.max_tasks_per_phase = 16;
    TraceModel model(model_config, rng.below(1u << 20));
    auto jobs = model.sample_jobs(static_cast<int>(rng.range(5, 10)));
    assign_poisson_arrivals(jobs, rng.uniform(8.0, 20.0), rng.below(1u << 20));

    SimConfig config = layout_golden::matrix_config(faults);
    config.seed = rng.below(1u << 20) + 1;

    const auto run = [&](int threads, Recorder& rec) {
      SimConfig c = config;
      c.threads = threads;
      c.recorder = &rec;
      auto sched = policy.factory();
      return simulate(cluster, c, jobs, *sched);
    };
    Recorder rec1;
    const SimResult sequential = run(1, rec1);
    Recorder rec4;
    const SimResult parallel = run(4, rec4);

    const DivergenceReport diff = compare_streams(rec1.snapshot(), rec4.snapshot());
    ASSERT_TRUE(diff.identical) << label << "\n" << diff.to_string();
    expect_stats_equal(sequential.stats, parallel.stats, label);
    EXPECT_EQ(sequential.makespan_seconds, parallel.makespan_seconds) << label;
  }
}

// ---------------------------------------------------------------------------
// RuntimeStore lifecycle
// ---------------------------------------------------------------------------

TEST(RuntimeStore, MaterializeMatchesSpecShape) {
  Cluster cluster = Cluster::uniform(4, {8, 16});
  const LocalityModel locality({}, cluster);
  Rng rng(9);
  RuntimeStore store;
  std::vector<JobSpec> specs;
  for (int i = 0; i < 20; ++i) {
    specs.push_back(JobSpec::single_phase(i, 4 + i % 5, {1, 2}, 20.0, 10.0));
  }
  store.reserve_for(specs);
  for (const auto& spec : specs) {
    const std::size_t idx = store.materialize(spec, 1.0, locality, rng);
    EXPECT_EQ(idx + 1, store.jobs().size());
  }
  ASSERT_EQ(store.jobs().size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const JobRuntime& job = store.jobs()[i];
    ASSERT_EQ(job.phases.size(), specs[i].phases.size());
    for (std::size_t p = 0; p < job.phases.size(); ++p) {
      EXPECT_EQ(job.phases[p].tasks.size(),
                static_cast<std::size_t>(specs[i].phases[p].task_count));
      EXPECT_GE(job.phases[p].duration_pool.size(), 16u);
      for (const auto& task : job.phases[p].tasks) {
        EXPECT_EQ(task.copies.slab(), &store.copy_slab());
      }
    }
  }
  EXPECT_GT(store.memory_bytes(), 0u);
  store.clear();
  EXPECT_TRUE(store.jobs().empty());
}

/// Growth past the reserved extent must rebind every view: materialize
/// without reserve_for, forcing relocations mid-stream.
TEST(RuntimeStore, UnreservedGrowthKeepsViewsValid) {
  Cluster cluster = Cluster::uniform(4, {8, 16});
  const LocalityModel locality({}, cluster);
  Rng rng(11);
  RuntimeStore store;
  std::vector<JobSpec> specs;
  specs.reserve(40);  // JobRuntime::spec points into this vector
  for (int i = 0; i < 40; ++i) {
    specs.push_back(JobSpec::single_phase(i, 3 + i % 7, {1, 1}, 15.0, 5.0));
  }
  for (const auto& spec : specs) {
    (void)store.materialize(spec, 1.0, locality, rng);
  }
  for (std::size_t i = 0; i < store.jobs().size(); ++i) {
    const JobRuntime& job = store.jobs()[i];
    for (const auto& phase : job.phases) {
      ASSERT_NE(phase.spec, nullptr);
      EXPECT_EQ(phase.tasks.size(), static_cast<std::size_t>(phase.spec->task_count));
      for (const auto& task : phase.tasks) {
        EXPECT_GE(task.ref.task, 0);
        EXPECT_TRUE(task.copies.empty());
      }
    }
  }
}

}  // namespace
}  // namespace dollymp
