// The fault-injection matrix: Weibull delays, FaultEngine down-source
// bookkeeping, SimConfig validation, and end-to-end behavior of each
// injectable fault class (rack-correlated outages, fail-slow servers,
// transient copy faults) plus their overlap with independent crashes.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dollymp/common/distributions.h"
#include "dollymp/common/rng.h"
#include "dollymp/sched/capacity.h"
#include "dollymp/sched/dollymp.h"
#include "dollymp/sim/faults.h"
#include "dollymp/sim/simulator.h"

namespace dollymp {
namespace {

std::vector<JobSpec> workload(int count) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobSpec::single_phase(i, 5, {2, 4}, 40.0, 20.0, i * 15.0));
  }
  return jobs;
}

SimConfig base_config(std::uint64_t seed) {
  SimConfig config;
  config.slot_seconds = 5.0;
  config.seed = seed;
  config.background.enabled = false;
  config.locality.enabled = false;
  return config;
}

// ---- Weibull delay family --------------------------------------------------

TEST(Weibull, ShapeOneMatchesExponential) {
  // k = 1 degenerates to the exponential: same draws from the same stream.
  const WeibullDist weibull(120.0, 1.0);
  const ExponentialDist exponential(120.0);
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 50; ++i) {
    const double w = weibull.sample(a);
    const double e = exponential.sample(b);
    EXPECT_NEAR(w, e, 1e-9 * e);
  }
}

TEST(Weibull, SampleMeanConverges) {
  Rng rng(7);
  const WeibullDist dist(300.0, 1.5);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += dist.sample(rng);
  EXPECT_NEAR(total / n, 300.0, 10.0);
}

TEST(Weibull, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  const WeibullDist dist(60.0, 2.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist.sample(a), dist.sample(b));
  }
}

TEST(Weibull, ConsumesOneDrawLikeExponential) {
  // Switching delay families must never change the number of RNG draws —
  // that is what keeps the realization comparable across families.
  Rng a(9);
  Rng b(9);
  const WeibullDist weibull(100.0, 0.7);
  const ExponentialDist exponential(100.0);
  (void)weibull.sample(a);
  (void)exponential.sample(b);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(WeibullDist(0.0, 1.5), std::invalid_argument);
  EXPECT_THROW(WeibullDist(-1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(WeibullDist(10.0, 0.0), std::invalid_argument);
}

// ---- SimConfig::validate ---------------------------------------------------

void expect_validate_error(const SimConfig& config, const std::string& needle) {
  try {
    config.validate();
    FAIL() << "expected validate() to reject; wanted message containing '" << needle
           << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(Validate, AcceptsDefaultsAndFullMatrix) {
  SimConfig config;
  EXPECT_NO_THROW(config.validate());
  config.failures.enabled = true;
  config.faults.rack.enabled = true;
  config.faults.fail_slow.enabled = true;
  config.faults.copy.enabled = true;
  EXPECT_NO_THROW(config.validate());
}

TEST(Validate, RejectsBadCoreParameters) {
  SimConfig config;
  config.slot_seconds = 0.0;
  expect_validate_error(config, "slot_seconds must be > 0");
  config = SimConfig{};
  config.max_copies_per_task = 0;
  expect_validate_error(config, "max_copies_per_task must be >= 1");
  config = SimConfig{};
  config.max_slots = 0;
  expect_validate_error(config, "max_slots must be >= 1");
}

TEST(Validate, RejectsBadFaultParameters) {
  SimConfig config;
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 0.0;
  expect_validate_error(config, "mean_time_to_failure_seconds must be > 0");

  config = SimConfig{};
  config.faults.rack.enabled = true;
  config.faults.rack.time_to_failure.mean_seconds = -5.0;
  expect_validate_error(config, "rack time_to_failure mean must be > 0");

  config = SimConfig{};
  config.faults.rack.enabled = true;
  config.faults.rack.repair.dist = FaultDelayDist::kWeibull;
  config.faults.rack.repair.weibull_shape = 0.0;
  expect_validate_error(config, "rack repair Weibull shape must be > 0");

  config = SimConfig{};
  config.faults.fail_slow.enabled = true;
  config.faults.fail_slow.slowdown_factor = 0.5;
  expect_validate_error(config, "slowdown_factor must be >= 1");

  config = SimConfig{};
  config.faults.copy.enabled = true;
  config.faults.copy.inter_fault.mean_seconds = 0.0;
  expect_validate_error(config, "copy-fault inter_fault mean must be > 0");
}

TEST(Validate, RejectsRepairBeyondHorizon) {
  SimConfig config;
  config.failures.enabled = true;
  config.failures.mean_repair_seconds =
      static_cast<double>(config.max_slots) * config.slot_seconds * 2.0;
  expect_validate_error(config, "exceeds the max_slots horizon");
}

// ---- FaultEngine down-source bookkeeping -----------------------------------

TEST(FaultEngine, OverlappingDownSourcesAreIdempotent) {
  const Cluster cluster = Cluster::uniform(4, {8, 16});
  FailureConfig crash;
  crash.enabled = true;
  FaultConfig faults;
  faults.rack.enabled = true;
  Rng rng(1);
  FaultEngine engine(cluster, crash, faults, 5.0, rng);

  // First cause downs the server; the overlapping second cause is absorbed.
  EXPECT_TRUE(engine.mark_down(0, FaultClass::kCrash));
  EXPECT_TRUE(engine.is_down(0));
  EXPECT_FALSE(engine.mark_down(0, FaultClass::kRack));
  // Duplicate failure from the same source is absorbed too.
  EXPECT_FALSE(engine.mark_down(0, FaultClass::kCrash));

  // Clearing one of two causes keeps the server down; clearing the last
  // brings it up exactly once.
  EXPECT_FALSE(engine.mark_up(0, FaultClass::kCrash));
  EXPECT_TRUE(engine.is_down(0));
  EXPECT_TRUE(engine.mark_up(0, FaultClass::kRack));
  EXPECT_FALSE(engine.is_down(0));
  // Repair of an already-up server is a non-edge.
  EXPECT_FALSE(engine.mark_up(0, FaultClass::kRack));
  EXPECT_FALSE(engine.mark_up(0, FaultClass::kCrash));
}

TEST(FaultEngine, RackMembershipCoversCluster) {
  const Cluster cluster = Cluster::paper30();
  FailureConfig crash;
  FaultConfig faults;
  faults.rack.enabled = true;
  Rng rng(2);
  FaultEngine engine(cluster, crash, faults, 5.0, rng);
  ASSERT_EQ(engine.rack_count(), static_cast<int>(cluster.rack_count()));
  std::size_t members = 0;
  for (int r = 0; r < engine.rack_count(); ++r) members += engine.rack_members(r).size();
  EXPECT_EQ(members, cluster.size());
}

// ---- same-slot edge cases ---------------------------------------------------

TEST(FaultEdgeCases, RepairChurnAtSlotGranularity) {
  // Repair delays floor at one slot, so with a tiny mean repair every
  // failure's repair lands as close to it as the clock allows and
  // repair/failure events pile onto the same slots.  The deterministic
  // same-slot order (repairs before failures) must keep the run sound.
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  SimConfig config = base_config(3);
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 60.0;
  config.failures.mean_repair_seconds = 1.0;  // floors to one slot
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(15), scheduler);
  ASSERT_EQ(result.jobs.size(), 15u);
  EXPECT_GT(result.stats.events_server_failure, 0);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);
}

TEST(FaultEdgeCases, RepairChurnIsDeterministic) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  SimConfig config = base_config(4);
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 60.0;
  config.failures.mean_repair_seconds = 1.0;
  const auto jobs = workload(12);
  DollyMPScheduler s1;
  DollyMPScheduler s2;
  const SimResult a = simulate(cluster, config, jobs, s1);
  const SimResult b = simulate(cluster, config, jobs, s2);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds);
  }
  EXPECT_EQ(a.stats.events_server_failure, b.stats.events_server_failure);
  EXPECT_EQ(a.stats.events_server_repair, b.stats.events_server_repair);
}

// ---- rack-correlated outages ------------------------------------------------

TEST(RackFaults, JobsCompleteAndEventsFire) {
  const Cluster cluster = Cluster::paper30();
  SimConfig config = base_config(5);
  config.faults.rack.enabled = true;
  config.faults.rack.time_to_failure.mean_seconds = 120.0;
  config.faults.rack.repair.mean_seconds = 40.0;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(20), scheduler);
  ASSERT_EQ(result.jobs.size(), 20u);
  EXPECT_GT(result.stats.events_rack_failure, 0);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);
}

TEST(RackFaults, OverlapWithCrashesStaysSound) {
  // Crash and rack outages share servers: the down-source mask must absorb
  // overlapping failures and only re-admit a server when the last cause
  // clears.  Soundness shows up as conservation + completion.
  const Cluster cluster = Cluster::paper30();
  SimConfig config = base_config(6);
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 500.0;
  config.failures.mean_repair_seconds = 120.0;
  config.faults.rack.enabled = true;
  config.faults.rack.time_to_failure.mean_seconds = 600.0;
  config.faults.rack.repair.mean_seconds = 150.0;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(20), scheduler);
  ASSERT_EQ(result.jobs.size(), 20u);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
  EXPECT_EQ(result.stats.leaked_cpu, 0.0);
  EXPECT_EQ(result.stats.leaked_mem, 0.0);
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);
  EXPECT_GE(result.stats.events_server_repair + result.stats.events_rack_repair, 1);
}

// ---- fail-slow servers -------------------------------------------------------

TEST(FailSlow, ProlongsJobsOnAverage) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  double slow_total = 0.0;
  double healthy_total = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SimConfig config = base_config(seed);
    config.faults.fail_slow.enabled = true;
    config.faults.fail_slow.slowdown_factor = 6.0;
    config.faults.fail_slow.time_to_onset.mean_seconds = 120.0;
    config.faults.fail_slow.recovery.mean_seconds = 600.0;
    const auto jobs = workload(12);
    DollyMPScheduler s1;
    DollyMPScheduler s2;
    slow_total += simulate(cluster, config, jobs, s1).total_flowtime();
    SimConfig healthy = config;
    healthy.faults.fail_slow.enabled = false;
    healthy_total += simulate(cluster, healthy, jobs, s2).total_flowtime();
  }
  EXPECT_GT(slow_total, healthy_total);
}

TEST(FailSlow, OnsetAndRecoveryEventsBalance) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  SimConfig config = base_config(8);
  config.faults.fail_slow.enabled = true;
  config.faults.fail_slow.time_to_onset.mean_seconds = 200.0;
  config.faults.fail_slow.recovery.mean_seconds = 100.0;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(20), scheduler);
  ASSERT_EQ(result.jobs.size(), 20u);
  EXPECT_GT(result.stats.events_fail_slow_onset, 0);
  // Each recover is preceded by an onset; at most one onset per server can
  // still be pending at run end... but timers keep cycling, so only the
  // ordering invariant holds:
  EXPECT_LE(result.stats.events_fail_slow_recover, result.stats.events_fail_slow_onset);
}

// ---- transient copy faults ---------------------------------------------------

TEST(CopyFaults, KillsCopiesButJobsComplete) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  SimConfig config = base_config(9);
  config.faults.copy.enabled = true;
  config.faults.copy.inter_fault.mean_seconds = 60.0;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(20), scheduler);
  ASSERT_EQ(result.jobs.size(), 20u);
  EXPECT_GT(result.stats.events_copy_fault, 0);
  EXPECT_GT(result.stats.copies_killed_by_faults, 0);
  EXPECT_GT(result.stats.work_seconds_lost, 0.0);
  EXPECT_EQ(result.total_copies_launched,
            result.stats.copies_finished + result.stats.copies_killed);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
}

TEST(CopyFaults, WorkBasedModelSurvives) {
  const Cluster cluster = Cluster::uniform(6, {8, 16});
  SimConfig config = base_config(10);
  config.model = ExecutionModel::kWorkBased;
  config.faults.copy.enabled = true;
  config.faults.copy.inter_fault.mean_seconds = 90.0;
  DollyMPScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(12), scheduler);
  ASSERT_EQ(result.jobs.size(), 12u);
  EXPECT_GT(result.stats.events_copy_fault, 0);
}

// ---- Weibull delays end-to-end ----------------------------------------------

TEST(FaultMatrix, WeibullCrashDelaysAreDeterministic) {
  const Cluster cluster = Cluster::uniform(8, {8, 16});
  SimConfig config = base_config(11);
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 300.0;
  config.failures.mean_repair_seconds = 60.0;
  config.faults.crash_dist = FaultDelayDist::kWeibull;
  config.faults.crash_weibull_shape = 0.8;
  const auto jobs = workload(12);
  DollyMPScheduler s1;
  DollyMPScheduler s2;
  const SimResult a = simulate(cluster, config, jobs, s1);
  const SimResult b = simulate(cluster, config, jobs, s2);
  ASSERT_EQ(a.jobs.size(), 12u);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_seconds, b.jobs[i].finish_seconds);
  }
  EXPECT_GT(a.stats.events_server_failure, 0);
}

TEST(FaultMatrix, BaselineSchedulerSurvivesFullMatrix) {
  // The fault plumbing lives in the simulator, not the policy: a baseline
  // with no resilience hooks must still drive every job to completion.
  const Cluster cluster = Cluster::paper30();
  SimConfig config = base_config(12);
  config.failures.enabled = true;
  config.failures.mean_time_to_failure_seconds = 600.0;
  config.failures.mean_repair_seconds = 120.0;
  config.faults.rack.enabled = true;
  config.faults.fail_slow.enabled = true;
  config.faults.copy.enabled = true;
  config.faults.copy.inter_fault.mean_seconds = 120.0;
  CapacityScheduler scheduler;
  const SimResult result = simulate(cluster, config, workload(15), scheduler);
  ASSERT_EQ(result.jobs.size(), 15u);
  EXPECT_EQ(result.stats.leaked_active_copies, 0);
}

}  // namespace
}  // namespace dollymp
