// Tests for the DMPCKPT01 snapshot framing (common/state_io.h): primitive
// round trips, section markers, and — the part the service layer leans on —
// loud rejection of corrupted, truncated and foreign payloads.
#include "dollymp/common/state_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace dollymp {
namespace {

struct PodRecord {
  std::int32_t a = 0;
  double b = 0.0;
};

std::vector<std::uint8_t> sample_envelope() {
  StateWriter w;
  w.u8(7);
  w.b(true);
  w.u32(0xDEADBEEFu);
  w.i32(-42);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-1);
  w.f64(3.25);
  w.str("hello snapshot");
  PodRecord rec{9, -2.5};
  w.pod(rec);
  w.pod_vec(std::vector<std::int32_t>{1, 2, 3});
  w.section(0x54455354u);
  return w.finish();
}

TEST(StateIo, PrimitivesRoundTrip) {
  const auto bytes = sample_envelope();
  StateReader r(bytes);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello snapshot");
  PodRecord rec;
  r.pod(rec);
  EXPECT_EQ(rec.a, 9);
  EXPECT_DOUBLE_EQ(rec.b, -2.5);
  std::vector<std::int32_t> v;
  r.pod_vec(v);
  EXPECT_EQ(v, (std::vector<std::int32_t>{1, 2, 3}));
  r.section(0x54455354u);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(StateIo, RejectsBadMagic) {
  auto bytes = sample_envelope();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(
      {
        try {
          StateReader r(bytes);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(StateIo, RejectsPayloadCorruption) {
  auto bytes = sample_envelope();
  // Flip one payload bit (past magic+version+length header).
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(
      {
        try {
          StateReader r(bytes);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("hash"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(StateIo, RejectsTruncation) {
  auto bytes = sample_envelope();
  bytes.resize(bytes.size() - 9);
  EXPECT_THROW(StateReader r(bytes), std::runtime_error);
}

TEST(StateIo, RejectsEmptyBuffer) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(StateReader r(empty), std::runtime_error);
}

TEST(StateIo, SectionMismatchThrows) {
  StateWriter w;
  w.section(0x41414141u);
  const auto bytes = w.finish();
  StateReader r(bytes);
  EXPECT_THROW(r.section(0x42424242u), std::runtime_error);
}

TEST(StateIo, PodSizeDriftThrows) {
  StateWriter w;
  w.pod(std::int32_t{5});
  const auto bytes = w.finish();
  StateReader r(bytes);
  std::int64_t wrong = 0;
  EXPECT_THROW(r.pod(wrong), std::runtime_error);
}

TEST(StateIo, ReadPastEndThrows) {
  StateWriter w;
  w.u32(1);
  const auto bytes = w.finish();
  StateReader r(bytes);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::runtime_error);
}

TEST(StateIo, ExpectDoneThrowsOnTrailingBytes) {
  StateWriter w;
  w.u32(1);
  w.u32(2);
  const auto bytes = w.finish();
  StateReader r(bytes);
  (void)r.u32();
  EXPECT_THROW(r.expect_done(), std::runtime_error);
}

TEST(StateIo, ReserveAndPatchLengthSlot) {
  StateWriter w;
  const std::size_t at = w.reserve_u64();
  const std::size_t before = w.size();
  w.str("nested blob");
  w.patch_u64(at, w.size() - before);
  const auto bytes = w.finish();
  StateReader r(bytes);
  const std::uint64_t len = r.u64();
  EXPECT_EQ(len, r.remaining());
  r.skip(static_cast<std::size_t>(len));
  EXPECT_NO_THROW(r.expect_done());
}

TEST(StateIo, FileRoundTripAndIoErrors) {
  const std::string path = testing::TempDir() + "/dollymp_state_io_test.ckpt";
  const auto bytes = sample_envelope();
  write_state_file(path, bytes);
  EXPECT_EQ(read_state_file(path), bytes);
  EXPECT_THROW((void)read_state_file(path + ".does-not-exist"), std::runtime_error);
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

void write_raw(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// Every possible torn write of a snapshot — the file cut at each byte
// boundary — must be rejected by the envelope check, never half-accepted.
// This is the property the crash-recovery path stands on.
TEST(StateIo, TruncationAtEveryByteIsRejected) {
  const auto bytes = sample_envelope();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> torn(bytes.begin(),
                                   bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(StateReader r(torn), std::runtime_error) << "cut at byte " << cut;
  }
  // And the untouched envelope still parses, so the loop above is not
  // passing vacuously.
  EXPECT_NO_THROW(StateReader r(bytes));
}

TEST(StateIo, AtomicWriteLeavesNoTempFile) {
  const std::string path = testing::TempDir() + "/dollymp_atomic_test.ckpt";
  write_state_file(path, sample_envelope());
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  // Overwrite goes through the same temp+rename; the old complete file is
  // only ever replaced by the new complete file.
  StateWriter w;
  w.u32(99);
  write_state_file(path, w.finish());
  EXPECT_FALSE(file_exists(path + ".tmp"));
  StateReader r(read_state_file(path));
  EXPECT_EQ(r.u32(), 99u);
  std::remove(path.c_str());
}

TEST(StateIo, WriteFailureCarriesErrnoText) {
  const std::string path =
      testing::TempDir() + "/dollymp_no_such_dir_xyzzy/nested.ckpt";
  try {
    write_state_file(path, sample_envelope());
    FAIL() << "write into a missing directory should throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    // The message must carry the OS's explanation (strerror), not just
    // "failed" — "No such file or directory" on POSIX.
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(StateIo, RotationKeepsTwoGenerationsAndPicksLatest) {
  const std::string base = testing::TempDir() + "/dollymp_rotation_a";
  SnapshotRotation rotation(base);
  EXPECT_EQ(rotation.newest_valid(), "");  // nothing written yet

  StateWriter w1;
  w1.u32(1);
  rotation.write(w1.finish());
  EXPECT_EQ(rotation.newest_valid(), rotation.latest_path());

  StateWriter w2;
  w2.u32(2);
  rotation.write(w2.finish());
  StateReader latest(read_state_file(rotation.latest_path()));
  EXPECT_EQ(latest.u32(), 2u);
  StateReader prev(read_state_file(rotation.previous_path()));
  EXPECT_EQ(prev.u32(), 1u);
  EXPECT_EQ(rotation.newest_valid(), rotation.latest_path());
  EXPECT_EQ(rotation.quarantined_count(), 0);

  std::remove(rotation.latest_path().c_str());
  std::remove(rotation.previous_path().c_str());
}

TEST(StateIo, RotationQuarantinesCorruptLatestAndFallsBack) {
  const std::string base = testing::TempDir() + "/dollymp_rotation_b";
  SnapshotRotation rotation(base);
  StateWriter w1;
  w1.u32(1);
  rotation.write(w1.finish());
  StateWriter w2;
  w2.u32(2);
  rotation.write(w2.finish());

  // Corrupt the newest generation in place (payload bit flip).
  auto corrupt = read_state_file(rotation.latest_path());
  corrupt[corrupt.size() / 2] ^= 0x01;
  write_raw(rotation.latest_path(), corrupt);

  // Recovery walks past it to the previous generation and moves the bad
  // file out of the rotation under a quarantine name.
  EXPECT_EQ(rotation.newest_valid(), rotation.previous_path());
  EXPECT_EQ(rotation.quarantined_count(), 1);
  const std::string jail = rotation.latest_path() + ".quarantined.0";
  EXPECT_TRUE(file_exists(jail));
  EXPECT_FALSE(file_exists(rotation.latest_path()));
  EXPECT_TRUE(SnapshotRotation::is_quarantined_path(jail));
  EXPECT_FALSE(SnapshotRotation::is_quarantined_path(rotation.latest_path()));

  // A second corruption of the same generation gets a fresh jail name —
  // forensic evidence is never overwritten.
  write_raw(rotation.latest_path(), corrupt);
  EXPECT_EQ(rotation.newest_valid(), rotation.previous_path());
  EXPECT_TRUE(file_exists(rotation.latest_path() + ".quarantined.1"));

  std::remove(rotation.previous_path().c_str());
  std::remove(jail.c_str());
  std::remove((rotation.latest_path() + ".quarantined.1").c_str());
}

TEST(StateIo, RotationWithBothGenerationsCorruptReportsNone) {
  const std::string base = testing::TempDir() + "/dollymp_rotation_c";
  SnapshotRotation rotation(base);
  StateWriter w1;
  w1.u32(1);
  rotation.write(w1.finish());
  StateWriter w2;
  w2.u32(2);
  rotation.write(w2.finish());

  for (const std::string& path :
       {rotation.latest_path(), rotation.previous_path()}) {
    auto corrupt = read_state_file(path);
    corrupt[corrupt.size() / 2] ^= 0x01;
    write_raw(path, corrupt);
  }
  EXPECT_EQ(rotation.newest_valid(), "");
  EXPECT_EQ(rotation.quarantined_count(), 2);

  std::remove((rotation.latest_path() + ".quarantined.0").c_str());
  std::remove((rotation.previous_path() + ".quarantined.0").c_str());
}

TEST(StateIo, RotationRejectsEmptyBasePath) {
  EXPECT_THROW(SnapshotRotation rotation(""), std::invalid_argument);
}

}  // namespace
}  // namespace dollymp
