// Tests for the DMPCKPT01 snapshot framing (common/state_io.h): primitive
// round trips, section markers, and — the part the service layer leans on —
// loud rejection of corrupted, truncated and foreign payloads.
#include "dollymp/common/state_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace dollymp {
namespace {

struct PodRecord {
  std::int32_t a = 0;
  double b = 0.0;
};

std::vector<std::uint8_t> sample_envelope() {
  StateWriter w;
  w.u8(7);
  w.b(true);
  w.u32(0xDEADBEEFu);
  w.i32(-42);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-1);
  w.f64(3.25);
  w.str("hello snapshot");
  PodRecord rec{9, -2.5};
  w.pod(rec);
  w.pod_vec(std::vector<std::int32_t>{1, 2, 3});
  w.section(0x54455354u);
  return w.finish();
}

TEST(StateIo, PrimitivesRoundTrip) {
  const auto bytes = sample_envelope();
  StateReader r(bytes);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -1);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello snapshot");
  PodRecord rec;
  r.pod(rec);
  EXPECT_EQ(rec.a, 9);
  EXPECT_DOUBLE_EQ(rec.b, -2.5);
  std::vector<std::int32_t> v;
  r.pod_vec(v);
  EXPECT_EQ(v, (std::vector<std::int32_t>{1, 2, 3}));
  r.section(0x54455354u);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(StateIo, RejectsBadMagic) {
  auto bytes = sample_envelope();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(
      {
        try {
          StateReader r(bytes);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(StateIo, RejectsPayloadCorruption) {
  auto bytes = sample_envelope();
  // Flip one payload bit (past magic+version+length header).
  bytes[bytes.size() / 2] ^= 0x01;
  EXPECT_THROW(
      {
        try {
          StateReader r(bytes);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("hash"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(StateIo, RejectsTruncation) {
  auto bytes = sample_envelope();
  bytes.resize(bytes.size() - 9);
  EXPECT_THROW(StateReader r(bytes), std::runtime_error);
}

TEST(StateIo, RejectsEmptyBuffer) {
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW(StateReader r(empty), std::runtime_error);
}

TEST(StateIo, SectionMismatchThrows) {
  StateWriter w;
  w.section(0x41414141u);
  const auto bytes = w.finish();
  StateReader r(bytes);
  EXPECT_THROW(r.section(0x42424242u), std::runtime_error);
}

TEST(StateIo, PodSizeDriftThrows) {
  StateWriter w;
  w.pod(std::int32_t{5});
  const auto bytes = w.finish();
  StateReader r(bytes);
  std::int64_t wrong = 0;
  EXPECT_THROW(r.pod(wrong), std::runtime_error);
}

TEST(StateIo, ReadPastEndThrows) {
  StateWriter w;
  w.u32(1);
  const auto bytes = w.finish();
  StateReader r(bytes);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), std::runtime_error);
}

TEST(StateIo, ExpectDoneThrowsOnTrailingBytes) {
  StateWriter w;
  w.u32(1);
  w.u32(2);
  const auto bytes = w.finish();
  StateReader r(bytes);
  (void)r.u32();
  EXPECT_THROW(r.expect_done(), std::runtime_error);
}

TEST(StateIo, ReserveAndPatchLengthSlot) {
  StateWriter w;
  const std::size_t at = w.reserve_u64();
  const std::size_t before = w.size();
  w.str("nested blob");
  w.patch_u64(at, w.size() - before);
  const auto bytes = w.finish();
  StateReader r(bytes);
  const std::uint64_t len = r.u64();
  EXPECT_EQ(len, r.remaining());
  r.skip(static_cast<std::size_t>(len));
  EXPECT_NO_THROW(r.expect_done());
}

TEST(StateIo, FileRoundTripAndIoErrors) {
  const std::string path = testing::TempDir() + "/dollymp_state_io_test.ckpt";
  const auto bytes = sample_envelope();
  write_state_file(path, bytes);
  EXPECT_EQ(read_state_file(path), bytes);
  EXPECT_THROW((void)read_state_file(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
}  // namespace dollymp
