#include "dollymp/cluster/cluster.h"

#include <gtest/gtest.h>

namespace dollymp {
namespace {

/// Servers are views into a ServerTable since the struct-of-arrays
/// overhaul; a single-row cluster is the smallest way to stand one up.
Cluster one_server(ServerSpec spec) {
  Cluster cluster;
  cluster.add_server(std::move(spec));
  return cluster;
}

TEST(Server, AllocateRelease) {
  Cluster c = one_server(ServerSpec{{8, 16}, 1.0, 0, "test"});
  Server& s = c.server(0);
  EXPECT_TRUE(s.allocate({4, 8}));
  EXPECT_EQ(s.used(), Resources(4, 8));
  EXPECT_EQ(s.free(), Resources(4, 8));
  EXPECT_TRUE(s.allocate({4, 8}));
  EXPECT_FALSE(s.allocate({0.1, 0.0}));  // full
  s.release({4, 8});
  EXPECT_EQ(s.free(), Resources(4, 8));
}

TEST(Server, RejectsNegativeDemand) {
  Cluster c = one_server(ServerSpec{{8, 16}, 1.0, 0, ""});
  Server& s = c.server(0);
  EXPECT_THROW(s.allocate({-1, 0}), std::invalid_argument);
  EXPECT_THROW(s.release({0, -1}), std::invalid_argument);
}

TEST(Server, AllocFailureLeavesStateUnchanged) {
  Cluster c = one_server(ServerSpec{{4, 4}, 1.0, 0, ""});
  Server& s = c.server(0);
  EXPECT_TRUE(s.allocate({3, 3}));
  EXPECT_FALSE(s.allocate({2, 0}));
  EXPECT_EQ(s.used(), Resources(3, 3));
}

TEST(Server, ReleaseClampsFloatNoise) {
  Cluster c = one_server(ServerSpec{{1, 1}, 1.0, 0, ""});
  Server& s = c.server(0);
  ASSERT_TRUE(s.allocate({0.3, 0.3}));
  s.release({0.3, 0.3});
  EXPECT_TRUE(s.free().fits_within({1, 1}));
  EXPECT_TRUE(s.used().non_negative());
}

TEST(Server, CopyCounters) {
  Cluster c = one_server(ServerSpec{{8, 8}, 1.0, 0, ""});
  Server& s = c.server(0);
  s.note_copy_started();
  s.note_copy_started();
  EXPECT_EQ(s.running_copies(), 2);
  s.note_copy_finished();
  EXPECT_EQ(s.running_copies(), 1);
  s.reset();
  EXPECT_EQ(s.running_copies(), 0);
  EXPECT_TRUE(s.used().is_zero());
}

TEST(Cluster, TotalsFromGroups) {
  const Cluster c({{ServerSpec{{8, 16}, 1.0, 0, "a"}, 2},
                   {ServerSpec{{16, 32}, 1.5, 1, "b"}, 1}});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.total_capacity(), Resources(32, 64));
  EXPECT_EQ(c.rack_count(), 2);
}

TEST(Cluster, FreeUsedUtilization) {
  Cluster c = Cluster::uniform(2, {10, 10});
  EXPECT_DOUBLE_EQ(c.utilization(), 0.0);
  ASSERT_TRUE(c.server(0).allocate({5, 2}));
  EXPECT_EQ(c.total_used(), Resources(5, 2));
  EXPECT_EQ(c.total_free(), Resources(15, 18));
  EXPECT_DOUBLE_EQ(c.utilization(), 0.25);  // cpu 5/20 dominates mem 2/20
  c.reset_allocations();
  EXPECT_DOUBLE_EQ(c.utilization(), 0.0);
}

TEST(Cluster, Paper30Inventory) {
  const Cluster c = Cluster::paper30();
  // Section 6.1: 30 heterogeneous nodes, 328 cores, two racks.
  EXPECT_EQ(c.size(), 30u);
  EXPECT_DOUBLE_EQ(c.total_capacity().cpu(), 328.0);
  EXPECT_EQ(c.rack_count(), 2);
  // 2 powerful nodes with 24 cores / 48 GB.
  int powerful = 0;
  for (const auto& s : c.servers()) {
    if (s.capacity().cpu() == 24.0) {
      ++powerful;
      EXPECT_DOUBLE_EQ(s.capacity().mem(), 48.0);
      EXPECT_GT(s.base_speed(), 1.0);
    }
  }
  EXPECT_EQ(powerful, 2);
}

TEST(Cluster, GoogleLikeInventory) {
  const Cluster c = Cluster::google_like(100);
  EXPECT_EQ(c.size(), 100u);
  EXPECT_GT(c.rack_count(), 1);
  // Heterogeneous: at least two distinct capacities.
  bool saw_small = false;
  bool saw_big = false;
  for (const auto& s : c.servers()) {
    saw_small |= s.capacity().cpu() == 8.0;
    saw_big |= s.capacity().cpu() == 32.0;
  }
  EXPECT_TRUE(saw_small);
  EXPECT_TRUE(saw_big);
}

TEST(Cluster, SingleServer) {
  const Cluster c = Cluster::single({1.0, 1.0});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.total_capacity(), Resources(1, 1));
}

TEST(Cluster, ServerIdsAreIndices) {
  const Cluster c = Cluster::uniform(5, {1, 1});
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.server(i).id(), static_cast<ServerId>(i));
  }
}

}  // namespace
}  // namespace dollymp
